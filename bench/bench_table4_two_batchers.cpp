// Table 4 reproduction: two clients AND two batchers, one machine for each
// remaining stage.
//
// Paper shape: the batcher stage more than doubles (each batcher beats the
// single-batcher case), pushing the bottleneck to the filter, which cannot
// exceed ~120K records/s (its NIC saturates receiving from two batchers);
// the stages after the filter run at about half the batcher stage's rate.

#include <cstdio>
#include <numeric>

#include "bench_report.h"
#include "sim/chariots_pipeline.h"

int main() {
  using namespace chariots::sim;
  PipelineShape shape;
  shape.clients = 2;
  shape.batchers = 2;
  ChariotsPipelineSim sim(shape);
  sim.RunToCount(chariots::bench::SmokeMode() ? 40'000 : 400'000);
  sim.PrintTable(
      "=== Table 4: two clients, two batchers, one machine per remaining "
      "stage ===");
  std::printf("\nExpected shape: clients and batchers ~126-130K each "
              "(stage totals ~250K+); filter capped ~120K — the new "
              "bottleneck; later stages track the filter.\n");

  chariots::bench::BenchReport report("table4_two_batchers");
  for (const auto& row : sim.Results()) {
    double total = std::accumulate(row.machine_rates.begin(),
                                   row.machine_rates.end(), 0.0);
    report.AddStage(row.stage, total);
    if (row.stage == "Client") report.SetThroughput(total);
  }
  if (!report.Write()) return 1;
  return 0;
}
