// Table 3 reproduction: two client machines, one machine for every other
// stage.
//
// Paper shape: the two clients are throttled to ~65K appends/s each by the
// single batcher (~126K under the doubled offered load) — the batcher is
// the bottleneck, not the clients.

#include <cstdio>
#include <numeric>

#include "bench_report.h"
#include "sim/chariots_pipeline.h"

int main() {
  using namespace chariots::sim;
  PipelineShape shape;
  shape.clients = 2;
  ChariotsPipelineSim sim(shape);
  sim.RunToCount(chariots::bench::SmokeMode() ? 40'000 : 400'000);
  sim.PrintTable(
      "=== Table 3: two clients, one machine per remaining stage ===");
  std::printf("\nExpected shape: clients ~63-66K each (sum capped by the "
              "batcher); batcher ~126K and now the bottleneck.\n");

  chariots::bench::BenchReport report("table3_two_clients");
  for (const auto& row : sim.Results()) {
    double total = std::accumulate(row.machine_rates.begin(),
                                   row.machine_rates.end(), 0.0);
    report.AddStage(row.stage, total);
    if (row.stage == "Client") report.SetThroughput(total);
  }
  if (!report.Write()) return 1;
  return 0;
}
