// Read-path scaling (ISSUE 6): read throughput of a real FLStore cluster
// under mixed read:write workloads and growing reader counts, comparing
//
//   * baseline  — client read-through cache disabled: every read is an RPC
//     into the maintainer (the pre-read-path behaviour), and
//   * cached    — the memory-speed read path: client read-through cache
//     with epoch invalidation, serving the hot tail locally.
//
// The working set is the hot tail (the most recently appended records), so
// the cached series should beat the RPC-per-read baseline by well over an
// order of magnitude — the acceptance bar is 10×.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/metrics.h"
#include "flstore/client.h"
#include "flstore/service.h"
#include "net/inproc_transport.h"

namespace {

using namespace chariots;
using namespace chariots::flstore;

/// Deterministic per-thread mixer (benches avoid rand() for repeatability).
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

/// One in-proc FLStore deployment: controller + maintainers, memory store.
struct Cluster {
  explicit Cluster(uint32_t num_maintainers, uint64_t batch)
      : journal(num_maintainers, batch) {
    ClusterInfo info;
    info.journal = journal;
    for (uint32_t i = 0; i < num_maintainers; ++i) {
      info.maintainers.push_back("dc0/maintainer/" + std::to_string(i));
    }
    controller = std::make_unique<ControllerServer>(&transport,
                                                    "dc0/controller", info);
    if (!controller->Start().ok()) std::abort();
    for (uint32_t i = 0; i < num_maintainers; ++i) {
      MaintainerOptions mo;
      mo.index = i;
      mo.journal = journal;
      mo.store.mode = storage::SyncMode::kMemoryOnly;
      MaintainerServer::Options so;
      so.node = info.maintainers[i];
      so.peers = info.maintainers;
      so.gossip_interval_nanos = 500'000;
      maintainers.push_back(
          std::make_unique<MaintainerServer>(&transport, mo, so));
      if (!maintainers.back()->Start().ok()) std::abort();
    }
  }

  std::unique_ptr<FLStoreClient> NewClient(const std::string& name,
                                           uint64_t cache_bytes) {
    ClientOptions options;
    options.read_cache_bytes = cache_bytes;
    auto client = std::make_unique<FLStoreClient>(
        &transport, "dc0/client/" + name, "dc0/controller", options);
    if (!client->Start().ok()) std::abort();
    return client;
  }

  net::InProcTransport transport;
  EpochJournal journal;
  std::unique_ptr<ControllerServer> controller;
  std::vector<std::unique_ptr<MaintainerServer>> maintainers;
};

struct MixResult {
  double reads_per_sec = 0;
  double total_per_sec = 0;
};

/// Drives `readers` closed-loop threads against a preloaded hot tail for
/// `ops_per_thread` operations each at the given read share (percent).
MixResult RunMix(Cluster& cluster, const std::vector<LId>& hot,
                 int readers, int read_pct, uint64_t ops_per_thread,
                 uint64_t cache_bytes) {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::vector<std::unique_ptr<FLStoreClient>> clients;
  for (int t = 0; t < readers; ++t) {
    clients.push_back(cluster.NewClient(
        "mix" + std::to_string(read_pct) + "x" + std::to_string(readers) +
            "b" + std::to_string(cache_bytes) + "t" + std::to_string(t),
        cache_bytes));
  }
  if (cache_bytes > 0) {
    // Warm each session's cache (one coalesced sweep of the working set)
    // so the timed region measures the steady-state hot tail, not the
    // one-time cold fill.
    for (auto& client : clients) {
      if (!client->ReadMany(hot).ok()) std::abort();
    }
  }
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      FLStoreClient* client = clients[t].get();
      uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        rng = Mix(rng + i);
        if (static_cast<int>(rng % 100) < read_pct) {
          LId lid = hot[rng % hot.size()];
          if (client->Read(lid).ok()) {
            reads.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          LogRecord rec;
          rec.body = "w" + std::to_string(i);
          if (client->Append(rec).ok()) {
            writes.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  MixResult out;
  if (secs > 0) {
    out.reads_per_sec = static_cast<double>(reads.load()) / secs;
    out.total_per_sec =
        static_cast<double>(reads.load() + writes.load()) / secs;
  }
  return out;
}

metrics::Counter* HitCounter() {
  return metrics::Registry::Default().GetCounter(
      "chariots.flstore.read_cache.hits");
}
metrics::Counter* MissCounter() {
  return metrics::Registry::Default().GetCounter(
      "chariots.flstore.read_cache.misses");
}

}  // namespace

int main() {
  const bool smoke = chariots::bench::SmokeMode();
  const uint64_t kCacheBytes = 4ull << 20;
  const uint64_t kHotRecords = smoke ? 512 : 4096;
  const uint64_t kOpsPerThread = smoke ? 2'000 : 50'000;

  Cluster cluster(2, 64);

  // Preload the hot tail.
  auto loader = cluster.NewClient("loader", 0);
  std::vector<LId> hot;
  hot.reserve(kHotRecords);
  for (uint64_t i = 0; i < kHotRecords; ++i) {
    LogRecord rec;
    rec.body = "hot-record-payload-" + std::to_string(i);
    auto lid = loader->Append(rec);
    if (!lid.ok()) std::abort();
    hot.push_back(*lid);
  }

  chariots::bench::BenchReport report("read_scaling");
  std::printf("=== Read-path scaling: hot-tail reads, cached vs "
              "RPC-per-read ===\n");
  std::printf("%-10s %-8s %-24s %-24s %-8s\n", "read:write", "readers",
              "baseline (reads/s)", "cached (reads/s)", "speedup");

  const std::vector<int> read_pcts = smoke ? std::vector<int>{50, 100}
                                           : std::vector<int>{50, 90, 100};
  const std::vector<int> reader_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};

  uint64_t hits0 = HitCounter()->Value();
  uint64_t misses0 = MissCounter()->Value();
  double speedup_hot_tail = 0;
  double peak = 0;
  for (int read_pct : read_pcts) {
    for (int readers : reader_counts) {
      MixResult baseline = RunMix(cluster, hot, readers, read_pct,
                                  kOpsPerThread, /*cache_bytes=*/0);
      MixResult cached = RunMix(cluster, hot, readers, read_pct,
                                kOpsPerThread, kCacheBytes);
      double speedup = baseline.reads_per_sec > 0
                           ? cached.reads_per_sec / baseline.reads_per_sec
                           : 0;
      std::printf("%3d:%-6d %-8d %-24.0f %-24.0f %.1fx\n", read_pct,
                  100 - read_pct, readers, baseline.reads_per_sec,
                  cached.reads_per_sec, speedup);
      std::string label = "r" + std::to_string(read_pct) + "/readers" +
                          std::to_string(readers);
      report.AddStage(label + "/baseline", baseline.reads_per_sec);
      report.AddStage(label + "/cached", cached.reads_per_sec);
      peak = std::max(peak, cached.reads_per_sec);
      // The acceptance metric: pure hot-tail reads, max parallelism.
      if (read_pct == 100 && readers == reader_counts.back()) {
        speedup_hot_tail = speedup;
      }
    }
  }

  // Coalesced multi-get: the whole hot tail in ReadRange batches through a
  // cold-cache client, vs one RPC per record.
  {
    auto batch_client = cluster.NewClient("batcher", kCacheBytes);
    auto t0 = std::chrono::steady_clock::now();
    constexpr size_t kBatch = 128;
    for (size_t i = 0; i < hot.size(); i += kBatch) {
      std::vector<LId> lids(
          hot.begin() + i,
          hot.begin() + std::min(hot.size(), i + kBatch));
      if (!batch_client->ReadMany(lids).ok()) std::abort();
    }
    double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    double rate = secs > 0 ? static_cast<double>(hot.size()) / secs : 0;
    std::printf("\ncoalesced ReadMany cold sweep: %.0f reads/s\n", rate);
    report.AddStage("readmany_cold_sweep", rate);
  }

  uint64_t hits = HitCounter()->Value() - hits0;
  uint64_t misses = MissCounter()->Value() - misses0;
  double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0;
  std::printf("\nread cache: %llu hits, %llu misses (%.1f%% hit rate); "
              "hot-tail speedup %.1fx (acceptance bar: 10x)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), hit_rate * 100,
              speedup_hot_tail);

  report.SetThroughput(peak);
  report.AddExtra("read_cache_hits", static_cast<double>(hits));
  report.AddExtra("read_cache_misses", static_cast<double>(misses));
  report.AddExtra("read_cache_hit_rate", hit_rate);
  report.AddExtra("speedup_hot_tail", speedup_hot_tail);
  if (!report.Write()) return 1;
  return 0;
}
