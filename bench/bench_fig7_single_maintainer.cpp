// Figure 7 reproduction: throughput of ONE log maintainer while increasing
// the offered load (public-cloud machine model).
//
// Paper shape: achieved throughput tracks the target up to a knee near
// 150K appends/s, then drops and plateaus around 120K under overload.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "sim/flstore_load.h"

int main() {
  using namespace chariots::sim;

  std::printf("=== Figure 7: single-maintainer throughput vs offered load "
              "(public cloud) ===\n");
  std::printf("%-22s %-22s\n", "Target (appends/s)", "Achieved (appends/s)");

  std::vector<double> targets = {25e3,  50e3,  75e3,  100e3, 125e3, 150e3,
                                 175e3, 200e3, 225e3, 250e3, 275e3, 300e3};
  if (chariots::bench::SmokeMode()) targets = {50e3, 150e3, 300e3};

  chariots::bench::BenchReport report("fig7_single_maintainer");
  double peak = 0;
  for (double target : targets) {
    FLStoreLoadOptions options;
    options.num_maintainers = 1;
    options.maintainer_model = PublicCloudMachine();
    options.target_per_maintainer = target;
    FLStoreLoadResult result = RunFLStoreLoad(options);
    std::printf("%-22.0f %-22.0f\n", target, result.total_rate);
    peak = std::max(peak, result.total_rate);
    report.AddStage("target_" + std::to_string(static_cast<int>(target)),
                    result.total_rate);
  }
  std::printf("\nExpected shape: rises with the target to a knee near "
              "150K, then drops to ~120K under overload and plateaus.\n");
  report.SetThroughput(peak);
  if (!report.Write()) return 1;
  return 0;
}
