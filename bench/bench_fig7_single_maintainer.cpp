// Figure 7 reproduction: throughput of ONE log maintainer while increasing
// the offered load (public-cloud machine model).
//
// Paper shape: achieved throughput tracks the target up to a knee near
// 150K appends/s, then drops and plateaus around 120K under overload.

#include <cstdio>

#include "sim/flstore_load.h"

int main() {
  using namespace chariots::sim;

  std::printf("=== Figure 7: single-maintainer throughput vs offered load "
              "(public cloud) ===\n");
  std::printf("%-22s %-22s\n", "Target (appends/s)", "Achieved (appends/s)");

  for (double target : {25e3, 50e3, 75e3, 100e3, 125e3, 150e3, 175e3, 200e3,
                        225e3, 250e3, 275e3, 300e3}) {
    FLStoreLoadOptions options;
    options.num_maintainers = 1;
    options.maintainer_model = PublicCloudMachine();
    options.target_per_maintainer = target;
    FLStoreLoadResult result = RunFLStoreLoad(options);
    std::printf("%-22.0f %-22.0f\n", target, result.total_rate);
  }
  std::printf("\nExpected shape: rises with the target to a knee near "
              "150K, then drops to ~120K under overload and plateaus.\n");
  return 0;
}
