// Baseline comparison (paper §1, §2.1, §5.2): a CORFU-style log with a
// centralized sequencer versus FLStore's post-assignment, as storage
// scales out.
//
// Expected shape: CORFU's cumulative throughput is FLAT — capped by the
// sequencer machine no matter how many storage units serve the data path —
// while FLStore grows linearly with maintainers.

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/rate_limiter.h"
#include "corfu/corfu.h"
#include "sim/flstore_load.h"

namespace {

// Drives a CORFU log with one client thread per storage unit; each unit is
// a machine with the same capacity model as an FLStore maintainer, and the
// sequencer is one such machine too (its capacity caps position handout).
// `machine_rate` arrives pre-scaled; the caller rescales the result.
double RunCorfu(uint32_t num_units, double machine_rate,
                int64_t duration_nanos) {
  using namespace chariots;
  corfu::Sequencer sequencer(machine_rate);
  std::vector<std::unique_ptr<corfu::StorageUnit>> units;
  std::vector<std::unique_ptr<TokenBucket>> unit_cost;
  std::vector<corfu::StorageUnit*> unit_ptrs;
  for (uint32_t u = 0; u < num_units; ++u) {
    units.push_back(std::make_unique<corfu::StorageUnit>());
    unit_cost.push_back(std::make_unique<TokenBucket>(
        machine_rate, machine_rate / 100, SystemClock::Default()));
    unit_ptrs.push_back(units.back().get());
  }
  corfu::CorfuLog log(&sequencer, unit_ptrs);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> appended{0};
  std::vector<std::thread> clients;
  std::string payload(512, 'x');
  for (uint32_t c = 0; c < num_units; ++c) {
    clients.emplace_back([&] {
      // Clients reserve small position batches (CORFU's batched sequencer
      // optimization) — the sequencer round trip still gates every append.
      constexpr uint64_t kBatch = 16;
      std::vector<uint64_t> per_unit(num_units);
      while (!stop.load(std::memory_order_relaxed)) {
        corfu::Position first = sequencer.Next(kBatch);
        std::fill(per_unit.begin(), per_unit.end(), 0);
        for (uint64_t i = 0; i < kBatch; ++i) {
          ++per_unit[(first + i) % num_units];
        }
        for (uint32_t u = 0; u < num_units; ++u) {
          if (per_unit[u] > 0) {
            unit_cost[u]->Acquire(static_cast<double>(per_unit[u]));
          }
        }
        for (uint64_t i = 0; i < kBatch; ++i) {
          corfu::Position p = first + i;
          if (unit_ptrs[p % num_units]->Write(p, payload).ok()) {
            appended.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  SystemClock::Default()->SleepFor(duration_nanos);
  stop.store(true);
  for (auto& t : clients) t.join();
  return static_cast<double>(appended.load()) * 1e9 /
         static_cast<double>(duration_nanos);
}

}  // namespace

int main() {
  using namespace chariots::sim;
  constexpr double kMachineRate = 131'000;  // private-cloud class machines
  constexpr double kTimeScale = 10;  // see FLStoreLoadOptions::time_scale
  constexpr int64_t kDuration = 300'000'000;

  std::printf("=== CORFU (central sequencer) vs FLStore (post-assignment) "
              "===\n");
  std::printf("%-16s %-26s %-26s\n", "Storage nodes",
              "CORFU (appends/s)", "FLStore (appends/s)");
  std::vector<uint32_t> widths = {1u, 2u, 4u, 6u, 8u, 10u};
  if (chariots::bench::SmokeMode()) widths = {1u, 4u};
  chariots::bench::BenchReport report("corfu_vs_flstore");
  double last_corfu = 0, last_flstore = 0;
  for (uint32_t n : widths) {
    double corfu_rate =
        RunCorfu(n, kMachineRate / kTimeScale, kDuration) * kTimeScale;

    FLStoreLoadOptions options;
    options.num_maintainers = n;
    options.maintainer_model = PrivateCloudMachine();
    options.target_per_maintainer = 0;  // closed loop
    double flstore_rate = RunFLStoreLoad(options).total_rate;

    std::printf("%-16u %-26.0f %-26.0f\n", n, corfu_rate, flstore_rate);
    last_corfu = corfu_rate;
    last_flstore = flstore_rate;
  }
  std::printf("\nExpected shape: CORFU flat at the sequencer's ~131K cap; "
              "FLStore scales linearly with maintainers.\n");
  report.SetThroughput(last_flstore);
  report.AddStage("corfu", last_corfu);
  report.AddStage("flstore", last_flstore);
  if (!report.Write()) return 1;
  return 0;
}
