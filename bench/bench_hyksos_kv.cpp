// Extension bench: Hyksos (paper §4.1) as an application workload on the
// geo-replicated log — put/get mixes with a skewed key distribution, plus
// get-transaction snapshot cost. Latency measured end to end (append
// through pipeline to durable, or index lookup + read).

#include <chrono>
#include <cstdio>
#include <memory>

#include "apps/hyksos.h"
#include "bench_report.h"
#include "chariots/fabric.h"
#include "common/histogram.h"
#include "common/random.h"
#include "net/inproc_transport.h"
#include "sim/workload.h"

using namespace chariots;
using namespace chariots::geo;
using namespace chariots::apps;

namespace {

void RunMix(double put_fraction, const char* label,
            chariots::bench::BenchReport* report) {
  net::InProcTransport transport;
  TransportFabric fabric(&transport);
  std::vector<std::unique_ptr<Datacenter>> dcs;
  for (uint32_t d = 0; d < 2; ++d) {
    ChariotsConfig config;
    config.dc_id = d;
    config.num_datacenters = 2;
    config.batcher_flush_nanos = 100'000;
    dcs.push_back(std::make_unique<Datacenter>(config, &fabric));
    (void)dcs.back()->Start();
  }
  Hyksos kv(dcs[0].get());
  // Preload so gets always hit.
  for (int k = 0; k < 100; ++k) {
    (void)kv.Put("key" + std::to_string(k), "v0");
  }

  // YCSB-style workload: zipfian hot keys, configurable mix.
  sim::WorkloadOptions wo;
  wo.num_keys = 100;
  wo.distribution = sim::KeyDistribution::kZipfian;
  wo.put_fraction = put_fraction;
  wo.value_bytes = 64;
  sim::WorkloadGenerator gen(wo);

  Histogram put_lat, get_lat;
  const int kOps = chariots::bench::SmokeMode() ? 800 : 4000;
  auto bench_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    sim::Op op = gen.Next();
    auto op_start = std::chrono::steady_clock::now();
    if (op.type == sim::OpType::kPut) {
      (void)kv.Put(op.key, op.value);
    } else {
      (void)kv.Get(op.key);
    }
    auto op_nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - op_start)
                        .count();
    report->AddLatencyNanos(op_nanos);
    (op.type == sim::OpType::kPut ? put_lat : get_lat)
        .Record(op_nanos / 1e3);
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - bench_start)
                    .count();

  // One get transaction over 10 keys for the snapshot cost.
  std::vector<std::string> keys;
  for (int k = 0; k < 10; ++k) keys.push_back("key" + std::to_string(k));
  auto txn_start = std::chrono::steady_clock::now();
  (void)kv.GetTxn(keys);
  double txn_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - txn_start)
                      .count();

  std::printf("%-14s %-12.0f put p50/p99: %6.0f/%-8.0f get p50/p99: "
              "%6.0f/%-8.0f getTxn(10): %.0f us\n",
              label, kOps / secs, put_lat.Percentile(50),
              put_lat.Percentile(99), get_lat.Percentile(50),
              get_lat.Percentile(99), txn_us);
  report->AddStage(label, kOps / secs);
  if (put_fraction == 0.5) report->SetThroughput(kOps / secs);
  report->AddExtra(std::string("put_p99_us_") + label,
                   put_lat.Percentile(99));
  report->AddExtra(std::string("get_p99_us_") + label,
                   get_lat.Percentile(99));
  for (auto& dc : dcs) dc->Stop();
}

}  // namespace

int main() {
  std::printf("=== Hyksos key-value workloads (2 DCs, 100 keys, latencies "
              "in microseconds) ===\n");
  std::printf("%-14s %-12s\n", "Mix", "ops/s");
  chariots::bench::BenchReport report("hyksos_kv");
  RunMix(0.05, "get_heavy", &report);
  RunMix(0.5, "mixed_50_50", &report);
  RunMix(0.95, "put_heavy", &report);
  std::printf("\nExpected shape: get-heavy mixes are faster (index lookup "
              "+ local read); puts pay the full pipeline (batcher flush + "
              "token) for durability.\n");
  if (!report.Write()) return 1;
  return 0;
}
