// Table 2 reproduction: per-machine throughput of a basic Chariots
// deployment with ONE machine per pipeline stage.
//
// Paper shape: every stage lands near 124-132 Kappends/s — the pipeline is
// client-limited, so all machines run at roughly the client's rate.

#include <cstdio>

#include "sim/chariots_pipeline.h"

int main() {
  using namespace chariots::sim;
  PipelineShape shape;  // 1 machine per stage
  ChariotsPipelineSim sim(shape);
  sim.RunToCount(500'000);
  sim.PrintTable(
      "=== Table 2: Chariots basic deployment (1 machine per stage) ===");
  std::printf("\nExpected shape: all stages ~124-132 Kappends/s "
              "(client-limited pipeline).\n");
  return 0;
}
