// Table 2 reproduction: per-machine throughput of a basic Chariots
// deployment with ONE machine per pipeline stage.
//
// Paper shape: every stage lands near 124-132 Kappends/s — the pipeline is
// client-limited, so all machines run at roughly the client's rate.

#include <cstdio>
#include <numeric>

#include "bench_report.h"
#include "sim/chariots_pipeline.h"

int main() {
  using namespace chariots::sim;
  PipelineShape shape;  // 1 machine per stage
  ChariotsPipelineSim sim(shape);
  sim.RunToCount(chariots::bench::SmokeMode() ? 50'000 : 500'000);
  sim.PrintTable(
      "=== Table 2: Chariots basic deployment (1 machine per stage) ===");
  std::printf("\nExpected shape: all stages ~124-132 Kappends/s "
              "(client-limited pipeline).\n");

  chariots::bench::BenchReport report("table2_pipeline_basic");
  for (const auto& row : sim.Results()) {
    double total = std::accumulate(row.machine_rates.begin(),
                                   row.machine_rates.end(), 0.0);
    report.AddStage(row.stage, total);
    if (row.stage == "Client") report.SetThroughput(total);
  }
  if (!report.Write()) return 1;
  return 0;
}
