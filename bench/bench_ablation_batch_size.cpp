// Ablation: effect of the FLStore round-robin batch size (records per
// maintainer per round) on raw append throughput and on Head-of-the-Log
// lag under skewed load.
//
// Under skew the unreadable tail (assigned above HL) is dominated by the
// slow maintainer's backlog itself — the batch size only shifts where the
// slow maintainer's next unfilled position lands in the global order
// (lag ~ skew - batch), while making HL advance in coarser strides.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_report.h"
#include "flstore/maintainer.h"
#include "sim/flstore_load.h"

namespace {

using namespace chariots;
using namespace chariots::flstore;

// Appends with 2:1 load skew between two maintainers, exchanges gossip,
// and reports how much of the assigned log is above HL (unreadable).
uint64_t HlLagUnderSkew(uint64_t batch, uint64_t appends) {
  std::vector<std::unique_ptr<LogMaintainer>> ms;
  for (uint32_t i = 0; i < 2; ++i) {
    MaintainerOptions o;
    o.index = i;
    o.journal = EpochJournal(2, batch);
    o.store.mode = storage::SyncMode::kMemoryOnly;
    ms.push_back(std::make_unique<LogMaintainer>(o));
    (void)ms.back()->Open();
  }
  LogRecord rec;
  rec.body = "x";
  for (uint64_t i = 0; i < appends; ++i) {
    (void)ms[0]->Append(rec);
    if (i % 2 == 0) (void)ms[1]->Append(rec);  // half the load
  }
  ms[0]->OnGossip(1, ms[1]->FirstUnfilledGlobal());
  ms[1]->OnGossip(0, ms[0]->FirstUnfilledGlobal());
  uint64_t total = ms[0]->count() + ms[1]->count();
  flstore::LId hl = ms[0]->HeadOfLog();
  return total > hl ? total - hl : 0;
}

}  // namespace

int main() {
  using namespace chariots::sim;

  std::printf("=== Ablation: FLStore stripe batch size ===\n");
  std::printf("%-12s %-26s %-30s\n", "Batch", "Throughput (appends/s)",
              "Appended-above-HL under 2:1 skew");
  std::vector<uint64_t> batches = {1ull, 10ull, 100ull, 1000ull, 10000ull};
  if (chariots::bench::SmokeMode()) batches = {10ull, 1000ull};
  chariots::bench::BenchReport report("ablation_batch_size");
  double best = 0;
  for (uint64_t batch : batches) {
    FLStoreLoadOptions options;
    options.num_maintainers = 4;
    options.stripe_batch = batch;
    options.maintainer_model = PrivateCloudMachine();
    options.target_per_maintainer = 0;
    double rate = RunFLStoreLoad(options).total_rate;
    uint64_t lag = HlLagUnderSkew(batch, 30'000);
    std::printf("%-12llu %-26.0f %llu records\n",
                static_cast<unsigned long long>(batch), rate,
                static_cast<unsigned long long>(lag));
    if (rate > best) best = rate;
    report.AddStage("batch_" + std::to_string(batch), rate);
    report.AddExtra("hl_lag_batch_" + std::to_string(batch),
                    static_cast<double>(lag));
  }
  report.SetThroughput(best);
  std::printf("\nExpected shape: throughput is flat across batch sizes "
              "(assignment is O(1) either way); the unreadable tail is "
              "dominated by the skew backlog and shrinks only slightly "
              "(~batch) as the batch grows — the cost of large batches is "
              "coarser HL advancement, not throughput.\n");
  if (!report.Write()) return 1;
  return 0;
}
