// Extension bench: Message Futures commit latency vs WAN round-trip time
// (paper §4.3). An MF transaction's fate is decided once every peer's
// history has crossed once in each direction, so commit latency should
// track the RTT — the property Helios later optimizes toward its lower
// bound.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/msgfutures.h"
#include "bench_report.h"
#include "chariots/fabric.h"
#include "common/histogram.h"
#include "net/inproc_transport.h"

using namespace chariots;
using namespace chariots::geo;
using namespace chariots::apps;

namespace {

void RunRtt(int64_t one_way_nanos, chariots::bench::BenchReport* report) {
  net::InProcTransport transport;
  net::LinkOptions wan;
  wan.latency_nanos = one_way_nanos;
  transport.SetLink("geo/", "geo/", wan);
  TransportFabric fabric(&transport);

  std::vector<std::unique_ptr<Datacenter>> dcs;
  for (uint32_t d = 0; d < 2; ++d) {
    ChariotsConfig config;
    config.dc_id = d;
    config.num_datacenters = 2;
    config.batcher_flush_nanos = 100'000;
    dcs.push_back(std::make_unique<Datacenter>(config, &fabric));
    (void)dcs.back()->Start();
  }
  MessageFutures mf0(dcs[0].get());
  MessageFutures mf1(dcs[1].get());
  mf0.StartBackground(500'000);
  mf1.StartBackground(500'000);

  Histogram commit_lat;
  const int kTxns = chariots::bench::SmokeMode() ? 10 : 30;
  int committed = 0;
  auto bench_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kTxns; ++i) {
    auto txn = mf0.Begin();
    txn.Put("k" + std::to_string(i), "v");
    auto start = std::chrono::steady_clock::now();
    auto outcome = mf0.Commit(txn);
    if (outcome.ok()) {
      auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
      commit_lat.Record(nanos / 1e6);
      report->AddLatencyNanos(nanos);
      ++committed;
    }
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - bench_start)
                    .count();
  std::printf("%-18.1f %-20.1f %-16.1f %-16.1f\n", one_way_nanos / 0.5e6,
              commit_lat.mean(), commit_lat.Percentile(50),
              commit_lat.Percentile(99));
  std::string label = "rtt_ms_" + std::to_string(one_way_nanos / 500'000);
  double rate = secs > 0 ? committed / secs : 0;
  report->AddStage(label, rate);
  if (one_way_nanos == 500'000) report->SetThroughput(rate);
  report->AddExtra("commit_p50_ms_" + label, commit_lat.Percentile(50));
  for (auto& dc : dcs) dc->Stop();
}

}  // namespace

int main() {
  std::printf("=== Message Futures commit latency vs WAN RTT (2 DCs) "
              "===\n");
  std::printf("%-18s %-20s %-16s %-16s\n", "RTT (ms)",
              "commit mean (ms)", "p50 (ms)", "p99 (ms)");
  std::vector<int64_t> one_ways = {500'000ll, 2'500'000ll, 5'000'000ll,
                                   10'000'000ll};
  if (chariots::bench::SmokeMode()) one_ways = {500'000ll};
  chariots::bench::BenchReport report("msgfutures_latency");
  for (int64_t one_way : one_ways) {
    RunRtt(one_way, &report);
  }
  std::printf("\nExpected shape: commit latency tracks the round-trip time "
              "(one crossing of histories in each direction), plus pipeline "
              "overhead — the Message Futures cost model the paper cites.\n");
  // Throughput for an MF bench is commits/s at the lowest RTT point.
  if (!report.Write()) return 1;
  return 0;
}
