// Extension bench: Message Futures commit latency vs WAN round-trip time
// (paper §4.3). An MF transaction's fate is decided once every peer's
// history has crossed once in each direction, so commit latency should
// track the RTT — the property Helios later optimizes toward its lower
// bound.

#include <chrono>
#include <cstdio>
#include <memory>

#include "apps/msgfutures.h"
#include "chariots/fabric.h"
#include "common/histogram.h"
#include "net/inproc_transport.h"

using namespace chariots;
using namespace chariots::geo;
using namespace chariots::apps;

namespace {

void RunRtt(int64_t one_way_nanos) {
  net::InProcTransport transport;
  net::LinkOptions wan;
  wan.latency_nanos = one_way_nanos;
  transport.SetLink("geo/", "geo/", wan);
  TransportFabric fabric(&transport);

  std::vector<std::unique_ptr<Datacenter>> dcs;
  for (uint32_t d = 0; d < 2; ++d) {
    ChariotsConfig config;
    config.dc_id = d;
    config.num_datacenters = 2;
    config.batcher_flush_nanos = 100'000;
    dcs.push_back(std::make_unique<Datacenter>(config, &fabric));
    (void)dcs.back()->Start();
  }
  MessageFutures mf0(dcs[0].get());
  MessageFutures mf1(dcs[1].get());
  mf0.StartBackground(500'000);
  mf1.StartBackground(500'000);

  Histogram commit_lat;
  for (int i = 0; i < 30; ++i) {
    auto txn = mf0.Begin();
    txn.Put("k" + std::to_string(i), "v");
    auto start = std::chrono::steady_clock::now();
    auto outcome = mf0.Commit(txn);
    if (outcome.ok()) {
      commit_lat.Record(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    }
  }
  std::printf("%-18.1f %-20.1f %-16.1f %-16.1f\n", one_way_nanos / 0.5e6,
              commit_lat.mean(), commit_lat.Percentile(50),
              commit_lat.Percentile(99));
  for (auto& dc : dcs) dc->Stop();
}

}  // namespace

int main() {
  std::printf("=== Message Futures commit latency vs WAN RTT (2 DCs) "
              "===\n");
  std::printf("%-18s %-20s %-16s %-16s\n", "RTT (ms)",
              "commit mean (ms)", "p50 (ms)", "p99 (ms)");
  for (int64_t one_way : {500'000ll, 2'500'000ll, 5'000'000ll,
                          10'000'000ll}) {
    RunRtt(one_way);
  }
  std::printf("\nExpected shape: commit latency tracks the round-trip time "
              "(one crossing of histories in each direction), plus pipeline "
              "overhead — the Message Futures cost model the paper cites.\n");
  return 0;
}
