// I/O engine sweep (ISSUE 10): LogStore disk append throughput for every
// engine × batch size × sync policy combination, plus the datapath copy
// audit. This is the acceptance bench for the zero-copy datapath:
//
//   * `uring_vs_sync_batch32` — io_uring over sync-engine speedup for the
//     batch-32 *durable* append path (group commit: every batch must reach
//     the device before it is acked — the only legs where bytes actually
//     hit disk inside the timed window; the kNever legs write dirty pages
//     that are dropped when the file is removed, so they measure the page
//     cache, and are reported as `uring_vs_sync_batch32_buffered`).
//     ISSUE 10 targets 2.0; what this bench can show is bounded by the
//     host — the engines share the CRC pass, the in-kernel page-cache
//     copy, and the device flush, and only the sync engine's extra
//     user-space flatten pass differs, so on a single-vCPU VM the honest
//     ratio lands well under 2 (see EXPERIMENTS.md for the measured
//     number and the accounting).
//   * `copies_per_record` — bytes-weighted user-space copies per payload
//     byte through encode → slice chain, from the chariots.net counters.
//     The budget is the single EncodeGeoRecord serialization; slice chains
//     must borrow everything else. Target: <= 1.2.
//   * `storage_copy_fraction_<engine>` — storage.io.bytes_copied over
//     bytes_written for an append pass under that engine: ~1 for the
//     flattening sync engine, ~0 for vectored io_uring. This is the
//     structural zero-copy claim, and unlike wall-clock ratios it is
//     hardware-independent.
//
// Each config writes into a fresh directory. Buffered legs are bounded by
// a byte budget and take the best of N trials (shared-VM noise); durable
// legs run long enough (512 MiB) to reach writeback steady state, with a
// few untimed warm-up batches so journal/extent warm-up doesn't pollute
// short legs.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench_report.h"
#include "chariots/record.h"
#include "common/metrics.h"
#include "net/message.h"
#include "storage/io_engine.h"
#include "storage/log_store.h"

namespace {

using namespace chariots;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  double rate_rps = 0;                  // records per second
  std::vector<int64_t> batch_nanos;     // one sample per AppendBatch
};

// Appends `payload_bytes`-sized records in batches of `batch` under the
// given engine/policy until the budget is exhausted; returns records/sec
// over the timed appends only (store setup/teardown excluded).
RunResult RunAppendPass(storage::IoEngine* engine, size_t batch,
                        storage::SyncPolicy policy, size_t payload_bytes,
                        uint64_t byte_budget, uint64_t max_batches,
                        uint64_t warmup_batches = 0) {
  auto dir = std::filesystem::temp_directory_path() /
             ("chariots_bench_io_" + std::string(engine->name()));
  std::filesystem::remove_all(dir);
  storage::LogStoreOptions options;
  options.dir = dir.string();
  options.mode = storage::SyncMode::kBuffered;
  options.sync_policy = policy;
  options.io_engine = engine;
  // One segment per pass: rotation mid-run would charge file creation to
  // the append path being measured.
  options.segment_bytes = byte_budget * 2 + (64u << 20);
  storage::LogStore store(options);
  if (!store.Open().ok()) {
    std::fprintf(stderr, "bench_io_engine: cannot open store in %s\n",
                 options.dir.c_str());
    return {};
  }
  std::string payload(payload_bytes, 'z');
  std::vector<storage::AppendEntry> entries(batch);
  RunResult result;
  uint64_t lid = 0, written = 0, batches = 0;
  // Untimed warm-up: the first few fsyncs pay journal/extent warm-up costs
  // that would otherwise dominate short durable legs.
  for (uint64_t w = 0; w < warmup_batches; ++w) {
    for (size_t i = 0; i < batch; ++i) entries[i] = {lid++, payload};
    if (!store.AppendBatch(entries).ok()) break;
  }
  const uint64_t first_timed_lid = lid;
  int64_t start = NowNanos();
  while (written < byte_budget && batches < max_batches) {
    for (size_t i = 0; i < batch; ++i) entries[i] = {lid++, payload};
    int64_t t0 = NowNanos();
    if (!store.AppendBatch(entries).ok()) break;
    result.batch_nanos.push_back(NowNanos() - t0);
    written += batch * payload_bytes;
    ++batches;
  }
  int64_t elapsed = NowNanos() - start;
  (void)store.Close();
  std::filesystem::remove_all(dir);
  if (elapsed > 0) {
    result.rate_rps = static_cast<double>(lid - first_timed_lid) * 1e9 /
                      static_cast<double>(elapsed);
  }
  return result;
}

// Drives payload bytes through the real encode path — GeoRecord
// serialization into a Message slice chain — and returns user-space copies
// per payload byte from the chariots.net counters. The geo serialization
// itself is the one budgeted copy; the slice chain must borrow the encoded
// payload (it is far above kInlineMessagePayloadBytes), so the honest
// answer is ~1.0.
double MeasureCopiesPerRecord(size_t records, size_t body_bytes) {
  auto& reg = metrics::Registry::Default();
  auto* entered = reg.GetCounter("chariots.net.payload_bytes_entered");
  auto* copied = reg.GetCounter("chariots.net.payload_bytes_copied");
  uint64_t e0 = entered->Value(), c0 = copied->Value();
  std::string body(body_bytes, 'g');
  for (size_t i = 0; i < records; ++i) {
    geo::GeoRecord record;
    record.host = 1;
    record.toid = i + 1;
    record.deps = {0, static_cast<geo::TOId>(i)};
    record.body = body;
    net::Message msg;
    msg.from = "bench";
    msg.to = "store";
    msg.type = 7;
    msg.payload = geo::EncodeGeoRecord(record);
    SliceChain chain = net::EncodeMessageSlices(std::move(msg));
    if (chain.size() == 0) return -1;  // unreachable; defeats elision
  }
  uint64_t de = entered->Value() - e0, dc = copied->Value() - c0;
  return de == 0 ? -1 : static_cast<double>(dc) / static_cast<double>(de);
}

// Best rate over `trials` passes — page-cache appends are fast enough that
// a single pass is at the mercy of background writeback from earlier
// configs; the max is the stable, comparable number.
RunResult BestOf(int trials, storage::IoEngine* engine, size_t batch,
                 storage::SyncPolicy policy, size_t payload_bytes,
                 uint64_t byte_budget, uint64_t max_batches,
                 uint64_t warmup_batches = 0) {
  RunResult best;
  for (int i = 0; i < trials; ++i) {
    RunResult run = RunAppendPass(engine, batch, policy, payload_bytes,
                                  byte_budget, max_batches, warmup_batches);
    if (run.rate_rps > best.rate_rps) best = std::move(run);
  }
  return best;
}

// storage.io.bytes_copied / bytes_written for one append pass under
// `engine` — how much of what hit the disk went through a user-space
// staging copy first.
double MeasureStorageCopyFraction(storage::IoEngine* engine,
                                  size_t payload_bytes, uint64_t budget) {
  auto& reg = metrics::Registry::Default();
  auto* written = reg.GetCounter("chariots.storage.io.bytes_written");
  auto* copied = reg.GetCounter("chariots.storage.io.bytes_copied");
  uint64_t w0 = written->Value(), c0 = copied->Value();
  (void)RunAppendPass(engine, 32, storage::SyncPolicy::kNever, payload_bytes,
                      budget, ~0ull);
  uint64_t dw = written->Value() - w0, dc = copied->Value() - c0;
  return dw == 0 ? -1 : static_cast<double>(dc) / static_cast<double>(dw);
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  // 128 KiB records: batch 32 is then 4 MiB per durable append — well past
  // L2, where the sync engine's flatten is a full extra memory-bandwidth
  // pass over every byte (and leaves the page cache cold for the flush that
  // follows), so the vectored engine's advantage is structural, not cache
  // luck. Overridable for experiments.
  size_t kPayloadBytes = 128 << 10;
  if (const char* v = std::getenv("CHARIOTS_BENCH_RECORD_BYTES");
      v != nullptr && v[0] != '\0') {
    kPayloadBytes = static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
  const uint64_t kByteBudget = smoke ? (8ull << 20) : (96ull << 20);
  // Durable legs are sized in *bytes*, and deliberately long (512 MiB):
  // short fsync legs fit inside the device's burst window and the engines
  // tie; the interesting number is sustained writeback steady state. A few
  // untimed warm-up batches absorb journal/extent warm-up.
  const uint64_t kSyncByteBudget = smoke ? (16ull << 20) : (512ull << 20);
  const uint64_t kSyncWarmup = smoke ? 1 : 4;
  const int kTrials = smoke ? 1 : 3;

  std::vector<storage::IoEngine*> engines = {storage::SyncIoEngine()};
  if (storage::IoUringAvailable()) engines.push_back(storage::UringIoEngine());

  std::printf("=== I/O engine sweep: %zu-byte records, %s ===\n",
              kPayloadBytes, smoke ? "smoke budget" : "full budget");
  std::printf("io_uring: %s\n\n",
              storage::IoUringAvailable() ? "available" : "UNAVAILABLE (sync only)");
  std::printf("%-8s %-8s %-10s %-22s\n", "Engine", "Batch", "Sync", "Records/s");

  bench::BenchReport report("io_engine");
  const std::vector<size_t> batches = smoke ? std::vector<size_t>{1, 32}
                                            : std::vector<size_t>{1, 8, 32, 256};
  double sync_b32 = 0, uring_b32 = 0;          // durable (group commit)
  double sync_b32_buf = 0, uring_b32_buf = 0;  // buffered (page cache only)
  double best = 0;
  for (storage::IoEngine* engine : engines) {
    for (size_t batch : batches) {
      for (auto [policy, label] :
           {std::pair{storage::SyncPolicy::kNever, "nosync"},
            std::pair{storage::SyncPolicy::kEveryBatch, "group"}}) {
        const bool fsyncs = policy == storage::SyncPolicy::kEveryBatch;
        // Best-of-N everywhere: on a shared VM a single pass is at the
        // mercy of neighbors and background writeback.
        const uint64_t batch_bytes = batch * kPayloadBytes;
        // Cap the per-batch-size durable leg at 128 batches so the small
        // batch sizes (fsync-latency-bound, not bandwidth-bound) don't
        // take minutes to burn the byte budget.
        const uint64_t sync_batches =
            std::max<uint64_t>(8, std::min<uint64_t>(
                                      128, kSyncByteBudget / batch_bytes));
        RunResult run =
            fsyncs ? BestOf(kTrials, engine, batch, policy, kPayloadBytes,
                            ~0ull, sync_batches, kSyncWarmup)
                   : BestOf(kTrials, engine, batch, policy, kPayloadBytes,
                            kByteBudget, ~0ull);
        std::printf("%-8s %-8zu %-10s %-22.0f\n", engine->name(), batch,
                    label, run.rate_rps);
        std::string stage = std::string(engine->name()) + "_b" +
                            std::to_string(batch) + "_" + label;
        report.AddStage(stage, run.rate_rps);
        if (run.rate_rps > best) best = run.rate_rps;
        if (batch == 32) {
          const bool uring = std::string(engine->name()) == "uring";
          if (fsyncs) {
            (uring ? uring_b32 : sync_b32) = run.rate_rps;
            // Durable batch-32 append latency is the headline latency.
            if (uring) {
              for (int64_t ns : run.batch_nanos) report.AddLatencyNanos(ns);
            }
          } else {
            (uring ? uring_b32_buf : sync_b32_buf) = run.rate_rps;
          }
        }
      }
    }
  }

  double copies = MeasureCopiesPerRecord(smoke ? 2'000 : 20'000, 2048);
  double sync_frac = MeasureStorageCopyFraction(
      storage::SyncIoEngine(), kPayloadBytes, smoke ? (4ull << 20) : (32ull << 20));
  report.SetThroughput(best);
  report.AddExtra("uring_available",
                  storage::IoUringAvailable() ? 1.0 : 0.0);
  report.AddExtra("record_bytes", static_cast<double>(kPayloadBytes));
  report.AddExtra("copies_per_record", copies);
  report.AddExtra("storage_copy_fraction_sync", sync_frac);
  if (storage::IoUringAvailable()) {
    double uring_frac = MeasureStorageCopyFraction(
        storage::UringIoEngine(), kPayloadBytes,
        smoke ? (4ull << 20) : (32ull << 20));
    report.AddExtra("storage_copy_fraction_uring", uring_frac);
    report.AddExtra("uring_vs_sync_batch32",
                    sync_b32 > 0 ? uring_b32 / sync_b32 : 0.0);
    report.AddExtra("uring_vs_sync_batch32_buffered",
                    sync_b32_buf > 0 ? uring_b32_buf / sync_b32_buf : 0.0);
  } else {
    report.AddExtra("uring_vs_sync_batch32", 0.0);
    report.AddExtra("uring_vs_sync_batch32_buffered", 0.0);
  }

  std::printf("\ncopies per record (net datapath): %.3f  (budget <= 1.2)\n",
              copies);
  std::printf("storage copy fraction, sync engine: %.3f\n", sync_frac);
  if (storage::IoUringAvailable()) {
    std::printf(
        "uring vs sync at batch 32, durable group commit: %.2fx\n",
        sync_b32 > 0 ? uring_b32 / sync_b32 : 0.0);
    std::printf("uring vs sync at batch 32, buffered only:     %.2fx\n",
                sync_b32_buf > 0 ? uring_b32_buf / sync_b32_buf : 0.0);
  }
  std::printf("\nExpected shape: on the durable legs the sync engine "
              "serializes flatten + write() + fdatasync() per batch while "
              "the uring engine submits one vectored write with a linked "
              "fsync and touches every byte one less time, so it pulls "
              "ahead as batch bytes grow; the buffered legs never reach "
              "the device and differ only by the flatten pass.\n");
  if (!report.Write()) return 1;
  return 0;
}
