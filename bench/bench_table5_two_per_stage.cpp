// Table 5 reproduction: TWO machines in EVERY pipeline stage.
//
// Paper shape: every stage scales — each machine achieves roughly the
// basic-deployment (Table 2) per-machine rate, so stage throughput doubles
// across the board.

#include <cstdio>
#include <numeric>

#include "bench_report.h"
#include "sim/chariots_pipeline.h"

int main() {
  using namespace chariots::sim;
  PipelineShape shape;
  shape.clients = 2;
  shape.batchers = 2;
  shape.filters = 2;
  shape.maintainers = 2;
  shape.stores = 2;
  ChariotsPipelineSim sim(shape);
  sim.RunToCount(chariots::bench::SmokeMode() ? 40'000 : 400'000);
  sim.PrintTable("=== Table 5: two machines per stage ===");
  std::printf("\nExpected shape: every machine near its Table-2 rate "
              "(~120-132K): the whole pipeline's throughput doubled.\n");

  chariots::bench::BenchReport report("table5_two_per_stage");
  for (const auto& row : sim.Results()) {
    double total = std::accumulate(row.machine_rates.begin(),
                                   row.machine_rates.end(), 0.0);
    report.AddStage(row.stage, total);
    if (row.stage == "Client") report.SetThroughput(total);
  }
  if (!report.Write()) return 1;
  return 0;
}
