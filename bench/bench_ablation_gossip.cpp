// Ablation: Head-of-the-Log gossip interval (paper §5.4). The gossip is
// fixed-size (one u64 per maintainer) and off the append path, so append
// throughput should be insensitive to the interval — but the HL (and thus
// gap-safe read latency) staleness grows with it.

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "flstore/client.h"
#include "flstore/service.h"
#include "net/inproc_transport.h"

namespace {

using namespace chariots;
using namespace chariots::flstore;

struct GossipResult {
  double append_rate;
  uint64_t hl_staleness;  // appended - HL at steady state
  uint64_t gossip_messages;
};

GossipResult RunWithGossipInterval(int64_t gossip_nanos) {
  net::InProcTransport transport;
  constexpr uint32_t kMaintainers = 3;
  ClusterInfo info;
  info.journal = EpochJournal(kMaintainers, 100);
  for (uint32_t i = 0; i < kMaintainers; ++i) {
    info.maintainers.push_back("m/" + std::to_string(i));
  }
  ControllerServer controller(&transport, "controller", info);
  (void)controller.Start();
  std::vector<std::unique_ptr<MaintainerServer>> servers;
  for (uint32_t i = 0; i < kMaintainers; ++i) {
    MaintainerOptions mo;
    mo.index = i;
    mo.journal = info.journal;
    mo.store.mode = storage::SyncMode::kMemoryOnly;
    MaintainerServer::Options so;
    so.node = info.maintainers[i];
    so.peers = info.maintainers;
    so.gossip_interval_nanos = gossip_nanos;
    servers.push_back(
        std::make_unique<MaintainerServer>(&transport, mo, so));
    (void)servers.back()->Start();
  }
  FLStoreClient client(&transport, "client", "controller");
  (void)client.Start();

  uint64_t before_msgs = transport.messages_delivered();
  auto start = std::chrono::steady_clock::now();
  constexpr int kAppends = 20'000;
  LogRecord rec;
  rec.body = std::string(64, 'g');
  for (int i = 0; i < kAppends; ++i) {
    (void)client.Append(rec);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;

  // HL staleness right after the last append (before gossip catches up).
  uint64_t hl = client.HeadOfLog().value_or(0);
  GossipResult result;
  result.append_rate =
      kAppends * 1e9 /
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  result.hl_staleness = kAppends > static_cast<int>(hl)
                            ? kAppends - hl
                            : 0;
  // Message overhead attributable to the run (appends are RPC pairs too;
  // this is total fabric traffic — gossip dominates the difference between
  // intervals).
  result.gossip_messages = transport.messages_delivered() - before_msgs -
                           2ull * kAppends;
  for (auto& s : servers) s->Stop();
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation: HL gossip interval (3 maintainers) ===\n");
  std::printf("%-16s %-24s %-22s %-18s\n", "Interval (ms)",
              "Append rate (rec/s)", "HL staleness (rec)",
              "Gossip msgs");
  std::vector<int64_t> intervals = {500'000ll, 2'000'000ll, 10'000'000ll,
                                    50'000'000ll};
  if (chariots::bench::SmokeMode()) intervals = {2'000'000ll};
  chariots::bench::BenchReport report("ablation_gossip");
  double best = 0;
  for (int64_t interval : intervals) {
    GossipResult r = RunWithGossipInterval(interval);
    std::printf("%-16.1f %-24.0f %-22llu %-18llu\n", interval / 1e6,
                r.append_rate,
                static_cast<unsigned long long>(r.hl_staleness),
                static_cast<unsigned long long>(r.gossip_messages));
    if (r.append_rate > best) best = r.append_rate;
    std::string label = "interval_ms_" + std::to_string(interval / 1'000'000);
    report.AddStage(label, r.append_rate);
    report.AddExtra("hl_staleness_" + label,
                    static_cast<double>(r.hl_staleness));
  }
  std::printf("\nExpected shape: append rate insensitive to the interval "
              "(gossip is fixed-size, off the data path); HL staleness "
              "grows with the interval.\n");
  report.SetThroughput(best);
  if (!report.Write()) return 1;
  return 0;
}
