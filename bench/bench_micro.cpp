// Micro-benchmarks (google-benchmark) for the hot paths under the paper's
// numbers: record codecs, CRC, storage append, striping math, index lookup,
// and the queue admission step.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_report.h"
#include "chariots/queue.h"
#include "chariots/record.h"
#include "common/codec.h"
#include "common/crc32c.h"
#include "common/flight_recorder.h"
#include "flstore/indexer.h"
#include "flstore/maintainer.h"
#include "flstore/striping.h"
#include "storage/log_store.h"

namespace {

using namespace chariots;

void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(512)->Arg(4096);

void BM_Crc32cPortable(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::ExtendPortable(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32cPortable)->Arg(64)->Arg(512)->Arg(4096);

void BM_GeoRecordEncode(benchmark::State& state) {
  geo::GeoRecord record;
  record.host = 2;
  record.toid = 12345;
  record.deps = {10, 20, 30};
  record.body.assign(512, 'b');
  record.tags = {{"key", "value"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::EncodeGeoRecord(record));
  }
}
BENCHMARK(BM_GeoRecordEncode);

void BM_GeoRecordDecode(benchmark::State& state) {
  geo::GeoRecord record;
  record.body.assign(512, 'b');
  record.deps = {1, 2, 3};
  std::string encoded = geo::EncodeGeoRecord(record);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::DecodeGeoRecord(encoded));
  }
}
BENCHMARK(BM_GeoRecordDecode);

void BM_LogStoreAppendMemory(benchmark::State& state) {
  storage::LogStoreOptions options;
  options.mode = storage::SyncMode::kMemoryOnly;
  storage::LogStore store(options);
  (void)store.Open();
  std::string payload(512, 'p');
  uint64_t lid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Append(lid++, payload));
    // Bound resident data so the benchmark measures the append path, not
    // allocator pressure from an ever-growing store.
    if ((lid & 0xffff) == 0) (void)store.TruncateBelow(lid);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogStoreAppendMemory);

void BM_LogStoreAppendDisk(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "chariots_bench_store";
  std::filesystem::remove_all(dir);
  storage::LogStoreOptions options;
  options.dir = dir.string();
  options.mode = storage::SyncMode::kBuffered;
  storage::LogStore store(options);
  (void)store.Open();
  std::string payload(512, 'p');
  uint64_t lid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Append(lid++, payload));
    if ((lid & 0xffff) == 0) (void)store.TruncateBelow(lid);
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LogStoreAppendDisk);

void BM_MaintainerPostAssignAppend(benchmark::State& state) {
  flstore::MaintainerOptions options;
  options.index = 0;
  options.journal = flstore::EpochJournal(4, 1000);
  options.store.mode = storage::SyncMode::kMemoryOnly;
  flstore::LogMaintainer maintainer(options);
  (void)maintainer.Open();
  flstore::LogRecord record;
  record.body.assign(512, 'r');
  uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(maintainer.Append(record));
    if ((++n & 0xffff) == 0) {
      (void)maintainer.TruncateBelow(flstore::kInvalidLId - 1);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaintainerPostAssignAppend);

void BM_LogStoreAppendBatchDisk(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "chariots_bench_batch";
  std::filesystem::remove_all(dir);
  storage::LogStoreOptions options;
  options.dir = dir.string();
  options.mode = storage::SyncMode::kBuffered;
  storage::LogStore store(options);
  (void)store.Open();
  std::string payload(512, 'p');
  const size_t batch = static_cast<size_t>(state.range(0));
  std::vector<storage::AppendEntry> entries(batch);
  uint64_t lid = 0;
  // No periodic TruncateBelow here: dropping a full segment appends one
  // tombstone frame per dropped record, and that storm (not the append
  // path) would dominate the longer runs. Arg(1) is the per-record baseline
  // under the identical harness; /tmp growth is bounded by run time and the
  // directory is removed at the end.
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) entries[i] = {lid++, payload};
    benchmark::DoNotOptimize(store.AppendBatch(entries));
  }
  state.SetItemsProcessed(state.iterations() * batch);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LogStoreAppendBatchDisk)->Arg(1)->Arg(32)->Arg(256);

void BM_MaintainerAppendBatch(benchmark::State& state) {
  flstore::MaintainerOptions options;
  options.index = 0;
  options.journal = flstore::EpochJournal(4, 1000);
  options.store.mode = storage::SyncMode::kMemoryOnly;
  flstore::LogMaintainer maintainer(options);
  (void)maintainer.Open();
  flstore::LogRecord record;
  record.body.assign(512, 'r');
  const size_t batch = static_cast<size_t>(state.range(0));
  std::vector<flstore::LogRecord> records(batch, record);
  uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(maintainer.AppendBatch(records));
    n += batch;
    if (n >= 0x10000) {
      n = 0;
      (void)maintainer.TruncateBelow(flstore::kInvalidLId - 1);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MaintainerAppendBatch)->Arg(1)->Arg(32)->Arg(256);

void BM_StripingMaintainerFor(benchmark::State& state) {
  flstore::EpochJournal journal(5, 1000);
  (void)journal.AddEpoch({1'000'000, 6, 1000});
  uint64_t lid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal.MaintainerFor(lid));
    lid += 997;
  }
}
BENCHMARK(BM_StripingMaintainerFor);

void BM_IndexerLookup(benchmark::State& state) {
  flstore::Indexer indexer;
  for (uint64_t lid = 0; lid < 100'000; ++lid) {
    indexer.Add("key" + std::to_string(lid % 1000), "v", lid);
  }
  flstore::IndexQuery query;
  query.key = "key500";
  query.limit = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(indexer.Lookup(query));
  }
}
BENCHMARK(BM_IndexerLookup);

void BM_FlightRecorderRecord(benchmark::State& state) {
  // One structured event into the per-thread seqlock ring — the cost every
  // instrumented hot-path call site pays. Compiles to nothing under
  // -DCHARIOTS_DISABLE_FLIGHTREC (tools/check_flightrec_overhead.sh
  // compares the two builds).
  uint64_t n = 0;
  for (auto _ : state) {
    flightrec::Record(flightrec::EventType::kAppend, 0, 0, n++, 512);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderRecord);

void BM_QueueTokenAdmission(benchmark::State& state) {
  flstore::EpochJournal journal(4, 1000);
  for (auto _ : state) {
    state.PauseTiming();
    geo::Token token(1);
    geo::GeoQueue queue(0, &journal, [](uint32_t, geo::GeoRecord) {});
    for (geo::TOId t = 1; t <= 1000; ++t) {
      geo::GeoRecord r;
      r.host = 0;
      r.toid = t;
      queue.Enqueue(std::move(r));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(queue.ProcessToken(&token));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_QueueTokenAdmission);

// Console output stays the familiar google-benchmark table; this reporter
// additionally folds every iteration run into the uniform BENCH_micro.json
// (stage rate = items/s when the benchmark sets it, else iterations/s).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(chariots::bench::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      double rate = 0;
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        rate = it->second.value;
      } else if (run.real_accumulated_time > 0) {
        rate = static_cast<double>(run.iterations) /
               run.real_accumulated_time;
      }
      report_->AddStage(run.benchmark_name(), rate);
      if (run.iterations > 0 && run.real_accumulated_time > 0) {
        report_->AddExtra("ns_per_op_" + run.benchmark_name(),
                          run.real_accumulated_time * 1e9 /
                              static_cast<double>(run.iterations));
      }
      best_rate_ = std::max(best_rate_, rate);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  double best_rate() const { return best_rate_; }

 private:
  chariots::bench::BenchReport* report_;
  double best_rate_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.01";
  if (chariots::bench::SmokeMode()) args.push_back(min_time.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());

  chariots::bench::BenchReport report("micro");
  JsonCaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  report.SetThroughput(reporter.best_rate());
  if (!report.Write()) return 1;
  return 0;
}
