// Figure 9 reproduction: per-second throughput timeseries of the Table-4
// deployment (2 clients, 2 batchers, 1 filter, 1 maintainer, 1 store) over
// a fixed record count.
//
// Paper shape: the clients and batchers finish early (they run at ~2x the
// filter's rate); the maintainer/queue keeps draining long after; and right
// at the end the downstream rate jumps briefly, because once the batchers
// stop transmitting, the filter's network interface has spare capacity to
// push its backlog to the later stages.

#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_report.h"
#include "sim/chariots_pipeline.h"

int main() {
  using namespace chariots::sim;
  PipelineShape shape;
  shape.clients = 2;
  shape.batchers = 2;
  ChariotsPipelineSim sim(shape);
  sim.RunToCount(chariots::bench::SmokeMode() ? 40'000 : 400'000);

  std::printf("=== Figure 9: throughput timeseries (2 clients, 2 batchers, "
              "1 of each later stage) ===\n");
  std::vector<std::vector<double>> series;
  std::vector<std::string> names;
  names.push_back("Client 1");
  series.push_back(sim.Timeseries("Client", 0));
  names.push_back("Batcher 1");
  series.push_back(sim.Timeseries("Batcher", 0));
  names.push_back("Filter");
  series.push_back(sim.Timeseries("Filter", 0));
  names.push_back("Maintainer");
  series.push_back(sim.Timeseries("Maintainer", 0));

  size_t max_len = 0;
  for (const auto& s : series) max_len = std::max(max_len, s.size());
  std::printf("%-8s", "t (s)");
  for (const auto& n : names) std::printf("%-14s", n.c_str());
  std::printf("\n");
  for (size_t t = 0; t < max_len; ++t) {
    std::printf("%-8zu", t);
    for (const auto& s : series) {
      if (t < s.size()) {
        std::printf("%-14.0f", s[t]);
      } else {
        std::printf("%-14s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: clients/batchers finish first at ~126K/s; "
              "the filter and later stages last roughly twice as long at "
              "~120K/s and spike briefly once the batchers go idle.\n");

  chariots::bench::BenchReport report("fig9_timeseries");
  for (const auto& row : sim.Results()) {
    double total = std::accumulate(row.machine_rates.begin(),
                                   row.machine_rates.end(), 0.0);
    report.AddStage(row.stage, total);
    if (row.stage == "Client") report.SetThroughput(total);
  }
  report.AddExtra("timeseries_seconds", static_cast<double>(max_len));
  if (!report.Write()) return 1;
  return 0;
}
