// Replicated-read scaling (ISSUE 7): aggregate read throughput of one
// FLStore stripe as the replication factor grows, under the Hermes-style
// protocol where *every* replica serves linearizable reads of validated
// positions (DESIGN.md §12) — versus the primary-only stripe where the
// coordinator is the sole read server.
//
// What replication multiplies in the paper's multi-datacenter setting is
// *serving bandwidth*: a stripe's read capacity is NIC-bound, and each
// replica added is another NIC answering reads. The bench models that with
// a finite per-node outbound link (InProcTransport bandwidth shaping) —
// CPU parallelism is not observable on a small CI box, NIC capacity is.
// The client read-through cache is disabled throughout: server capacity is
// what is being measured.
//
// Extras reported (BENCH_replicated_reads.json):
//   rf3_vs_rf1            aggregate-read speedup at the top reader count
//                         (acceptance bar: >= 2x)
//   rf3_share_member<i>   fraction of RF=3 reads served by each member
//   failover_mttr_ms      append availability gap across a coordinator
//                         kill, repaired by the suspect fast path

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/executor.h"
#include "flstore/client.h"
#include "flstore/replica_group.h"
#include "flstore/service.h"
#include "net/inproc_transport.h"

namespace {

using namespace chariots;
using namespace chariots::flstore;

/// Per-member outbound NIC rate. Read responses serialize onto this link,
/// so one node serves at most kNicBytesPerSec of payload per second — the
/// resource a replica set multiplies. Sanitizer builds model a slower NIC:
/// the instrumented CPU can't push 3x the full rate, and the point of the
/// bench is the NIC staying the bottleneck, not the sanitizer.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kNicBytesPerSec = 1.0 * 1024 * 1024;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kNicBytesPerSec = 1.0 * 1024 * 1024;
#else
constexpr double kNicBytesPerSec = 4.0 * 1024 * 1024;
#endif
#else
constexpr double kNicBytesPerSec = 4.0 * 1024 * 1024;
#endif
/// Hot-record payload size; at 1 KiB per response the NIC caps one node at
/// roughly 4k reads/s (1k/s sanitized), far below what the CPU could push
/// uncapped.
constexpr size_t kPayloadBytes = 1024;

/// Deterministic per-thread mixer (benches avoid rand() for repeatability).
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

/// One replicated stripe: a coordinator plus rf-1 replicas, a controller,
/// memory store, heartbeats wired (the MTTR drill needs the suspect path),
/// and an NIC-rate cap on every member's outbound link.
struct Cluster {
  Cluster(int rf, Executor* executor) : transport(nullptr, executor) {
    const net::NodeId coordinator = "dc0/maintainer/0";
    std::vector<net::NodeId> replicas;
    for (int i = 1; i < rf; ++i) {
      replicas.push_back("dc0/replica/" + std::to_string(i));
    }
    members.push_back(coordinator);
    members.insert(members.end(), replicas.begin(), replicas.end());
    for (const net::NodeId& member : members) {
      net::LinkOptions link;
      link.bandwidth_bytes_per_sec = kNicBytesPerSec;
      transport.SetLink(member, "", link);
    }

    ClusterInfo info;
    info.journal = EpochJournal(1, 64);
    info.maintainers = {coordinator};
    info.replicas = {replicas};
    info.fence_epochs = {1};
    ControllerServerOptions cso;
    cso.executor = executor;
    controller = std::make_unique<ControllerServer>(
        &transport, "dc0/controller", info, cso);
    if (!controller->Start().ok()) std::abort();

    auto server_opts = [&](const net::NodeId& node, ReplicaRole role) {
      MaintainerServer::Options so;
      so.node = node;
      so.peers = {coordinator};
      so.executor = executor;
      so.replica.role = role;
      so.replica.epoch = 1;
      if (role == ReplicaRole::kCoordinator) so.replica.peers = replicas;
      so.controller = "dc0/controller";
      return so;
    };
    MaintainerOptions mo;
    mo.index = 0;
    mo.journal = EpochJournal(1, 64);
    mo.store.mode = storage::SyncMode::kMemoryOnly;
    for (const net::NodeId& node : replicas) {
      servers.push_back(std::make_unique<MaintainerServer>(
          &transport, mo, server_opts(node, ReplicaRole::kReplica)));
      if (!servers.back()->Start().ok()) std::abort();
    }
    // Coordinator last: its first INV must find the replicas listening.
    servers.insert(servers.begin(),
                   std::make_unique<MaintainerServer>(
                       &transport, mo,
                       server_opts(coordinator,
                                   rf > 1 ? ReplicaRole::kCoordinator
                                          : ReplicaRole::kSolo)));
    if (!servers.front()->Start().ok()) std::abort();
  }

  ~Cluster() {
    for (auto& server : servers) server->Stop();
    controller->Stop();
  }

  std::unique_ptr<FLStoreClient> NewClient(const std::string& name,
                                           ClientOptions options = {}) {
    options.read_cache_bytes = 0;  // measure server capacity, not the cache
    auto client = std::make_unique<FLStoreClient>(
        &transport, "dc0/client/" + name, "dc0/controller", options);
    if (!client->Start().ok()) std::abort();
    return client;
  }

  net::InProcTransport transport;
  std::vector<net::NodeId> members;  ///< coordinator first, then replicas
  std::unique_ptr<ControllerServer> controller;
  std::vector<std::unique_ptr<MaintainerServer>> servers;  ///< same order
};

struct SweepResult {
  double reads_per_sec = 0;
  /// Successful remote reads per member, summed over the reader clients.
  std::map<net::NodeId, uint64_t> by_node;
};

/// `readers` closed-loop threads, each doing `ops` uniform reads of the
/// preloaded hot set through its own (cache-less) client session.
SweepResult RunReaders(Cluster& cluster, const std::vector<LId>& hot,
                       int readers, uint64_t ops, const std::string& tag) {
  std::vector<std::unique_ptr<FLStoreClient>> clients;
  for (int t = 0; t < readers; ++t) {
    clients.push_back(cluster.NewClient(tag + std::to_string(t)));
  }
  std::atomic<uint64_t> ok{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      FLStoreClient* client = clients[t].get();
      uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
      for (uint64_t i = 0; i < ops; ++i) {
        rng = Mix(rng + i);
        if (client->Read(hot[rng % hot.size()]).ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  SweepResult out;
  if (secs > 0) out.reads_per_sec = static_cast<double>(ok.load()) / secs;
  for (auto& client : clients) {
    for (const auto& [node, count] : client->reads_by_node()) {
      out.by_node[node] += count;
    }
  }
  return out;
}

/// Kills the coordinator and times the append availability gap: the next
/// append's first attempt fails fast, the synchronous suspect report runs
/// promotion + replay inside the call, and the retry lands on the promoted
/// replica. Returns the gap in milliseconds.
double MeasureFailoverMttr(Cluster& cluster) {
  ClientOptions copts;
  copts.retry.attempt_timeout = std::chrono::milliseconds(200);
  copts.failover_attempts = 30;
  auto client = cluster.NewClient("mttr", copts);
  LogRecord rec;
  rec.body = "pre-kill";
  if (!client->Append(rec).ok()) std::abort();

  auto killed_at = std::chrono::steady_clock::now();
  cluster.servers.front()->Stop();
  rec.body = "post-kill";
  if (!client->Append(rec).ok()) std::abort();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - killed_at)
      .count();
}

}  // namespace

int main() {
  const bool smoke = chariots::bench::SmokeMode();
  const uint64_t kHotRecords = smoke ? 256 : 1024;
  const uint64_t kOpsPerThread = smoke ? 2'000 : 5'000;
  const std::vector<int> kReaderCounts =
      smoke ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 8};
  const std::vector<int> kReplicationFactors = {1, 2, 3};

  // The transport's token buckets hold one second of burst; blocked strands
  // need real workers, so the whole topology runs on a dedicated pool wide
  // enough that every member can be mid-serialization concurrently.
  Executor exec({.num_threads = 8, .name = "repl-bench"});

  chariots::bench::BenchReport report("replicated_reads");
  std::printf("=== Replicated reads: aggregate throughput vs replication "
              "factor (every replica serves; %.0f MB/s per-node NIC) ===\n",
              kNicBytesPerSec / (1024 * 1024));
  std::printf("%-4s %-8s %-20s %s\n", "rf", "readers", "reads/s",
              "per-member share");

  // rf -> readers -> result, so the speedup and shares come off the same
  // sweep data that was printed.
  std::map<int, std::map<int, SweepResult>> results;
  double peak = 0;
  for (int rf : kReplicationFactors) {
    Cluster cluster(rf, &exec);
    auto loader = cluster.NewClient("loader");
    std::vector<LId> hot;
    hot.reserve(kHotRecords);
    for (uint64_t i = 0; i < kHotRecords; ++i) {
      LogRecord rec;
      rec.body = std::string(kPayloadBytes, 'a' + (i % 26));
      auto lid = loader->Append(rec);
      if (!lid.ok()) std::abort();
      hot.push_back(*lid);
    }
    // Warm past the token-bucket burst (one second of NIC tokens per
    // member): the timed region below then measures steady-state NIC-bound
    // serving, not the free burst.
    {
      const uint64_t warm_reads = static_cast<uint64_t>(
          1.5 * kNicBytesPerSec * rf / kPayloadBytes);
      (void)RunReaders(cluster, hot, /*readers=*/4, warm_reads / 4,
                       "warm" + std::to_string(rf) + "x");
    }
    for (int readers : kReaderCounts) {
      SweepResult r = RunReaders(
          cluster, hot, readers, kOpsPerThread,
          "rd" + std::to_string(rf) + "x" + std::to_string(readers) + "t");
      results[rf][readers] = r;
      peak = std::max(peak, r.reads_per_sec);
      std::string shares;
      uint64_t total = 0;
      for (const auto& [node, count] : r.by_node) total += count;
      for (const net::NodeId& node : cluster.members) {
        double share = total > 0 ? 100.0 * static_cast<double>(
                                               r.by_node[node]) /
                                       static_cast<double>(total)
                                 : 0;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%s%.0f%%", shares.empty() ? "" : "/",
                      share);
        shares += buf;
      }
      std::printf("%-4d %-8d %-20.0f %s\n", rf, readers, r.reads_per_sec,
                  shares.c_str());
      report.AddStage("rf" + std::to_string(rf) + "/readers" +
                          std::to_string(readers),
                      r.reads_per_sec);
    }
  }

  // Acceptance metric: RF=3 vs RF=1 aggregate reads at the top reader
  // count — three NICs serving instead of one.
  const int top_readers = kReaderCounts.back();
  const SweepResult& rf1 = results[1][top_readers];
  const SweepResult& rf3 = results[3][top_readers];
  double speedup = rf1.reads_per_sec > 0
                       ? rf3.reads_per_sec / rf1.reads_per_sec
                       : 0;
  std::printf("\nrf3 vs rf1 aggregate reads (%d readers): %.2fx "
              "(acceptance bar: 2x)\n",
              top_readers, speedup);
  report.AddExtra("rf3_vs_rf1", speedup);
  {
    uint64_t total = 0;
    for (const auto& [node, count] : rf3.by_node) total += count;
    int member = 0;
    for (const auto& [node, count] : rf3.by_node) {
      report.AddExtra("rf3_share_member" + std::to_string(member++),
                      total > 0 ? static_cast<double>(count) /
                                      static_cast<double>(total)
                                : 0);
    }
  }

  // Failover MTTR drill: kill the RF=2 coordinator mid-stream and time the
  // append availability gap (the suspect fast path, not the lease).
  double mttr_ms = 0;
  {
    Cluster cluster(2, &exec);
    mttr_ms = MeasureFailoverMttr(cluster);
    std::printf("failover append availability gap: %.2f ms "
                "(lease baseline ~86 ms)\n",
                mttr_ms);
  }
  report.AddExtra("failover_mttr_ms", mttr_ms);

  report.SetThroughput(peak);
  if (!report.Write()) return 1;
  return 0;
}
