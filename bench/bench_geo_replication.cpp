// Extension bench: geo-replication throughput and convergence as the
// replication group grows from 2 to 5 datacenters. Each datacenter appends
// a fixed number of records concurrently; we measure the cumulative rate
// at which records become durable at their host, the time until every
// datacenter has incorporated everything (convergence lag), and the total
// log size per replica.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "chariots/client.h"
#include "chariots/datacenter.h"
#include "chariots/fabric.h"
#include "net/inproc_transport.h"

namespace {

using namespace chariots;
using namespace chariots::geo;

double RunGroup(uint32_t n, int64_t wan_latency_nanos,
                chariots::bench::BenchReport* report) {
  net::InProcTransport transport;
  net::LinkOptions wan;
  wan.latency_nanos = wan_latency_nanos;
  transport.SetLink("geo/", "geo/", wan);
  TransportFabric fabric(&transport);

  std::vector<std::unique_ptr<Datacenter>> dcs;
  for (uint32_t d = 0; d < n; ++d) {
    ChariotsConfig config;
    config.dc_id = d;
    config.num_datacenters = n;
    config.batcher_flush_nanos = 200'000;
    dcs.push_back(std::make_unique<Datacenter>(config, &fabric));
    (void)dcs.back()->Start();
  }

  const int kAppendsPerDc = chariots::bench::SmokeMode() ? 500 : 5'000;
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  for (uint32_t d = 0; d < n; ++d) {
    writers.emplace_back([&, d] {
      ChariotsClient client(dcs[d].get());
      for (int i = 0; i + 1 < kAppendsPerDc; ++i) {
        client.AppendAsync(std::string(128, 'x'));
      }
      (void)client.Append(std::string(128, 'x'));  // final: wait durable
    });
  }
  for (auto& t : writers) t.join();
  auto append_done = std::chrono::steady_clock::now();

  // Convergence: every DC holds every other DC's records.
  bool converged = true;
  for (auto& dc : dcs) {
    for (uint32_t d = 0; d < n; ++d) {
      if (!dc->WaitForToid(d, kAppendsPerDc, 60'000'000'000)) {
        converged = false;
      }
    }
  }
  auto converge_done = std::chrono::steady_clock::now();

  double append_secs =
      std::chrono::duration<double>(append_done - start).count();
  double converge_lag =
      std::chrono::duration<double>(converge_done - append_done).count();
  double local_rate = n * kAppendsPerDc / append_secs;
  std::printf("%-6u %-26.0f %-22.3f %-18llu %s\n", n, local_rate,
              converge_lag,
              static_cast<unsigned long long>(dcs[0]->HeadLid()),
              converged ? "yes" : "NO");
  report->AddStage("dcs_" + std::to_string(n), local_rate);
  report->AddExtra("converge_lag_s_dcs_" + std::to_string(n), converge_lag);
  for (auto& dc : dcs) dc->Stop();
  return local_rate;
}

}  // namespace

int main() {
  std::printf("=== Geo-replication: scaling the replication group "
              "(5K appends per DC, 128 B records, 5 ms WAN) ===\n");
  std::printf("%-6s %-26s %-22s %-18s %s\n", "DCs",
              "Local append rate (rec/s)", "Convergence lag (s)",
              "Log size/replica", "Converged");
  std::vector<uint32_t> groups = {2u, 3u, 4u, 5u};
  if (chariots::bench::SmokeMode()) groups = {2u};
  chariots::bench::BenchReport report("geo_replication");
  double best = 0;
  for (uint32_t n : groups) {
    best = std::max(best, RunGroup(n, 5'000'000, &report));
  }
  std::printf("\nExpected shape: appends stay available and local at every "
              "datacenter; every replica converges to the complete n*5K "
              "log. Absolute rates here are host-bound (this harness runs "
              "n full pipelines on one machine), not a scalability claim — "
              "see Figure 8 for the scaling experiment.\n");
  report.SetThroughput(best);
  if (!report.Write()) return 1;
  return 0;
}
