// Figure 8 reproduction: cumulative FLStore append throughput while
// increasing the number of log maintainers. Three series as in the paper:
//   * private cloud (closed-loop clients, ~131K/maintainer machines)
//   * public cloud, target 125K appends/s per maintainer (below the knee)
//   * public cloud, target 250K appends/s per maintainer (overloaded)
//
// Paper shape: near-linear scaling for all three (99.3% of perfect at 10
// maintainers on the private cloud).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "sim/flstore_load.h"

namespace {

struct Series {
  const char* name;
  chariots::sim::MachineModel model;
  double target;
};

}  // namespace

int main() {
  using namespace chariots::sim;

  const std::vector<Series> series = {
      {"private cloud (closed loop)", PrivateCloudMachine(), 0},
      {"public cloud target=125K", PublicCloudMachine(), 125e3},
      {"public cloud target=250K", PublicCloudMachine(), 250e3},
  };

  std::printf("=== Figure 8: FLStore append throughput vs number of "
              "maintainers ===\n");
  const uint32_t max_maintainers = chariots::bench::SmokeMode() ? 3 : 10;
  chariots::bench::BenchReport report("fig8_flstore_scaling");
  double peak = 0;
  for (const Series& s : series) {
    std::printf("\n--- %s ---\n", s.name);
    std::printf("%-13s %-22s %-20s %-10s\n", "Maintainers",
                "Throughput (appends/s)", "Per maintainer", "Scaling");
    double base = 0;
    double last = 0;
    for (uint32_t m = 1; m <= max_maintainers; ++m) {
      FLStoreLoadOptions options;
      options.num_maintainers = m;
      options.maintainer_model = s.model;
      options.target_per_maintainer = s.target;
      FLStoreLoadResult result = RunFLStoreLoad(options);
      if (m == 1) base = result.total_rate;
      double scaling = base > 0 ? result.total_rate / (base * m) : 0;
      std::printf("%-13u %-22.0f %-20.0f %.1f%%\n", m, result.total_rate,
                  result.total_rate / m, scaling * 100);
      last = result.total_rate;
    }
    peak = std::max(peak, last);
    report.AddStage(s.name, last);
  }
  std::printf("\nExpected shape: throughput grows near-linearly with "
              "maintainers in every series (post-assignment has no "
              "cross-maintainer dependency).\n");
  report.SetThroughput(peak);
  if (!report.Write()) return 1;
  return 0;
}
