#ifndef CHARIOTS_BENCH_BENCH_REPORT_H_
#define CHARIOTS_BENCH_BENCH_REPORT_H_

// Uniform machine-readable bench output: every bench binary writes a
// BENCH_<name>.json next to its human-readable stdout, so CI (see
// tools/run_bench_smoke.sh) can validate and trend results without parsing
// prose. Schema (schema_version 1):
//
//   {
//     "bench": "<name>",
//     "schema_version": 1,
//     "throughput_rps": <double>,
//     "latency_ns": {"p50": <int>, "p99": <int>, "p999": <int>},
//     "latency_samples": <int>,
//     "stages": [{"name": "<stage>", "rate_rps": <double>}, ...],
//     "extra": {"<key>": <double>, ...}
//   }
//
// Latency fields are zero when a bench measures only throughput
// (latency_samples says how trustworthy they are). The output directory is
// $CHARIOTS_BENCH_DIR when set, else the working directory.
//
// Benches also honor $CHARIOTS_BENCH_SMOKE=1 (see SmokeMode()) by shrinking
// sweeps/durations to a few seconds so the smoke script can exercise every
// binary end to end.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/executor.h"

namespace chariots::bench {

/// True when the bench should run a shrunk (seconds, not minutes) workload.
inline bool SmokeMode() {
  const char* v = std::getenv("CHARIOTS_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void SetThroughput(double rps) { throughput_rps_ = rps; }

  /// One end-to-end latency observation, in nanoseconds.
  void AddLatencyNanos(int64_t nanos) { samples_.push_back(nanos); }

  void AddStage(std::string stage, double rate_rps) {
    stages_.emplace_back(std::move(stage), rate_rps);
  }

  void AddExtra(std::string key, double value) {
    extra_.emplace_back(std::move(key), value);
  }

  /// Writes BENCH_<name>.json. Returns false (with a message on stderr) on
  /// I/O failure; benches treat that as a hard error so CI notices.
  bool Write() {
    std::string path = OutputPath();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench report: cannot open %s\n", path.c_str());
      return false;
    }
    std::string json = Render();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    int closed = std::fclose(f);
    if (written != json.size() || closed != 0) {
      std::fprintf(stderr, "bench report: short write to %s\n", path.c_str());
      return false;
    }
    std::printf("bench report: %s\n", path.c_str());
    return true;
  }

  std::string OutputPath() const {
    const char* dir = std::getenv("CHARIOTS_BENCH_DIR");
    std::string prefix = (dir != nullptr && dir[0] != '\0')
                             ? std::string(dir) + "/"
                             : std::string();
    return prefix + "BENCH_" + name_ + ".json";
  }

  std::string Render() {
    // Every report carries the runtime thread census so the smoke script
    // (and trend tooling) can flag thread-budget regressions uniformly.
    // The peak survives teardown, so it is meaningful even when the bench
    // writes its report after stopping the topology.
    bool has_census = false;
    for (const auto& [key, _] : extra_) has_census |= key == "runtime_threads";
    if (!has_census) {
      extra_.emplace_back("runtime_threads",
                          static_cast<double>(RuntimeThreadCount()));
      extra_.emplace_back("runtime_threads_peak",
                          static_cast<double>(RuntimeThreadPeak()));
    }
    int64_t p50 = 0, p99 = 0, p999 = 0;
    if (!samples_.empty()) {
      std::sort(samples_.begin(), samples_.end());
      p50 = Percentile(0.50);
      p99 = Percentile(0.99);
      p999 = Percentile(0.999);
      // Fuller quantile spread in extras (regression tooling wants the
      // middle of the distribution, not just the canonical three).
      bool has_quantiles = false;
      for (const auto& [key, _] : extra_) {
        has_quantiles |= key == "latency_p90_ns";
      }
      if (!has_quantiles) {
        extra_.emplace_back("latency_p10_ns",
                            static_cast<double>(Percentile(0.10)));
        extra_.emplace_back("latency_p90_ns",
                            static_cast<double>(Percentile(0.90)));
        double sum = 0;
        for (int64_t s : samples_) sum += static_cast<double>(s);
        extra_.emplace_back("latency_mean_ns",
                            sum / static_cast<double>(samples_.size()));
      }
    }
    std::string out = "{\n";
    out += "  \"bench\": \"" + name_ + "\",\n";
    out += "  \"schema_version\": 1,\n";
    out += "  \"throughput_rps\": " + Num(throughput_rps_) + ",\n";
    out += "  \"latency_ns\": {\"p50\": " + std::to_string(p50) +
           ", \"p99\": " + std::to_string(p99) +
           ", \"p999\": " + std::to_string(p999) + "},\n";
    out += "  \"latency_samples\": " + std::to_string(samples_.size()) +
           ",\n";
    out += "  \"stages\": [";
    for (size_t i = 0; i < stages_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"name\": \"" + stages_[i].first +
             "\", \"rate_rps\": " + Num(stages_[i].second) + "}";
    }
    out += "],\n";
    out += "  \"extra\": {";
    for (size_t i = 0; i < extra_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + extra_[i].first + "\": " + Num(extra_[i].second);
    }
    out += "}\n}\n";
    return out;
  }

 private:
  int64_t Percentile(double q) const {
    size_t rank = static_cast<size_t>(q * (samples_.size() - 1));
    return samples_[rank];
  }

  // JSON has no NaN/inf literals; a bench that divides by a zero elapsed
  // time must not produce an unparseable report.
  static std::string Num(double v) {
    if (!std::isfinite(v)) return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::string name_;
  double throughput_rps_ = 0;
  std::vector<int64_t> samples_;
  std::vector<std::pair<std::string, double>> stages_;
  std::vector<std::pair<std::string, double>> extra_;
};

}  // namespace chariots::bench

#endif  // CHARIOTS_BENCH_BENCH_REPORT_H_
