// Live elasticity (paper §6.3): grow every pipeline stage of a running
// datacenter — batchers and queues immediately, filters via future
// reassignment, log maintainers via a future striping epoch — while a
// writer keeps appending. The log stays gap-free and exactly-once
// throughout.
//
//   ./build/examples/elastic_scaling

#include <atomic>
#include <cstdio>
#include <thread>

#include "chariots/client.h"
#include "chariots/datacenter.h"
#include "chariots/fabric.h"

using namespace chariots;
using namespace chariots::geo;

int main() {
  DirectFabric fabric;
  ChariotsConfig config;
  config.dc_id = 0;
  config.num_datacenters = 1;
  config.batcher_flush_nanos = 200'000;
  Datacenter dc(config, &fabric);
  if (!dc.Start().ok()) return 1;

  std::atomic<bool> stop{false};
  std::atomic<int> appended{0};
  std::thread writer([&] {
    ChariotsClient client(&dc);
    while (!stop.load()) {
      if (client.Append("payload").ok()) ++appended;
    }
  });

  auto report = [&](const char* what) {
    std::printf("%-44s batchers=%zu queues=%zu filters=%zu appended=%d "
                "head=%llu\n",
                what, dc.num_batchers(), dc.num_queues(), dc.num_filters(),
                appended.load(),
                static_cast<unsigned long long>(dc.HeadLid()));
  };

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  report("initial deployment (1 of each stage):");

  // Completely independent stages grow with zero coordination.
  (void)dc.AddBatcher();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  report("after AddBatcher():");

  // A new queue joins the token circulation immediately.
  (void)dc.AddQueue();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  report("after AddQueue():");

  // Filters hand over championship at a FUTURE TOId, so in-flight records
  // keep flowing to the old champion while batchers learn the new map.
  TOId cut = dc.max_local_toid() + 2000;
  (void)dc.SplitFilterChampionship(0, cut, {0, 1});
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  report("after filter split (effective at future TOId):");

  stop.store(true);
  writer.join();

  // Verify: the whole log is the exact TOId sequence 1..N — elasticity
  // never duplicated, dropped, or reordered anything.
  bool ok = dc.WaitForToid(0, appended.load(), 5'000'000'000);
  auto log = dc.ReadRange(0, appended.load() + 10);
  bool gap_free = ok && log.size() == static_cast<size_t>(appended.load());
  for (size_t i = 0; gap_free && i < log.size(); ++i) {
    gap_free = log[i].toid == i + 1;
  }
  report("final:");
  std::printf("log verified gap-free and exactly-once: %s\n",
              gap_free ? "yes" : "NO");
  dc.Stop();
  return gap_free ? 0 : 1;
}
