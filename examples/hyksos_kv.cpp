// Hyksos (paper §4.1): a causally consistent geo-replicated key-value
// store built on the Chariots log, reenacting the paper's Figure 2
// scenario: concurrent puts at two datacenters, gets at both, and a get
// transaction returning a consistent snapshot.
//
//   ./build/examples/hyksos_kv

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "apps/hyksos.h"
#include "chariots/fabric.h"
#include "net/inproc_transport.h"

using namespace chariots;
using namespace chariots::geo;
using namespace chariots::apps;

int main() {
  // Two datacenters, A and B, 10 ms apart.
  net::InProcTransport transport;
  net::LinkOptions wan;
  wan.latency_nanos = 10'000'000;
  transport.SetLink("geo/", "geo/", wan);
  TransportFabric fabric(&transport);

  std::vector<std::unique_ptr<Datacenter>> dcs;
  for (uint32_t d = 0; d < 2; ++d) {
    ChariotsConfig config;
    config.dc_id = d;
    config.num_datacenters = 2;
    config.batcher_flush_nanos = 200'000;
    dcs.push_back(std::make_unique<Datacenter>(config, &fabric));
    if (!dcs.back()->Start().ok()) return 1;
  }
  Hyksos at_a(dcs[0].get());
  Hyksos at_b(dcs[1].get());

  // Time 1 (Figure 2): concurrent writers at both datacenters.
  at_a.Put("x", "30");  // A writes x=30 ...
  at_b.Put("x", "10");  // ... while B concurrently writes x=10
  at_a.Put("y", "20");
  at_b.Put("z", "40");
  std::printf("[t1] concurrent puts done (x written at both sides)\n");

  // Local gets answer immediately from the local log — the two sides may
  // legitimately disagree about concurrent writes to x (no causal relation
  // between them).
  std::printf("[t1] Get(x) at A = %s, at B = %s  (divergence permitted "
              "for concurrent writes)\n",
              at_a.Get("x").value_or("?").c_str(),
              at_b.Get("x").value_or("?").c_str());

  // Let replication converge, then take a consistent snapshot at A.
  for (uint32_t d = 0; d < 2; ++d) {
    dcs[0]->WaitForToid(d, dcs[d]->max_local_toid(), 5'000'000'000);
    dcs[1]->WaitForToid(d, dcs[d]->max_local_toid(), 5'000'000'000);
  }
  auto snapshot = at_a.GetTxn({"x", "y", "z"});
  if (snapshot.ok()) {
    std::printf("[t2] GetTxn(x,y,z) at A: x=%s y=%s z=%s (one consistent "
                "log position)\n",
                (*snapshot)["x"].c_str(), (*snapshot)["y"].c_str(),
                (*snapshot)["z"].c_str());
  }

  // Time 2: a causally ordered update. B reads y (written at A) and then
  // overwrites it — everyone must order the new value after the old one.
  auto y_at_b = at_b.Get("y");
  std::printf("[t2] B reads y=%s then writes y=50 (causal chain)\n",
              y_at_b.value_or("?").c_str());
  at_b.Put("y", "50");
  dcs[0]->WaitForToid(1, dcs[1]->max_local_toid(), 5'000'000'000);
  std::printf("[t3] Get(y) at A = %s (B's dependent write arrived after "
              "its dependency)\n",
              at_a.Get("y").value_or("?").c_str());

  for (auto& dc : dcs) dc->Stop();
  std::printf("hyksos example done\n");
  return 0;
}
