// FLStore over real TCP sockets: the same cluster as the quickstart, but
// every node lives on its own TcpTransport with loopback routes — the
// closest thing to a multi-process deployment that fits in one example
// binary. Demonstrates that the FLStore services and client library are
// transport-agnostic.
//
//   ./build/examples/tcp_cluster

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "flstore/client.h"
#include "flstore/service.h"
#include "net/tcp_transport.h"

using namespace chariots;
using namespace chariots::flstore;

int main() {
  // One TcpTransport per "machine": controller, two maintainers, client.
  net::TcpTransport controller_net, m0_net, m1_net, client_net;
  if (!controller_net.Listen(0).ok() || !m0_net.Listen(0).ok() ||
      !m1_net.Listen(0).ok() || !client_net.Listen(0).ok()) {
    std::fprintf(stderr, "listen failed\n");
    return 1;
  }

  // Every machine routes the others' node prefixes to their ports.
  auto wire = [&](net::TcpTransport& t) {
    t.AddRoute("ctrl", "127.0.0.1", controller_net.port());
    t.AddRoute("m0", "127.0.0.1", m0_net.port());
    t.AddRoute("m1", "127.0.0.1", m1_net.port());
    t.AddRoute("client", "127.0.0.1", client_net.port());
  };
  wire(controller_net);
  wire(m0_net);
  wire(m1_net);
  wire(client_net);

  ClusterInfo info;
  info.journal = EpochJournal(2, 8);
  info.maintainers = {"m0/maintainer", "m1/maintainer"};

  ControllerServer controller(&controller_net, "ctrl/controller", info);
  if (!controller.Start().ok()) return 1;

  std::vector<std::unique_ptr<MaintainerServer>> maintainers;
  net::TcpTransport* nets[] = {&m0_net, &m1_net};
  for (uint32_t i = 0; i < 2; ++i) {
    MaintainerOptions mo;
    mo.index = i;
    mo.journal = info.journal;
    mo.store.mode = storage::SyncMode::kMemoryOnly;
    MaintainerServer::Options so;
    so.node = info.maintainers[i];
    so.peers = info.maintainers;
    so.gossip_interval_nanos = 1'000'000;
    maintainers.push_back(
        std::make_unique<MaintainerServer>(nets[i], mo, so));
    if (!maintainers.back()->Start().ok()) return 1;
  }

  FLStoreClient client(&client_net, "client/app", "ctrl/controller");
  if (!client.Start().ok()) {
    std::fprintf(stderr, "client bootstrap over TCP failed\n");
    return 1;
  }
  std::printf("bootstrap over TCP done: %zu maintainers (ports %d, %d)\n",
              client.cluster_info().maintainers.size(), m0_net.port(),
              m1_net.port());

  for (int i = 0; i < 10; ++i) {
    LogRecord record;
    record.body = "tcp-record-" + std::to_string(i);
    auto lid = client.Append(record);
    if (!lid.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   lid.status().ToString().c_str());
      return 1;
    }
  }
  // Round-robin appends put 5 records on each maintainer; with batch-8
  // striping, maintainer 0's first range (positions 0..7) still has gaps at
  // 5..7, so the gap-free head settles at 5.
  LId head = 0;
  for (int attempt = 0; attempt < 500 && head < 5; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    head = client.HeadOfLog().value_or(0);
  }
  std::printf("10 appends over TCP; gap-free head of log = %llu (positions "
              "5..7 of maintainer 0's batch are still unfilled)\n",
              static_cast<unsigned long long>(head));
  auto record = client.Read(0);
  if (record.ok()) {
    std::printf("read back LId 0 over TCP: %s\n", record->body.c_str());
  }

  client.Stop();
  for (auto& m : maintainers) m->Stop();
  controller.Stop();
  std::printf("tcp cluster example done\n");
  return 0;
}
