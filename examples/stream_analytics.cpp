// Multi-datacenter event processing (paper §4.2, Photon-style): click
// streams originate at three datacenters; a reader at one datacenter joins
// them all off the shared log with exactly-once accounting, checkpoints
// its offset INTO the log, crashes, and a replacement resumes without
// double counting.
//
//   ./build/examples/stream_analytics

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/stream.h"
#include "chariots/fabric.h"
#include "net/inproc_transport.h"

using namespace chariots;
using namespace chariots::geo;
using namespace chariots::apps;

int main() {
  net::InProcTransport transport;
  TransportFabric fabric(&transport);
  std::vector<std::unique_ptr<Datacenter>> dcs;
  for (uint32_t d = 0; d < 3; ++d) {
    ChariotsConfig config;
    config.dc_id = d;
    config.num_datacenters = 3;
    config.batcher_flush_nanos = 200'000;
    dcs.push_back(std::make_unique<Datacenter>(config, &fabric));
    if (!dcs.back()->Start().ok()) return 1;
  }

  // Publishers: one per datacenter, each reporting clicks on pages.
  const char* pages[] = {"home", "cart", "checkout"};
  for (uint32_t d = 0; d < 3; ++d) {
    EventPublisher publisher(dcs[d].get(), "clicks");
    for (int i = 0; i < 6; ++i) {
      if (!publisher.Publish(pages[(d + i) % 3]).ok()) return 1;
    }
    std::printf("dc%u published 6 click events\n", d);
  }

  // Wait for all 18 events to reach dc0.
  for (uint32_t d = 0; d < 3; ++d) {
    dcs[0]->WaitForToid(d, 6, 5'000'000'000);
  }

  // The analytics job at dc0: consume, aggregate, checkpoint, "crash".
  CountingAggregator counts;
  {
    EventReader reader(dcs[0].get(), "clicks", "analytics");
    auto events = reader.Poll(10);  // first part of the stream
    size_t fresh = counts.Consume(events);
    std::printf("reader consumed %zu events, checkpointing at lid %llu\n",
                fresh, static_cast<unsigned long long>(reader.cursor()));
    if (!reader.Checkpoint().ok()) return 1;
    // crash: reader destroyed with work beyond the checkpoint unprocessed
  }

  // Failover: a new reader in the same group resumes from the durable
  // checkpoint; the aggregator's lid-dedup makes processing exactly-once.
  EventReader reader2(dcs[0].get(), "clicks", "analytics");
  std::printf("replacement reader restored cursor %llu from the log\n",
              static_cast<unsigned long long>(reader2.cursor()));
  size_t fresh = counts.Consume(reader2.Poll(100));
  std::printf("replacement consumed %zu further events\n", fresh);

  std::printf("join result across 3 datacenters (%llu events total):\n",
              static_cast<unsigned long long>(counts.total()));
  for (const char* page : pages) {
    std::printf("  %-9s %llu clicks\n", page,
                static_cast<unsigned long long>(counts.CountFor(page)));
  }
  bool exactly_once = counts.total() == 18;
  std::printf("exactly-once accounting: %s\n",
              exactly_once ? "yes (18/18)" : "VIOLATED");

  for (auto& dc : dcs) dc->Stop();
  return exactly_once ? 0 : 1;
}
