// Message Futures (paper §4.3): strongly consistent (serializable)
// transactions on the causally ordered replicated log — no Paxos round,
// the log itself is the agreement. Demonstrates a cross-datacenter bank:
// non-conflicting transfers commit on both sides; a write-write race on
// the same account aborts exactly one side; balances stay consistent.
//
//   ./build/examples/geo_transactions

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "apps/msgfutures.h"
#include "chariots/fabric.h"
#include "net/inproc_transport.h"

using namespace chariots;
using namespace chariots::geo;
using namespace chariots::apps;

int main() {
  net::InProcTransport transport;
  net::LinkOptions wan;
  wan.latency_nanos = 5'000'000;  // 5 ms between datacenters
  transport.SetLink("geo/", "geo/", wan);
  TransportFabric fabric(&transport);

  std::vector<std::unique_ptr<Datacenter>> dcs;
  for (uint32_t d = 0; d < 2; ++d) {
    ChariotsConfig config;
    config.dc_id = d;
    config.num_datacenters = 2;
    config.batcher_flush_nanos = 200'000;
    dcs.push_back(std::make_unique<Datacenter>(config, &fabric));
    if (!dcs.back()->Start().ok()) return 1;
  }
  MessageFutures us_east(dcs[0].get());
  MessageFutures eu_west(dcs[1].get());
  us_east.StartBackground();
  eu_west.StartBackground();

  // Seed the accounts from one side.
  {
    auto txn = us_east.Begin();
    txn.Put("alice", "100");
    txn.Put("bob", "100");
    auto outcome = us_east.Commit(txn);
    std::printf("seed txn: %s\n",
                outcome.ok() && *outcome == TxnOutcome::kCommitted
                    ? "committed"
                    : "failed");
  }
  // Wait until the EU replica has applied the seed.
  while (!eu_west.Get("alice").ok()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Concurrent CONFLICTING transactions: both sides move alice's money.
  auto t_us = us_east.Begin();
  (void)t_us.Get("alice");
  t_us.Put("alice", "90");
  t_us.Put("bob", "110");

  auto t_eu = eu_west.Begin();
  (void)t_eu.Get("alice");
  t_eu.Put("alice", "50");
  t_eu.Put("bob", "150");

  Result<TxnOutcome> o_us(Status::Internal("pending"));
  Result<TxnOutcome> o_eu(Status::Internal("pending"));
  std::thread c1([&] { o_us = us_east.Commit(t_us); });
  std::thread c2([&] { o_eu = eu_west.Commit(t_eu); });
  c1.join();
  c2.join();
  auto show = [](const char* who, const Result<TxnOutcome>& o) {
    std::printf("%s: %s\n", who,
                !o.ok() ? o.status().ToString().c_str()
                : *o == TxnOutcome::kCommitted ? "COMMITTED"
                                               : "aborted (conflict)");
  };
  show("us-east transfer", o_us);
  show("eu-west transfer", o_eu);

  // Both replicas converge to the winner's state; money is conserved.
  std::string a0, b0, a1, b1;
  for (int i = 0; i < 5000; ++i) {
    auto ra0 = us_east.Get("alice");
    auto rb0 = us_east.Get("bob");
    auto ra1 = eu_west.Get("alice");
    auto rb1 = eu_west.Get("bob");
    if (ra0.ok() && rb0.ok() && ra1.ok() && rb1.ok() && *ra0 == *ra1 &&
        *rb0 == *rb1) {
      a0 = *ra0;
      b0 = *rb0;
      a1 = *ra1;
      b1 = *rb1;
      if (std::stoi(a0) + std::stoi(b0) == 200) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::printf("final balances (identical at both replicas): alice=%s "
              "bob=%s  (sum %d)\n",
              a0.c_str(), b0.c_str(), std::stoi(a0) + std::stoi(b0));
  std::printf("stats: us-east committed=%llu aborted=%llu | eu-west "
              "committed=%llu aborted=%llu\n",
              static_cast<unsigned long long>(us_east.committed()),
              static_cast<unsigned long long>(us_east.aborted()),
              static_cast<unsigned long long>(eu_west.committed()),
              static_cast<unsigned long long>(eu_west.aborted()));

  for (auto& dc : dcs) dc->Stop();
  return 0;
}
