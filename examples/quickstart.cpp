// Quickstart: stand up a single-datacenter FLStore cluster (controller +
// three log maintainers + an indexer) on the in-process fabric, then use
// the client library to append, read, query by tag, and observe the Head
// of the Log. This is the paper's §5 system end to end.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "flstore/client.h"
#include "flstore/service.h"
#include "net/inproc_transport.h"

using namespace chariots;
using namespace chariots::flstore;

int main() {
  net::InProcTransport transport;

  // 1. Describe the cluster: 3 maintainers striping the log in batches of
  //    4 positions, one indexer, and a controller holding the layout.
  ClusterInfo info;
  info.journal = EpochJournal(/*num_maintainers=*/3, /*batch_size=*/4);
  info.maintainers = {"dc0/maintainer/0", "dc0/maintainer/1",
                      "dc0/maintainer/2"};
  info.indexers = {"dc0/indexer/0"};

  ControllerServer controller(&transport, "dc0/controller", info);
  if (!controller.Start().ok()) return 1;

  IndexerServer indexer(&transport, info.indexers[0]);
  if (!indexer.Start().ok()) return 1;

  std::vector<std::unique_ptr<MaintainerServer>> maintainers;
  for (uint32_t i = 0; i < 3; ++i) {
    MaintainerOptions mo;
    mo.index = i;
    mo.journal = info.journal;
    mo.store.mode = storage::SyncMode::kMemoryOnly;
    MaintainerServer::Options so;
    so.node = info.maintainers[i];
    so.peers = info.maintainers;
    so.indexers = info.indexers;
    so.gossip_interval_nanos = 1'000'000;  // 1 ms HL gossip
    maintainers.push_back(
        std::make_unique<MaintainerServer>(&transport, mo, so));
    if (!maintainers.back()->Start().ok()) return 1;
  }

  // 2. An application client: one controller poll bootstraps the session.
  FLStoreClient client(&transport, "dc0/client/app", "dc0/controller");
  if (!client.Start().ok()) return 1;
  std::printf("session started: %zu maintainers, %zu indexers\n",
              client.cluster_info().maintainers.size(),
              client.cluster_info().indexers.size());

  // 3. Append records. Post-assignment: whichever maintainer receives the
  //    record assigns it the next free position it owns.
  for (int i = 0; i < 12; ++i) {
    LogRecord record;
    record.body = "event-" + std::to_string(i);
    record.tags.push_back(Tag{"type", i % 2 == 0 ? "click" : "view"});
    auto lid = client.Append(record);
    if (!lid.ok()) return 1;
    std::printf("append %-10s -> LId %llu (maintainer %u)\n",
                record.body.c_str(),
                static_cast<unsigned long long>(*lid),
                client.cluster_info().journal.MaintainerFor(*lid));
  }

  // 4. Wait for the gossip to confirm a gap-free prefix, then read it.
  LId head = 0;
  for (int attempt = 0; attempt < 200 && head < 12; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    head = client.HeadOfLog().value_or(0);
  }
  std::printf("head of the log: %llu (every position below is readable "
              "with no gaps)\n",
              static_cast<unsigned long long>(head));
  for (LId lid = 0; lid < head && lid < 4; ++lid) {
    auto record = client.ReadCommitted(lid);
    if (record.ok()) {
      std::printf("read LId %llu: %s\n",
                  static_cast<unsigned long long>(lid),
                  record->body.c_str());
    }
  }

  // 5. Tag lookup through the indexers: the three most recent clicks.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  IndexQuery query;
  query.key = "type";
  query.value_equals = "click";
  query.limit = 3;
  auto clicks = client.ReadByTag(query);
  if (clicks.ok()) {
    std::printf("three most recent clicks:");
    for (const auto& r : *clicks) std::printf(" %s", r.body.c_str());
    std::printf("\n");
  }

  std::printf("quickstart done\n");
  return 0;
}
