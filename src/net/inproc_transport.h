#ifndef CHARIOTS_NET_INPROC_TRANSPORT_H_
#define CHARIOTS_NET_INPROC_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/executor.h"
#include "common/random.h"
#include "common/rate_limiter.h"
#include "net/fault_schedule.h"
#include "net/transport.h"

namespace chariots::net {

/// Link characteristics between two groups of nodes.
struct LinkOptions {
  /// One-way propagation delay added to every message.
  int64_t latency_nanos = 0;
  /// NIC/link serialization rate; <= 0 means unlimited.
  double bandwidth_bytes_per_sec = 0;
  /// Probability a message is silently dropped (fault injection).
  double drop_probability = 0;
};

/// In-process transport that simulates a network: per-link latency,
/// token-bucket bandwidth, and probabilistic drop for fault-injection tests.
///
/// Execution model (DESIGN.md §10): there are no per-node inbox threads.
/// Each registered node has an inbox *strand* on the shared executor that
/// delivers its due messages one at a time (preserving the historical
/// one-message-at-a-time contract RpcEndpoint relies on). Delayed messages
/// (link latency, fault delays) wait on the executor's timer service, so a
/// virtual-time executor makes simulated WANs run with zero real sleeps.
/// RPC *responses* are delivered inline on the sending/timer thread, never
/// through the worker pool — a worker blocked inside a handler waiting on a
/// Call() is always unblocked even when every worker is busy.
///
/// Link resolution: the most specific matching rule wins. Rules are keyed by
/// (src_prefix, dst_prefix) where a node matches a prefix if its id starts
/// with it; "" matches everything. E.g. a rule ("dc0", "dc1") gives all
/// dc0→dc1 traffic WAN characteristics while ("", "") keeps intra-DC traffic
/// fast. Partitions are modeled with drop_probability = 1.
class InProcTransport : public Transport {
 public:
  /// `clock` null means the executor's clock; `executor` null means
  /// Executor::Default(). Passing a virtual-time executor (and leaving
  /// `clock` null) puts both the latency arithmetic and the timers on the
  /// same ManualClock.
  explicit InProcTransport(Clock* clock = nullptr,
                           Executor* executor = nullptr);
  ~InProcTransport() override;

  Status Register(const NodeId& node, MessageHandler handler) override;
  Status Unregister(const NodeId& node) override;
  Status Send(Message msg) override;

  /// Installs (or replaces) a link rule. More specific (longer) prefixes
  /// take precedence; ties broken by src prefix length.
  void SetLink(const std::string& src_prefix, const std::string& dst_prefix,
               LinkOptions options);

  /// Convenience: drop everything between the two prefixes (both ways).
  void Partition(const std::string& a_prefix, const std::string& b_prefix);

  /// Removes the partition installed by Partition().
  void Heal(const std::string& a_prefix, const std::string& b_prefix);

  /// The scripted fault plan consulted for every message: drop / duplicate /
  /// delay / reorder the Nth message matching a predicate, plus
  /// crash-restart outage windows per node. Mutate it any time; pair with
  /// Seed() so a whole scenario replays from one seed.
  FaultSchedule& faults() { return faults_; }

  /// Re-seeds both the link-level drop PRNG and the fault schedule so a
  /// probabilistic run is reproducible from a single printed seed.
  void Seed(uint64_t seed);

  /// Counters for tests.
  uint64_t messages_delivered() const;
  uint64_t messages_dropped() const;

 private:
  struct Inbox;
  struct DelayedMessage {
    int64_t deliver_at_nanos;
    uint64_t seq;  // tie-break preserves FIFO for equal timestamps
    Message msg;
    bool operator>(const DelayedMessage& other) const {
      if (deliver_at_nanos != other.deliver_at_nanos) {
        return deliver_at_nanos > other.deliver_at_nanos;
      }
      return seq > other.seq;
    }
  };

  struct LinkRule {
    std::string src_prefix;
    std::string dst_prefix;
    LinkOptions options;
    std::unique_ptr<TokenBucket> bandwidth;  // null if unlimited
  };

  LinkRule* ResolveLink(const NodeId& from, const NodeId& to);
  /// Enqueues one already-inspected message on its inbox (immediate →
  /// inline response delivery or ready queue + strand; future → timer).
  /// Returns false if the destination stopped meanwhile.
  bool Enqueue(const std::shared_ptr<Inbox>& inbox, Message msg,
               int64_t deliver_at_nanos, uint64_t seq);
  /// Inbox strand body: delivers ready messages one at a time.
  void DrainReady(const std::shared_ptr<Inbox>& inbox);
  /// Timer callback (timer lane): moves due delayed messages out — requests
  /// to the ready queue/strand, responses delivered inline.
  void DrainDue(const std::shared_ptr<Inbox>& inbox);
  /// Schedules the strand if not already scheduled. Caller must not hold
  /// inbox->mu.
  void ScheduleDrain(const std::shared_ptr<Inbox>& inbox);
  /// Arms the delayed-queue timer for the current head. Caller holds
  /// inbox->mu.
  void ArmLocked(const std::shared_ptr<Inbox>& inbox);
  /// Runs the handler (outage check included) under the inbox gate.
  void Deliver(const std::shared_ptr<Inbox>& inbox, Message msg);

  Clock* clock_;
  Executor* const executor_;
  FaultSchedule faults_;
  mutable std::mutex mu_;
  std::unordered_map<NodeId, std::shared_ptr<Inbox>> inboxes_;
  std::vector<std::unique_ptr<LinkRule>> links_;
  Random rng_;
  uint64_t seq_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace chariots::net

#endif  // CHARIOTS_NET_INPROC_TRANSPORT_H_
