#ifndef CHARIOTS_NET_INPROC_TRANSPORT_H_
#define CHARIOTS_NET_INPROC_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/rate_limiter.h"
#include "net/fault_schedule.h"
#include "net/transport.h"

namespace chariots::net {

/// Link characteristics between two groups of nodes.
struct LinkOptions {
  /// One-way propagation delay added to every message.
  int64_t latency_nanos = 0;
  /// NIC/link serialization rate; <= 0 means unlimited.
  double bandwidth_bytes_per_sec = 0;
  /// Probability a message is silently dropped (fault injection).
  double drop_probability = 0;
};

/// In-process transport that simulates a network: per-destination inbox
/// threads, per-link latency, token-bucket bandwidth, and probabilistic drop
/// for fault-injection tests.
///
/// Link resolution: the most specific matching rule wins. Rules are keyed by
/// (src_prefix, dst_prefix) where a node matches a prefix if its id starts
/// with it; "" matches everything. E.g. a rule ("dc0", "dc1") gives all
/// dc0→dc1 traffic WAN characteristics while ("", "") keeps intra-DC traffic
/// fast. Partitions are modeled with drop_probability = 1.
class InProcTransport : public Transport {
 public:
  explicit InProcTransport(Clock* clock = SystemClock::Default());
  ~InProcTransport() override;

  Status Register(const NodeId& node, MessageHandler handler) override;
  Status Unregister(const NodeId& node) override;
  Status Send(Message msg) override;

  /// Installs (or replaces) a link rule. More specific (longer) prefixes
  /// take precedence; ties broken by src prefix length.
  void SetLink(const std::string& src_prefix, const std::string& dst_prefix,
               LinkOptions options);

  /// Convenience: drop everything between the two prefixes (both ways).
  void Partition(const std::string& a_prefix, const std::string& b_prefix);

  /// Removes the partition installed by Partition().
  void Heal(const std::string& a_prefix, const std::string& b_prefix);

  /// The scripted fault plan consulted for every message: drop / duplicate /
  /// delay / reorder the Nth message matching a predicate, plus
  /// crash-restart outage windows per node. Mutate it any time; pair with
  /// Seed() so a whole scenario replays from one seed.
  FaultSchedule& faults() { return faults_; }

  /// Re-seeds both the link-level drop PRNG and the fault schedule so a
  /// probabilistic run is reproducible from a single printed seed.
  void Seed(uint64_t seed);

  /// Counters for tests.
  uint64_t messages_delivered() const;
  uint64_t messages_dropped() const;

 private:
  struct Inbox;
  struct DelayedMessage {
    int64_t deliver_at_nanos;
    uint64_t seq;  // tie-break preserves FIFO for equal timestamps
    Message msg;
    bool operator>(const DelayedMessage& other) const {
      if (deliver_at_nanos != other.deliver_at_nanos) {
        return deliver_at_nanos > other.deliver_at_nanos;
      }
      return seq > other.seq;
    }
  };

  struct LinkRule {
    std::string src_prefix;
    std::string dst_prefix;
    LinkOptions options;
    std::unique_ptr<TokenBucket> bandwidth;  // null if unlimited
  };

  LinkRule* ResolveLink(const NodeId& from, const NodeId& to);
  void InboxLoop(Inbox* inbox);

  Clock* const clock_;
  FaultSchedule faults_;
  mutable std::mutex mu_;
  std::unordered_map<NodeId, std::unique_ptr<Inbox>> inboxes_;
  std::vector<std::unique_ptr<LinkRule>> links_;
  Random rng_;
  uint64_t seq_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace chariots::net

#endif  // CHARIOTS_NET_INPROC_TRANSPORT_H_
