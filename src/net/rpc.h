#ifndef CHARIOTS_NET_RPC_H_
#define CHARIOTS_NET_RPC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/trace.h"
#include "net/transport.h"

namespace chariots::net {

/// Per-call options: a per-attempt timeout plus an optional overall
/// Deadline. The effective wait is the smaller of the two, so one Deadline
/// can budget a whole retry loop across attempts (see RetryingChannel).
struct CallOptions {
  std::chrono::milliseconds timeout{5000};
  Deadline deadline;  ///< infinite by default
  /// When active, rides in the request message header so the server can
  /// continue the trace (see CurrentRpcTrace()).
  trace::TraceContext trace;
};

/// Trace context of the RPC request currently being handled on this thread.
/// Handlers run on the transport delivery thread, so a handler (or code it
/// calls synchronously) reads the inbound trace here; inactive when the
/// request carried none.
const trace::TraceContext& CurrentRpcTrace();

/// Request/response layer over a Transport. One endpoint per logical node.
///
/// Server side: register per-opcode handlers, then Start(). Handlers run on
/// the transport delivery thread; they return the response payload or an
/// error Status (which travels back as an error response).
///
/// Client side: Call() blocks for the response with a timeout; Notify() is
/// fire-and-forget.
class RpcEndpoint {
 public:
  using RpcHandler =
      std::function<Result<std::string>(const NodeId& from,
                                        const std::string& payload)>;
  /// One-way message handler (no response is sent).
  using OneWayHandler =
      std::function<void(const NodeId& from, std::string payload)>;

  RpcEndpoint(Transport* transport, NodeId node);
  ~RpcEndpoint();

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  /// Registers a request handler for `type`. Must precede Start().
  void Handle(uint16_t type, RpcHandler handler);

  /// Registers a one-way handler for `type`. Must precede Start().
  void HandleOneWay(uint16_t type, OneWayHandler handler);

  /// Binds to the transport and begins serving.
  Status Start();

  /// Unbinds; outstanding Calls fail with Unavailable.
  void Stop();

  /// Sends a request and blocks for the response (bounded by the per-call
  /// timeout and deadline). An unreachable destination surfaces as
  /// kUnavailable and an expired budget as kTimedOut — both retryable; all
  /// other codes come from the remote handler.
  Result<std::string> Call(const NodeId& to, uint16_t type,
                           std::string payload, const CallOptions& options);

  Result<std::string> Call(const NodeId& to, uint16_t type,
                           std::string payload,
                           std::chrono::milliseconds timeout =
                               std::chrono::milliseconds(5000)) {
    CallOptions options;
    options.timeout = timeout;
    return Call(to, type, std::move(payload), options);
  }

  /// Fire-and-forget notification.
  Status Notify(const NodeId& to, uint16_t type, std::string payload);

  const NodeId& node() const { return node_; }

 private:
  struct PendingCall {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    std::string response;
  };

  void OnMessage(Message msg);

  Transport* const transport_;
  const NodeId node_;

  std::mutex mu_;
  bool started_ = false;
  std::unordered_map<uint16_t, RpcHandler> handlers_;
  std::unordered_map<uint16_t, OneWayHandler> oneway_handlers_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingCall>> pending_;
  std::atomic<uint64_t> next_rpc_id_{1};
};

}  // namespace chariots::net

#endif  // CHARIOTS_NET_RPC_H_
