#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::net {

namespace {

metrics::Counter* BytesSentCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.tcp.bytes_sent");
  return c;
}

metrics::Counter* BytesReceivedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.tcp.bytes_received");
  return c;
}

metrics::Counter* FramesSentCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.tcp.frames_sent");
  return c;
}

metrics::Counter* FramesReceivedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.tcp.frames_received");
  return c;
}

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

// Returns false on clean EOF before any byte; IOError on mid-read failure.
Result<bool> ReadAll(int fd, char* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0) return false;
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport() = default;

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::Listen(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  listen_fd_.store(fd, std::memory_order_relaxed);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(fd, 128) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpTransport::AddRoute(const std::string& prefix, const std::string& host,
                            int port) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_.emplace_back(prefix, host + ":" + std::to_string(port));
}

Status TcpTransport::Register(const NodeId& node, MessageHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  if (local_.count(node) != 0) {
    return Status::AlreadyExists("node already registered: " + node);
  }
  local_[node] = std::move(handler);
  return Status::OK();
}

Status TcpTransport::Unregister(const NodeId& node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (local_.erase(node) == 0) return Status::NotFound("node: " + node);
  return Status::OK();
}

void TcpTransport::Deliver(Message msg) {
  MessageHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = local_.find(msg.to);
    if (it == local_.end()) {
      LOG_WARN << "tcp: dropping message for unknown local node " << msg.to;
      return;
    }
    handler = it->second;
  }
  handler(std::move(msg));
}

Status TcpTransport::Send(Message msg) {
  std::string addr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (local_.count(msg.to) != 0) {
      // Local shortcut — deliver on the caller thread.
      MessageHandler handler = local_[msg.to];
      // Drop the lock before invoking user code.
      // (handler copy keeps it alive.)
      mu_.unlock();
      handler(std::move(msg));
      mu_.lock();
      return Status::OK();
    }
    size_t best = 0;
    bool found = false;
    for (const auto& [prefix, a] : routes_) {
      if (msg.to.rfind(prefix, 0) == 0 &&
          (!found || prefix.size() >= best)) {
        best = prefix.size();
        addr = a;
        found = true;
      }
    }
    if (!found) {
      // No static route: try the connection the peer was learned on.
      auto it = learned_.find(msg.to);
      if (it != learned_.end()) {
        if (std::shared_ptr<Connection> conn = it->second.lock()) {
          // Write outside the registry lock.
          mu_.unlock();
          Status s = WriteFrame(conn.get(), msg);
          mu_.lock();
          return s;
        }
        learned_.erase(it);
      }
      return Status::NotFound("no route to " + msg.to);
    }
  }
  CHARIOTS_ASSIGN_OR_RETURN(std::shared_ptr<Connection> conn,
                            GetOrConnect(addr));
  return WriteFrame(conn.get(), msg);
}

Result<std::shared_ptr<TcpTransport::Connection>> TcpTransport::GetOrConnect(
    const std::string& addr) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(addr);
    if (it != conns_.end()) return it->second;
  }
  // Parse host:port.
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("bad address: " + addr);
  }
  std::string host = addr.substr(0, colon);
  int port = std::atoi(addr.c_str() + colon + 1);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect " + addr + ": " +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = conns_.emplace(addr, conn);
    if (!inserted) {
      // Lost a race; use the existing connection.
      ::close(fd);
      return it->second;
    }
  }
  conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  return conn;
}

Status TcpTransport::WriteFrame(Connection* conn, const Message& msg) {
  std::string body = EncodeMessage(msg);
  char header[4];
  uint32_t len = static_cast<uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  CHARIOTS_RETURN_IF_ERROR(WriteAll(conn->fd, header, 4));
  CHARIOTS_RETURN_IF_ERROR(WriteAll(conn->fd, body.data(), body.size()));
  FramesSentCounter()->Add();
  BytesSentCounter()->Add(body.size() + 4);
  return Status::OK();
}

void TcpTransport::ReaderLoop(std::shared_ptr<Connection> conn) {
  for (;;) {
    char header[4];
    Result<bool> got = ReadAll(conn->fd, header, 4);
    if (!got.ok() || !*got) break;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
    }
    if (len > (64u << 20)) {
      LOG_ERROR << "tcp: oversized frame (" << len << " bytes); closing";
      break;
    }
    std::string body(len, '\0');
    got = ReadAll(conn->fd, body.data(), len);
    if (!got.ok() || !*got) break;
    FramesReceivedCounter()->Add();
    BytesReceivedCounter()->Add(len + 4);
    Result<Message> msg = DecodeMessage(body);
    if (!msg.ok()) {
      LOG_ERROR << "tcp: undecodable frame; closing: "
                << msg.status().ToString();
      break;
    }
    if (!msg->from.empty()) {
      // Peer learning: the sender is reachable over this connection.
      std::lock_guard<std::mutex> lock(mu_);
      learned_[msg->from] = conn;
    }
    Deliver(std::move(msg).value());
    if (shutdown_.load(std::memory_order_relaxed)) break;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
}

void TcpTransport::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_.load(std::memory_order_relaxed), nullptr,
                      nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      accepted_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void TcpTransport::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::shared_ptr<Connection>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [_, c] : conns_) all.push_back(c);
    for (auto& c : accepted_) all.push_back(c);
    conns_.clear();
    accepted_.clear();
  }
  for (auto& c : all) {
    ::shutdown(c->fd, SHUT_RDWR);
  }
  for (auto& c : all) {
    if (c->reader.joinable()) c->reader.join();
    ::close(c->fd);
  }
}

}  // namespace chariots::net
