#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::net {

namespace {

constexpr size_t kMaxFrameBytes = 64u << 20;
/// Per-connection queued-write cap: past this, Send fails Unavailable
/// instead of buffering without bound against a stuck peer.
constexpr size_t kMaxWriteBacklog = 64u << 20;

metrics::Counter* BytesSentCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.tcp.bytes_sent");
  return c;
}

metrics::Counter* BytesReceivedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.tcp.bytes_received");
  return c;
}

metrics::Counter* FramesSentCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.tcp.frames_sent");
  return c;
}

metrics::Counter* FramesReceivedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.tcp.frames_received");
  return c;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

/// A frame chain is at most header + payload + trace trailer; 8 leaves
/// headroom without touching IOV_MAX.
constexpr size_t kMaxIovPerSend = 8;

/// Fills `iov` from the chain's slices, skipping the first `skip`
/// already-sent bytes. Returns the number of entries filled.
size_t BuildIovecs(const SliceChain& chain, size_t skip, iovec* iov,
                   size_t max_iov) {
  size_t n = 0;
  for (const IoSlice& s : chain.slices()) {
    if (n == max_iov) break;
    if (skip >= s.data.size()) {
      skip -= s.data.size();
      continue;
    }
    iov[n++] = iovec{const_cast<char*>(s.data.data() + skip),
                     s.data.size() - skip};
    skip = 0;
  }
  return n;
}

/// sendmsg over the unsent tail of a frame chain (writev has no flags
/// argument, and MSG_NOSIGNAL is non-negotiable).
ssize_t SendChain(int fd, const SliceChain& chain, size_t skip) {
  iovec iov[kMaxIovPerSend];
  msghdr mh{};
  mh.msg_iov = iov;
  mh.msg_iovlen = BuildIovecs(chain, skip, iov, kMaxIovPerSend);
  return ::sendmsg(fd, &mh, MSG_NOSIGNAL);
}

}  // namespace

/// One TCP connection. The socket is owned by one reactor thread (`io`):
/// only that thread reads `rbuf`, flushes the write queue on EPOLLOUT, and
/// closes the fd. Senders on any thread append to the write queue under
/// `write_mu` (trying the socket inline first). Inbound requests queue in
/// `inbox` and are delivered one at a time by a strand task under `gate`,
/// which also fences the transport: Shutdown() closes it, after which no
/// queued task touches the transport again.
struct TcpTransport::Conn {
  int fd = -1;
  IoThread* io = nullptr;

  std::string rbuf;  // partial inbound frame (reactor thread only)

  std::mutex write_mu;
  /// Encoded frames as slice chains — large payloads are borrowed via
  /// refcounted Buffers, never copied into the queue. Front may be partly
  /// sent.
  std::deque<SliceChain> wq;
  size_t woff = 0;    // bytes of wq.front() already sent
  size_t wbytes = 0;  // unsent bytes across the whole queue
  bool want_write = false;  // EPOLLOUT armed (or will be at adoption)
  bool closed = false;

  std::mutex in_mu;
  std::deque<Message> inbox;
  bool drain_scheduled = false;
  SerialGate gate;
};

/// One reactor: an epoll instance plus the connections registered with it.
/// `conns` maps the raw pointer stored in epoll_event.data back to an
/// owning reference; erased on close, so a stale event (connection closed
/// earlier in the same batch) simply fails the lookup.
struct TcpTransport::IoThread {
  size_t index = 0;
  int epfd = -1;
  int wakeup_fd = -1;
  std::atomic<bool> stop{false};
  std::mutex conns_mu;
  std::unordered_map<Conn*, std::shared_ptr<Conn>> conns;
  std::thread thread;
};

TcpTransport::TcpTransport() : TcpTransport(Options{}) {}

TcpTransport::TcpTransport(Options options)
    : options_(options),
      executor_(options.executor != nullptr ? options.executor
                                            : Executor::Default()) {}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::EnsureIoThreads() {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (!io_threads_.empty()) return Status::OK();
  size_t n = options_.io_threads > 0 ? options_.io_threads : 1;
  for (size_t i = 0; i < n; ++i) {
    auto io = std::make_unique<IoThread>();
    io->index = i;
    io->epfd = ::epoll_create1(0);
    if (io->epfd < 0) {
      return Status::IOError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
    io->wakeup_fd = ::eventfd(0, EFD_NONBLOCK);
    if (io->wakeup_fd < 0) {
      ::close(io->epfd);
      return Status::IOError(std::string("eventfd: ") +
                             std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = io.get();
    ::epoll_ctl(io->epfd, EPOLL_CTL_ADD, io->wakeup_fd, &ev);
    io_threads_.push_back(std::move(io));
  }
  for (size_t i = 0; i < io_threads_.size(); ++i) {
    io_threads_[i]->thread = std::thread([this, i] { ReactorLoop(i); });
  }
  return Status::OK();
}

Status TcpTransport::Listen(int port) {
  CHARIOTS_RETURN_IF_ERROR(EnsureIoThreads());
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  listen_fd_.store(fd, std::memory_order_relaxed);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(fd, 128) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  // The listener lives on reactor 0; accepted sockets are spread
  // round-robin over every reactor.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = this;
  if (::epoll_ctl(io_threads_[0]->epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl listen: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void TcpTransport::AddRoute(const std::string& prefix, const std::string& host,
                            int port) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_.emplace_back(prefix, host + ":" + std::to_string(port));
}

Status TcpTransport::Register(const NodeId& node, MessageHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  if (local_.count(node) != 0) {
    return Status::AlreadyExists("node already registered: " + node);
  }
  local_[node] = std::move(handler);
  return Status::OK();
}

Status TcpTransport::Unregister(const NodeId& node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (local_.erase(node) == 0) return Status::NotFound("node: " + node);
  return Status::OK();
}

void TcpTransport::DeliverLocal(Message msg) {
  MessageHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = local_.find(msg.to);
    if (it == local_.end()) {
      LOG_WARN << "tcp: dropping message for unknown local node " << msg.to;
      return;
    }
    handler = it->second;
  }
  handler(std::move(msg));
}

Status TcpTransport::Send(Message msg) {
  std::string addr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (local_.count(msg.to) != 0) {
      // Local shortcut — deliver on the caller thread.
      MessageHandler handler = local_[msg.to];
      // Drop the lock before invoking user code.
      // (handler copy keeps it alive.)
      mu_.unlock();
      handler(std::move(msg));
      mu_.lock();
      return Status::OK();
    }
    size_t best = 0;
    bool found = false;
    for (const auto& [prefix, a] : routes_) {
      if (msg.to.rfind(prefix, 0) == 0 &&
          (!found || prefix.size() >= best)) {
        best = prefix.size();
        addr = a;
        found = true;
      }
    }
    if (!found) {
      // No static route: try the connection the peer was learned on.
      auto it = learned_.find(msg.to);
      if (it != learned_.end()) {
        if (std::shared_ptr<Conn> conn = it->second.lock()) {
          // Write outside the registry lock.
          mu_.unlock();
          Status s = WriteFrame(conn, std::move(msg));
          mu_.lock();
          return s;
        }
        learned_.erase(it);
      }
      return Status::NotFound("no route to " + msg.to);
    }
  }
  CHARIOTS_ASSIGN_OR_RETURN(std::shared_ptr<Conn> conn, GetOrConnect(addr));
  return WriteFrame(conn, std::move(msg));
}

Result<std::shared_ptr<TcpTransport::Conn>> TcpTransport::GetOrConnect(
    const std::string& addr) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(addr);
    if (it != conns_.end()) return it->second;
  }
  CHARIOTS_RETURN_IF_ERROR(EnsureIoThreads());
  // Parse host:port.
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("bad address: " + addr);
  }
  std::string host = addr.substr(0, colon);
  int port = std::atoi(addr.c_str() + colon + 1);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  // Blocking connect (bounded by the kernel's SYN timeout), then the socket
  // goes nonblocking for its life on the reactor.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect " + addr + ": " +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }

  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = conns_.emplace(addr, conn);
    if (!inserted) {
      // Lost a race; use the existing connection.
      ::close(fd);
      return it->second;
    }
  }
  AdoptConn(conn);
  return conn;
}

void TcpTransport::AdoptConn(const std::shared_ptr<Conn>& conn) {
  IoThread* io;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    io = io_threads_[next_io_.fetch_add(1, std::memory_order_relaxed) %
                     io_threads_.size()]
             .get();
  }
  conn->io = io;
  {
    std::lock_guard<std::mutex> lock(io->conns_mu);
    io->conns[conn.get()] = conn;
  }
  epoll_event ev{};
  ev.data.ptr = conn.get();
  {
    // A frame may already be queued (WriteFrame before adoption finished):
    // fold EPOLLOUT into the initial registration instead of racing a MOD.
    std::lock_guard<std::mutex> lock(conn->write_mu);
    ev.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0);
    ::epoll_ctl(io->epfd, EPOLL_CTL_ADD, conn->fd, &ev);
  }
}

Status TcpTransport::WriteFrame(const std::shared_ptr<Conn>& conn,
                                Message msg) {
  // The 4-byte length prefix rides inside the chain's header buffer:
  // WireSize() is exact (net_test pins it to the codec), so the frame
  // length is known before a single byte is encoded.
  const uint32_t body = static_cast<uint32_t>(msg.WireSize());
  char prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((body >> (8 * i)) & 0xff);
  }
  SliceChain chain =
      EncodeMessageSlices(std::move(msg), std::string_view(prefix, 4));
  const size_t frame_bytes = chain.size();

  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed) return Status::Unavailable("connection closed");
  if (conn->wbytes > kMaxWriteBacklog) {
    return Status::Unavailable("tcp: write backlog full");
  }
  size_t off = 0;
  if (conn->wq.empty()) {
    // Queue empty: try the socket inline on the caller's thread — the
    // common case finishes here without waking the reactor, gathering the
    // header and borrowed payload slices in one sendmsg.
    while (off < frame_bytes) {
      ssize_t w = SendChain(conn->fd, chain, off);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return Status::IOError(std::string("sendmsg: ") +
                               std::strerror(errno));
      }
      off += static_cast<size_t>(w);
    }
  }
  FramesSentCounter()->Add();
  BytesSentCounter()->Add(frame_bytes);
  if (off == frame_bytes) return Status::OK();
  conn->wbytes += frame_bytes - off;
  if (conn->wq.empty()) conn->woff = off;  // else off == 0
  conn->wq.push_back(std::move(chain));
  if (!conn->want_write) {
    conn->want_write = true;
    if (conn->io != nullptr) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT;
      ev.data.ptr = conn.get();
      ::epoll_ctl(conn->io->epfd, EPOLL_CTL_MOD, conn->fd, &ev);
    }
    // conn->io == nullptr: adoption in flight; AdoptConn arms EPOLLOUT.
  }
  return Status::OK();
}

void TcpTransport::ReactorLoop(size_t index) {
  IoThread* io;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    io = io_threads_[index].get();
  }
  ScopedRuntimeThread census("tcp/io" + std::to_string(index));
  std::vector<epoll_event> events(64);
  // Connections closed during the current batch are parked here so a stale
  // event later in the same batch cannot dereference freed memory.
  std::vector<std::shared_ptr<Conn>> dying;
  while (!io->stop.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(io->epfd, events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      LOG_ERROR << "tcp: epoll_wait: " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n; ++i) {
      void* p = events[i].data.ptr;
      if (p == io) {
        uint64_t v;
        while (::read(io->wakeup_fd, &v, sizeof(v)) > 0) {
        }
        continue;  // stop flag re-checked at loop top
      }
      if (p == this) {
        AcceptReady();
        continue;
      }
      Conn* raw = static_cast<Conn*>(p);
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(io->conns_mu);
        auto it = io->conns.find(raw);
        if (it == io->conns.end()) continue;  // closed earlier this batch
        conn = it->second;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(io, conn);
        dying.push_back(std::move(conn));
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(io, conn);
      if (events[i].events & EPOLLIN) HandleReadable(io, conn);
      dying.push_back(std::move(conn));
    }
    dying.clear();
  }
}

void TcpTransport::AcceptReady() {
  for (;;) {
    int fd = ::accept4(listen_fd_.load(std::memory_order_relaxed), nullptr,
                       nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener closed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      accepted_.push_back(conn);
    }
    AdoptConn(conn);
  }
}

void TcpTransport::HandleReadable(IoThread* io,
                                  const std::shared_ptr<Conn>& conn) {
  char buf[65536];
  for (;;) {
    ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r > 0) {
      conn->rbuf.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {  // clean EOF
      CloseConn(io, conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(io, conn);
    return;
  }
  // Parse every complete frame out of the buffer.
  size_t pos = 0;
  std::string& rbuf = conn->rbuf;
  while (rbuf.size() - pos >= 4) {
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<uint8_t>(rbuf[pos + i]))
             << (8 * i);
    }
    if (len > kMaxFrameBytes) {
      LOG_ERROR << "tcp: oversized frame (" << len << " bytes); closing";
      CloseConn(io, conn);
      return;
    }
    if (rbuf.size() - pos - 4 < len) break;
    FramesReceivedCounter()->Add();
    BytesReceivedCounter()->Add(len + 4);
    Result<Message> msg =
        DecodeMessage(std::string_view(rbuf.data() + pos + 4, len));
    pos += 4 + len;
    if (!msg.ok()) {
      LOG_ERROR << "tcp: undecodable frame; closing: "
                << msg.status().ToString();
      CloseConn(io, conn);
      return;
    }
    Dispatch(conn, std::move(msg).value());
  }
  rbuf.erase(0, pos);
}

void TcpTransport::Dispatch(const std::shared_ptr<Conn>& conn, Message msg) {
  if (!msg.from.empty()) {
    // Peer learning: the sender is reachable over this connection.
    std::lock_guard<std::mutex> lock(mu_);
    learned_[msg.from] = conn;
  }
  if (msg.is_response) {
    // Inline on the reactor: response handlers only complete pending calls
    // and never block, and this path must not depend on a free worker.
    DeliverLocal(std::move(msg));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->in_mu);
    conn->inbox.push_back(std::move(msg));
    if (conn->drain_scheduled) return;
    conn->drain_scheduled = true;
  }
  if (!executor_->Submit(
          conn->gate.Wrap([this, conn] { DrainInbox(conn); }))) {
    std::lock_guard<std::mutex> lock(conn->in_mu);
    conn->drain_scheduled = false;
  }
}

void TcpTransport::DrainInbox(const std::shared_ptr<Conn>& conn) {
  // Runs under conn->gate (the strand): requests from one connection are
  // delivered one at a time, like the per-connection reader they replace.
  for (;;) {
    Message msg;
    {
      std::lock_guard<std::mutex> lock(conn->in_mu);
      if (conn->inbox.empty()) {
        conn->drain_scheduled = false;
        return;
      }
      msg = std::move(conn->inbox.front());
      conn->inbox.pop_front();
    }
    DeliverLocal(std::move(msg));
  }
}

void TcpTransport::HandleWritable(IoThread* io,
                                  const std::shared_ptr<Conn>& conn) {
  bool fatal = false;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    while (!conn->wq.empty()) {
      const SliceChain& f = conn->wq.front();
      ssize_t w = SendChain(conn->fd, f, conn->woff);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // still armed
        fatal = true;
        break;
      }
      conn->woff += static_cast<size_t>(w);
      conn->wbytes -= static_cast<size_t>(w);
      if (conn->woff == f.size()) {
        conn->woff = 0;
        conn->wq.pop_front();
      }
    }
    if (!fatal) {
      conn->want_write = false;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      ::epoll_ctl(io->epfd, EPOLL_CTL_MOD, conn->fd, &ev);
      return;
    }
  }
  CloseConn(io, conn);
}

void TcpTransport::CloseConn(IoThread* io,
                             const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(io->conns_mu);
    if (io->conns.erase(conn.get()) == 0) return;  // already closed
  }
  ::epoll_ctl(io->epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->closed = true;
    conn->wq.clear();
    conn->wbytes = 0;
  }
  ::close(conn->fd);
  // Drop it from the routing tables so the next Send reconnects instead of
  // writing into a dead socket.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    it = (it->second == conn) ? conns_.erase(it) : std::next(it);
  }
  for (auto it = learned_.begin(); it != learned_.end();) {
    std::shared_ptr<Conn> target = it->second.lock();
    if (target == nullptr || target == conn) {
      it = learned_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = accepted_.begin(); it != accepted_.end();) {
    it = (*it == conn) ? accepted_.erase(it) : std::next(it);
  }
}

void TcpTransport::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) ::close(lfd);  // close also deregisters it from epoll

  std::vector<std::shared_ptr<Conn>> all;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    for (auto& io : io_threads_) {
      io->stop.store(true, std::memory_order_release);
      uint64_t one = 1;
      (void)!::write(io->wakeup_fd, &one, sizeof(one));
    }
    for (auto& io : io_threads_) {
      if (io->thread.joinable()) io->thread.join();
    }
    for (auto& io : io_threads_) {
      for (auto& [_, conn] : io->conns) {
        {
          std::lock_guard<std::mutex> wl(conn->write_mu);
          conn->closed = true;
        }
        ::close(conn->fd);
        all.push_back(conn);
      }
      io->conns.clear();
      ::close(io->epfd);
      ::close(io->wakeup_fd);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns_.clear();
    accepted_.clear();
    learned_.clear();
  }
  // Fence the strands: after Close() no queued DrainInbox body will touch
  // this transport again (undelivered requests are dropped, like the
  // in-flight messages a real crash loses).
  for (auto& conn : all) conn->gate.Close();
}

}  // namespace chariots::net
