#ifndef CHARIOTS_NET_RETRYING_CHANNEL_H_
#define CHARIOTS_NET_RETRYING_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "common/retry.h"
#include "net/rpc.h"

namespace chariots::net {

/// Retry wrapper over an RpcEndpoint: repeats a call while it fails with a
/// retryable code (kUnavailable, kTimedOut — see IsRetryable), sleeping a
/// seeded jittered-exponential backoff between attempts, until the attempt
/// budget or the caller's Deadline runs out.
///
/// Only idempotent calls may be retried: a timed-out attempt can have
/// executed on the server, so a retry is a *duplicate* there. Callers either
/// mark the call non-idempotent (one attempt, no retry) or make it safe to
/// repeat — reads are naturally safe; FLStore appends carry a (client_id,
/// seq) token the maintainer dedups on.
///
/// Sleeps go through the injected Clock, so under a ManualClock a retry
/// storm runs in zero wall time. Thread-safe; concurrent calls each get an
/// independent backoff sequence derived from the channel seed.
class RetryingChannel {
 public:
  struct Options {
    BackoffPolicy backoff;
    /// Total attempts (first try included). 1 disables retries.
    uint32_t max_attempts = 4;
    /// Per-attempt response timeout.
    std::chrono::milliseconds attempt_timeout{1000};
    /// Base seed for the per-call jitter streams.
    uint64_t seed = 1;
  };

  RetryingChannel(RpcEndpoint* endpoint, Options options,
                  Clock* clock = SystemClock::Default())
      : endpoint_(endpoint), options_(options), clock_(clock) {}

  /// Calls `to` and retries retryable failures iff `idempotent`. The
  /// deadline bounds the whole loop, attempts and backoff sleeps included.
  Result<std::string> Call(const NodeId& to, uint16_t type,
                           std::string payload, bool idempotent = true,
                           Deadline deadline = Deadline());

  /// Retries performed (attempts beyond the first) across all calls.
  uint64_t retries() const { return retries_.load(); }

  RpcEndpoint* endpoint() { return endpoint_; }
  const Options& options() const { return options_; }

 private:
  RpcEndpoint* const endpoint_;
  const Options options_;
  Clock* const clock_;
  std::atomic<uint64_t> call_seq_{0};
  std::atomic<uint64_t> retries_{0};
};

}  // namespace chariots::net

#endif  // CHARIOTS_NET_RETRYING_CHANNEL_H_
