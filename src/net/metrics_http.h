#ifndef CHARIOTS_NET_METRICS_HTTP_H_
#define CHARIOTS_NET_METRICS_HTTP_H_

#include <atomic>
#include <thread>

#include "common/status.h"

namespace chariots::net {

/// Minimal blocking HTTP/1.0 server exposing the process's observability
/// surface (`chariots_node --metrics_port`). Three routes:
///
///   GET /metrics       Prometheus text exposition
///   GET /metrics.json  JSON metrics snapshot
///   GET /traces.json   JSON dump of the TraceSink ring buffer
///
/// One accept thread, one request per connection, connection closed after
/// the response — monitoring-poll traffic only, deliberately not a general
/// HTTP stack.
class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds and starts serving. Port 0 picks an ephemeral port (see port()).
  Status Start(int port);

  void Stop();

  int port() const { return port_; }

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace chariots::net

#endif  // CHARIOTS_NET_METRICS_HTTP_H_
