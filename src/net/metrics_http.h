#ifndef CHARIOTS_NET_METRICS_HTTP_H_
#define CHARIOTS_NET_METRICS_HTTP_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace chariots::net {

/// Minimal blocking HTTP/1.0 server exposing the process's observability
/// surface (`chariots_node --metrics_port`). Routes:
///
///   GET /metrics               Prometheus text exposition
///   GET /metrics.json          JSON metrics snapshot
///   GET /traces.json           JSON dump of the TraceSink ring buffer
///   GET /healthz               watchdog health report as JSON (503 until a
///                              health source is installed; 200 once the
///                              hosting server calls SetHealthSource)
///   GET /debug/flightrecorder  raw flight-recorder dump (binary; decode
///                              with `chariots_cli flightrec --decode` or
///                              flightrec::Recorder::Decode)
///
/// One accept thread, one request per connection, connection closed after
/// the response — monitoring-poll traffic only, deliberately not a general
/// HTTP stack.
class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds and starts serving. Port 0 picks an ephemeral port (see port()).
  Status Start(int port);

  void Stop();

  int port() const { return port_; }

  /// Installs the /healthz provider — typically a lambda that ticks the
  /// hosting server's watchdog and renders the report
  /// (RenderHealthJson(watchdog.TickOnce())). Callable before or after
  /// Start(); the last source wins.
  void SetHealthSource(std::function<std::string()> source);

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
  std::mutex health_mu_;
  std::function<std::string()> health_source_;
};

}  // namespace chariots::net

#endif  // CHARIOTS_NET_METRICS_HTTP_H_
