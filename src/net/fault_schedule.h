#ifndef CHARIOTS_NET_FAULT_SCHEDULE_H_
#define CHARIOTS_NET_FAULT_SCHEDULE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/message.h"

namespace chariots::net {

/// What the schedule decided for one message offered to it.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  /// Extra latency added to the original message. Because delivery is
  /// ordered by deliver-time, delaying one message past its successors IS a
  /// reorder.
  int64_t delay_nanos = 0;
  /// Extra latency of the duplicated copy relative to the original.
  int64_t duplicate_delay_nanos = 0;
};

/// A scriptable fault plan evaluated by InProcTransport on every Send plus
/// at every delivery. Faults are deterministic: rules fire on the Nth
/// message matching a predicate (messages are counted per rule, 1-based, in
/// Send order), and probabilistic rules draw from a PRNG seeded once — so a
/// failing run is reproducible from its seed and script alone.
///
/// Crash-and-restart of a node is modeled as an outage window in virtual
/// time: messages that would be *delivered* to the node inside the window
/// vanish (counted as drops), exactly like a process that is down; the
/// binding itself survives, matching a restart that re-binds the same
/// handler.
///
/// Thread-safe; all methods may be called while traffic is flowing.
class FaultSchedule {
 public:
  using Predicate = std::function<bool(const Message&)>;

  explicit FaultSchedule(uint64_t seed = 1) : rng_(seed) {}

  /// Re-seeds the PRNG behind probabilistic rules (call before a scenario so
  /// the whole schedule replays from one printed seed).
  void Seed(uint64_t seed);

  // ------------------------------------------------------- scripted rules
  // Each rule fires on matching messages number [nth, nth + count) of ITS
  // OWN match counter. nth is 1-based; count defaults to one message.

  /// Silently drops the Nth matching message.
  void DropNth(Predicate pred, uint64_t nth, uint64_t count = 1);

  /// Delivers the Nth matching message twice (the copy `dup_delay_nanos`
  /// later — a retransmission-style duplicate).
  void DuplicateNth(Predicate pred, uint64_t nth, uint64_t count = 1,
                    int64_t dup_delay_nanos = 0);

  /// Adds `delay_nanos` of latency to the Nth matching message; with a delay
  /// longer than the link latency this reorders it behind later traffic.
  void DelayNth(Predicate pred, uint64_t nth, int64_t delay_nanos,
                uint64_t count = 1);

  /// Drops each matching message with probability `p` (seeded PRNG).
  void DropWithProbability(Predicate pred, double p);

  // ---------------------------------------------------------- crash model

  /// Messages delivered to `node` with delivery time in [from, to) vanish.
  void CrashWindow(const NodeId& node, int64_t from_nanos, int64_t to_nanos);

  /// True if `node` is inside an outage window at `at_nanos`.
  bool InOutage(const NodeId& node, int64_t at_nanos) const;

  // ------------------------------------------------------ partition model

  /// Symmetric network partition in virtual time: messages sent in
  /// [from, to) between any node whose id starts with a prefix in `side_a`
  /// and any node whose id starts with a prefix in `side_b` are dropped, in
  /// BOTH directions. Prefix matching covers derived endpoints (a replica's
  /// "dc0/maintainer/1#repl" partitions with "dc0/maintainer/1"). Nodes on
  /// neither side are unaffected — so a minority side keeps talking to
  /// itself but not across the cut.
  void PartitionWindow(std::vector<std::string> side_a,
                       std::vector<std::string> side_b, int64_t from_nanos,
                       int64_t to_nanos);

  /// Asymmetric (one-way) partition: only messages FROM `from_side` TO
  /// `to_side` vanish in the window; the reverse direction still flows.
  /// This is the gray link the symmetric model can't express — A hears B
  /// but B never hears A.
  void AsymmetricPartitionWindow(std::vector<std::string> from_side,
                                 std::vector<std::string> to_side,
                                 int64_t from_nanos, int64_t to_nanos);

  /// Gray failure: every message to or from a node matching `prefix` sent
  /// in [from, to) is delayed by `delay_nanos` — the node is up and
  /// answering, just pathologically slow. Probes must not mistake this for
  /// death (and the controller must not evict a slow-but-reachable node).
  void SlowNodeWindow(std::string prefix, int64_t delay_nanos,
                      int64_t from_nanos, int64_t to_nanos);

  /// True if a partition window (symmetric or asymmetric) would drop a
  /// message from `from` to `to` sent at `at_nanos`.
  bool Partitioned(const NodeId& from, const NodeId& to,
                   int64_t at_nanos) const;

  // -------------------------------------------------------------- queries

  /// Evaluates every rule against `msg` (advancing match counters) and
  /// returns the combined decision. Called by the transport on Send with
  /// the virtual send time, which gates the partition / slow-node windows
  /// (callers without a clock can leave `now_nanos` at 0; the scripted
  /// per-message rules don't need it).
  FaultDecision Inspect(const Message& msg, int64_t now_nanos = 0);

  /// Total messages a rule dropped, duplicated, or delayed so far.
  uint64_t faults_injected() const;

  /// Removes all rules and outage windows (match counters included).
  void Clear();

  // ------------------------------------------------- predicate combinators

  static Predicate Any();
  static Predicate ToPrefix(std::string prefix);
  static Predicate FromPrefix(std::string prefix);
  static Predicate TypeIs(uint16_t type);
  /// True when both predicates hold.
  static Predicate Both(Predicate a, Predicate b);

 private:
  enum class Action { kDrop, kDuplicate, kDelay, kDropProb };

  struct Rule {
    Predicate pred;
    Action action;
    uint64_t nth = 1;       // first firing match (1-based)
    uint64_t count = 1;     // how many consecutive matches fire
    int64_t delay_nanos = 0;
    double probability = 0;
    uint64_t matches = 0;   // messages this rule's predicate matched so far
  };

  struct Outage {
    NodeId node;
    int64_t from_nanos;
    int64_t to_nanos;
  };

  struct Partition {
    std::vector<std::string> side_a;
    std::vector<std::string> side_b;
    int64_t from_nanos;
    int64_t to_nanos;
    bool symmetric;  // false: drop only side_a -> side_b
  };

  struct SlowNode {
    std::string prefix;
    int64_t delay_nanos;
    int64_t from_nanos;
    int64_t to_nanos;
  };

  static bool OnSide(const NodeId& node, const std::vector<std::string>& side);
  bool PartitionedLocked(const NodeId& from, const NodeId& to,
                         int64_t at_nanos) const;

  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  std::vector<Outage> outages_;
  std::vector<Partition> partitions_;
  std::vector<SlowNode> slow_nodes_;
  Random rng_;
  uint64_t injected_ = 0;
};

}  // namespace chariots::net

#endif  // CHARIOTS_NET_FAULT_SCHEDULE_H_
