#ifndef CHARIOTS_NET_TRANSPORT_H_
#define CHARIOTS_NET_TRANSPORT_H_

#include <functional>

#include "common/status.h"
#include "net/message.h"

namespace chariots::net {

/// Callback invoked on a transport delivery thread for each inbound message.
/// Handlers must be fast or hand off to their own executor; one slow handler
/// stalls that node's inbox.
using MessageHandler = std::function<void(Message)>;

/// Abstract point-to-point message fabric. Implementations: InProcTransport
/// (simulated latency/bandwidth inside one process) and TcpTransport (real
/// sockets). Delivery is at-most-once and FIFO per (from, to) pair unless a
/// fault model says otherwise.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Binds `node` to `handler`. Fails with AlreadyExists if bound.
  virtual Status Register(const NodeId& node, MessageHandler handler) = 0;

  /// Removes a binding; in-flight messages to the node are dropped.
  virtual Status Unregister(const NodeId& node) = 0;

  /// Queues `msg` for delivery to `msg.to`. Returns NotFound if the
  /// destination was never registered (delivery failures after a successful
  /// Send are silent, like a real network).
  virtual Status Send(Message msg) = 0;
};

}  // namespace chariots::net

#endif  // CHARIOTS_NET_TRANSPORT_H_
