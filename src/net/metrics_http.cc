#include "net/metrics_http.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/executor.h"
#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace chariots::net {

namespace {

void WriteResponse(int fd, const std::string& content_type,
                   const std::string& body) {
  std::string resp = "HTTP/1.0 200 OK\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n" + body;
  const char* data = resp.data();
  size_t n = resp.size();
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

void WriteNotFound(int fd) {
  static const char kResp[] =
      "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: "
      "close\r\n\r\n";
  (void)::send(fd, kResp, sizeof(kResp) - 1, MSG_NOSIGNAL);
}

void WriteUnavailable(int fd, const std::string& body) {
  std::string resp =
      "HTTP/1.0 503 Service Unavailable\r\nContent-Type: "
      "application/json\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  (void)::send(fd, resp.data(), resp.size(), MSG_NOSIGNAL);
}

}  // namespace

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s =
        Status::IOError(std::string("bind metrics port: ") +
                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status s =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

void MetricsHttpServer::ServeLoop() {
  ScopedRuntimeThread census("metrics/http");
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int r = ::poll(&pfd, 1, 100);
    if (r < 0 && errno != EINTR) return;
    if (r <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // Read until the end of the request headers (or 4 KiB, whichever first);
  // only the request line matters.
  std::string req;
  char buf[1024];
  while (req.size() < 4096 && req.find("\r\n\r\n") == std::string::npos) {
    ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      break;
    }
    req.append(buf, static_cast<size_t>(r));
    if (req.find('\n') != std::string::npos) break;  // have the request line
  }
  size_t sp1 = req.find(' ');
  size_t sp2 = req.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      req.substr(0, sp1) != "GET") {
    WriteNotFound(fd);
    return;
  }
  std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);

  if (path == "/metrics" || path == "/") {
    WriteResponse(fd, "text/plain; version=0.0.4",
                  metrics::RenderPrometheus(
                      metrics::Registry::Default().Snapshot()));
  } else if (path == "/metrics.json") {
    WriteResponse(
        fd, "application/json",
        metrics::RenderJson(metrics::Registry::Default().Snapshot()));
  } else if (path == "/traces.json") {
    WriteResponse(fd, "application/json",
                  trace::RenderTracesJson(trace::TraceSink::Default().Traces()));
  } else if (path == "/healthz") {
    std::function<std::string()> source;
    {
      std::lock_guard<std::mutex> lock(health_mu_);
      source = health_source_;
    }
    if (source == nullptr) {
      WriteUnavailable(fd, "{\"error\":\"no health source installed\"}");
    } else {
      WriteResponse(fd, "application/json", source());
    }
  } else if (path == "/debug/flightrecorder") {
    WriteResponse(fd, "application/octet-stream",
                  flightrec::Recorder::Default().Dump());
  } else {
    WriteNotFound(fd);
  }
}

void MetricsHttpServer::SetHealthSource(std::function<std::string()> source) {
  std::lock_guard<std::mutex> lock(health_mu_);
  health_source_ = std::move(source);
}

}  // namespace chariots::net
