#ifndef CHARIOTS_NET_TCP_TRANSPORT_H_
#define CHARIOTS_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "common/status.h"
#include "net/transport.h"

namespace chariots::net {

/// Transport over real TCP sockets. Messages are length-prefixed frames
/// (u32 little-endian length + EncodeMessage bytes).
///
/// Execution model (DESIGN.md §10): a nonblocking epoll reactor. One or a
/// few I/O threads own every socket — the listener, all reads, and all
/// queued writes — so the thread count is a constant, not one reader per
/// connection. Inbound *requests* are dispatched to the shared executor on
/// a per-connection strand (serial, like the old reader thread delivered
/// them); inbound *responses* are delivered inline on the reactor thread,
/// so a worker blocked inside a handler waiting on a Call() is unblocked
/// even when every worker is busy. Sends try the socket inline on the
/// caller's thread and fall back to a bounded per-connection write queue
/// flushed by the reactor on EPOLLOUT.
///
/// Routing: local nodes are registered handlers; remote nodes are reached via
/// prefix routes installed with AddRoute("dc1", "127.0.0.1:7001"). Longest
/// matching prefix wins. A message whose destination resolves locally is
/// delivered without touching a socket. Additionally, the transport LEARNS
/// peers: a node id seen as the sender on an inbound connection becomes
/// reachable over that connection — so servers can answer clients they
/// have no static route to (clients connect from ephemeral addresses).
class TcpTransport : public Transport {
 public:
  struct Options {
    /// Reactor (event-loop) threads. One is right for almost everything;
    /// raise it only when a single core cannot move the bytes.
    size_t io_threads = 1;
    /// Executor that runs inbound request handlers (null =
    /// Executor::Default()).
    Executor* executor = nullptr;
  };

  TcpTransport();  // default Options
  explicit TcpTransport(Options options);
  ~TcpTransport() override;

  /// Starts accepting connections on `port` (all interfaces). Pass 0 to let
  /// the OS choose; the bound port is then available via port().
  Status Listen(int port);

  int port() const { return port_; }

  /// Routes messages for node ids starting with `prefix` to `host:port`.
  void AddRoute(const std::string& prefix, const std::string& host,
                int port);

  Status Register(const NodeId& node, MessageHandler handler) override;
  Status Unregister(const NodeId& node) override;
  Status Send(Message msg) override;

  /// Closes all sockets and joins the reactor threads.
  void Shutdown();

 private:
  struct Conn;
  struct IoThread;

  void ReactorLoop(size_t index);
  /// Accept-ready on the listener (reactor thread 0 only).
  void AcceptReady();
  /// Drains the socket and dispatches every complete frame (reactor only).
  void HandleReadable(IoThread* io, const std::shared_ptr<Conn>& conn);
  /// Flushes the write queue; disarms EPOLLOUT when drained (reactor only).
  void HandleWritable(IoThread* io, const std::shared_ptr<Conn>& conn);
  /// One decoded inbound message: peer-learn + response-inline /
  /// request-strand split.
  void Dispatch(const std::shared_ptr<Conn>& conn, Message msg);
  /// Per-connection strand body: delivers queued requests one at a time.
  void DrainInbox(const std::shared_ptr<Conn>& conn);
  void DeliverLocal(Message msg);
  /// Encodes into a slice chain (borrowing the payload, DESIGN.md §15) and
  /// writes it — inline via sendmsg if the queue is empty, else queued,
  /// arming EPOLLOUT. Thread-safe.
  Status WriteFrame(const std::shared_ptr<Conn>& conn, Message msg);
  /// Removes the connection from its reactor and the routing tables and
  /// closes the socket.
  void CloseConn(IoThread* io, const std::shared_ptr<Conn>& conn);
  Result<std::shared_ptr<Conn>> GetOrConnect(const std::string& addr);
  /// Registers a socket with a reactor thread (round-robin for accepted
  /// and outbound connections alike).
  void AdoptConn(const std::shared_ptr<Conn>& conn);
  Status EnsureIoThreads();

  const Options options_;
  Executor* const executor_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<uint64_t> next_io_{0};

  std::mutex io_mu_;  // guards io_threads_ creation
  std::vector<std::unique_ptr<IoThread>> io_threads_;

  std::mutex mu_;
  std::unordered_map<NodeId, MessageHandler> local_;
  std::vector<std::pair<std::string, std::string>> routes_;  // prefix -> addr
  std::unordered_map<std::string, std::shared_ptr<Conn>> conns_;
  std::vector<std::shared_ptr<Conn>> accepted_;
  /// Peer learning: sender node id -> connection it was last seen on.
  std::unordered_map<NodeId, std::weak_ptr<Conn>> learned_;
};

}  // namespace chariots::net

#endif  // CHARIOTS_NET_TCP_TRANSPORT_H_
