#ifndef CHARIOTS_NET_TCP_TRANSPORT_H_
#define CHARIOTS_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/transport.h"

namespace chariots::net {

/// Transport over real TCP sockets. Messages are length-prefixed frames
/// (u32 little-endian length + EncodeMessage bytes). Connection handling is
/// blocking I/O with one reader thread per accepted/established connection —
/// simple and robust; suitable for the scale of a reproduction deployment.
///
/// Routing: local nodes are registered handlers; remote nodes are reached via
/// prefix routes installed with AddRoute("dc1", "127.0.0.1:7001"). Longest
/// matching prefix wins. A message whose destination resolves locally is
/// delivered without touching a socket. Additionally, the transport LEARNS
/// peers: a node id seen as the sender on an inbound connection becomes
/// reachable over that connection — so servers can answer clients they
/// have no static route to (clients connect from ephemeral addresses).
class TcpTransport : public Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  /// Starts accepting connections on `port` (all interfaces). Pass 0 to let
  /// the OS choose; the bound port is then available via port().
  Status Listen(int port);

  int port() const { return port_; }

  /// Routes messages for node ids starting with `prefix` to `host:port`.
  void AddRoute(const std::string& prefix, const std::string& host,
                int port);

  Status Register(const NodeId& node, MessageHandler handler) override;
  Status Unregister(const NodeId& node) override;
  Status Send(Message msg) override;

  /// Closes all sockets and joins all threads.
  void Shutdown();

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::thread reader;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  Status WriteFrame(Connection* conn, const Message& msg);
  Result<std::shared_ptr<Connection>> GetOrConnect(const std::string& addr);
  void Deliver(Message msg);

  std::atomic<bool> shutdown_{false};
  // Written by Listen()/Shutdown(), read by AcceptLoop(): atomic so the
  // shutdown-time reset doesn't race the accept thread's read.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  std::unordered_map<NodeId, MessageHandler> local_;
  std::vector<std::pair<std::string, std::string>> routes_;  // prefix -> addr
  std::unordered_map<std::string, std::shared_ptr<Connection>> conns_;
  std::vector<std::shared_ptr<Connection>> accepted_;
  /// Peer learning: sender node id -> connection it was last seen on.
  std::unordered_map<NodeId, std::weak_ptr<Connection>> learned_;
};

}  // namespace chariots::net

#endif  // CHARIOTS_NET_TCP_TRANSPORT_H_
