#include "net/inproc_transport.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::net {

namespace {

metrics::Counter* DeliveredCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.transport.delivered");
  return c;
}

metrics::Counter* DroppedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.transport.dropped");
  return c;
}

// Drops specifically caused by the scripted fault plan (as opposed to link
// loss, outages, or dead bindings) — lets tests verify injection happened.
metrics::Counter* FaultDropCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.transport.fault_drops");
  return c;
}

}  // namespace

/// Per-node delivery state: a priority queue ordered by delivery time,
/// drained by a dedicated thread that sleeps until the head is due.
struct InProcTransport::Inbox {
  NodeId node;
  MessageHandler handler;
  std::mutex mu;
  std::condition_variable cv;
  std::priority_queue<DelayedMessage, std::vector<DelayedMessage>,
                      std::greater<DelayedMessage>>
      queue;
  bool stopped = false;
  std::thread thread;
};

InProcTransport::InProcTransport(Clock* clock) : clock_(clock), rng_(42) {
  // Default rule: everything connected, zero latency, unlimited bandwidth.
  SetLink("", "", LinkOptions{});
}

InProcTransport::~InProcTransport() {
  std::vector<std::unique_ptr<Inbox>> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [_, inbox] : inboxes_) {
      {
        std::lock_guard<std::mutex> il(inbox->mu);
        inbox->stopped = true;
        inbox->cv.notify_all();
      }
      to_join.push_back(std::move(inbox));
    }
    inboxes_.clear();
  }
  for (auto& inbox : to_join) {
    if (inbox->thread.joinable()) inbox->thread.join();
  }
}

Status InProcTransport::Register(const NodeId& node, MessageHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inboxes_.count(node) != 0) {
    return Status::AlreadyExists("node already registered: " + node);
  }
  auto inbox = std::make_unique<Inbox>();
  inbox->node = node;
  inbox->handler = std::move(handler);
  Inbox* raw = inbox.get();
  inbox->thread = std::thread([this, raw] { InboxLoop(raw); });
  inboxes_.emplace(node, std::move(inbox));
  return Status::OK();
}

Status InProcTransport::Unregister(const NodeId& node) {
  std::unique_ptr<Inbox> inbox;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inboxes_.find(node);
    if (it == inboxes_.end()) return Status::NotFound("node: " + node);
    inbox = std::move(it->second);
    inboxes_.erase(it);
  }
  {
    std::lock_guard<std::mutex> il(inbox->mu);
    inbox->stopped = true;
    inbox->cv.notify_all();
  }
  if (inbox->thread.joinable()) inbox->thread.join();
  // Messages still queued for the dead binding are lost, not delivered:
  // account for them like any other network loss.
  size_t undelivered = inbox->queue.size();
  if (undelivered > 0) {
    DroppedCounter()->Add(undelivered);
    std::lock_guard<std::mutex> lock(mu_);
    dropped_ += undelivered;
  }
  return Status::OK();
}

InProcTransport::LinkRule* InProcTransport::ResolveLink(const NodeId& from,
                                                        const NodeId& to) {
  // Most specific match: longest dst prefix, then longest src prefix.
  LinkRule* best = nullptr;
  size_t best_dst = 0, best_src = 0;
  for (auto& rule : links_) {
    if (from.rfind(rule->src_prefix, 0) != 0) continue;
    if (to.rfind(rule->dst_prefix, 0) != 0) continue;
    size_t d = rule->dst_prefix.size(), s = rule->src_prefix.size();
    if (best == nullptr || d > best_dst || (d == best_dst && s > best_src)) {
      best = rule.get();
      best_dst = d;
      best_src = s;
    }
  }
  return best;
}

Status InProcTransport::Send(Message msg) {
  Inbox* inbox = nullptr;
  TokenBucket* bandwidth = nullptr;
  int64_t latency = 0;
  size_t wire_size = msg.WireSize();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inboxes_.find(msg.to);
    if (it == inboxes_.end()) {
      return Status::NotFound("unknown destination: " + msg.to);
    }
    inbox = it->second.get();
    LinkRule* rule = ResolveLink(msg.from, msg.to);
    if (rule != nullptr) {
      if (rule->options.drop_probability > 0 &&
          rng_.NextDouble() < rule->options.drop_probability) {
        ++dropped_;
        DroppedCounter()->Add();
        return Status::OK();  // silent loss, like a real network
      }
      latency = rule->options.latency_nanos;
      bandwidth = rule->bandwidth.get();
    }
  }
  // The scripted fault plan sees every message that survived the link's
  // probabilistic drop. A real network loses the message after the sender
  // has paid to put it on the wire, so Send still returns OK on a drop.
  FaultDecision decision = faults_.Inspect(msg);
  if (decision.drop) {
    DroppedCounter()->Add();
    FaultDropCounter()->Add();
    std::lock_guard<std::mutex> lock(mu_);
    ++dropped_;
    return Status::OK();
  }

  // Serialize onto the link outside the registry lock: this blocks the
  // sender, modeling NIC back-pressure.
  if (bandwidth != nullptr) bandwidth->Acquire(static_cast<double>(wire_size));

  DelayedMessage dm;
  dm.deliver_at_nanos = clock_->NowNanos() + latency + decision.delay_nanos;
  DelayedMessage dup;
  if (decision.duplicate) {
    dup.msg = msg;  // copy before the original is moved
    dup.deliver_at_nanos =
        dm.deliver_at_nanos + decision.duplicate_delay_nanos;
  }
  dm.msg = std::move(msg);
  {
    std::lock_guard<std::mutex> lock(mu_);
    dm.seq = ++seq_;
    if (decision.duplicate) dup.seq = ++seq_;
  }
  {
    std::lock_guard<std::mutex> il(inbox->mu);
    if (inbox->stopped) return Status::NotFound("destination stopped");
    inbox->queue.push(std::move(dm));
    if (decision.duplicate) inbox->queue.push(std::move(dup));
    inbox->cv.notify_one();
  }
  return Status::OK();
}

void InProcTransport::InboxLoop(Inbox* inbox) {
  std::unique_lock<std::mutex> lock(inbox->mu);
  for (;;) {
    if (inbox->stopped) return;
    if (inbox->queue.empty()) {
      inbox->cv.wait(lock,
                     [&] { return inbox->stopped || !inbox->queue.empty(); });
      continue;
    }
    int64_t now = clock_->NowNanos();
    const DelayedMessage& head = inbox->queue.top();
    if (head.deliver_at_nanos > now) {
      inbox->cv.wait_for(
          lock, std::chrono::nanoseconds(head.deliver_at_nanos - now));
      continue;
    }
    Message msg = std::move(const_cast<DelayedMessage&>(head).msg);
    inbox->queue.pop();
    lock.unlock();
    // Crash model: a message arriving while the destination is inside an
    // outage window vanishes, exactly as if the process were down.
    if (faults_.InOutage(inbox->node, now)) {
      DroppedCounter()->Add();
      FaultDropCounter()->Add();
      {
        std::lock_guard<std::mutex> g(mu_);
        ++dropped_;
      }
      lock.lock();
      continue;
    }
    inbox->handler(std::move(msg));
    DeliveredCounter()->Add();
    {
      std::lock_guard<std::mutex> g(mu_);
      ++delivered_;
    }
    lock.lock();
  }
}

void InProcTransport::SetLink(const std::string& src_prefix,
                              const std::string& dst_prefix,
                              LinkOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& rule : links_) {
    if (rule->src_prefix == src_prefix && rule->dst_prefix == dst_prefix) {
      rule->options = options;
      rule->bandwidth =
          options.bandwidth_bytes_per_sec > 0
              ? std::make_unique<TokenBucket>(options.bandwidth_bytes_per_sec,
                                              options.bandwidth_bytes_per_sec,
                                              clock_)
              : nullptr;
      return;
    }
  }
  auto rule = std::make_unique<LinkRule>();
  rule->src_prefix = src_prefix;
  rule->dst_prefix = dst_prefix;
  rule->options = options;
  if (options.bandwidth_bytes_per_sec > 0) {
    rule->bandwidth = std::make_unique<TokenBucket>(
        options.bandwidth_bytes_per_sec, options.bandwidth_bytes_per_sec,
        clock_);
  }
  links_.push_back(std::move(rule));
}

void InProcTransport::Partition(const std::string& a_prefix,
                                const std::string& b_prefix) {
  LinkOptions drop;
  drop.drop_probability = 1.0;
  SetLink(a_prefix, b_prefix, drop);
  SetLink(b_prefix, a_prefix, drop);
}

void InProcTransport::Heal(const std::string& a_prefix,
                           const std::string& b_prefix) {
  SetLink(a_prefix, b_prefix, LinkOptions{});
  SetLink(b_prefix, a_prefix, LinkOptions{});
}

void InProcTransport::Seed(uint64_t seed) {
  faults_.Seed(seed);
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Random(seed);
}

uint64_t InProcTransport::messages_delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

uint64_t InProcTransport::messages_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace chariots::net
