#include "net/inproc_transport.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::net {

namespace {

metrics::Counter* DeliveredCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.transport.delivered");
  return c;
}

metrics::Counter* DroppedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.transport.dropped");
  return c;
}

// Drops specifically caused by the scripted fault plan (as opposed to link
// loss, outages, or dead bindings) — lets tests verify injection happened.
metrics::Counter* FaultDropCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.transport.fault_drops");
  return c;
}

}  // namespace

/// Per-node delivery state. No thread: `ready` is drained by a strand task
/// on the executor (one at a time, preserving per-node serial delivery for
/// requests), `delayed` waits on the executor's timer service, and
/// responses are delivered inline under `resp_gate` by whichever thread
/// finds them due.
///
/// Two gates on purpose: requests serialize under `gate` (their handlers
/// may block in nested Calls), responses under `resp_gate` (their handlers
/// only complete pending calls and must never block). A reply therefore
/// never waits behind the destination's request handler — which is what
/// keeps two nodes that RPC each other simultaneously from deadlocking,
/// and what lets the non-blocking timer lane deliver delayed responses.
/// Both gates also fence the owning transport: Unregister/destruction
/// closes them, after which no queued task or timer touches the transport.
struct InProcTransport::Inbox {
  NodeId node;
  MessageHandler handler;
  std::mutex mu;
  std::priority_queue<DelayedMessage, std::vector<DelayedMessage>,
                      std::greater<DelayedMessage>>
      delayed;
  std::deque<Message> ready;
  bool drain_scheduled = false;
  bool stopped = false;
  int64_t armed_nanos = -1;  // earliest pending timer deadline (-1 = none)
  SerialGate gate;       // request strand
  SerialGate resp_gate;  // inline response delivery
};

InProcTransport::InProcTransport(Clock* clock, Executor* executor)
    : executor_(executor != nullptr ? executor : Executor::Default()),
      rng_(42) {
  clock_ = clock != nullptr ? clock : executor_->clock();
  // Default rule: everything connected, zero latency, unlimited bandwidth.
  SetLink("", "", LinkOptions{});
}

InProcTransport::~InProcTransport() {
  std::vector<std::shared_ptr<Inbox>> to_close;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [_, inbox] : inboxes_) to_close.push_back(inbox);
    inboxes_.clear();
  }
  for (auto& inbox : to_close) {
    {
      std::lock_guard<std::mutex> il(inbox->mu);
      inbox->stopped = true;
    }
    // Close() blocks until an in-flight body finishes, so after this loop
    // no strand task or timer callback will ever touch `this` again (they
    // hold the inbox by shared_ptr and no-op on the closed gates).
    inbox->gate.Close();
    inbox->resp_gate.Close();
  }
}

Status InProcTransport::Register(const NodeId& node, MessageHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inboxes_.count(node) != 0) {
    return Status::AlreadyExists("node already registered: " + node);
  }
  auto inbox = std::make_shared<Inbox>();
  inbox->node = node;
  inbox->handler = std::move(handler);
  inboxes_.emplace(node, std::move(inbox));
  return Status::OK();
}

Status InProcTransport::Unregister(const NodeId& node) {
  std::shared_ptr<Inbox> inbox;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inboxes_.find(node);
    if (it == inboxes_.end()) return Status::NotFound("node: " + node);
    inbox = std::move(it->second);
    inboxes_.erase(it);
  }
  size_t undelivered = 0;
  {
    std::lock_guard<std::mutex> il(inbox->mu);
    inbox->stopped = true;
    undelivered = inbox->delayed.size() + inbox->ready.size();
  }
  inbox->gate.Close();
  inbox->resp_gate.Close();
  // Messages still queued for the dead binding are lost, not delivered:
  // account for them like any other network loss.
  if (undelivered > 0) {
    DroppedCounter()->Add(undelivered);
    std::lock_guard<std::mutex> lock(mu_);
    dropped_ += undelivered;
  }
  return Status::OK();
}

InProcTransport::LinkRule* InProcTransport::ResolveLink(const NodeId& from,
                                                        const NodeId& to) {
  // Most specific match: longest dst prefix, then longest src prefix.
  LinkRule* best = nullptr;
  size_t best_dst = 0, best_src = 0;
  for (auto& rule : links_) {
    if (from.rfind(rule->src_prefix, 0) != 0) continue;
    if (to.rfind(rule->dst_prefix, 0) != 0) continue;
    size_t d = rule->dst_prefix.size(), s = rule->src_prefix.size();
    if (best == nullptr || d > best_dst || (d == best_dst && s > best_src)) {
      best = rule.get();
      best_dst = d;
      best_src = s;
    }
  }
  return best;
}

Status InProcTransport::Send(Message msg) {
  std::shared_ptr<Inbox> inbox;
  TokenBucket* bandwidth = nullptr;
  int64_t latency = 0;
  size_t wire_size = msg.WireSize();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inboxes_.find(msg.to);
    if (it == inboxes_.end()) {
      return Status::NotFound("unknown destination: " + msg.to);
    }
    inbox = it->second;
    LinkRule* rule = ResolveLink(msg.from, msg.to);
    if (rule != nullptr) {
      if (rule->options.drop_probability > 0 &&
          rng_.NextDouble() < rule->options.drop_probability) {
        ++dropped_;
        DroppedCounter()->Add();
        return Status::OK();  // silent loss, like a real network
      }
      latency = rule->options.latency_nanos;
      bandwidth = rule->bandwidth.get();
    }
  }
  // The scripted fault plan sees every message that survived the link's
  // probabilistic drop. A real network loses the message after the sender
  // has paid to put it on the wire, so Send still returns OK on a drop.
  FaultDecision decision = faults_.Inspect(msg, clock_->NowNanos());
  if (decision.drop) {
    DroppedCounter()->Add();
    FaultDropCounter()->Add();
    std::lock_guard<std::mutex> lock(mu_);
    ++dropped_;
    return Status::OK();
  }

  // Serialize onto the link outside the registry lock: this blocks the
  // sender, modeling NIC back-pressure.
  if (bandwidth != nullptr) bandwidth->Acquire(static_cast<double>(wire_size));

  int64_t deliver_at = clock_->NowNanos() + latency + decision.delay_nanos;
  uint64_t seq = 0, dup_seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++seq_;
    if (decision.duplicate) dup_seq = ++seq_;
  }
  Message dup;
  if (decision.duplicate) {
    dup = msg;  // copy before the original is moved
    // The only payload copy in this transport — messages are otherwise
    // moved end to end. Counted so copies_per_record stays truthful.
    CountPayloadCopied(dup.payload.size());
  }
  if (!Enqueue(inbox, std::move(msg), deliver_at, seq)) {
    return Status::NotFound("destination stopped");
  }
  if (decision.duplicate) {
    (void)Enqueue(inbox, std::move(dup),
                  deliver_at + decision.duplicate_delay_nanos, dup_seq);
  }
  return Status::OK();
}

bool InProcTransport::Enqueue(const std::shared_ptr<Inbox>& inbox,
                              Message msg, int64_t deliver_at_nanos,
                              uint64_t seq) {
  if (deliver_at_nanos > clock_->NowNanos()) {
    std::lock_guard<std::mutex> lock(inbox->mu);
    if (inbox->stopped) return false;
    inbox->delayed.push(DelayedMessage{deliver_at_nanos, seq, std::move(msg)});
    ArmLocked(inbox);
    return true;
  }
  if (msg.is_response) {
    // Inline on the sending thread: a response never queues behind the
    // destination's (possibly blocked) request handlers.
    return inbox->resp_gate.Run(
        [&] { Deliver(inbox, std::move(msg)); });
  }
  {
    std::lock_guard<std::mutex> lock(inbox->mu);
    if (inbox->stopped) return false;
    inbox->ready.push_back(std::move(msg));
  }
  ScheduleDrain(inbox);
  return true;
}

void InProcTransport::ScheduleDrain(const std::shared_ptr<Inbox>& inbox) {
  {
    std::lock_guard<std::mutex> lock(inbox->mu);
    if (inbox->drain_scheduled || inbox->stopped) return;
    inbox->drain_scheduled = true;
  }
  if (!executor_->Submit(
          inbox->gate.Wrap([this, inbox] { DrainReady(inbox); }))) {
    std::lock_guard<std::mutex> lock(inbox->mu);
    inbox->drain_scheduled = false;
  }
}

void InProcTransport::DrainReady(const std::shared_ptr<Inbox>& inbox) {
  // Runs under inbox->gate (the strand). Re-checks emptiness under the lock
  // before clearing the flag, so a concurrent Enqueue either sees the flag
  // set (and its message is picked up by this loop) or schedules a new
  // drain after the flag clears.
  for (;;) {
    Message msg;
    {
      std::lock_guard<std::mutex> lock(inbox->mu);
      if (inbox->ready.empty()) {
        inbox->drain_scheduled = false;
        return;
      }
      msg = std::move(inbox->ready.front());
      inbox->ready.pop_front();
    }
    Deliver(inbox, std::move(msg));
  }
}

void InProcTransport::DrainDue(const std::shared_ptr<Inbox>& inbox) {
  // Runs under inbox->resp_gate (timer lane or AdvanceUntil): moves due
  // requests onto the strand and delivers due responses right here. Must
  // not block — everything below is lock-bounded.
  bool has_requests = false;
  std::vector<Message> responses;
  {
    std::lock_guard<std::mutex> lock(inbox->mu);
    inbox->armed_nanos = -1;
    int64_t now = clock_->NowNanos();
    while (!inbox->delayed.empty() &&
           inbox->delayed.top().deliver_at_nanos <= now) {
      Message m =
          std::move(const_cast<DelayedMessage&>(inbox->delayed.top()).msg);
      inbox->delayed.pop();
      if (m.is_response) {
        responses.push_back(std::move(m));
      } else {
        inbox->ready.push_back(std::move(m));
        has_requests = true;
      }
    }
    ArmLocked(inbox);
  }
  for (Message& m : responses) Deliver(inbox, std::move(m));
  if (has_requests) ScheduleDrain(inbox);
}

void InProcTransport::ArmLocked(const std::shared_ptr<Inbox>& inbox) {
  if (inbox->stopped || inbox->delayed.empty()) return;
  int64_t due = inbox->delayed.top().deliver_at_nanos;
  if (inbox->armed_nanos >= 0 && inbox->armed_nanos <= due) return;
  inbox->armed_nanos = due;
  // One-shot; never cancelled. A stale firing (head changed, inbox gone)
  // finds nothing due and either re-arms or no-ops on the closed gate. The
  // outer lambda only copies `this` — it is dereferenced solely inside the
  // gate body, which the transport's destructor fences.
  (void)executor_->ScheduleAt(
      due,
      [this, inbox] {
        inbox->resp_gate.Run([this, &inbox] { DrainDue(inbox); });
      },
      Executor::Lane::kTimer);
}

void InProcTransport::Deliver(const std::shared_ptr<Inbox>& inbox,
                              Message msg) {
  // Crash model: a message arriving while the destination is inside an
  // outage window vanishes, exactly as if the process were down.
  if (faults_.InOutage(inbox->node, clock_->NowNanos())) {
    DroppedCounter()->Add();
    FaultDropCounter()->Add();
    std::lock_guard<std::mutex> lock(mu_);
    ++dropped_;
    return;
  }
  inbox->handler(std::move(msg));
  DeliveredCounter()->Add();
  std::lock_guard<std::mutex> lock(mu_);
  ++delivered_;
}

void InProcTransport::SetLink(const std::string& src_prefix,
                              const std::string& dst_prefix,
                              LinkOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& rule : links_) {
    if (rule->src_prefix == src_prefix && rule->dst_prefix == dst_prefix) {
      rule->options = options;
      rule->bandwidth =
          options.bandwidth_bytes_per_sec > 0
              ? std::make_unique<TokenBucket>(options.bandwidth_bytes_per_sec,
                                              options.bandwidth_bytes_per_sec,
                                              clock_)
              : nullptr;
      return;
    }
  }
  auto rule = std::make_unique<LinkRule>();
  rule->src_prefix = src_prefix;
  rule->dst_prefix = dst_prefix;
  rule->options = options;
  if (options.bandwidth_bytes_per_sec > 0) {
    rule->bandwidth = std::make_unique<TokenBucket>(
        options.bandwidth_bytes_per_sec, options.bandwidth_bytes_per_sec,
        clock_);
  }
  links_.push_back(std::move(rule));
}

void InProcTransport::Partition(const std::string& a_prefix,
                                const std::string& b_prefix) {
  LinkOptions drop;
  drop.drop_probability = 1.0;
  SetLink(a_prefix, b_prefix, drop);
  SetLink(b_prefix, a_prefix, drop);
}

void InProcTransport::Heal(const std::string& a_prefix,
                           const std::string& b_prefix) {
  SetLink(a_prefix, b_prefix, LinkOptions{});
  SetLink(b_prefix, a_prefix, LinkOptions{});
}

void InProcTransport::Seed(uint64_t seed) {
  faults_.Seed(seed);
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Random(seed);
}

uint64_t InProcTransport::messages_delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

uint64_t InProcTransport::messages_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace chariots::net
