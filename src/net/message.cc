#include "net/message.h"

#include "common/codec.h"
#include "common/metrics.h"

namespace chariots::net {

namespace {

metrics::Counter* PayloadEnteredCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.net.payload_bytes_entered");
  return c;
}

metrics::Counter* PayloadCopiedCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.net.payload_bytes_copied");
  return c;
}

// chariots.net.copies_per_record — bytes-weighted copies per record on the
// append path, exported in 1/100ths of a copy (gauges are integral). The
// registration lives for the process; the counters it reads are the two
// above.
const bool g_copies_gauge_registered = [] {
  metrics::Registry::Default().RegisterCallback(
      "chariots.net.copies_per_record_x100", []() -> int64_t {
        uint64_t entered = PayloadEnteredCounter()->Value();
        if (entered == 0) return 0;
        return static_cast<int64_t>(PayloadCopiedCounter()->Value() * 100 /
                                    entered);
      });
  return true;
}();

}  // namespace

void CountPayloadEntered(size_t bytes) {
  (void)g_copies_gauge_registered;
  PayloadEnteredCounter()->Add(bytes);
}

void CountPayloadCopied(size_t bytes) { PayloadCopiedCounter()->Add(bytes); }

size_t Message::WireSize() const {
  // Mirrors EncodeMessage below, field for field: three PutBytes carry a
  // u32 length prefix each (3*4), plus u16 type + u64 rpc_id + u8
  // is_response + u8 error_code = 24 fixed bytes. An active trace trailer
  // adds u64 trace_id + u32 hop count (12), per hop a length-prefixed stage
  // + u32 dc + i64 nanos (stage + 16), then u32 span count + u32 chain (8)
  // and, per span, u32 id + u32 parent + length-prefixed stage + u32 dc +
  // i64 start + i64 end (stage + 32).
  size_t trace_bytes = 0;
  if (trace.active()) {
    trace_bytes = 12 + 8;
    for (const auto& hop : trace.hops) trace_bytes += hop.stage.size() + 16;
    for (const auto& span : trace.spans) {
      trace_bytes += span.stage.size() + 32;
    }
  }
  return from.size() + to.size() + payload.size() + trace_bytes + 24;
}

std::string EncodeMessage(const Message& msg) {
  // The legacy concatenating encode copies the payload into the output
  // string — counted, so the copies-per-record gauge stays truthful for
  // any caller still on this path.
  CountPayloadCopied(msg.payload.size());
  BinaryWriter w;
  w.PutBytes(msg.from);
  w.PutBytes(msg.to);
  w.PutU16(msg.type);
  w.PutU64(msg.rpc_id);
  w.PutU8(msg.is_response ? 1 : 0);
  w.PutU8(msg.error_code);
  w.PutBytes(msg.payload);
  // Trace rides as an optional trailing field: absent entirely (zero bytes)
  // for unsampled messages, and ignored by decoders that stop at payload.
  trace::EncodeTrace(msg.trace, &w);
  return std::move(w).data();
}

SliceChain EncodeMessageSlices(Message&& msg, std::string_view prepend) {
  SliceChain chain;
  BinaryWriter hdr;
  hdr.PutRaw(prepend);
  hdr.PutBytes(msg.from);
  hdr.PutBytes(msg.to);
  hdr.PutU16(msg.type);
  hdr.PutU64(msg.rpc_id);
  hdr.PutU8(msg.is_response ? 1 : 0);
  hdr.PutU8(msg.error_code);
  hdr.PutU32(static_cast<uint32_t>(msg.payload.size()));
  if (msg.payload.size() < kInlineMessagePayloadBytes) {
    // Small payload: one buffer beats a third iovec entry. This is the only
    // payload copy on the slice path, and it is counted.
    CountPayloadCopied(msg.payload.size());
    hdr.PutRaw(msg.payload);
    trace::EncodeTrace(msg.trace, &hdr);
    chain.AppendOwned(std::move(hdr).data());
    return chain;
  }
  chain.AppendOwned(std::move(hdr).data());
  // The payload buffer is moved, not copied: the chain's refcount keeps it
  // alive through the write queue and any retransmit.
  chain.AppendOwned(std::move(msg.payload));
  if (msg.trace.active()) {
    BinaryWriter trailer;
    trace::EncodeTrace(msg.trace, &trailer);
    chain.AppendOwned(std::move(trailer).data());
  }
  return chain;
}

Result<Message> DecodeMessage(std::string_view data) {
  BinaryReader r(data);
  Message msg;
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&msg.from));
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&msg.to));
  CHARIOTS_RETURN_IF_ERROR(r.GetU16(&msg.type));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&msg.rpc_id));
  uint8_t is_response = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU8(&is_response));
  msg.is_response = is_response != 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU8(&msg.error_code));
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&msg.payload));
  if (!trace::DecodeTrace(&r, &msg.trace)) {
    return Status::Corruption("bad trace trailer in message");
  }
  return msg;
}

}  // namespace chariots::net
