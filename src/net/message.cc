#include "net/message.h"

#include "common/codec.h"

namespace chariots::net {

size_t Message::WireSize() const {
  // Mirrors EncodeMessage below, field for field: three PutBytes carry a
  // u32 length prefix each (3*4), plus u16 type + u64 rpc_id + u8
  // is_response + u8 error_code = 24 fixed bytes. An active trace trailer
  // adds u64 trace_id + u32 hop count (12), per hop a length-prefixed stage
  // + u32 dc + i64 nanos (stage + 16), then u32 span count + u32 chain (8)
  // and, per span, u32 id + u32 parent + length-prefixed stage + u32 dc +
  // i64 start + i64 end (stage + 32).
  size_t trace_bytes = 0;
  if (trace.active()) {
    trace_bytes = 12 + 8;
    for (const auto& hop : trace.hops) trace_bytes += hop.stage.size() + 16;
    for (const auto& span : trace.spans) {
      trace_bytes += span.stage.size() + 32;
    }
  }
  return from.size() + to.size() + payload.size() + trace_bytes + 24;
}

std::string EncodeMessage(const Message& msg) {
  BinaryWriter w;
  w.PutBytes(msg.from);
  w.PutBytes(msg.to);
  w.PutU16(msg.type);
  w.PutU64(msg.rpc_id);
  w.PutU8(msg.is_response ? 1 : 0);
  w.PutU8(msg.error_code);
  w.PutBytes(msg.payload);
  // Trace rides as an optional trailing field: absent entirely (zero bytes)
  // for unsampled messages, and ignored by decoders that stop at payload.
  trace::EncodeTrace(msg.trace, &w);
  return std::move(w).data();
}

Result<Message> DecodeMessage(std::string_view data) {
  BinaryReader r(data);
  Message msg;
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&msg.from));
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&msg.to));
  CHARIOTS_RETURN_IF_ERROR(r.GetU16(&msg.type));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&msg.rpc_id));
  uint8_t is_response = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU8(&is_response));
  msg.is_response = is_response != 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU8(&msg.error_code));
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&msg.payload));
  if (!trace::DecodeTrace(&r, &msg.trace)) {
    return Status::Corruption("bad trace trailer in message");
  }
  return msg;
}

}  // namespace chariots::net
