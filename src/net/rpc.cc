#include "net/rpc.h"

#include <algorithm>

#include "common/logging.h"

namespace chariots::net {

RpcEndpoint::RpcEndpoint(Transport* transport, NodeId node)
    : transport_(transport), node_(std::move(node)) {}

RpcEndpoint::~RpcEndpoint() { Stop(); }

void RpcEndpoint::Handle(uint16_t type, RpcHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[type] = std::move(handler);
}

void RpcEndpoint::HandleOneWay(uint16_t type, OneWayHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  oneway_handlers_[type] = std::move(handler);
}

Status RpcEndpoint::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::FailedPrecondition("endpoint started");
    started_ = true;
  }
  return transport_->Register(node_,
                              [this](Message msg) { OnMessage(std::move(msg)); });
}

void RpcEndpoint::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    started_ = false;
    for (auto& [_, call] : pending_) {
      std::lock_guard<std::mutex> cl(call->mu);
      call->done = true;
      call->status = Status::Unavailable("endpoint stopped");
      call->cv.notify_all();
    }
    pending_.clear();
  }
  (void)transport_->Unregister(node_);
}

void RpcEndpoint::OnMessage(Message msg) {
  if (msg.is_response) {
    std::shared_ptr<PendingCall> call;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(msg.rpc_id);
      if (it == pending_.end()) return;  // late response; already timed out
      call = it->second;
      pending_.erase(it);
    }
    std::lock_guard<std::mutex> cl(call->mu);
    call->done = true;
    if (msg.error_code != 0) {
      call->status =
          Status(static_cast<StatusCode>(msg.error_code), msg.payload);
    } else {
      call->response = std::move(msg.payload);
    }
    call->cv.notify_all();
    return;
  }

  if (msg.rpc_id == 0) {
    OneWayHandler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = oneway_handlers_.find(msg.type);
      if (it != oneway_handlers_.end()) handler = it->second;
    }
    if (handler) {
      handler(msg.from, std::move(msg.payload));
    } else {
      LOG_WARN << node_ << ": no one-way handler for type " << msg.type;
    }
    return;
  }

  RpcHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(msg.type);
    if (it != handlers_.end()) handler = it->second;
  }

  Message reply;
  reply.from = node_;
  reply.to = msg.from;
  reply.type = msg.type;
  reply.rpc_id = msg.rpc_id;
  reply.is_response = true;
  if (!handler) {
    reply.error_code = static_cast<uint8_t>(StatusCode::kNotSupported);
    reply.payload = "no handler for opcode";
  } else {
    Result<std::string> result = handler(msg.from, msg.payload);
    if (result.ok()) {
      reply.payload = std::move(result).value();
    } else {
      reply.error_code = static_cast<uint8_t>(result.status().code());
      reply.payload = result.status().message();
    }
  }
  (void)transport_->Send(std::move(reply));
}

Result<std::string> RpcEndpoint::Call(const NodeId& to, uint16_t type,
                                      std::string payload,
                                      const CallOptions& options) {
  if (options.deadline.Expired()) {
    return Deadline::ExceededError("rpc to " + to);
  }
  auto call = std::make_shared<PendingCall>();
  uint64_t rpc_id = next_rpc_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return Status::FailedPrecondition("endpoint not started");
    pending_.emplace(rpc_id, call);
  }

  Message msg;
  msg.from = node_;
  msg.to = to;
  msg.type = type;
  msg.rpc_id = rpc_id;
  msg.payload = std::move(payload);
  Status send_status = transport_->Send(std::move(msg));
  if (!send_status.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(rpc_id);
    }
    if (send_status.IsNotFound()) {
      // The destination has no binding right now (crashed, restarting, or
      // not yet up). To the caller that is a transient reachability
      // failure, not a data-level NotFound — report it retryable.
      return Status::Unavailable("destination not reachable: " + to);
    }
    return send_status;
  }

  auto wait = std::chrono::nanoseconds(options.timeout);
  if (!options.deadline.IsInfinite()) {
    wait = std::min(
        wait, std::chrono::nanoseconds(options.deadline.RemainingNanos()));
  }
  std::unique_lock<std::mutex> cl(call->mu);
  if (!call->cv.wait_for(cl, wait, [&] { return call->done; })) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(rpc_id);
    }
    if (options.deadline.Expired()) {
      return Deadline::ExceededError("rpc to " + to);
    }
    return Status::TimedOut("rpc to " + to + " timed out");
  }
  if (!call->status.ok()) return call->status;
  return std::move(call->response);
}

Status RpcEndpoint::Notify(const NodeId& to, uint16_t type,
                           std::string payload) {
  Message msg;
  msg.from = node_;
  msg.to = to;
  msg.type = type;
  msg.rpc_id = 0;
  msg.payload = std::move(payload);
  return transport_->Send(std::move(msg));
}

}  // namespace chariots::net
