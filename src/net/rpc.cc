#include "net/rpc.h"

#include <algorithm>

#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::net {

namespace {

thread_local trace::TraceContext t_current_rpc_trace;

// Sets the delivery thread's current-request trace for the duration of a
// handler invocation.
class ScopedRpcTrace {
 public:
  explicit ScopedRpcTrace(trace::TraceContext ctx) {
    t_current_rpc_trace = std::move(ctx);
  }
  ~ScopedRpcTrace() { t_current_rpc_trace = trace::TraceContext{}; }
};

// Channel label for per-channel RPC metrics: the first path component of
// the destination node id ("geo/dc0/api" -> "geo", "m3" -> "m3" — flat ids
// are their own channel).
std::string ChannelOf(const NodeId& to) {
  size_t slash = to.find('/');
  return slash == std::string::npos ? to : to.substr(0, slash);
}

metrics::Counter* CallCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.rpc.calls");
  return c;
}

metrics::Counter* CallErrorCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.rpc.call_errors");
  return c;
}

metrics::Counter* CallTimeoutCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.rpc.call_timeouts");
  return c;
}

metrics::Counter* HandledCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.rpc.requests_handled");
  return c;
}

metrics::Counter* HandlerErrorCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.rpc.handler_errors");
  return c;
}

}  // namespace

const trace::TraceContext& CurrentRpcTrace() { return t_current_rpc_trace; }

RpcEndpoint::RpcEndpoint(Transport* transport, NodeId node)
    : transport_(transport), node_(std::move(node)) {}

RpcEndpoint::~RpcEndpoint() { Stop(); }

void RpcEndpoint::Handle(uint16_t type, RpcHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[type] = std::move(handler);
}

void RpcEndpoint::HandleOneWay(uint16_t type, OneWayHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  oneway_handlers_[type] = std::move(handler);
}

Status RpcEndpoint::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::FailedPrecondition("endpoint started");
    started_ = true;
  }
  return transport_->Register(node_,
                              [this](Message msg) { OnMessage(std::move(msg)); });
}

void RpcEndpoint::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    started_ = false;
    for (auto& [_, call] : pending_) {
      std::lock_guard<std::mutex> cl(call->mu);
      call->done = true;
      call->status = Status::Unavailable("endpoint stopped");
      call->cv.notify_all();
    }
    pending_.clear();
  }
  (void)transport_->Unregister(node_);
}

void RpcEndpoint::OnMessage(Message msg) {
  if (msg.is_response) {
    std::shared_ptr<PendingCall> call;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(msg.rpc_id);
      if (it == pending_.end()) return;  // late response; already timed out
      call = it->second;
      pending_.erase(it);
    }
    std::lock_guard<std::mutex> cl(call->mu);
    call->done = true;
    if (msg.error_code != 0) {
      call->status =
          Status(static_cast<StatusCode>(msg.error_code), msg.payload);
    } else {
      call->response = std::move(msg.payload);
    }
    call->cv.notify_all();
    return;
  }

  if (msg.rpc_id == 0) {
    OneWayHandler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = oneway_handlers_.find(msg.type);
      if (it != oneway_handlers_.end()) handler = it->second;
    }
    if (handler) {
      handler(msg.from, std::move(msg.payload));
    } else {
      LOG_WARN << node_ << ": no one-way handler for type " << msg.type;
    }
    return;
  }

  RpcHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(msg.type);
    if (it != handlers_.end()) handler = it->second;
  }

  Message reply;
  reply.from = node_;
  reply.to = msg.from;
  reply.type = msg.type;
  reply.rpc_id = msg.rpc_id;
  reply.is_response = true;
  if (!handler) {
    reply.error_code = static_cast<uint8_t>(StatusCode::kNotSupported);
    reply.payload = "no handler for opcode";
  } else {
    HandledCounter()->Add();
    flightrec::Record(flightrec::EventType::kRpcStart, msg.type, 0, msg.rpc_id,
                      msg.payload.size());
    ScopedRpcTrace scoped_trace(std::move(msg.trace));
    Result<std::string> result = handler(msg.from, msg.payload);
    if (result.ok()) {
      reply.payload = std::move(result).value();
    } else {
      HandlerErrorCounter()->Add();
      reply.error_code = static_cast<uint8_t>(result.status().code());
      reply.payload = result.status().message();
    }
    flightrec::Record(flightrec::EventType::kRpcEnd, msg.type,
                      reply.error_code, msg.rpc_id, reply.payload.size());
  }
  (void)transport_->Send(std::move(reply));
}

Result<std::string> RpcEndpoint::Call(const NodeId& to, uint16_t type,
                                      std::string payload,
                                      const CallOptions& options) {
  if (options.deadline.Expired()) {
    return Deadline::ExceededError("rpc to " + to);
  }
  CallCounter()->Add();
  metrics::ScopedLatencyTimer latency(metrics::Registry::Default().GetHistogram(
      "net.rpc.call_latency_ns." + ChannelOf(to)));
  auto call = std::make_shared<PendingCall>();
  uint64_t rpc_id = next_rpc_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return Status::FailedPrecondition("endpoint not started");
    pending_.emplace(rpc_id, call);
  }

  Message msg;
  msg.from = node_;
  msg.to = to;
  msg.type = type;
  msg.rpc_id = rpc_id;
  msg.payload = std::move(payload);
  msg.trace = options.trace;
  Status send_status = transport_->Send(std::move(msg));
  if (!send_status.ok()) {
    CallErrorCounter()->Add();
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(rpc_id);
    }
    if (send_status.IsNotFound()) {
      // The destination has no binding right now (crashed, restarting, or
      // not yet up). To the caller that is a transient reachability
      // failure, not a data-level NotFound — report it retryable.
      return Status::Unavailable("destination not reachable: " + to);
    }
    return send_status;
  }

  auto wait = std::chrono::nanoseconds(options.timeout);
  if (!options.deadline.IsInfinite()) {
    wait = std::min(
        wait, std::chrono::nanoseconds(options.deadline.RemainingNanos()));
  }
  std::unique_lock<std::mutex> cl(call->mu);
  if (!call->cv.wait_for(cl, wait, [&] { return call->done; })) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(rpc_id);
    }
    CallTimeoutCounter()->Add();
    if (options.deadline.Expired()) {
      return Deadline::ExceededError("rpc to " + to);
    }
    return Status::TimedOut("rpc to " + to + " timed out");
  }
  if (!call->status.ok()) {
    CallErrorCounter()->Add();
    return call->status;
  }
  return std::move(call->response);
}

Status RpcEndpoint::Notify(const NodeId& to, uint16_t type,
                           std::string payload) {
  Message msg;
  msg.from = node_;
  msg.to = to;
  msg.type = type;
  msg.rpc_id = 0;
  msg.payload = std::move(payload);
  return transport_->Send(std::move(msg));
}

}  // namespace chariots::net
