#include "net/fault_schedule.h"

#include <algorithm>
#include <utility>

#include "common/flight_recorder.h"

namespace chariots::net {

namespace {
// kFaultFire `code` values: which injection mechanism fired.
enum FaultKind : uint16_t {
  kFaultPartition = 1,
  kFaultSlowNode = 2,
  kFaultDrop = 3,
  kFaultDuplicate = 4,
  kFaultDelay = 5,
};
}  // namespace

void FaultSchedule::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Random(seed);
}

void FaultSchedule::DropNth(Predicate pred, uint64_t nth, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.pred = std::move(pred);
  rule.action = Action::kDrop;
  rule.nth = nth;
  rule.count = count;
  rules_.push_back(std::move(rule));
}

void FaultSchedule::DuplicateNth(Predicate pred, uint64_t nth, uint64_t count,
                                 int64_t dup_delay_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.pred = std::move(pred);
  rule.action = Action::kDuplicate;
  rule.nth = nth;
  rule.count = count;
  rule.delay_nanos = dup_delay_nanos;
  rules_.push_back(std::move(rule));
}

void FaultSchedule::DelayNth(Predicate pred, uint64_t nth,
                             int64_t delay_nanos, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.pred = std::move(pred);
  rule.action = Action::kDelay;
  rule.nth = nth;
  rule.count = count;
  rule.delay_nanos = delay_nanos;
  rules_.push_back(std::move(rule));
}

void FaultSchedule::DropWithProbability(Predicate pred, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.pred = std::move(pred);
  rule.action = Action::kDropProb;
  rule.probability = p;
  rules_.push_back(std::move(rule));
}

void FaultSchedule::CrashWindow(const NodeId& node, int64_t from_nanos,
                                int64_t to_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  outages_.push_back(Outage{node, from_nanos, to_nanos});
}

bool FaultSchedule::InOutage(const NodeId& node, int64_t at_nanos) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Outage& o : outages_) {
    if (o.node == node && at_nanos >= o.from_nanos && at_nanos < o.to_nanos) {
      return true;
    }
  }
  return false;
}

void FaultSchedule::PartitionWindow(std::vector<std::string> side_a,
                                    std::vector<std::string> side_b,
                                    int64_t from_nanos, int64_t to_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.push_back(Partition{std::move(side_a), std::move(side_b),
                                  from_nanos, to_nanos,
                                  /*symmetric=*/true});
}

void FaultSchedule::AsymmetricPartitionWindow(std::vector<std::string> from_side,
                                              std::vector<std::string> to_side,
                                              int64_t from_nanos,
                                              int64_t to_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.push_back(Partition{std::move(from_side), std::move(to_side),
                                  from_nanos, to_nanos,
                                  /*symmetric=*/false});
}

void FaultSchedule::SlowNodeWindow(std::string prefix, int64_t delay_nanos,
                                   int64_t from_nanos, int64_t to_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_nodes_.push_back(
      SlowNode{std::move(prefix), delay_nanos, from_nanos, to_nanos});
}

bool FaultSchedule::OnSide(const NodeId& node,
                           const std::vector<std::string>& side) {
  for (const std::string& prefix : side) {
    if (node.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

bool FaultSchedule::PartitionedLocked(const NodeId& from, const NodeId& to,
                                      int64_t at_nanos) const {
  for (const Partition& p : partitions_) {
    if (at_nanos < p.from_nanos || at_nanos >= p.to_nanos) continue;
    if (OnSide(from, p.side_a) && OnSide(to, p.side_b)) return true;
    if (p.symmetric && OnSide(from, p.side_b) && OnSide(to, p.side_a)) {
      return true;
    }
  }
  return false;
}

bool FaultSchedule::Partitioned(const NodeId& from, const NodeId& to,
                                int64_t at_nanos) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PartitionedLocked(from, to, at_nanos);
}

FaultDecision FaultSchedule::Inspect(const Message& msg, int64_t now_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultDecision decision;
  if (PartitionedLocked(msg.from, msg.to, now_nanos)) {
    ++injected_;
    flightrec::Record(flightrec::EventType::kFaultFire, kFaultPartition,
                      msg.type);
    decision.drop = true;
    return decision;  // the cut wins; no point evaluating scripted rules
  }
  for (const SlowNode& s : slow_nodes_) {
    if (now_nanos < s.from_nanos || now_nanos >= s.to_nanos) continue;
    if (msg.to.rfind(s.prefix, 0) == 0 || msg.from.rfind(s.prefix, 0) == 0) {
      ++injected_;
      flightrec::Record(flightrec::EventType::kFaultFire, kFaultSlowNode,
                        msg.type, static_cast<uint64_t>(s.delay_nanos));
      decision.delay_nanos += s.delay_nanos;
      break;  // one gray node on the path is enough; don't stack windows
    }
  }
  for (Rule& rule : rules_) {
    if (!rule.pred(msg)) continue;
    ++rule.matches;
    bool fires;
    if (rule.action == Action::kDropProb) {
      fires = rng_.NextDouble() < rule.probability;
    } else {
      fires = rule.matches >= rule.nth && rule.matches < rule.nth + rule.count;
    }
    if (!fires) continue;
    ++injected_;
    switch (rule.action) {
      case Action::kDrop:
      case Action::kDropProb:
        flightrec::Record(flightrec::EventType::kFaultFire, kFaultDrop,
                          msg.type);
        decision.drop = true;
        break;
      case Action::kDuplicate:
        flightrec::Record(flightrec::EventType::kFaultFire, kFaultDuplicate,
                          msg.type, static_cast<uint64_t>(rule.delay_nanos));
        decision.duplicate = true;
        decision.duplicate_delay_nanos =
            std::max(decision.duplicate_delay_nanos, rule.delay_nanos);
        break;
      case Action::kDelay:
        flightrec::Record(flightrec::EventType::kFaultFire, kFaultDelay,
                          msg.type, static_cast<uint64_t>(rule.delay_nanos));
        decision.delay_nanos += rule.delay_nanos;
        break;
    }
  }
  return decision;
}

uint64_t FaultSchedule::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

void FaultSchedule::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  outages_.clear();
  partitions_.clear();
  slow_nodes_.clear();
  injected_ = 0;
}

FaultSchedule::Predicate FaultSchedule::Any() {
  return [](const Message&) { return true; };
}

FaultSchedule::Predicate FaultSchedule::ToPrefix(std::string prefix) {
  return [prefix = std::move(prefix)](const Message& msg) {
    return msg.to.rfind(prefix, 0) == 0;
  };
}

FaultSchedule::Predicate FaultSchedule::FromPrefix(std::string prefix) {
  return [prefix = std::move(prefix)](const Message& msg) {
    return msg.from.rfind(prefix, 0) == 0;
  };
}

FaultSchedule::Predicate FaultSchedule::TypeIs(uint16_t type) {
  return [type](const Message& msg) { return msg.type == type; };
}

FaultSchedule::Predicate FaultSchedule::Both(Predicate a, Predicate b) {
  return [a = std::move(a), b = std::move(b)](const Message& msg) {
    return a(msg) && b(msg);
  };
}

}  // namespace chariots::net
