#include "net/fault_schedule.h"

#include <algorithm>
#include <utility>

namespace chariots::net {

void FaultSchedule::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Random(seed);
}

void FaultSchedule::DropNth(Predicate pred, uint64_t nth, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.pred = std::move(pred);
  rule.action = Action::kDrop;
  rule.nth = nth;
  rule.count = count;
  rules_.push_back(std::move(rule));
}

void FaultSchedule::DuplicateNth(Predicate pred, uint64_t nth, uint64_t count,
                                 int64_t dup_delay_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.pred = std::move(pred);
  rule.action = Action::kDuplicate;
  rule.nth = nth;
  rule.count = count;
  rule.delay_nanos = dup_delay_nanos;
  rules_.push_back(std::move(rule));
}

void FaultSchedule::DelayNth(Predicate pred, uint64_t nth,
                             int64_t delay_nanos, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.pred = std::move(pred);
  rule.action = Action::kDelay;
  rule.nth = nth;
  rule.count = count;
  rule.delay_nanos = delay_nanos;
  rules_.push_back(std::move(rule));
}

void FaultSchedule::DropWithProbability(Predicate pred, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.pred = std::move(pred);
  rule.action = Action::kDropProb;
  rule.probability = p;
  rules_.push_back(std::move(rule));
}

void FaultSchedule::CrashWindow(const NodeId& node, int64_t from_nanos,
                                int64_t to_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  outages_.push_back(Outage{node, from_nanos, to_nanos});
}

bool FaultSchedule::InOutage(const NodeId& node, int64_t at_nanos) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Outage& o : outages_) {
    if (o.node == node && at_nanos >= o.from_nanos && at_nanos < o.to_nanos) {
      return true;
    }
  }
  return false;
}

FaultDecision FaultSchedule::Inspect(const Message& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultDecision decision;
  for (Rule& rule : rules_) {
    if (!rule.pred(msg)) continue;
    ++rule.matches;
    bool fires;
    if (rule.action == Action::kDropProb) {
      fires = rng_.NextDouble() < rule.probability;
    } else {
      fires = rule.matches >= rule.nth && rule.matches < rule.nth + rule.count;
    }
    if (!fires) continue;
    ++injected_;
    switch (rule.action) {
      case Action::kDrop:
      case Action::kDropProb:
        decision.drop = true;
        break;
      case Action::kDuplicate:
        decision.duplicate = true;
        decision.duplicate_delay_nanos =
            std::max(decision.duplicate_delay_nanos, rule.delay_nanos);
        break;
      case Action::kDelay:
        decision.delay_nanos += rule.delay_nanos;
        break;
    }
  }
  return decision;
}

uint64_t FaultSchedule::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

void FaultSchedule::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  outages_.clear();
  injected_ = 0;
}

FaultSchedule::Predicate FaultSchedule::Any() {
  return [](const Message&) { return true; };
}

FaultSchedule::Predicate FaultSchedule::ToPrefix(std::string prefix) {
  return [prefix = std::move(prefix)](const Message& msg) {
    return msg.to.rfind(prefix, 0) == 0;
  };
}

FaultSchedule::Predicate FaultSchedule::FromPrefix(std::string prefix) {
  return [prefix = std::move(prefix)](const Message& msg) {
    return msg.from.rfind(prefix, 0) == 0;
  };
}

FaultSchedule::Predicate FaultSchedule::TypeIs(uint16_t type) {
  return [type](const Message& msg) { return msg.type == type; };
}

FaultSchedule::Predicate FaultSchedule::Both(Predicate a, Predicate b) {
  return [a = std::move(a), b = std::move(b)](const Message& msg) {
    return a(msg) && b(msg);
  };
}

}  // namespace chariots::net
