#include "net/retrying_channel.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::net {

namespace {

metrics::Counter* RetryCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.rpc.retries");
  return c;
}

metrics::Counter* ExhaustedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("net.rpc.retries_exhausted");
  return c;
}

}  // namespace

Result<std::string> RetryingChannel::Call(const NodeId& to, uint16_t type,
                                          std::string payload,
                                          bool idempotent,
                                          Deadline deadline) {
  Backoff backoff(options_.backoff,
                  options_.seed +
                      call_seq_.fetch_add(1, std::memory_order_relaxed));
  CallOptions call_options;
  call_options.timeout = options_.attempt_timeout;
  call_options.deadline = deadline;
  for (uint32_t attempt = 1;; ++attempt) {
    Result<std::string> result =
        endpoint_->Call(to, type, payload, call_options);
    if (result.ok() || !result.status().IsRetryable() || !idempotent ||
        attempt >= options_.max_attempts) {
      if (!result.ok() && attempt >= options_.max_attempts) {
        ExhaustedCounter()->Add();
        LOG_EVERY_N_SEC(kWarn, 5)
            << "rpc to " << to << " (type " << type << ") failed after "
            << attempt << " attempts: " << result.status().ToString();
      }
      return result;
    }
    int64_t delay = backoff.NextDelayNanos();
    if (!deadline.IsInfinite()) {
      int64_t remaining = deadline.RemainingNanos();
      if (remaining == 0) return result;  // budget gone: report last failure
      delay = std::min(delay, remaining);
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    RetryCounter()->Add();
    LOG_EVERY_N_SEC(kWarn, 5)
        << "rpc to " << to << " (type " << type << ") attempt " << attempt
        << " failed, retrying: " << result.status().ToString();
    clock_->SleepFor(delay);
  }
}

}  // namespace chariots::net
