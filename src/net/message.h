#ifndef CHARIOTS_NET_MESSAGE_H_
#define CHARIOTS_NET_MESSAGE_H_

#include <cstdint>
#include <string>

#include "common/codec.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"

namespace chariots::net {

/// Logical node address. Nodes are named hierarchically by convention,
/// e.g. "dc0/maintainer/2" or "dc1/receiver/0".
using NodeId = std::string;

/// A unit of communication between nodes. `type` is an application-defined
/// opcode; `rpc_id` correlates a response with its request (0 for one-way
/// notifications).
struct Message {
  NodeId from;
  NodeId to;
  uint16_t type = 0;
  uint64_t rpc_id = 0;
  bool is_response = false;
  /// Non-zero on an error response: holds the StatusCode.
  uint8_t error_code = 0;
  std::string payload;
  /// Record-level trace carried in the message header; inactive (and
  /// zero-byte on the wire) for unsampled traffic.
  trace::TraceContext trace;

  /// Exact wire size in bytes — equals EncodeMessage(*this).size().
  /// Used by the bandwidth simulation; defined next to the codec so the
  /// two cannot drift apart silently (net_test asserts equality).
  size_t WireSize() const;
};

/// Serializes a message to wire bytes (used by the TCP transport).
std::string EncodeMessage(const Message& msg);

/// Payloads below this size are copied into the header buffer by
/// EncodeMessageSlices instead of borrowed: a third iovec entry costs more
/// than a small memcpy. Large payloads — the bytes the zero-copy datapath
/// exists for — are always borrowed.
inline constexpr size_t kInlineMessagePayloadBytes = 512;

/// Slice-chain encode (DESIGN.md §15): header and trace-trailer bytes are
/// freshly encoded into chain-owned buffers while a large payload is MOVED
/// into a refcounted Buffer and borrowed, so record bytes are referenced,
/// never copied, from here to the socket. `prepend` (may be empty) is
/// placed verbatim before the message inside the header buffer — the TCP
/// framing length prefix rides there for free.
/// Guarantee: chain.Flatten() == prepend + EncodeMessage(msg), byte for
/// byte, for every message shape (asserted in net_test).
SliceChain EncodeMessageSlices(Message&& msg, std::string_view prepend = {});

/// Parses wire bytes back into a message.
Result<Message> DecodeMessage(std::string_view data);

/// Append-path copy accounting (feeds chariots.net.copies_per_record).
/// Every layer that memcpys record payload bytes on the way from the client
/// encode to the socket/disk reports them via CountPayloadCopied; each
/// payload entering the datapath counts once via CountPayloadEntered. The
/// exported gauge is the bytes-weighted average number of copies per
/// record: copied bytes / entered bytes, in 1/100ths of a copy.
void CountPayloadEntered(size_t bytes);
void CountPayloadCopied(size_t bytes);

}  // namespace chariots::net

#endif  // CHARIOTS_NET_MESSAGE_H_
