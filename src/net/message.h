#ifndef CHARIOTS_NET_MESSAGE_H_
#define CHARIOTS_NET_MESSAGE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"

namespace chariots::net {

/// Logical node address. Nodes are named hierarchically by convention,
/// e.g. "dc0/maintainer/2" or "dc1/receiver/0".
using NodeId = std::string;

/// A unit of communication between nodes. `type` is an application-defined
/// opcode; `rpc_id` correlates a response with its request (0 for one-way
/// notifications).
struct Message {
  NodeId from;
  NodeId to;
  uint16_t type = 0;
  uint64_t rpc_id = 0;
  bool is_response = false;
  /// Non-zero on an error response: holds the StatusCode.
  uint8_t error_code = 0;
  std::string payload;
  /// Record-level trace carried in the message header; inactive (and
  /// zero-byte on the wire) for unsampled traffic.
  trace::TraceContext trace;

  /// Exact wire size in bytes — equals EncodeMessage(*this).size().
  /// Used by the bandwidth simulation; defined next to the codec so the
  /// two cannot drift apart silently (net_test asserts equality).
  size_t WireSize() const;
};

/// Serializes a message to wire bytes (used by the TCP transport).
std::string EncodeMessage(const Message& msg);

/// Parses wire bytes back into a message.
Result<Message> DecodeMessage(std::string_view data);

}  // namespace chariots::net

#endif  // CHARIOTS_NET_MESSAGE_H_
