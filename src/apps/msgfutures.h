#ifndef CHARIOTS_APPS_MSGFUTURES_H_
#define CHARIOTS_APPS_MSGFUTURES_H_

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "chariots/datacenter.h"

namespace chariots::apps {

/// Outcome of a Message Futures transaction.
enum class TxnOutcome { kCommitted, kAborted };

/// A Message-Futures-style transaction record as stored in the log.
struct TxnRecord {
  std::set<std::string> reads;
  std::map<std::string, std::string> writes;
};

std::string EncodeTxnRecord(const TxnRecord& txn);
Result<TxnRecord> DecodeTxnRecord(std::string_view data);

/// Message Futures (paper §4.3, after Nawab et al. CIDR'13): strongly
/// consistent (one-copy serializable) optimistic transactions on top of the
/// causally ordered replicated log — no Paxos round, no central coordinator.
///
/// Protocol as realized here:
///  * A transaction executes optimistically against the locally applied
///    state, buffering writes.
///  * Commit appends the transaction's read/write sets to the log. The
///    record's dependency vector is the datacenter's *incorporated vector*
///    at append time (a replica clock) — monotone in TOId per datacenter.
///  * Transactions from different datacenters are CONCURRENT iff neither's
///    dependency vector covers the other; same-host transactions are never
///    concurrent (total order). Concurrent transactions CONFLICT if their
///    read/write sets intersect (w/w, r/w, w/r).
///  * Deterministic resolution: a transaction aborts iff some concurrent
///    conflicting transaction has higher priority (smaller (toid, host)).
///    The rule is a pure function of log contents, so every datacenter
///    reaches the same verdict independently — the log IS the agreement.
///  * t's conflict window w.r.t. datacenter B closes once the local log
///    holds any B-record whose dependency vector covers t: dependency
///    vectors are monotone in TOId, so every not-yet-seen B-record is
///    causally after t and cannot be concurrent. Waiting for these markers
///    — each side's history crossing once — is exactly Message Futures'
///    commit latency. For liveness on idle datacenters, Refresh() appends
///    no-op marker records when an undecided remote transaction is waiting
///    for this datacenter's acknowledgment (the paper's continuous log
///    propagation).
class MessageFutures {
 public:
  explicit MessageFutures(geo::Datacenter* dc);
  ~MessageFutures();

  /// A transaction handle. Not thread-safe; one per client session.
  class Txn {
   public:
    /// Reads `key` from the committed state (recorded in the read set).
    /// NotFound reads still record the key (anti-dependency).
    Result<std::string> Get(const std::string& key);

    /// Buffers a write.
    void Put(const std::string& key, const std::string& value);

   private:
    friend class MessageFutures;
    explicit Txn(MessageFutures* mgr) : mgr_(mgr) {}
    MessageFutures* mgr_;
    TxnRecord record_;
  };

  Txn Begin() { return Txn(this); }

  /// Runs the commit protocol; blocks until the transaction's fate is
  /// decided (identically at every datacenter) or the timeout passes.
  Result<TxnOutcome> Commit(
      Txn& txn,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  /// Committed value of `key` in the locally applied state.
  Result<std::string> Get(const std::string& key);

  /// Incorporates new log records and decides/applies every transaction
  /// whose conflict window has closed. Called internally by Commit/Get;
  /// exposed so tests can drive it deterministically.
  void Refresh();

  /// Starts a background thread calling Refresh() periodically — needed so
  /// an otherwise idle datacenter still acknowledges remote transactions.
  void StartBackground(int64_t interval_nanos = 1'000'000);

  uint64_t committed() const;
  uint64_t aborted() const;

 private:
  struct PendingTxn {
    flstore::LId lid;
    geo::DatacenterId host;
    geo::TOId toid;
    geo::DepVector deps;
    TxnRecord record;
  };

  void RefreshLocked(std::vector<std::string>* noops_needed);
  bool WindowClosedLocked(const PendingTxn& t) const;
  TxnOutcome DecideLocked(const PendingTxn& t) const;
  static bool Conflicts(const TxnRecord& a, const TxnRecord& b);

  geo::Datacenter* const dc_;

  mutable std::mutex mu_;
  flstore::LId scan_cursor_ = 0;
  /// All transaction records seen, in local lid order; the prefix
  /// [0, apply_cursor_) is decided and applied.
  std::vector<PendingTxn> txns_;
  size_t apply_cursor_ = 0;
  /// Dependency vector of the most recent record incorporated per host
  /// (monotone in TOId) — the window-closing markers.
  std::vector<geo::DepVector> latest_deps_;
  /// Applied key-value state (committed writes only).
  std::map<std::string, std::string> state_;
  std::map<std::pair<geo::DatacenterId, geo::TOId>, TxnOutcome> outcomes_;
  /// Highest remote (host, toid) acknowledgment we already issued a no-op
  /// marker for, to avoid no-op storms.
  std::vector<geo::TOId> noop_issued_;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;

  std::atomic<bool> stop_{false};
  std::thread background_;
};

}  // namespace chariots::apps

#endif  // CHARIOTS_APPS_MSGFUTURES_H_
