#include "apps/stream.h"

namespace chariots::apps {

namespace {
std::string TopicTag(const std::string& topic) { return "topic:" + topic; }
}  // namespace

EventPublisher::EventPublisher(geo::Datacenter* dc, std::string topic)
    : client_(dc), topic_(std::move(topic)) {}

Status EventPublisher::Publish(const std::string& payload) {
  auto r = client_.Append(payload, {{TopicTag(topic_), ""}});
  return r.ok() ? Status::OK() : r.status();
}

void EventPublisher::PublishAsync(const std::string& payload) {
  client_.AppendAsync(payload, {{TopicTag(topic_), ""}});
}

EventReader::EventReader(geo::Datacenter* dc, std::string topic,
                         std::string group)
    : dc_(dc), client_(dc), topic_(std::move(topic)),
      group_(std::move(group)) {
  (void)Restore();
}

std::vector<Event> EventReader::Poll(size_t max_events) {
  std::vector<Event> out;
  flstore::LId head = dc_->HeadLid();
  while (cursor_ < head && out.size() < max_events) {
    Result<geo::GeoRecord> record = client_.Read(cursor_);
    ++cursor_;
    if (!record.ok()) continue;  // gap from GC — nothing to process
    for (const flstore::Tag& tag : record->tags) {
      if (tag.key == TopicTag(topic_)) {
        out.push_back(Event{record->lid, record->host, record->body});
        break;
      }
    }
  }
  return out;
}

Status EventReader::Checkpoint() {
  auto r = client_.Append(std::to_string(cursor_),
                          {{OffsetTag(), std::to_string(cursor_)}});
  return r.ok() ? Status::OK() : r.status();
}

Status EventReader::Restore() {
  flstore::IndexQuery query;
  query.key = OffsetTag();
  query.limit = 1;
  std::vector<flstore::Posting> postings = dc_->Lookup(query);
  if (postings.empty()) {
    cursor_ = 0;
    return Status::OK();
  }
  cursor_ = std::strtoull(postings.front().value.c_str(), nullptr, 10);
  return Status::OK();
}

void PushProcessor::Attach(geo::Datacenter* dc, const std::string& topic,
                           EventFn fn) {
  std::string tag = TopicTag(topic);
  dc->Subscribe([tag, fn = std::move(fn)](const geo::GeoRecord& record) {
    for (const flstore::Tag& t : record.tags) {
      if (t.key == tag) {
        fn(Event{record.lid, record.host, record.body});
        return;
      }
    }
  });
}

ShardedEventReader::ShardedEventReader(geo::Datacenter* dc, std::string topic,
                                       std::string group, uint32_t shard,
                                       uint32_t num_shards)
    : dc_(dc),
      client_(dc),
      topic_(std::move(topic)),
      group_(std::move(group)),
      shard_(shard),
      num_shards_(num_shards == 0 ? 1 : num_shards) {
  (void)Restore();
}

std::string ShardedEventReader::OffsetTag() const {
  return "offset:" + group_ + ":" + topic_ + ":" + std::to_string(shard_) +
         "/" + std::to_string(num_shards_);
}

std::vector<Event> ShardedEventReader::Poll(size_t max_events) {
  std::vector<Event> out;
  flstore::LId head = dc_->HeadLid();
  while (cursor_ < head && out.size() < max_events) {
    flstore::LId lid = cursor_++;
    if (lid % num_shards_ != shard_) continue;  // another shard's stripe
    Result<geo::GeoRecord> record = client_.Read(lid);
    if (!record.ok()) continue;  // GC gap
    for (const flstore::Tag& tag : record->tags) {
      if (tag.key == "topic:" + topic_) {
        out.push_back(Event{record->lid, record->host, record->body});
        break;
      }
    }
  }
  return out;
}

Status ShardedEventReader::Checkpoint() {
  auto r = client_.Append(std::to_string(cursor_),
                          {{OffsetTag(), std::to_string(cursor_)}});
  return r.ok() ? Status::OK() : r.status();
}

Status ShardedEventReader::Restore() {
  flstore::IndexQuery query;
  query.key = OffsetTag();
  query.limit = 1;
  std::vector<flstore::Posting> postings = dc_->Lookup(query);
  cursor_ = postings.empty()
                ? 0
                : std::strtoull(postings.front().value.c_str(), nullptr, 10);
  return Status::OK();
}

size_t CountingAggregator::Consume(const std::vector<Event>& events) {
  size_t fresh = 0;
  for (const Event& e : events) {
    // Exactly-once: re-deliveries after a checkpoint restore carry lids we
    // have already folded in.
    if (any_ && e.lid <= max_seen_) continue;
    any_ = true;
    max_seen_ = e.lid;
    ++counts_[e.payload];
    ++total_;
    ++fresh;
  }
  return fresh;
}

uint64_t CountingAggregator::CountFor(const std::string& key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace chariots::apps
