#include "apps/msgfutures.h"

#include <algorithm>

#include "common/codec.h"
#include "common/executor.h"

namespace chariots::apps {

namespace {
constexpr char kTxnTag[] = "mf";
constexpr char kTxnTagValue[] = "txn";
constexpr char kNoopTagValue[] = "noop";
}  // namespace

std::string EncodeTxnRecord(const TxnRecord& txn) {
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(txn.reads.size()));
  for (const std::string& key : txn.reads) w.PutBytes(key);
  w.PutU32(static_cast<uint32_t>(txn.writes.size()));
  for (const auto& [key, value] : txn.writes) {
    w.PutBytes(key);
    w.PutBytes(value);
  }
  return std::move(w).data();
}

Result<TxnRecord> DecodeTxnRecord(std::string_view data) {
  BinaryReader r(data);
  TxnRecord txn;
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string key;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&key));
    txn.reads.insert(std::move(key));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string key, value;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&key));
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&value));
    txn.writes.emplace(std::move(key), std::move(value));
  }
  return txn;
}

MessageFutures::MessageFutures(geo::Datacenter* dc)
    : dc_(dc),
      latest_deps_(dc->config().num_datacenters,
                   geo::DepVector(dc->config().num_datacenters, 0)),
      noop_issued_(dc->config().num_datacenters, 0) {}

MessageFutures::~MessageFutures() {
  stop_.store(true);
  if (background_.joinable()) background_.join();
}

void MessageFutures::StartBackground(int64_t interval_nanos) {
  background_ = std::thread([this, interval_nanos] {
    ScopedRuntimeThread census("msgf/refresh");
    while (!stop_.load(std::memory_order_relaxed)) {
      Refresh();
      std::this_thread::sleep_for(std::chrono::nanoseconds(interval_nanos));
    }
  });
}

Result<std::string> MessageFutures::Txn::Get(const std::string& key) {
  record_.reads.insert(key);
  // Read-your-own-writes within the transaction.
  auto it = record_.writes.find(key);
  if (it != record_.writes.end()) return it->second;
  return mgr_->Get(key);
}

void MessageFutures::Txn::Put(const std::string& key,
                              const std::string& value) {
  record_.writes[key] = value;
}

Result<std::string> MessageFutures::Get(const std::string& key) {
  Refresh();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(key);
  if (it == state_.end()) return Status::NotFound("key: " + key);
  return it->second;
}

bool MessageFutures::Conflicts(const TxnRecord& a, const TxnRecord& b) {
  for (const auto& [key, _] : a.writes) {
    if (b.writes.count(key) || b.reads.count(key)) return true;
  }
  for (const std::string& key : a.reads) {
    if (b.writes.count(key)) return true;
  }
  return false;
}

bool MessageFutures::WindowClosedLocked(const PendingTxn& t) const {
  // Closed w.r.t. every other datacenter once its latest incorporated
  // record's dependency vector covers t (see class comment).
  for (uint32_t b = 0; b < latest_deps_.size(); ++b) {
    if (b == t.host) continue;
    if (t.host < latest_deps_[b].size() &&
        latest_deps_[b][t.host] < t.toid) {
      return false;
    }
  }
  return true;
}

TxnOutcome MessageFutures::DecideLocked(const PendingTxn& t) const {
  for (const PendingTxn& u : txns_) {
    if (u.host == t.host) continue;  // same host: totally ordered
    // Concurrency: neither dependency vector covers the other.
    bool u_after_t = u.host < t.deps.size() && u.toid <= t.deps[u.host];
    bool t_after_u = t.host < u.deps.size() && t.toid <= u.deps[t.host];
    if (u_after_t || t_after_u) continue;
    if (!Conflicts(t.record, u.record)) continue;
    // Deterministic priority: smaller (toid, host) survives.
    if (std::make_pair(u.toid, u.host) < std::make_pair(t.toid, t.host)) {
      return TxnOutcome::kAborted;
    }
  }
  return TxnOutcome::kCommitted;
}

void MessageFutures::Refresh() {
  std::vector<std::string> noops;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshLocked(&noops);
  }
  // Appending no-ops outside the lock: their dependency vectors acknowledge
  // every remote transaction incorporated so far.
  for (std::string& marker : noops) {
    dc_->Append(std::move(marker),
                {{kTxnTag, kNoopTagValue}},
                dc_->IncorporatedVector());
  }
}

void MessageFutures::RefreshLocked(std::vector<std::string>* noops_needed) {
  // 1. Ingest new log records.
  std::vector<geo::GeoRecord> fresh = dc_->ReadRange(scan_cursor_, SIZE_MAX);
  for (geo::GeoRecord& record : fresh) {
    scan_cursor_ = record.lid + 1;
    if (record.host < latest_deps_.size()) {
      geo::DepVector& latest = latest_deps_[record.host];
      for (size_t d = 0; d < record.deps.size() && d < latest.size(); ++d) {
        latest[d] = std::max(latest[d], record.deps[d]);
      }
      // A record is also its host's own acknowledgment point.
      if (record.host < latest.size()) {
        latest[record.host] = std::max(latest[record.host], record.toid);
      }
    }
    bool is_txn = false;
    for (const flstore::Tag& tag : record.tags) {
      if (tag.key == kTxnTag && tag.value == kTxnTagValue) {
        is_txn = true;
        break;
      }
    }
    if (!is_txn) continue;
    Result<TxnRecord> txn = DecodeTxnRecord(record.body);
    if (!txn.ok()) continue;
    txns_.push_back(PendingTxn{record.lid, record.host, record.toid,
                               record.deps, std::move(txn).value()});
  }

  // 2. Decide and apply the closed prefix, in local log order.
  while (apply_cursor_ < txns_.size()) {
    PendingTxn& t = txns_[apply_cursor_];
    if (!WindowClosedLocked(t)) break;
    TxnOutcome outcome = DecideLocked(t);
    outcomes_[{t.host, t.toid}] = outcome;
    if (outcome == TxnOutcome::kCommitted) {
      for (const auto& [key, value] : t.record.writes) state_[key] = value;
      ++committed_;
    } else {
      ++aborted_;
    }
    ++apply_cursor_;
  }

  // 3. Liveness: if an undecided remote transaction waits for *our*
  // acknowledgment, emit one no-op marker record.
  for (size_t i = apply_cursor_; i < txns_.size(); ++i) {
    const PendingTxn& t = txns_[i];
    if (t.host == dc_->dc_id()) continue;
    geo::DepVector& ours = latest_deps_[dc_->dc_id()];
    if (t.host < ours.size() && ours[t.host] < t.toid &&
        noop_issued_[t.host] < t.toid) {
      noop_issued_[t.host] = t.toid;
      noops_needed->push_back("mf-ack");
      break;  // one marker acknowledges everything incorporated so far
    }
  }
}

Result<TxnOutcome> MessageFutures::Commit(Txn& txn,
                                          std::chrono::milliseconds timeout) {
  // Append the transaction with the replica clock as dependency vector.
  geo::TOId toid =
      dc_->Append(EncodeTxnRecord(txn.record_),
                  {{kTxnTag, kTxnTagValue}}, dc_->IncorporatedVector());
  auto key = std::make_pair(dc_->dc_id(), toid);

  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    Refresh();
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = outcomes_.find(key);
      if (it != outcomes_.end()) return it->second;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::TimedOut("transaction outcome not decided in time");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
}

uint64_t MessageFutures::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

uint64_t MessageFutures::aborted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aborted_;
}

}  // namespace chariots::apps
