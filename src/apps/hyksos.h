#ifndef CHARIOTS_APPS_HYKSOS_H_
#define CHARIOTS_APPS_HYKSOS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chariots/client.h"

namespace chariots::apps {

/// Hyksos (paper §4.1): a causally consistent replicated key-value store
/// built purely on the Chariots log interface. Values live in the log; the
/// current value of a key is the record with the highest log position
/// carrying a put for it. Get transactions return a consistent snapshot by
/// pinning a head-of-log position and reading every key as of that
/// position (paper Algorithm 1).
class Hyksos {
 public:
  /// One Hyksos session on one datacenter. Causal dependencies of what the
  /// session reads/writes are tracked by the underlying ChariotsClient.
  explicit Hyksos(geo::Datacenter* dc);

  /// Writes key = value (paper: an append tagged with the key).
  Status Put(const std::string& key, const std::string& value);

  /// Reads the most recent value of `key`; NotFound if never written or
  /// deleted.
  Result<std::string> Get(const std::string& key);

  /// Deletes `key` (appends a tombstone record — the log stays immutable;
  /// the deletion is itself causally ordered and replicated).
  Status Del(const std::string& key);

  /// Get transaction (paper Algorithm 1): a consistent snapshot of the
  /// requested keys. Keys never written are absent from the result.
  Result<std::map<std::string, std::string>> GetTxn(
      const std::vector<std::string>& keys);

  /// The snapshot position a get transaction would pin right now.
  flstore::LId SnapshotPosition() const { return client_.Head(); }

  geo::ChariotsClient& client() { return client_; }

 private:
  static std::string TagFor(const std::string& key) { return "kv:" + key; }
  /// Tag value marking a deletion (record bodies are opaque to Chariots,
  /// so the marker must ride the tag; Hyksos escapes ordinary values that
  /// would collide).
  static constexpr char kDeleted[] = "\x01__deleted__";

  Result<geo::GeoRecord> MostRecent(const std::string& key,
                                    flstore::LId before_lid);

  geo::Datacenter* const dc_;
  geo::ChariotsClient client_;
};

}  // namespace chariots::apps

#endif  // CHARIOTS_APPS_HYKSOS_H_
