#ifndef CHARIOTS_APPS_HYKSOS_H_
#define CHARIOTS_APPS_HYKSOS_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chariots/client.h"
#include "flstore/indexer.h"

namespace chariots::apps {

/// Hyksos (paper §4.1): a causally consistent replicated key-value store
/// built purely on the Chariots log interface. Values live in the log; the
/// current value of a key is the record with the highest log position
/// carrying a put for it. Get transactions return a consistent snapshot by
/// pinning a head-of-log position and reading every key as of that
/// position (paper Algorithm 1).
///
/// Reads are served from a key → version-chain index built by replaying the
/// local log (LogBase-style, DESIGN.md §11): a get is a memory lookup, not
/// an indexer round trip plus a log read. The log remains the only durable
/// store — the index is rebuilt by replay and session causality is still
/// honored by absorbing the causal metadata recorded for each version.
class Hyksos {
 public:
  /// One Hyksos session on one datacenter. Causal dependencies of what the
  /// session reads/writes are tracked by the underlying ChariotsClient.
  explicit Hyksos(geo::Datacenter* dc);

  /// Writes key = value (paper: an append tagged with the key).
  Status Put(const std::string& key, const std::string& value);

  /// Reads the most recent value of `key`; NotFound if never written or
  /// deleted. Served from the replayed version index.
  Result<std::string> Get(const std::string& key);

  /// Deletes `key` (appends a tombstone record — the log stays immutable;
  /// the deletion is itself causally ordered and replicated).
  Status Del(const std::string& key);

  /// Get transaction (paper Algorithm 1): a consistent snapshot of the
  /// requested keys. Keys never written are absent from the result.
  Result<std::map<std::string, std::string>> GetTxn(
      const std::vector<std::string>& keys);

  /// Replays newly committed local-log records into the version index.
  /// Called implicitly by every get; public so callers can prepay the
  /// replay cost or tests can assert index state.
  Status RefreshIndex();

  /// Versions currently held by the replayed index (observability/tests).
  uint64_t IndexedVersions() const { return versions_.version_count(); }

  /// The snapshot position a get transaction would pin right now.
  flstore::LId SnapshotPosition() const { return client_.Head(); }

  geo::ChariotsClient& client() { return client_; }

 private:
  static std::string TagFor(const std::string& key) { return "kv:" + key; }
  /// Tag value marking a deletion (record bodies are opaque to Chariots,
  /// so the marker must ride the tag; Hyksos escapes ordinary values that
  /// would collide).
  static constexpr char kDeleted[] = "\x01__deleted__";

  /// Causal metadata of one indexed version, absorbed into the session on
  /// a version-index hit so causality tracking matches a real log read.
  struct VersionMeta {
    geo::DatacenterId host = 0;
    geo::TOId toid = 0;
    geo::DepVector deps;
  };

  /// Version-index read of `key` as of `snapshot` (exclusive). NotFound if
  /// the key has no version below the snapshot or its latest is a delete.
  Result<std::string> GetAsOf(const std::string& key, flstore::LId snapshot);

  geo::Datacenter* const dc_;
  geo::ChariotsClient client_;

  /// Serializes replay so concurrent gets don't duplicate scan work;
  /// guards replayed_through_ and meta_ (versions_ has its own lock).
  mutable std::mutex replay_mu_;
  flstore::VersionIndex versions_;
  flstore::LId replayed_through_ = 0;
  std::unordered_map<flstore::LId, VersionMeta> meta_;
};

}  // namespace chariots::apps

#endif  // CHARIOTS_APPS_HYKSOS_H_
