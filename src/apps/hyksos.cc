#include "apps/hyksos.h"

namespace chariots::apps {

Hyksos::Hyksos(geo::Datacenter* dc) : dc_(dc), client_(dc) {}

Status Hyksos::Put(const std::string& key, const std::string& value) {
  // The record is tagged with the key so gets are one index lookup; the
  // value rides both the tag (for index-only reads) and the body.
  auto r = client_.Append(value, {{TagFor(key), value}});
  return r.ok() ? Status::OK() : r.status();
}

Status Hyksos::Del(const std::string& key) {
  auto r = client_.Append(kDeleted, {{TagFor(key), kDeleted}});
  return r.ok() ? Status::OK() : r.status();
}

Result<geo::GeoRecord> Hyksos::MostRecent(const std::string& key,
                                          flstore::LId before_lid) {
  return client_.ReadMostRecent(TagFor(key), before_lid);
}

Result<std::string> Hyksos::Get(const std::string& key) {
  CHARIOTS_ASSIGN_OR_RETURN(geo::GeoRecord record,
                            client_.ReadMostRecent(TagFor(key)));
  if (record.body == kDeleted) {
    return Status::NotFound("key deleted: " + key);
  }
  return record.body;
}

Result<std::map<std::string, std::string>> Hyksos::GetTxn(
    const std::vector<std::string>& keys) {
  // Algorithm 1: pin the head-of-log position (no gaps below it — the
  // queues assign LIds consecutively), then read each key as of that
  // position.
  flstore::LId snapshot = client_.Head();
  std::map<std::string, std::string> out;
  for (const std::string& key : keys) {
    Result<geo::GeoRecord> record = MostRecent(key, snapshot);
    if (record.ok()) {
      if (record->body != kDeleted) out[key] = record->body;
    } else if (!record.status().IsNotFound()) {
      return record.status();
    }
  }
  return out;
}

}  // namespace chariots::apps
