#include "apps/hyksos.h"

namespace chariots::apps {

namespace {
/// Records replayed per ReadRange batch. One round of replay work between
/// head checks; idempotent application makes the exact value a latency
/// knob, not a correctness one.
constexpr size_t kReplayBatch = 256;
}  // namespace

Hyksos::Hyksos(geo::Datacenter* dc) : dc_(dc), client_(dc) {}

Status Hyksos::Put(const std::string& key, const std::string& value) {
  // The record is tagged with the key so gets are one index lookup; the
  // value rides both the tag (for index-only reads) and the body.
  auto r = client_.Append(value, {{TagFor(key), value}});
  return r.ok() ? Status::OK() : r.status();
}

Status Hyksos::Del(const std::string& key) {
  auto r = client_.Append(kDeleted, {{TagFor(key), kDeleted}});
  return r.ok() ? Status::OK() : r.status();
}

Status Hyksos::RefreshIndex() {
  std::lock_guard<std::mutex> lock(replay_mu_);
  while (true) {
    flstore::LId head = dc_->HeadLid();
    if (replayed_through_ >= head) return Status::OK();
    std::vector<geo::GeoRecord> batch =
        dc_->ReadRange(replayed_through_, kReplayBatch);
    for (const geo::GeoRecord& record : batch) {
      bool indexed = false;
      for (const flstore::Tag& tag : record.tags) {
        if (tag.key.rfind("kv:", 0) != 0) continue;
        versions_.Apply(tag.key, tag.value, record.lid);
        indexed = true;
      }
      if (indexed) {
        meta_[record.lid] =
            VersionMeta{record.host, record.toid, record.deps};
      }
    }
    if (batch.size() < kReplayBatch) {
      // The scan reached the head it sampled (skipped positions are junk
      // fills); anything newer is caught on the next refresh.
      replayed_through_ = head;
    } else {
      replayed_through_ = batch.back().lid + 1;
    }
  }
}

Result<std::string> Hyksos::GetAsOf(const std::string& key,
                                    flstore::LId snapshot) {
  std::optional<flstore::Posting> version =
      versions_.Get(TagFor(key), snapshot);
  if (!version.has_value()) {
    return Status::NotFound("no record with tag " + TagFor(key));
  }
  // A version-index hit must move the session's causal vector exactly as a
  // log read of that record would.
  VersionMeta meta;
  {
    std::lock_guard<std::mutex> lock(replay_mu_);
    auto it = meta_.find(version->lid);
    if (it != meta_.end()) meta = it->second;
  }
  geo::GeoRecord record;
  record.host = meta.host;
  record.toid = meta.toid;
  record.deps = meta.deps;
  client_.Absorb(record);
  if (version->value == kDeleted) {
    return Status::NotFound("key deleted: " + key);
  }
  return version->value;
}

Result<std::string> Hyksos::Get(const std::string& key) {
  flstore::LId snapshot = client_.Head();
  CHARIOTS_RETURN_IF_ERROR(RefreshIndex());
  return GetAsOf(key, snapshot);
}

Result<std::map<std::string, std::string>> Hyksos::GetTxn(
    const std::vector<std::string>& keys) {
  // Algorithm 1: pin the head-of-log position (no gaps below it — the
  // queues assign LIds consecutively), then read each key as of that
  // position. All lookups hit the version index, so the whole transaction
  // costs one replay catch-up plus K memory lookups.
  flstore::LId snapshot = client_.Head();
  CHARIOTS_RETURN_IF_ERROR(RefreshIndex());
  std::map<std::string, std::string> out;
  for (const std::string& key : keys) {
    Result<std::string> value = GetAsOf(key, snapshot);
    if (value.ok()) {
      out[key] = *std::move(value);
    } else if (!value.status().IsNotFound()) {
      return value.status();
    }
  }
  return out;
}

}  // namespace chariots::apps
