#ifndef CHARIOTS_APPS_STREAM_H_
#define CHARIOTS_APPS_STREAM_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "chariots/client.h"

namespace chariots::apps {

/// Multi-datacenter event processing on the shared log (paper §4.2).
/// Publishers append events; readers consume the log with exactly-once
/// semantics by checkpointing their offset *into the log itself*, so a
/// restarted (or failed-over) reader resumes precisely where the previous
/// incarnation durably got to. Readers at different datacenters see the
/// same events (causally ordered), and multiple readers can spread over
/// different log maintainers without a central dispatcher.
class EventPublisher {
 public:
  EventPublisher(geo::Datacenter* dc, std::string topic);

  /// Publishes an event; returns once it is durable in the local log.
  Status Publish(const std::string& payload);

  /// Fire-and-forget publish (still exactly-once end to end).
  void PublishAsync(const std::string& payload);

  const std::string& topic() const { return topic_; }

 private:
  geo::ChariotsClient client_;
  std::string topic_;
};

/// An event with its log coordinates.
struct Event {
  flstore::LId lid;
  geo::DatacenterId origin;
  std::string payload;
};

/// A named reader of a topic with durable, log-stored checkpoints.
class EventReader {
 public:
  /// `group` names the consumer; its checkpoint records are tagged
  /// "offset:<group>:<topic>".
  EventReader(geo::Datacenter* dc, std::string topic, std::string group);

  /// Pulls up to `max_events` new events past the in-memory cursor.
  std::vector<Event> Poll(size_t max_events = 256);

  /// Durably records the cursor in the log. After a crash, a new reader
  /// with the same group resumes from the last checkpoint: events are
  /// re-delivered at most back to it, never skipped, and a deduplicating
  /// consumer (by lid) gets exactly-once processing.
  Status Checkpoint();

  /// Loads the latest durable checkpoint into the cursor (done at
  /// construction too; exposed for failover tests).
  Status Restore();

  flstore::LId cursor() const { return cursor_; }

 private:
  std::string OffsetTag() const {
    return "offset:" + group_ + ":" + topic_;
  }

  geo::Datacenter* const dc_;
  geo::ChariotsClient client_;
  std::string topic_;
  std::string group_;
  flstore::LId cursor_ = 0;
};

/// Push-based consumption: a topic callback invoked as records become
/// durable (no polling). Must be attached before the datacenter starts;
/// callbacks run on the datacenter's token thread, so they must be fast —
/// heavy processing should hand off to a worker.
class PushProcessor {
 public:
  using EventFn = std::function<void(const Event&)>;

  /// Attaches `fn` to `dc` for `topic`. Call before dc->Start().
  static void Attach(geo::Datacenter* dc, const std::string& topic,
                     EventFn fn);
};

/// A sharded reader: worker `shard` of `num_shards` processes only the
/// events whose log position falls in its stripe (lid % num_shards ==
/// shard). The shards' outputs partition the topic exactly — the paper's
/// point that readers can spread over different log maintainers without a
/// centralized dispatcher (§4.2); with num_shards equal to the maintainer
/// count and the stripe batch as the modulus unit, each shard reads
/// different maintainers. Each shard checkpoints independently.
class ShardedEventReader {
 public:
  ShardedEventReader(geo::Datacenter* dc, std::string topic,
                     std::string group, uint32_t shard, uint32_t num_shards);

  /// Pulls up to `max_events` new events belonging to this shard.
  std::vector<Event> Poll(size_t max_events = 256);

  /// Durable per-shard checkpoint (tag includes the shard index).
  Status Checkpoint();
  Status Restore();

  flstore::LId cursor() const { return cursor_; }
  uint32_t shard() const { return shard_; }

 private:
  std::string OffsetTag() const;

  geo::Datacenter* const dc_;
  geo::ChariotsClient client_;
  std::string topic_;
  std::string group_;
  const uint32_t shard_;
  const uint32_t num_shards_;
  flstore::LId cursor_ = 0;
};

/// A tiny aggregation operator used by the examples/benches: counts events
/// per key with exactly-once input (dedup by lid).
class CountingAggregator {
 public:
  /// Consumes events idempotently; returns how many were new.
  size_t Consume(const std::vector<Event>& events);

  uint64_t CountFor(const std::string& key) const;
  uint64_t total() const { return total_; }

 private:
  std::map<std::string, uint64_t> counts_;
  flstore::LId max_seen_ = 0;
  bool any_ = false;
  uint64_t total_ = 0;
};

}  // namespace chariots::apps

#endif  // CHARIOTS_APPS_STREAM_H_
