#ifndef CHARIOTS_SIM_PIPELINE_SIM_H_
#define CHARIOTS_SIM_PIPELINE_SIM_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/rate_limiter.h"
#include "sim/machine.h"
#include "sim/meter.h"

namespace chariots::sim {

/// A batch of records moving through the simulated Chariots pipeline. Only
/// the count matters for the queueing network; the pipeline *logic* is
/// validated separately by the tests against the real components.
struct SimBatch {
  uint32_t records = 0;
};

/// One pipeline stage made of `num_machines` identical machines. Each
/// machine has its own inbox and a token-bucket service rate following a
/// MachineModel (with overload degradation); processed batches go
/// round-robin to the next stage's machines. This mirrors the paper's
/// deployment where every stage is an independent set of boxes (§6.2) and
/// machines buffer ahead of slower downstream stages (the Figure 9
/// behaviour), which is why inboxes are deep rather than tightly coupled.
class SimStage {
 public:
  SimStage(std::string name, size_t num_machines, MachineModel model,
           size_t inbox_capacity = 1 << 16);
  ~SimStage();

  /// Sets the downstream stage (null for the last stage).
  void set_next(SimStage* next) { next_ = next; }

  void Start();
  /// Closes the inboxes, lets the machines drain them, and joins.
  void StopAndDrain();

  /// Submits a batch to machine (rr % machines); blocks when that machine's
  /// inbox is full (producer-side backpressure, as when a sender blocks on
  /// a saturated receiver NIC).
  void Submit(SimBatch batch);

  /// Bulk submit: preserves round-robin placement but delivers each
  /// destination machine's share with one PushAll (one lock, one wakeup)
  /// instead of one Push per batch. Clears `*batches`.
  void SubmitAll(std::vector<SimBatch>* batches);

  const std::string& name() const { return name_; }
  size_t num_machines() const { return machines_.size(); }
  /// Per-machine average throughput (records/s).
  std::vector<double> MachineRates() const;
  /// Whole-stage records/s timeseries of machine `i`.
  std::vector<double> MachineTimeseries(size_t i) const;
  uint64_t TotalRecords() const;

 private:
  struct Machine {
    std::unique_ptr<BoundedQueue<SimBatch>> inbox;
    std::unique_ptr<TokenBucket> bucket;
    std::unique_ptr<ThroughputMeter> meter;
    std::thread thread;
    bool overloaded = false;
  };

  void MachineLoop(Machine* machine);

  const std::string name_;
  const MachineModel model_;
  std::vector<std::unique_ptr<Machine>> machines_;
  SimStage* next_ = nullptr;
  std::atomic<uint64_t> rr_{0};
  std::atomic<bool> started_{false};
};

/// Open-loop record generators standing in for the paper's client machines.
/// Each source machine produces batches at `target_rate` (0 = as fast as
/// its machine model allows, i.e. the closed-loop "private cloud" clients)
/// into the first stage.
class SimSource {
 public:
  SimSource(size_t num_machines, MachineModel model, double target_rate,
            uint32_t batch_records, SimStage* first_stage);
  ~SimSource();

  void Start();
  /// Stops generation (for duration-bounded runs).
  void Stop();
  /// Generates until each machine produced `records_each`, then returns.
  void RunToCount(uint64_t records_each);

  std::vector<double> MachineRates() const;
  std::vector<double> MachineTimeseries(size_t i) const;
  uint64_t TotalRecords() const;

 private:
  struct Machine {
    std::unique_ptr<TokenBucket> pace;    // target offered load
    std::unique_ptr<TokenBucket> capacity;  // the machine's own limit
    std::unique_ptr<ThroughputMeter> meter;
    std::thread thread;
  };

  void MachineLoop(Machine* machine, uint64_t records_limit);

  const uint32_t batch_records_;
  SimStage* const first_stage_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::atomic<bool> stop_{false};
};

}  // namespace chariots::sim

#endif  // CHARIOTS_SIM_PIPELINE_SIM_H_
