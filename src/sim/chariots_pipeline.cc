#include "sim/chariots_pipeline.h"

namespace chariots::sim {

namespace {
// Client->batcher inbox is shallow (synchronous append acknowledgement);
// everything downstream buffers deeply (batch spooling).
constexpr size_t kShallowInboxBatches = 8;
constexpr size_t kDeepInboxBatches = 8192;

MachineModel Scaled(MachineModel m, double scale) {
  m.nominal_rate /= scale;
  m.overload_rate /= scale;
  return m;
}
}  // namespace

ChariotsPipelineSim::ChariotsPipelineSim(const PipelineShape& shape,
                                         double client_target_rate,
                                         uint32_t batch_records,
                                         double time_scale)
    : time_scale_(time_scale > 0 ? time_scale : 1) {
  stages_.push_back(std::make_unique<SimStage>(
      "Batcher", shape.batchers, Scaled(BatcherMachine(), time_scale_),
      kShallowInboxBatches));
  stages_.push_back(std::make_unique<SimStage>(
      "Filter", shape.filters, Scaled(FilterMachine(), time_scale_),
      kDeepInboxBatches));
  stages_.push_back(std::make_unique<SimStage>(
      "Maintainer", shape.maintainers,
      Scaled(MaintainerMachine(), time_scale_), kDeepInboxBatches));
  stages_.push_back(std::make_unique<SimStage>(
      "Store", shape.stores, Scaled(StoreMachine(), time_scale_),
      kDeepInboxBatches));
  for (size_t i = 0; i + 1 < stages_.size(); ++i) {
    stages_[i]->set_next(stages_[i + 1].get());
  }
  clients_ = std::make_unique<SimSource>(
      shape.clients, Scaled(ClientMachine(), time_scale_),
      client_target_rate / time_scale_, batch_records,
      stages_.front().get());
}

void ChariotsPipelineSim::RunToCount(uint64_t records_per_client) {
  for (auto& stage : stages_) stage->Start();
  clients_->RunToCount(static_cast<uint64_t>(records_per_client /
                                             time_scale_));
  // Drain front to back: closing a stage's inboxes after its producers
  // finished lets every in-flight record reach the store.
  for (auto& stage : stages_) stage->StopAndDrain();
}

std::vector<ChariotsPipelineSim::RowResult> ChariotsPipelineSim::Results()
    const {
  std::vector<RowResult> rows;
  rows.push_back(RowResult{"Client", clients_->MachineRates()});
  for (const auto& stage : stages_) {
    rows.push_back(RowResult{stage->name(), stage->MachineRates()});
  }
  for (RowResult& row : rows) {
    for (double& rate : row.machine_rates) rate *= time_scale_;
  }
  return rows;
}

std::vector<double> ChariotsPipelineSim::Timeseries(
    const std::string& stage_name, size_t machine) const {
  std::vector<double> series;
  if (stage_name == "Client") {
    series = clients_->MachineTimeseries(machine);
  } else {
    for (const auto& stage : stages_) {
      if (stage->name() == stage_name) {
        series = stage->MachineTimeseries(machine);
        break;
      }
    }
  }
  for (double& v : series) v *= time_scale_;
  return series;
}

void ChariotsPipelineSim::PrintTable(const char* title) const {
  std::printf("%s\n", title);
  std::printf("%-14s %s\n", "Machine", "Throughput (Kappends/s)");
  for (const RowResult& row : Results()) {
    for (size_t i = 0; i < row.machine_rates.size(); ++i) {
      std::string label = row.stage;
      if (row.machine_rates.size() > 1) {
        label += " " + std::to_string(i + 1);
      }
      std::printf("%-14s %.1f\n", label.c_str(),
                  row.machine_rates[i] / 1000.0);
    }
  }
}

}  // namespace chariots::sim
