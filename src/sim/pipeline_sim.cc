#include "sim/pipeline_sim.h"

#include <algorithm>

#include "common/executor.h"

namespace chariots::sim {

// -------------------------------------------------------------- SimStage

SimStage::SimStage(std::string name, size_t num_machines, MachineModel model,
                   size_t inbox_capacity)
    : name_(std::move(name)), model_(model) {
  for (size_t i = 0; i < num_machines; ++i) {
    auto m = std::make_unique<Machine>();
    m->inbox = std::make_unique<BoundedQueue<SimBatch>>(inbox_capacity);
    m->bucket = std::make_unique<TokenBucket>(
        model.nominal_rate, model.nominal_rate / 100,
        SystemClock::Default());
    m->meter = std::make_unique<ThroughputMeter>();
    machines_.push_back(std::move(m));
  }
}

SimStage::~SimStage() { StopAndDrain(); }

void SimStage::Start() {
  if (started_.exchange(true)) return;
  for (auto& m : machines_) {
    m->meter->Start();
    Machine* raw = m.get();
    m->thread = std::thread([this, raw] { MachineLoop(raw); });
  }
}

void SimStage::StopAndDrain() {
  if (!started_.exchange(false)) return;
  for (auto& m : machines_) m->inbox->Close();
  for (auto& m : machines_) {
    if (m->thread.joinable()) m->thread.join();
  }
}

void SimStage::Submit(SimBatch batch) {
  uint64_t i = rr_.fetch_add(1, std::memory_order_relaxed);
  machines_[i % machines_.size()]->inbox->Push(batch);
}

void SimStage::SubmitAll(std::vector<SimBatch>* batches) {
  if (batches->empty()) return;
  if (machines_.size() == 1) {
    (void)machines_[0]->inbox->PushAll(batches);
    return;
  }
  std::vector<std::vector<SimBatch>> per(machines_.size());
  for (SimBatch b : *batches) {
    uint64_t i = rr_.fetch_add(1, std::memory_order_relaxed);
    per[i % machines_.size()].push_back(b);
  }
  batches->clear();
  for (size_t m = 0; m < per.size(); ++m) {
    if (!per[m].empty()) (void)machines_[m]->inbox->PushAll(&per[m]);
  }
}

void SimStage::MachineLoop(Machine* machine) {
  // Sim machines model dedicated hardware, so they keep their own thread
  // each — but they still report to the runtime census.
  ScopedRuntimeThread census("sim/" + name_);
  // Saturation threshold: the machine's receive buffering. A backlog beyond
  // it means the NIC/receive path is saturated, which costs extra per-record
  // contention (the paper's filter capped at ~120K by its network
  // interface); deep application-level spooling beyond that point does not
  // make service faster. Shallow inboxes saturate at the fill fraction.
  const size_t capacity = machine->inbox->capacity();
  const size_t saturated = std::min<size_t>(
      static_cast<size_t>(capacity * model_.overload_fill), 48);
  const size_t recovered = std::max<size_t>(saturated / 3, 1);
  // Bulk-drain up to kDrainBatches per wakeup: one lock acquisition per
  // chunk instead of per batch. The chunk stays small so the backlog-driven
  // overload model (and the Figure 9 queueing shapes) is preserved: each
  // drained batch still sees the backlog it would have seen popping singly.
  constexpr size_t kDrainBatches = 64;
  std::vector<SimBatch> drained;
  std::vector<SimBatch> forward;
  while (machine->inbox->PopAll(&drained, kDrainBatches) > 0) {
    const size_t queued = machine->inbox->size();
    for (size_t b = 0; b < drained.size(); ++b) {
      const SimBatch& batch = drained[b];
      size_t backlog = queued + (drained.size() - b - 1);
      if (!machine->overloaded && backlog >= saturated) {
        machine->bucket->set_rate(model_.overload_rate);
        machine->overloaded = true;
      } else if (machine->overloaded && backlog < recovered) {
        machine->bucket->set_rate(model_.nominal_rate);
        machine->overloaded = false;
      }
      machine->bucket->Acquire(batch.records);
      machine->meter->Add(batch.records);
      if (next_ != nullptr) forward.push_back(batch);
    }
    if (next_ != nullptr && !forward.empty()) {
      next_->SubmitAll(&forward);
    }
    drained.clear();
  }
}

std::vector<double> SimStage::MachineRates() const {
  std::vector<double> out;
  out.reserve(machines_.size());
  for (const auto& m : machines_) out.push_back(m->meter->Rate());
  return out;
}

std::vector<double> SimStage::MachineTimeseries(size_t i) const {
  return machines_[i]->meter->Timeseries();
}

uint64_t SimStage::TotalRecords() const {
  uint64_t total = 0;
  for (const auto& m : machines_) total += m->meter->count();
  return total;
}

// ------------------------------------------------------------- SimSource

SimSource::SimSource(size_t num_machines, MachineModel model,
                     double target_rate, uint32_t batch_records,
                     SimStage* first_stage)
    : batch_records_(batch_records), first_stage_(first_stage) {
  for (size_t i = 0; i < num_machines; ++i) {
    auto m = std::make_unique<Machine>();
    m->pace = std::make_unique<TokenBucket>(
        target_rate, target_rate > 0 ? target_rate / 100 : 0,
        SystemClock::Default());
    m->capacity = std::make_unique<TokenBucket>(
        model.nominal_rate, model.nominal_rate / 100,
        SystemClock::Default());
    m->meter = std::make_unique<ThroughputMeter>();
    machines_.push_back(std::move(m));
  }
}

SimSource::~SimSource() { Stop(); }

void SimSource::MachineLoop(Machine* machine, uint64_t records_limit) {
  ScopedRuntimeThread census("sim/source");
  uint64_t produced = 0;
  while (!stop_.load(std::memory_order_relaxed) &&
         produced < records_limit) {
    machine->pace->Acquire(batch_records_);
    machine->capacity->Acquire(batch_records_);
    first_stage_->Submit(SimBatch{batch_records_});
    machine->meter->Add(batch_records_);
    produced += batch_records_;
  }
}

void SimSource::Start() {
  stop_.store(false);
  for (auto& m : machines_) {
    m->meter->Start();
    Machine* raw = m.get();
    m->thread = std::thread(
        [this, raw] { MachineLoop(raw, UINT64_MAX); });
  }
}

void SimSource::Stop() {
  stop_.store(true);
  for (auto& m : machines_) {
    if (m->thread.joinable()) m->thread.join();
  }
}

void SimSource::RunToCount(uint64_t records_each) {
  stop_.store(false);
  for (auto& m : machines_) {
    m->meter->Start();
    Machine* raw = m.get();
    m->thread = std::thread(
        [this, raw, records_each] { MachineLoop(raw, records_each); });
  }
  for (auto& m : machines_) {
    if (m->thread.joinable()) m->thread.join();
  }
}

std::vector<double> SimSource::MachineRates() const {
  std::vector<double> out;
  out.reserve(machines_.size());
  for (const auto& m : machines_) out.push_back(m->meter->Rate());
  return out;
}

std::vector<double> SimSource::MachineTimeseries(size_t i) const {
  return machines_[i]->meter->Timeseries();
}

uint64_t SimSource::TotalRecords() const {
  uint64_t total = 0;
  for (const auto& m : machines_) total += m->meter->count();
  return total;
}

}  // namespace chariots::sim
