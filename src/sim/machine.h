#ifndef CHARIOTS_SIM_MACHINE_H_
#define CHARIOTS_SIM_MACHINE_H_

namespace chariots::sim {

/// Capacity model of one machine in the simulated cluster (the substitution
/// for the paper's testbed, DESIGN.md §4). A machine processes records at
/// up to `nominal_rate`; when driven past saturation (its inbox persistently
/// above `overload_fill`), contention overhead drops the effective service
/// rate to `overload_rate` — reproducing the rise-then-drop of Figure 7.
struct MachineModel {
  double nominal_rate = 131'000;
  double overload_rate = 131'000;
  double overload_fill = 0.9;
};

/// The private-cloud machines (Xeon E5620, 10 GbE): ~131K appends/s,
/// no pronounced overload degradation observed in the paper.
inline MachineModel PrivateCloudMachine() {
  return MachineModel{131'000, 124'000, 0.95};
}

/// The public-cloud machines (AWS c3.large): peak ~150K appends/s at the
/// saturation knee, degrading to ~120K under overload (paper Figure 7).
inline MachineModel PublicCloudMachine() {
  return MachineModel{150'000, 120'000, 0.85};
}

/// Per-stage calibrations for the Chariots pipeline tables (Tables 2–5).
/// Values are tuned to the paper's basic-deployment measurements: every
/// machine class lands near 124–132 Kappends/s, with the filter degrading
/// to ~120K when its NIC is saturated by multiple upstream batchers.
inline MachineModel ClientMachine() { return {129'500, 129'500, 1.0}; }
inline MachineModel BatcherMachine() { return {130'000, 126'500, 0.85}; }
inline MachineModel FilterMachine() { return {129'000, 120'000, 0.85}; }
inline MachineModel MaintainerMachine() { return {124'000, 118'000, 0.9}; }
inline MachineModel StoreMachine() { return {132'000, 121'000, 0.9}; }

}  // namespace chariots::sim

#endif  // CHARIOTS_SIM_MACHINE_H_
