#ifndef CHARIOTS_SIM_METER_H_
#define CHARIOTS_SIM_METER_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/clock.h"

namespace chariots::sim {

/// Thread-safe records/second meter with a windowed timeseries (used by the
/// Figure 9 reproduction) and overall-rate reporting (used by the tables).
class ThroughputMeter {
 public:
  /// `window_nanos`: bucket width for the timeseries.
  explicit ThroughputMeter(int64_t window_nanos = 1'000'000'000,
                           Clock* clock = SystemClock::Default())
      : window_nanos_(window_nanos), clock_(clock) {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// Call once measurement begins (sets t0 for rates and buckets).
  void Start() {
    start_nanos_.store(clock_->NowNanos(), std::memory_order_relaxed);
    started_.store(true, std::memory_order_release);
  }

  void Add(uint64_t records) {
    int64_t now = clock_->NowNanos();
    count_.fetch_add(records, std::memory_order_relaxed);
    last_nanos_.store(now, std::memory_order_relaxed);
    if (!started_.load(std::memory_order_acquire)) return;
    int64_t start = start_nanos_.load(std::memory_order_relaxed);
    size_t bucket = static_cast<size_t>((now - start) / window_nanos_);
    if (bucket < kMaxBuckets) {
      buckets_[bucket].fetch_add(records, std::memory_order_relaxed);
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Average records/second from Start() to the last Add().
  double Rate() const {
    if (!started_.load(std::memory_order_acquire)) return 0;
    int64_t start = start_nanos_.load(std::memory_order_relaxed);
    int64_t last = last_nanos_.load(std::memory_order_relaxed);
    if (last <= start) return 0;
    return static_cast<double>(count()) * 1e9 /
           static_cast<double>(last - start);
  }

  /// Records/second per window since Start(), up to the last active window.
  std::vector<double> Timeseries() const {
    std::vector<double> out;
    if (!started_.load(std::memory_order_acquire)) return out;
    int64_t start = start_nanos_.load(std::memory_order_relaxed);
    int64_t last = last_nanos_.load(std::memory_order_relaxed);
    if (last <= start) return out;
    size_t n = static_cast<size_t>((last - start) / window_nanos_) + 1;
    n = std::min(n, kMaxBuckets);
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(buckets_[i].load(std::memory_order_relaxed) * 1e9 /
                    static_cast<double>(window_nanos_));
    }
    return out;
  }

 private:
  static constexpr size_t kMaxBuckets = 600;

  const int64_t window_nanos_;
  Clock* const clock_;
  std::atomic<bool> started_{false};
  std::atomic<int64_t> start_nanos_{0};
  std::atomic<int64_t> last_nanos_{0};
  std::atomic<uint64_t> count_{0};
  std::array<std::atomic<uint64_t>, kMaxBuckets> buckets_{};
};

}  // namespace chariots::sim

#endif  // CHARIOTS_SIM_METER_H_
