#ifndef CHARIOTS_SIM_CHARIOTS_PIPELINE_H_
#define CHARIOTS_SIM_CHARIOTS_PIPELINE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/pipeline_sim.h"

namespace chariots::sim {

/// Stage widths for a simulated Chariots deployment (Tables 2–5). Rows are
/// named as the paper's tables name them: Client, Batcher, Filter,
/// Maintainer (the LId-assignment stage), Store (FLStore persistence).
struct PipelineShape {
  size_t clients = 1;
  size_t batchers = 1;
  size_t filters = 1;
  size_t maintainers = 1;
  size_t stores = 1;
};

/// One simulated Chariots pipeline (single datacenter, as in §7.2): client
/// machines feed batchers through a *shallow* inbox (appends are
/// acknowledged, so clients feel backpressure from a saturated batcher),
/// while batchers spool into deep downstream buffers (their whole job is
/// buffering — the Figure 9 drain behaviour).
class ChariotsPipelineSim {
 public:
  /// `time_scale`: uniform rate scaling (all modeled rates divided by it
  /// for execution, results multiplied back — queueing shapes are
  /// invariant). Lets a multi-hundred-K/s deployment run faithfully on a
  /// small host; reported rates are machine-equivalent records/s.
  explicit ChariotsPipelineSim(const PipelineShape& shape,
                               double client_target_rate = 0,
                               uint32_t batch_records = 256,
                               double time_scale = 10);

  /// Runs each client to `records_per_client` (in modeled records; scaled
  /// internally) and waits for the pipeline to drain completely.
  void RunToCount(uint64_t records_per_client);

  /// Scaled records/s timeseries for a row machine ("Client" row index 0).
  std::vector<double> Timeseries(const std::string& stage_name,
                                 size_t machine) const;

  /// Per-machine rates for one table row, in stage order.
  struct RowResult {
    std::string stage;
    std::vector<double> machine_rates;
  };
  std::vector<RowResult> Results() const;

  /// Prints the table in the paper's format.
  void PrintTable(const char* title) const;

  SimSource& clients() { return *clients_; }
  SimStage& stage(size_t i) { return *stages_[i]; }
  size_t num_stages() const { return stages_.size(); }

 private:
  double time_scale_;
  std::unique_ptr<SimSource> clients_;
  std::vector<std::unique_ptr<SimStage>> stages_;  // batcher..store
};

}  // namespace chariots::sim

#endif  // CHARIOTS_SIM_CHARIOTS_PIPELINE_H_
