#ifndef CHARIOTS_SIM_WORKLOAD_H_
#define CHARIOTS_SIM_WORKLOAD_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace chariots::sim {

/// Key-access distributions for key-value / stream workloads.
enum class KeyDistribution {
  kUniform,   ///< all keys equally likely
  kZipfian,   ///< classic hot-key skew (YCSB-style)
  kLatest,    ///< recent keys most popular (time-series/feed shape)
};

/// Operations a key-value workload can emit.
enum class OpType { kPut, kGet, kDelete, kGetTxn };

struct Op {
  OpType type;
  std::string key;
  std::string value;                  ///< puts only
  std::vector<std::string> txn_keys;  ///< get-txns only
};

/// Configurable synthetic workload generator (the paper's evaluation uses
/// uniform record streams; the application benches use this to exercise
/// realistic key-value shapes).
struct WorkloadOptions {
  uint64_t num_keys = 1000;
  KeyDistribution distribution = KeyDistribution::kZipfian;
  double zipf_theta = 0.99;
  /// Operation mix; must sum to <= 1, the remainder is gets.
  double put_fraction = 0.5;
  double delete_fraction = 0.0;
  double get_txn_fraction = 0.0;
  uint32_t get_txn_keys = 5;
  size_t value_bytes = 100;
  uint64_t seed = 42;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options)
      : options_(options), rng_(options.seed) {
    if (options_.distribution == KeyDistribution::kZipfian) {
      BuildZipf();
    }
  }

  /// Draws the next operation.
  Op Next() {
    Op op;
    double dice = rng_.NextDouble();
    if (dice < options_.put_fraction) {
      op.type = OpType::kPut;
      op.key = NextKey();
      op.value = rng_.NextString(options_.value_bytes);
    } else if (dice < options_.put_fraction + options_.delete_fraction) {
      op.type = OpType::kDelete;
      op.key = NextKey();
    } else if (dice < options_.put_fraction + options_.delete_fraction +
                          options_.get_txn_fraction) {
      op.type = OpType::kGetTxn;
      for (uint32_t i = 0; i < options_.get_txn_keys; ++i) {
        op.txn_keys.push_back(NextKey());
      }
    } else {
      op.type = OpType::kGet;
      op.key = NextKey();
    }
    ++ops_generated_;
    return op;
  }

  /// Draws a key index per the configured distribution.
  uint64_t NextKeyIndex() {
    switch (options_.distribution) {
      case KeyDistribution::kUniform:
        return rng_.Uniform(options_.num_keys);
      case KeyDistribution::kZipfian:
        return ZipfDraw();
      case KeyDistribution::kLatest: {
        // Key popularity decays with distance from the "newest" key, which
        // advances as the workload runs.
        uint64_t newest = ops_generated_ % options_.num_keys;
        uint64_t back = ZipfDraw();
        return (newest + options_.num_keys - back % options_.num_keys) %
               options_.num_keys;
      }
    }
    return 0;
  }

  std::string NextKey() {
    return "key" + std::to_string(NextKeyIndex());
  }

  uint64_t ops_generated() const { return ops_generated_; }

 private:
  // Standard Zipf(θ) via the Gray et al. method with precomputed zeta.
  void BuildZipf() {
    zeta_ = 0;
    for (uint64_t i = 1; i <= options_.num_keys; ++i) {
      zeta_ += 1.0 / std::pow(static_cast<double>(i), options_.zipf_theta);
    }
    double theta = options_.zipf_theta;
    alpha_ = 1.0 / (1.0 - theta);
    zeta2_ = 1.0 + std::pow(0.5, theta);
    eta_ = (1.0 - std::pow(2.0 / options_.num_keys, 1.0 - theta)) /
           (1.0 - zeta2_ / zeta_);
  }

  uint64_t ZipfDraw() {
    if (options_.distribution != KeyDistribution::kZipfian &&
        options_.distribution != KeyDistribution::kLatest) {
      return rng_.Uniform(options_.num_keys);
    }
    double u = rng_.NextDouble();
    double uz = u * zeta_;
    if (uz < 1.0) return 0;
    if (uz < zeta2_) return 1;
    uint64_t k = static_cast<uint64_t>(
        options_.num_keys * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= options_.num_keys ? options_.num_keys - 1 : k;
  }

  WorkloadOptions options_;
  Random rng_;
  uint64_t ops_generated_ = 0;
  double zeta_ = 0, zeta2_ = 0, alpha_ = 0, eta_ = 0;
};

}  // namespace chariots::sim

#endif  // CHARIOTS_SIM_WORKLOAD_H_
