#include "sim/flstore_load.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/queue.h"
#include "common/rate_limiter.h"
#include "flstore/maintainer.h"
#include "sim/meter.h"

namespace chariots::sim {

namespace {

/// Records move between the client and maintainer machine in batches: one
/// queue operation per kTransferBatch records. (The harness may run on a
/// single-core host; per-record locking would measure the host's mutex
/// throughput instead of the modeled machines'.)
constexpr size_t kTransferBatch = 32;

/// Reclaim the in-memory store periodically so long sweeps don't grow
/// memory without bound (equivalent to archiving cold segments).
constexpr uint64_t kTruncateEvery = 1 << 16;

/// One maintainer machine: a real FLStore LogMaintainer behind a service
/// token bucket with the Figure 7 overload degradation.
struct MaintainerBox {
  std::unique_ptr<flstore::LogMaintainer> maintainer;
  std::unique_ptr<BoundedQueue<std::vector<flstore::LogRecord>>> inbox;
  std::unique_ptr<TokenBucket> service;
  std::unique_ptr<ThroughputMeter> meter;
  std::thread thread;
  bool overloaded = false;
};

}  // namespace

FLStoreLoadResult RunFLStoreLoad(const FLStoreLoadOptions& raw_options) {
  Clock* clock = SystemClock::Default();
  // Apply the uniform time scale (see FLStoreLoadOptions::time_scale).
  FLStoreLoadOptions options = raw_options;
  const double scale = options.time_scale > 0 ? options.time_scale : 1;
  options.target_per_maintainer /= scale;
  MachineModel model = options.maintainer_model;
  model.nominal_rate /= scale;
  model.overload_rate /= scale;

  std::vector<std::unique_ptr<MaintainerBox>> machines;
  for (uint32_t m = 0; m < options.num_maintainers; ++m) {
    auto machine = std::make_unique<MaintainerBox>();
    flstore::MaintainerOptions mo;
    mo.index = m;
    mo.journal = flstore::EpochJournal(options.num_maintainers,
                                       options.stripe_batch);
    mo.store.mode = storage::SyncMode::kMemoryOnly;
    machine->maintainer = std::make_unique<flstore::LogMaintainer>(mo);
    Status s = machine->maintainer->Open();
    (void)s;
    machine->inbox = std::make_unique<
        BoundedQueue<std::vector<flstore::LogRecord>>>(64);
    machine->service = std::make_unique<TokenBucket>(
        model.nominal_rate, model.nominal_rate / 100, clock);
    machine->meter = std::make_unique<ThroughputMeter>();
    machines.push_back(std::move(machine));
  }

  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> offered{0};

  // Maintainer machine loops: pull a batch, pay the modeled service cost,
  // then run the real post-assignment appends.
  for (auto& machine : machines) {
    MaintainerBox* raw = machine.get();
    machine->thread = std::thread([raw, &model, &measuring] {
      ScopedRuntimeThread census("sim/flmaint");
      uint64_t appended = 0;
      while (auto batch = raw->inbox->Pop()) {
        double fill = raw->inbox->fill_fraction();
        if (!raw->overloaded && fill > model.overload_fill) {
          raw->service->set_rate(model.overload_rate);
          raw->overloaded = true;
        } else if (raw->overloaded && fill < model.overload_fill / 2) {
          raw->service->set_rate(model.nominal_rate);
          raw->overloaded = false;
        }
        raw->service->Acquire(static_cast<double>(batch->size()));
        (void)raw->maintainer->AppendBatch(*batch);
        appended += batch->size();
        if (measuring.load(std::memory_order_relaxed)) {
          raw->meter->Add(batch->size());
        }
        if (appended >= kTruncateEvery) {
          appended = 0;
          (void)raw->maintainer->TruncateBelow(flstore::kInvalidLId - 1);
        }
      }
    });
  }

  // Client machines: one generator per maintainer at the target rate.
  // Closed-loop clients (target 0) block on the inbox; open-loop clients
  // drop the batch when the inbox is full (offered load beyond acceptance).
  std::vector<std::thread> clients;
  for (auto& machine : machines) {
    MaintainerBox* raw = machine.get();
    clients.emplace_back([raw, &options, &stop, &offered, &measuring,
                          clock] {
      TokenBucket pace(options.target_per_maintainer,
                       options.target_per_maintainer > 0
                           ? options.target_per_maintainer / 100
                           : 0,
                       clock);
      flstore::LogRecord record;
      record.body.assign(options.record_bytes, 'x');
      while (!stop.load(std::memory_order_relaxed)) {
        pace.Acquire(kTransferBatch);
        if (measuring.load(std::memory_order_relaxed)) {
          offered.fetch_add(kTransferBatch, std::memory_order_relaxed);
        }
        std::vector<flstore::LogRecord> batch(kTransferBatch, record);
        if (options.target_per_maintainer > 0) {
          (void)raw->inbox->TryPush(std::move(batch));  // open loop
        } else {
          if (!raw->inbox->Push(std::move(batch))) return;  // closed loop
        }
      }
    });
  }

  clock->SleepFor(options.warmup_nanos);
  for (auto& machine : machines) machine->meter->Start();
  measuring.store(true);
  clock->SleepFor(options.measure_nanos);
  measuring.store(false);
  stop.store(true);
  for (auto& machine : machines) machine->inbox->Close();
  for (auto& t : clients) t.join();
  for (auto& machine : machines) {
    if (machine->thread.joinable()) machine->thread.join();
  }

  FLStoreLoadResult result;
  for (auto& machine : machines) {
    // Rate over the fixed measurement window (not machine-active time),
    // reported in modeled machine-equivalent records/s.
    double rate = static_cast<double>(machine->meter->count()) * 1e9 /
                  static_cast<double>(options.measure_nanos) * scale;
    result.per_maintainer_rate.push_back(rate);
    result.total_rate += rate;
  }
  result.offered_rate = static_cast<double>(offered.load()) * 1e9 /
                        static_cast<double>(options.measure_nanos) * scale;
  return result;
}

}  // namespace chariots::sim
