#ifndef CHARIOTS_SIM_FLSTORE_LOAD_H_
#define CHARIOTS_SIM_FLSTORE_LOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/machine.h"

namespace chariots::sim {

/// Parameters for an FLStore load experiment (Figures 7 and 8): real
/// LogMaintainer instances (post-assignment, in-memory store) hosted on
/// simulated machines with the given capacity model, driven by generator
/// ("client") machines at a per-maintainer target rate.
struct FLStoreLoadOptions {
  uint32_t num_maintainers = 1;
  uint64_t stripe_batch = 1000;
  MachineModel maintainer_model = PublicCloudMachine();
  /// Offered load per maintainer, records/s; 0 = closed loop (clients
  /// append as fast as the maintainers acknowledge — the private-cloud
  /// client behaviour).
  double target_per_maintainer = 0;
  /// Record body size (the paper uses 512 B).
  size_t record_bytes = 512;
  int64_t warmup_nanos = 100'000'000;   // 0.1 s
  int64_t measure_nanos = 300'000'000;  // 0.3 s
  /// Uniform time scaling: all modeled rates are divided by this factor
  /// for execution and results are multiplied back. Queueing behaviour
  /// (ratios, saturation knees, bottleneck hand-off) is invariant under
  /// uniform scaling; this lets a deployment modeling >1M records/s run
  /// faithfully on a small (even single-core) host. Reported rates are in
  /// modeled machine-equivalent records/s.
  double time_scale = 10;
};

struct FLStoreLoadResult {
  /// Achieved appends/s summed over maintainers (measured window only).
  double total_rate = 0;
  std::vector<double> per_maintainer_rate;
  /// Records the generators offered during the measured window.
  double offered_rate = 0;
};

/// Runs the experiment and reports achieved throughput.
FLStoreLoadResult RunFLStoreLoad(const FLStoreLoadOptions& options);

}  // namespace chariots::sim

#endif  // CHARIOTS_SIM_FLSTORE_LOAD_H_
