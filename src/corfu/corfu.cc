#include "corfu/corfu.h"

namespace chariots::corfu {

Sequencer::Sequencer(double capacity_tokens_per_sec, Clock* clock) {
  if (capacity_tokens_per_sec > 0) {
    capacity_ = std::make_unique<TokenBucket>(
        capacity_tokens_per_sec, capacity_tokens_per_sec / 100, clock);
  }
}

Position Sequencer::Next(uint64_t count) {
  if (capacity_ != nullptr) capacity_->Acquire(static_cast<double>(count));
  return next_.fetch_add(count, std::memory_order_relaxed);
}

Position Sequencer::Tail() const {
  return next_.load(std::memory_order_relaxed);
}

Status StorageUnit::Write(Position position, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cells_.try_emplace(position);
  if (!inserted) {
    return Status::AlreadyExists("cell occupied (write-once)");
  }
  it->second.payload = std::move(payload);
  return Status::OK();
}

Status StorageUnit::Fill(Position position) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cells_.try_emplace(position);
  if (!inserted && !it->second.junk) {
    return Status::AlreadyExists("cell holds data; cannot junk-fill");
  }
  it->second.junk = true;
  it->second.payload.clear();
  return Status::OK();
}

Result<std::string> StorageUnit::Read(Position position) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(position);
  if (it == cells_.end()) return Status::NotFound("hole (never written)");
  if (it->second.junk) return Status::Aborted("junk-filled hole");
  return it->second.payload;
}

uint64_t StorageUnit::cells_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

CorfuLog::CorfuLog(Sequencer* sequencer, std::vector<StorageUnit*> units)
    : sequencer_(sequencer), units_(std::move(units)) {}

Result<Position> CorfuLog::Append(std::string payload) {
  Position position = sequencer_->Next();
  CHARIOTS_RETURN_IF_ERROR(UnitFor(position)->Write(position,
                                                    std::move(payload)));
  return position;
}

Result<std::string> CorfuLog::Read(Position position) const {
  return UnitFor(position)->Read(position);
}

Status CorfuLog::Fill(Position position) {
  return UnitFor(position)->Fill(position);
}

}  // namespace chariots::corfu
