#ifndef CHARIOTS_CORFU_CORFU_H_
#define CHARIOTS_CORFU_CORFU_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rate_limiter.h"
#include "common/result.h"
#include "common/status.h"

namespace chariots::corfu {

/// Log position in the CORFU-style baseline.
using Position = uint64_t;

/// The centralized sequencer of the CORFU protocol (paper §2.1, §5.2): it
/// *pre-assigns* log positions to clients before they write. This is the
/// design whose single-machine bandwidth bounds the whole log's append
/// throughput — the bottleneck FLStore's post-assignment removes.
///
/// An optional token bucket models the sequencer machine's finite capacity
/// (network I/O of a single box); leave the rate at 0 for an ideal,
/// infinitely fast sequencer.
class Sequencer {
 public:
  explicit Sequencer(double capacity_tokens_per_sec = 0,
                     Clock* clock = SystemClock::Default());

  /// Reserves `count` consecutive positions and returns the first.
  Position Next(uint64_t count = 1);

  /// Highest position handed out + 1 (the tail).
  Position Tail() const;

 private:
  std::atomic<Position> next_{0};
  std::unique_ptr<TokenBucket> capacity_;
};

/// A flash-unit-style storage server: write-once cells addressed by
/// position. Writing an occupied cell fails (AlreadyExists), which is what
/// makes client-driven CORFU appends safe; a special junk fill marks holes
/// left by crashed clients so readers can skip them.
class StorageUnit {
 public:
  /// Writes `payload` at `position`; write-once.
  Status Write(Position position, std::string payload);

  /// Marks `position` as junk (hole fill). Succeeds if empty or already
  /// junk; fails with AlreadyExists if real data is present.
  Status Fill(Position position);

  /// Reads the cell; NotFound if never written, Aborted if junk-filled.
  Result<std::string> Read(Position position) const;

  uint64_t cells_written() const;

 private:
  struct Cell {
    bool junk = false;
    std::string payload;
  };
  mutable std::mutex mu_;
  std::unordered_map<Position, Cell> cells_;
};

/// Client-driven CORFU log: ask the sequencer for a position, then write
/// directly to the responsible storage unit (position % num_units). The
/// data path bypasses the sequencer — appends scale with storage units —
/// but every append still pays one sequencer round trip, so total
/// throughput is capped by the sequencer's capacity.
class CorfuLog {
 public:
  CorfuLog(Sequencer* sequencer, std::vector<StorageUnit*> units);

  /// Appends a record; returns its position.
  Result<Position> Append(std::string payload);

  /// Reads a position (NotFound for holes not yet filled, Aborted for
  /// junk).
  Result<std::string> Read(Position position) const;

  /// Fills a hole at `position` (crash recovery path).
  Status Fill(Position position);

  /// The sequencer's current tail.
  Position Tail() const { return sequencer_->Tail(); }

 private:
  StorageUnit* UnitFor(Position position) const {
    return units_[position % units_.size()];
  }

  Sequencer* const sequencer_;
  std::vector<StorageUnit*> units_;
};

}  // namespace chariots::corfu

#endif  // CHARIOTS_CORFU_CORFU_H_
