#ifndef CHARIOTS_COMMON_RANDOM_H_
#define CHARIOTS_COMMON_RANDOM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

namespace chariots {

/// Small fast deterministic PRNG (xorshift128+). Not cryptographic. Each
/// instance is single-threaded; give each worker its own seeded instance for
/// reproducible workloads.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    s0_ = seed ^ 0x2545f4914f6cdd1dull;
    s1_ = seed * 0x9e3779b97f4a7c15ull + 1;
    // Warm up to decorrelate close seeds.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool OneIn(double p) { return NextDouble() < p; }

  /// Random printable ASCII string of length n.
  std::string NextString(size_t n) {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(kAlphabet[Uniform(sizeof(kAlphabet) - 1)]);
    }
    return out;
  }

  /// Zipfian-ish skewed pick in [0, n): front-loaded distribution used by
  /// key-value workloads. theta in (0,1), higher = more skew.
  uint64_t Skewed(uint64_t n, double theta = 0.99) {
    // Approximate: pick an exponent-distributed rank.
    double u = NextDouble();
    double rank = (n - 1) * (1.0 - std::min(1.0, u / (1.0 - theta + 1e-9)));
    if (rank < 0) rank = 0;
    uint64_t r = static_cast<uint64_t>(rank);
    return r >= n ? n - 1 : r;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_RANDOM_H_
