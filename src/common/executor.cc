#include "common/executor.h"

#include <algorithm>

#ifdef __linux__
#include <pthread.h>
#endif

#include "common/logging.h"
#include "common/metrics.h"

namespace chariots {

namespace {

metrics::Gauge* RuntimeThreadsGauge() {
  static metrics::Gauge* g =
      metrics::Registry::Default().GetGauge("chariots.runtime.threads");
  return g;
}

/// High-water mark of the census: the steady-state thread budget survives
/// teardown, so bench reports written after Stop() still show it.
metrics::Gauge* RuntimeThreadsPeakGauge() {
  static metrics::Gauge* g =
      metrics::Registry::Default().GetGauge("chariots.runtime.threads_peak");
  return g;
}

}  // namespace

ScopedRuntimeThread::ScopedRuntimeThread(const std::string& name) {
#ifdef __linux__
  // The kernel limit is 16 bytes including the terminator.
  std::string short_name = name.substr(0, 15);
  pthread_setname_np(pthread_self(), short_name.c_str());
#else
  (void)name;
#endif
  RuntimeThreadsGauge()->Add(1);
  RuntimeThreadsPeakGauge()->MaxOf(RuntimeThreadsGauge()->Value());
}

ScopedRuntimeThread::~ScopedRuntimeThread() { RuntimeThreadsGauge()->Add(-1); }

int64_t RuntimeThreadCount() { return RuntimeThreadsGauge()->Value(); }

int64_t RuntimeThreadPeak() { return RuntimeThreadsPeakGauge()->Value(); }

// ---------------------------------------------------------------------------
// Timer state
// ---------------------------------------------------------------------------

struct Executor::TimerToken::TimerState {
  std::function<void()> fn;
  int64_t period_nanos = 0;  // 0 = one-shot
  Lane lane = Lane::kWorker;

  std::mutex mu;
  std::condition_variable cv;
  bool cancelled = false;
  bool running = false;
  std::thread::id runner;
};

void Executor::TimerToken::Cancel() {
  if (!state_) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cancelled = true;
  if (state_->running && state_->runner == std::this_thread::get_id()) {
    // Cancel from inside the callback: the current run finishes, no rearm.
    return;
  }
  state_->cv.wait(lock, [&] { return !state_->running; });
}

struct Executor::Shard {
  std::mutex mu;
  std::deque<std::function<void()>> tasks;
};

struct Executor::TimerEntry {
  int64_t due_nanos = 0;
  uint64_t seq = 0;  // FIFO tie-break for equal deadlines
  std::shared_ptr<TimerToken::TimerState> state;

  bool operator>(const TimerEntry& other) const {
    if (due_nanos != other.due_nanos) return due_nanos > other.due_nanos;
    return seq > other.seq;
  }
};

// ---------------------------------------------------------------------------
// Construction / default instance
// ---------------------------------------------------------------------------

namespace {

std::mutex g_default_mu;
Executor::Options* g_default_options = nullptr;
bool g_default_built = false;

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  return std::max<size_t>(2, std::min<size_t>(8, hw));
}

}  // namespace

Executor::Executor() : Executor(Options{}) {}

Executor::Executor(Options options) : name_(options.name) {
  manual_ = options.manual_clock;
  clock_ = manual_ != nullptr
               ? static_cast<Clock*>(manual_)
               : (options.clock != nullptr ? options.clock
                                           : SystemClock::Default());
  size_t n = ResolveThreads(options.num_threads);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (manual_ == nullptr) {
    timer_thread_ = std::thread([this] { TimerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

Executor* Executor::Default() {
  static Executor* instance = [] {
    std::lock_guard<std::mutex> lock(g_default_mu);
    g_default_built = true;
    Options opts = g_default_options != nullptr ? *g_default_options
                                                : Options{};
    if (opts.name == "exec") opts.name = "chx";
    return new Executor(opts);  // leaked: see header
  }();
  return instance;
}

void Executor::ConfigureDefault(Options options) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  if (g_default_built) {
    LOG_WARN << "Executor::ConfigureDefault called after Default() was "
                "built; ignored";
    return;
  }
  delete g_default_options;
  g_default_options = new Options(std::move(options));
}

// ---------------------------------------------------------------------------
// Worker lane
// ---------------------------------------------------------------------------

bool Executor::Submit(std::function<void()> fn) {
  if (shutdown_.load(std::memory_order_acquire)) {
    LOG_EVERY_N_SEC(kWarn, 5) << "executor '" << name_
                             << "': Submit after shutdown; task dropped";
    return false;
  }
  size_t idx = submit_rr_.fetch_add(1, std::memory_order_relaxed) %
               shards_.size();
  // Increment before pushing so a worker can never decrement below zero by
  // popping a task whose increment is still in flight.
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(shards_[idx]->mu);
    shards_[idx]->tasks.push_back(std::move(fn));
  }
  {
    // Acquiring the sleep mutex (even empty) closes the race with a worker
    // that checked pending_ and is about to wait.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
  return true;
}

bool Executor::PopTask(size_t index, std::function<void()>* task) {
  // Own queue first (FIFO), then steal from the back of the others.
  {
    Shard& own = *shards_[index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  for (size_t off = 1; off < shards_.size(); ++off) {
    Shard& other = *shards_[(index + off) % shards_.size()];
    std::lock_guard<std::mutex> lock(other.mu);
    if (!other.tasks.empty()) {
      *task = std::move(other.tasks.back());
      other.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void Executor::WorkerLoop(size_t index) {
  ScopedRuntimeThread census(name_ + "/" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    if (PopTask(index, &task)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      running_.fetch_add(1, std::memory_order_acq_rel);
      task();
      running_.fetch_sub(1, std::memory_order_acq_rel);
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      if (idle_waiters_.load(std::memory_order_acquire) > 0) {
        // Taking the mutex (even empty) closes the race with a waiter that
        // checked the counters and is about to wait.
        { std::lock_guard<std::mutex> lock(sleep_mu_); }
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (pending_.load(std::memory_order_acquire) > 0) {
      // A push is in flight (pending_ is incremented before the enqueue) or
      // another worker is racing us; retry rather than sleep past it.
      lock.unlock();
      std::this_thread::yield();
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    sleep_cv_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             shutdown_.load(std::memory_order_acquire);
    });
  }
}

// ---------------------------------------------------------------------------
// Timer lane
// ---------------------------------------------------------------------------

Executor::TimerToken Executor::ScheduleAt(int64_t at_nanos,
                                          std::function<void()> fn,
                                          Lane lane) {
  if (shutdown_.load(std::memory_order_acquire)) return TimerToken();
  auto state = std::make_shared<TimerToken::TimerState>();
  state->fn = std::move(fn);
  state->period_nanos = 0;
  state->lane = lane;
  Arm(state, at_nanos);
  return TimerToken(state);
}

Executor::TimerToken Executor::ScheduleAfter(int64_t delay_nanos,
                                             std::function<void()> fn,
                                             Lane lane) {
  return ScheduleAt(clock_->NowNanos() + delay_nanos, std::move(fn), lane);
}

Executor::TimerToken Executor::ScheduleEvery(int64_t period_nanos,
                                             std::function<void()> fn,
                                             Lane lane) {
  if (shutdown_.load(std::memory_order_acquire)) return TimerToken();
  auto state = std::make_shared<TimerToken::TimerState>();
  state->fn = std::move(fn);
  state->period_nanos = period_nanos > 0 ? period_nanos : 1;
  state->lane = lane;
  Arm(state, clock_->NowNanos() + state->period_nanos);
  return TimerToken(state);
}

void Executor::Arm(std::shared_ptr<TimerToken::TimerState> state,
                   int64_t due_nanos) {
  bool is_head = false;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (shutdown_.load(std::memory_order_acquire)) return;
    is_head = timers_.empty() || due_nanos < timers_.top().due_nanos;
    timers_.push(TimerEntry{due_nanos, timer_seq_++, std::move(state)});
  }
  if (is_head) timer_cv_.notify_one();
}

void Executor::RunTimer(
    const std::shared_ptr<TimerToken::TimerState>& state) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->cancelled) return;
    state->running = true;
    state->runner = std::this_thread::get_id();
  }
  state->fn();
  bool rearm = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->running = false;
    rearm = state->period_nanos > 0 && !state->cancelled;
  }
  state->cv.notify_all();
  if (rearm) Arm(state, clock_->NowNanos() + state->period_nanos);
}

void Executor::TimerLoop() {
  ScopedRuntimeThread census(name_ + "/tmr");
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    int64_t now = clock_->NowNanos();
    int64_t due = timers_.top().due_nanos;
    if (due > now) {
      timer_cv_.wait_for(lock, std::chrono::nanoseconds(due - now));
      continue;
    }
    TimerEntry entry = timers_.top();
    timers_.pop();
    lock.unlock();
    if (entry.state->lane == Lane::kTimer) {
      // Inline on the timer thread: reserved for non-blocking callbacks
      // (e.g. transport response delivery). See header.
      RunTimer(entry.state);
    } else {
      std::shared_ptr<TimerToken::TimerState> state = entry.state;
      Submit([this, state] { RunTimer(state); });
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Virtual time
// ---------------------------------------------------------------------------

void Executor::AdvanceUntil(int64_t target_nanos) {
  if (manual_ == nullptr) {
    LOG_ERROR << "executor '" << name_
              << "': AdvanceUntil on a real-time executor; ignored";
    return;
  }
  for (;;) {
    TimerEntry entry;
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      if (timers_.empty() || timers_.top().due_nanos > target_nanos) break;
      entry = timers_.top();
      timers_.pop();
    }
    // Never step the clock backwards (entries already due stay at now).
    if (entry.due_nanos > manual_->NowNanos()) manual_->Set(entry.due_nanos);
    RunTimer(entry.state);
  }
  if (target_nanos > manual_->NowNanos()) manual_->Set(target_nanos);
}

void Executor::AdvanceBy(int64_t delta_nanos) {
  if (manual_ == nullptr) {
    LOG_ERROR << "executor '" << name_
              << "': AdvanceBy on a real-time executor; ignored";
    return;
  }
  AdvanceUntil(manual_->NowNanos() + delta_nanos);
}

void Executor::WaitIdle() {
  idle_waiters_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::unique_lock<std::mutex> lock(sleep_mu_);
    idle_cv_.wait(lock, [&] {
      return (pending_.load(std::memory_order_acquire) == 0 &&
              running_.load(std::memory_order_acquire) == 0) ||
             shutdown_.load(std::memory_order_acquire);
    });
  }
  idle_waiters_.fetch_sub(1, std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

void Executor::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    // Pending timers are dropped; their tokens' Cancel() still works
    // (nothing is running, so it returns immediately).
    while (!timers_.empty()) timers_.pop();
  }
  timer_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  idle_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Workers drained every queued task before exiting (they only return when
  // pending_ is 0 and shutdown_ is set).
}

}  // namespace chariots
