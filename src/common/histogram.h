#ifndef CHARIOTS_COMMON_HISTOGRAM_H_
#define CHARIOTS_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace chariots {

/// Log-bucketed latency/size histogram with approximate percentiles.
/// Bucket i covers values in [2^(i/4-ish)] — we use geometric buckets with
/// ratio ~1.2 for ~1 significant digit of resolution across 1ns..100s.
class Histogram {
 public:
  Histogram();

  /// Records one observation (any non-negative magnitude, e.g. nanoseconds).
  void Record(double value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  uint64_t count() const;
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;

  /// Approximate p-th percentile, p in [0,100].
  double Percentile(double p) const;

  /// One-line summary: count/mean/p50/p99/max.
  std::string ToString() const;

  void Reset();

 private:
  size_t BucketFor(double value) const;
  double BucketUpper(size_t index) const;

  static constexpr size_t kNumBuckets = 180;

  mutable std::mutex mu_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_HISTOGRAM_H_
