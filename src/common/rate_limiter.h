#ifndef CHARIOTS_COMMON_RATE_LIMITER_H_
#define CHARIOTS_COMMON_RATE_LIMITER_H_

#include <algorithm>
#include <cstdint>
#include <mutex>

#include "common/clock.h"

namespace chariots {

/// Token-bucket rate limiter. Used throughout the simulation substrate to
/// model per-machine service rates ("a maintainer processes ~130K records/s")
/// and per-link bandwidth ("a NIC moves ~1.25 GB/s").
///
/// Thread-safe. Tokens accrue continuously at `rate_per_sec` up to
/// `burst` tokens.
class TokenBucket {
 public:
  /// `rate_per_sec`: steady-state token accrual. `burst`: bucket capacity.
  /// A non-positive rate means unlimited (Acquire never blocks).
  TokenBucket(double rate_per_sec, double burst, Clock* clock)
      : rate_(rate_per_sec),
        burst_(burst),
        clock_(clock),
        tokens_(burst),
        last_refill_nanos_(clock->NowNanos()) {}

  /// Blocks until `n` tokens are available, then consumes them.
  void Acquire(double n = 1.0) {
    if (rate_ <= 0) return;
    int64_t wait_nanos = ReserveInternal(n);
    if (wait_nanos > 0) clock_->SleepFor(wait_nanos);
  }

  /// Non-blocking: consumes `n` tokens if available right now; returns
  /// whether it succeeded.
  bool TryAcquire(double n = 1.0) {
    if (rate_ <= 0) return true;
    std::lock_guard<std::mutex> lock(mu_);
    Refill();
    if (tokens_ >= n) {
      tokens_ -= n;
      return true;
    }
    return false;
  }

  /// Changes the steady-state rate (used by overload models and elasticity).
  void set_rate(double rate_per_sec) {
    std::lock_guard<std::mutex> lock(mu_);
    Refill();
    rate_ = rate_per_sec;
  }

  double rate() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rate_;
  }

 private:
  // Consumes n tokens (possibly going negative == a reservation) and returns
  // how long the caller must wait for the balance to be non-negative.
  int64_t ReserveInternal(double n) {
    std::lock_guard<std::mutex> lock(mu_);
    Refill();
    tokens_ -= n;
    if (tokens_ >= 0) return 0;
    double deficit = -tokens_;
    return static_cast<int64_t>(deficit / rate_ * 1e9);
  }

  void Refill() {
    int64_t now = clock_->NowNanos();
    double elapsed_sec = (now - last_refill_nanos_) * 1e-9;
    if (elapsed_sec > 0) {
      tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_);
      last_refill_nanos_ = now;
    }
  }

  mutable std::mutex mu_;
  double rate_;
  double burst_;
  Clock* clock_;
  double tokens_;
  int64_t last_refill_nanos_;
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_RATE_LIMITER_H_
