#include "common/trace.h"

#include <algorithm>
#include <chrono>

#include "common/metrics.h"

namespace chariots::trace {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

void TraceContext::AddHop(std::string_view stage, uint32_t dc) {
  if (!active()) return;
  hops.push_back(TraceHop{std::string(stage), dc, NowNanos()});
}

bool ShouldSample(uint64_t seq, uint32_t every) {
  if (every == 0) return false;
  // every == 1 means "every record": seq % 1 is always 0, never 1, so it
  // needs its own arm.
  return every == 1 || seq % every == 1;
}

uint64_t MakeTraceId(uint32_t dc, uint64_t seq) {
  uint64_t id = (static_cast<uint64_t>(dc + 1) << 48) ^ seq;
  return id == 0 ? 1 : id;
}

void EncodeTrace(const TraceContext& ctx, BinaryWriter* writer) {
  if (!ctx.active()) return;
  writer->PutU64(ctx.trace_id);
  writer->PutU32(static_cast<uint32_t>(ctx.hops.size()));
  for (const TraceHop& hop : ctx.hops) {
    writer->PutBytes(hop.stage);
    writer->PutU32(hop.dc);
    writer->PutI64(hop.nanos);
  }
}

bool DecodeTrace(BinaryReader* reader, TraceContext* ctx) {
  *ctx = TraceContext{};
  // An exhausted reader means the encoder wrote no trace (unsampled record,
  // or produced by an older encoder) — inactive, not an error.
  if (reader->AtEnd()) return true;
  if (!reader->GetU64(&ctx->trace_id).ok()) return false;
  uint32_t count = 0;
  if (!reader->GetU32(&count).ok()) return false;
  // A hop is at least 4 (stage len) + 4 (dc) + 8 (nanos) bytes; reject
  // counts that can't fit in what's left instead of allocating for them.
  if (static_cast<uint64_t>(count) * 16 > reader->remaining()) return false;
  ctx->hops.resize(count);
  for (TraceHop& hop : ctx->hops) {
    if (!reader->GetBytes(&hop.stage).ok()) return false;
    if (!reader->GetU32(&hop.dc).ok()) return false;
    if (!reader->GetI64(&hop.nanos).ok()) return false;
  }
  return true;
}

TraceSink& TraceSink::Default() {
  static TraceSink* sink = new TraceSink();  // leaked: outlives teardown
  return *sink;
}

void TraceSink::Record(TraceContext ctx) {
  if (!ctx.active()) return;
  // Feed per-hop latency histograms from consecutive-hop deltas, attributed
  // to the later hop ("how long did it take to reach this stage").
  for (size_t i = 1; i < ctx.hops.size(); ++i) {
    int64_t delta = ctx.hops[i].nanos - ctx.hops[i - 1].nanos;
    if (delta < 0) delta = 0;
    metrics::Registry::Default()
        .GetHistogram("chariots.trace.hop_ns." + ctx.hops[i].stage)
        ->Record(static_cast<uint64_t>(delta));
  }
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(std::move(ctx));
  while (traces_.size() > capacity_) traces_.pop_front();
}

std::vector<TraceContext> TraceSink::Traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {traces_.begin(), traces_.end()};
}

bool TraceSink::Find(uint64_t trace_id, TraceContext* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
    if (it->trace_id == trace_id) {
      *out = *it;
      return true;
    }
  }
  return false;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
}

std::string RenderTracesJson(const std::vector<TraceContext>& traces) {
  std::string out = "[";
  bool first_trace = true;
  for (const TraceContext& t : traces) {
    if (!first_trace) out += ",";
    first_trace = false;
    out += "{\"trace_id\":" + std::to_string(t.trace_id) + ",\"hops\":[";
    bool first_hop = true;
    for (const TraceHop& hop : t.hops) {
      if (!first_hop) out += ",";
      first_hop = false;
      out += "{\"stage\":";
      AppendJsonString(&out, hop.stage);
      out += ",\"dc\":" + std::to_string(hop.dc);
      out += ",\"nanos\":" + std::to_string(hop.nanos) + "}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace chariots::trace
