#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/clock.h"
#include "common/metrics.h"

namespace chariots::trace {
namespace {

std::atomic<Clock*> g_clock{nullptr};

int64_t NowNanos() {
  Clock* clock = g_clock.load(std::memory_order_relaxed);
  if (clock != nullptr) return clock->NowNanos();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

void SetClockForTest(Clock* clock) {
  g_clock.store(clock, std::memory_order_relaxed);
}

void TraceContext::AddHop(std::string_view stage, uint32_t dc) {
  if (!active()) return;
  int64_t now = NowNanos();
  hops.push_back(TraceHop{std::string(stage), dc, now});
  // Chain the stage spans: arriving at a new stage ends the previous one,
  // and the new span is its child — the parent links spell out the critical
  // path client → batcher → ... → incorporation.
  uint32_t parent = 0;
  if (chain != 0 && chain <= spans.size()) {
    TraceSpan& prev = spans[chain - 1];
    if (prev.open()) prev.end_nanos = now;
    parent = chain;
  }
  TraceSpan span;
  span.id = static_cast<uint32_t>(spans.size()) + 1;
  span.parent = parent;
  span.stage = std::string(stage);
  span.dc = dc;
  span.start_nanos = now;
  chain = span.id;
  spans.push_back(std::move(span));
}

uint32_t TraceContext::BeginSpan(std::string_view stage, uint32_t dc) {
  if (!active()) return 0;
  TraceSpan span;
  span.id = static_cast<uint32_t>(spans.size()) + 1;
  span.parent = chain;  // sub-operation of the current pipeline stage
  span.stage = std::string(stage);
  span.dc = dc;
  span.start_nanos = NowNanos();
  spans.push_back(std::move(span));
  return spans.back().id;
}

void TraceContext::EndSpan(uint32_t id) {
  if (id == 0 || id > spans.size()) return;
  TraceSpan& span = spans[id - 1];
  if (span.open()) span.end_nanos = NowNanos();
}

bool ShouldSample(uint64_t seq, uint32_t every) {
  if (every == 0) return false;
  // every == 1 means "every record": seq % 1 is always 0, never 1, so it
  // needs its own arm.
  return every == 1 || seq % every == 1;
}

uint64_t MakeTraceId(uint32_t dc, uint64_t seq) {
  uint64_t id = (static_cast<uint64_t>(dc + 1) << 48) ^ seq;
  return id == 0 ? 1 : id;
}

void EncodeTrace(const TraceContext& ctx, BinaryWriter* writer) {
  if (!ctx.active()) return;
  writer->PutU64(ctx.trace_id);
  writer->PutU32(static_cast<uint32_t>(ctx.hops.size()));
  for (const TraceHop& hop : ctx.hops) {
    writer->PutBytes(hop.stage);
    writer->PutU32(hop.dc);
    writer->PutI64(hop.nanos);
  }
  writer->PutU32(static_cast<uint32_t>(ctx.spans.size()));
  for (const TraceSpan& span : ctx.spans) {
    writer->PutU32(span.id);
    writer->PutU32(span.parent);
    writer->PutBytes(span.stage);
    writer->PutU32(span.dc);
    writer->PutI64(span.start_nanos);
    writer->PutI64(span.end_nanos);
  }
  writer->PutU32(ctx.chain);
}

bool DecodeTrace(BinaryReader* reader, TraceContext* ctx) {
  *ctx = TraceContext{};
  // An exhausted reader means the encoder wrote no trace (unsampled record,
  // or produced by an older encoder) — inactive, not an error.
  if (reader->AtEnd()) return true;
  if (!reader->GetU64(&ctx->trace_id).ok()) return false;
  uint32_t count = 0;
  if (!reader->GetU32(&count).ok()) return false;
  // A hop is at least 4 (stage len) + 4 (dc) + 8 (nanos) bytes; reject
  // counts that can't fit in what's left instead of allocating for them.
  if (static_cast<uint64_t>(count) * 16 > reader->remaining()) return false;
  ctx->hops.resize(count);
  for (TraceHop& hop : ctx->hops) {
    if (!reader->GetBytes(&hop.stage).ok()) return false;
    if (!reader->GetU32(&hop.dc).ok()) return false;
    if (!reader->GetI64(&hop.nanos).ok()) return false;
  }
  // Spans are a trailing extension: a reader exhausted here decoded a
  // pre-span trace — valid, just span-free.
  if (reader->AtEnd()) return true;
  if (!reader->GetU32(&count).ok()) return false;
  // A span is at least 4+4+4 (stage len)+4+8+8 bytes.
  if (static_cast<uint64_t>(count) * 32 > reader->remaining()) return false;
  ctx->spans.resize(count);
  for (TraceSpan& span : ctx->spans) {
    if (!reader->GetU32(&span.id).ok()) return false;
    if (!reader->GetU32(&span.parent).ok()) return false;
    if (!reader->GetBytes(&span.stage).ok()) return false;
    if (!reader->GetU32(&span.dc).ok()) return false;
    if (!reader->GetI64(&span.start_nanos).ok()) return false;
    if (!reader->GetI64(&span.end_nanos).ok()) return false;
  }
  if (!reader->GetU32(&ctx->chain).ok()) return false;
  return true;
}

std::vector<CriticalPathEntry> CriticalPath(const TraceContext& ctx) {
  std::vector<CriticalPathEntry> path;
  if (!ctx.spans.empty() && ctx.chain != 0 && ctx.chain <= ctx.spans.size()) {
    // Follow parent links from the last open stage span back to the root,
    // then flip to chronological order.
    std::vector<const TraceSpan*> stages;
    uint32_t id = ctx.chain;
    while (id != 0 && id <= ctx.spans.size() &&
           stages.size() <= ctx.spans.size()) {
      const TraceSpan& span = ctx.spans[id - 1];
      stages.push_back(&span);
      id = span.parent;
    }
    std::reverse(stages.begin(), stages.end());
    for (const TraceSpan* span : stages) {
      CriticalPathEntry entry;
      entry.stage = span->stage;
      entry.dc = span->dc;
      entry.start_nanos = span->start_nanos;
      entry.duration_nanos =
          span->open() ? 0 : span->end_nanos - span->start_nanos;
      if (entry.duration_nanos < 0) entry.duration_nanos = 0;
      path.push_back(std::move(entry));
    }
  } else {
    // Span-free trace (old encoder): derive stages from hop deltas.
    for (size_t i = 0; i < ctx.hops.size(); ++i) {
      CriticalPathEntry entry;
      entry.stage = ctx.hops[i].stage;
      entry.dc = ctx.hops[i].dc;
      entry.start_nanos = ctx.hops[i].nanos;
      entry.duration_nanos =
          i + 1 < ctx.hops.size() ? ctx.hops[i + 1].nanos - ctx.hops[i].nanos
                                  : 0;
      if (entry.duration_nanos < 0) entry.duration_nanos = 0;
      path.push_back(std::move(entry));
    }
  }
  int64_t total = 0;
  for (const CriticalPathEntry& entry : path) total += entry.duration_nanos;
  for (CriticalPathEntry& entry : path) {
    entry.share = total == 0 ? 0.0
                             : static_cast<double>(entry.duration_nanos) /
                                   static_cast<double>(total);
  }
  return path;
}

std::string RenderCriticalPath(const TraceContext& ctx) {
  std::vector<CriticalPathEntry> path = CriticalPath(ctx);
  int64_t total = 0;
  for (const CriticalPathEntry& entry : path) total += entry.duration_nanos;
  std::string out = "trace " + std::to_string(ctx.trace_id) +
                    ": end-to-end " + std::to_string(total) + " ns across " +
                    std::to_string(path.size()) + " stages\n";
  // Membership of the stage chain: ids reachable from `chain` via parents.
  std::vector<bool> in_chain(ctx.spans.size() + 1, false);
  for (uint32_t id = ctx.chain; id != 0 && id <= ctx.spans.size() &&
                                !in_chain[id];
       id = ctx.spans[id - 1].parent) {
    in_chain[id] = true;
  }
  char line[160];
  for (const CriticalPathEntry& entry : path) {
    std::snprintf(line, sizeof(line), "  %-14s dc%-3u %12lld ns  %5.1f%%\n",
                  entry.stage.c_str(), entry.dc,
                  static_cast<long long>(entry.duration_nanos),
                  entry.share * 100.0);
    out += line;
    // Sub-operation spans (BeginSpan/EndSpan) nested under this stage.
    for (const TraceSpan& span : ctx.spans) {
      if (span.id == 0 || span.id > ctx.spans.size() || in_chain[span.id] ||
          span.parent == 0 || span.parent > ctx.spans.size() ||
          !in_chain[span.parent]) {
        continue;
      }
      const TraceSpan& parent = ctx.spans[span.parent - 1];
      if (parent.stage != entry.stage ||
          parent.start_nanos != entry.start_nanos) {
        continue;
      }
      std::snprintf(line, sizeof(line), "    + %-12s dc%-3u %12lld ns\n",
                    span.stage.c_str(), span.dc,
                    static_cast<long long>(
                        span.open() ? 0 : span.end_nanos - span.start_nanos));
      out += line;
    }
  }
  return out;
}

TraceSink& TraceSink::Default() {
  static TraceSink* sink = new TraceSink();  // leaked: outlives teardown
  return *sink;
}

void TraceSink::Record(TraceContext ctx) {
  if (!ctx.active()) return;
  // Feed per-hop latency histograms from consecutive-hop deltas, attributed
  // to the later hop ("how long did it take to reach this stage").
  for (size_t i = 1; i < ctx.hops.size(); ++i) {
    int64_t delta = ctx.hops[i].nanos - ctx.hops[i - 1].nanos;
    if (delta < 0) delta = 0;
    metrics::Registry::Default()
        .GetHistogram("chariots.trace.hop_ns." + ctx.hops[i].stage)
        ->Record(static_cast<uint64_t>(delta));
  }
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(std::move(ctx));
  while (traces_.size() > capacity_) traces_.pop_front();
}

std::vector<TraceContext> TraceSink::Traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {traces_.begin(), traces_.end()};
}

bool TraceSink::Find(uint64_t trace_id, TraceContext* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
    if (it->trace_id == trace_id) {
      *out = *it;
      return true;
    }
  }
  return false;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
}

std::string RenderTracesJson(const std::vector<TraceContext>& traces) {
  std::string out = "[";
  bool first_trace = true;
  for (const TraceContext& t : traces) {
    if (!first_trace) out += ",";
    first_trace = false;
    out += "{\"trace_id\":" + std::to_string(t.trace_id) + ",\"hops\":[";
    bool first_hop = true;
    for (const TraceHop& hop : t.hops) {
      if (!first_hop) out += ",";
      first_hop = false;
      out += "{\"stage\":";
      AppendJsonString(&out, hop.stage);
      out += ",\"dc\":" + std::to_string(hop.dc);
      out += ",\"nanos\":" + std::to_string(hop.nanos) + "}";
    }
    out += "],\"spans\":[";
    bool first_span = true;
    for (const TraceSpan& span : t.spans) {
      if (!first_span) out += ",";
      first_span = false;
      out += "{\"id\":" + std::to_string(span.id);
      out += ",\"parent\":" + std::to_string(span.parent);
      out += ",\"stage\":";
      AppendJsonString(&out, span.stage);
      out += ",\"dc\":" + std::to_string(span.dc);
      out += ",\"start_nanos\":" + std::to_string(span.start_nanos);
      out += ",\"end_nanos\":" + std::to_string(span.end_nanos) + "}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace chariots::trace
