#ifndef CHARIOTS_COMMON_CODEC_H_
#define CHARIOTS_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace chariots {

/// Refcounted immutable byte buffer. The unit of ownership on the zero-copy
/// datapath (DESIGN.md §15): payload bytes are encoded into a Buffer once
/// and every later layer (message codec, transport write queue, storage
/// iovec) borrows slices of it instead of copying. Copying a Buffer copies
/// a pointer; the bytes are freed when the last slice drops.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::string bytes)
      : bytes_(std::make_shared<const std::string>(std::move(bytes))) {}

  std::string_view view() const {
    return bytes_ != nullptr ? std::string_view(*bytes_) : std::string_view();
  }
  size_t size() const { return bytes_ != nullptr ? bytes_->size() : 0; }
  bool empty() const { return size() == 0; }
  explicit operator bool() const { return bytes_ != nullptr; }

 private:
  std::shared_ptr<const std::string> bytes_;
};

/// One contiguous run of bytes plus the Buffer keeping it alive. `data` may
/// cover any sub-range of `owner`; an empty owner means the caller
/// guarantees the bytes outlive every use of the slice (stack scratch,
/// string literals).
struct IoSlice {
  std::string_view data;
  Buffer owner;
};

/// An ordered list of IoSlices representing one logical byte string — the
/// in-memory shape of a wire frame or a storage batch that is never
/// materialized contiguously. Cheap to move; copying shares the underlying
/// buffers. Feed the slices straight into writev/sendmsg.
class SliceChain {
 public:
  SliceChain() = default;

  /// Appends a slice; empty slices are dropped (writev dislikes them).
  void Append(IoSlice slice) {
    if (slice.data.empty()) return;
    size_ += slice.data.size();
    slices_.push_back(std::move(slice));
  }

  /// Takes ownership of `bytes` and appends it as one slice.
  void AppendOwned(std::string bytes) {
    Buffer buf(std::move(bytes));
    std::string_view view = buf.view();
    Append(IoSlice{view, std::move(buf)});
  }

  /// Borrows the whole buffer as one slice.
  void AppendBuffer(Buffer buffer) {
    std::string_view view = buffer.view();
    Append(IoSlice{view, std::move(buffer)});
  }

  /// Moves every slice of `other` onto the tail of this chain.
  void Extend(SliceChain&& other) {
    for (IoSlice& s : other.slices_) {
      size_ += s.data.size();
      slices_.push_back(std::move(s));
    }
    other.slices_.clear();
    other.size_ = 0;
  }

  /// Total bytes across all slices.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::vector<IoSlice>& slices() const { return slices_; }

  /// Materializes the chain into one contiguous string (tests, fallbacks).
  std::string Flatten() const {
    std::string out;
    out.reserve(size_);
    for (const IoSlice& s : slices_) out.append(s.data);
    return out;
  }

  void Clear() {
    slices_.clear();
    size_ = 0;
  }

 private:
  std::vector<IoSlice> slices_;
  size_t size_ = 0;
};

/// Little-endian binary encoder used for wire messages and on-disk records.
/// All multi-byte integers are fixed-width little-endian; variable-length
/// payloads are length-prefixed with a u32. The format is self-describing
/// only by convention (reader and writer agree on field order).
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }

  /// Length-prefixed (u32) byte string.
  void PutBytes(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  /// Raw bytes, no length prefix.
  void PutRaw(std::string_view s) { buf_.append(s.data(), s.size()); }

  const std::string& data() const& { return buf_; }
  std::string&& data() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    char tmp[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buf_.append(tmp, sizeof(T));
  }

  std::string buf_;
};

/// Cursor-based decoder over a byte buffer. All getters return
/// Status::Corruption on underflow so truncated or damaged input never reads
/// out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* out) {
    if (pos_ + 1 > data_.size()) return Underflow("u8");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }
  Status GetU16(uint16_t* out) { return GetFixed(out); }
  Status GetU32(uint32_t* out) { return GetFixed(out); }
  Status GetU64(uint64_t* out) { return GetFixed(out); }
  Status GetI64(int64_t* out) {
    uint64_t u = 0;
    CHARIOTS_RETURN_IF_ERROR(GetFixed(&u));
    *out = static_cast<int64_t>(u);
    return Status::OK();
  }

  /// Reads a u32 length prefix then that many bytes.
  Status GetBytes(std::string* out) {
    uint32_t len = 0;
    CHARIOTS_RETURN_IF_ERROR(GetU32(&len));
    if (pos_ + len > data_.size()) return Underflow("bytes");
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  /// Zero-copy view variant of GetBytes. The view aliases the input buffer.
  Status GetBytesView(std::string_view* out) {
    uint32_t len = 0;
    CHARIOTS_RETURN_IF_ERROR(GetU32(&len));
    if (pos_ + len > data_.size()) return Underflow("bytes");
    *out = data_.substr(pos_, len);
    pos_ += len;
    return Status::OK();
  }

  /// Reads exactly `len` raw bytes (no length prefix) as a view aliasing the
  /// input buffer — for framed formats whose length came from elsewhere.
  Status GetRawView(size_t len, std::string_view* out) {
    if (pos_ + len > data_.size() || pos_ + len < pos_) {
      return Underflow("raw bytes");
    }
    *out = data_.substr(pos_, len);
    pos_ += len;
    return Status::OK();
  }

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Status GetFixed(T* out) {
    if (pos_ + sizeof(T) > data_.size()) return Underflow("fixed int");
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    *out = v;
    return Status::OK();
  }

  Status Underflow(const char* what) {
    return Status::Corruption(std::string("decode underflow reading ") + what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_CODEC_H_
