#ifndef CHARIOTS_COMMON_LOGGING_H_
#define CHARIOTS_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string>

namespace chariots {

/// Diagnostic log severities. kFatal aborts the process after logging.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// Process-wide minimum level; messages below it are discarded.
extern std::atomic<int> g_min_level;

void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Rate-limiter backing LOG_EVERY_N_SEC: returns true (and arms the next
/// deadline, CAS so concurrent callers race to exactly one win) at most
/// once per `interval_sec` per call site. `next_nanos` is the call site's
/// static deadline slot. Intervals below one second are clamped to one so
/// the driving for-loop always terminates.
bool ShouldLogEveryN(std::atomic<int64_t>* next_nanos, int interval_sec);

/// Stream-collecting helper; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the process-wide minimum log level.
void SetLogLevel(LogLevel level);

#define CHARIOTS_LOG(level)                                                  \
  if (static_cast<int>(::chariots::LogLevel::level) <                        \
      ::chariots::internal_logging::g_min_level.load(                        \
          std::memory_order_relaxed)) {                                      \
  } else                                                                     \
    ::chariots::internal_logging::LogMessage(::chariots::LogLevel::level,    \
                                             __FILE__, __LINE__)             \
        .stream()

#define LOG_DEBUG CHARIOTS_LOG(kDebug)
#define LOG_INFO CHARIOTS_LOG(kInfo)
#define LOG_WARN CHARIOTS_LOG(kWarn)
#define LOG_ERROR CHARIOTS_LOG(kError)
#define LOG_FATAL CHARIOTS_LOG(kFatal)

/// Rate-limited logging for hot paths: emits at most one message per
/// `n_sec` seconds per call site, dropping the rest. Usable exactly like
/// the plain macros:
///
///   LOG_EVERY_N_SEC(kWarn, 5) << "replicate to " << peer << " failed";
///
/// The for-loop runs the streaming body at most once: after the body, the
/// condition re-evaluates against the freshly armed deadline (>= 1s away)
/// and terminates. Per-call-site state is a function-local static atomic,
/// so distinct sites rate-limit independently.
#define LOG_EVERY_N_SEC(level, n_sec)                                        \
  for (static std::atomic<int64_t> chariots_log_next_nanos_{0};              \
       ::chariots::internal_logging::ShouldLogEveryN(                        \
           &chariots_log_next_nanos_, (n_sec));)                             \
  CHARIOTS_LOG(level)

}  // namespace chariots

#endif  // CHARIOTS_COMMON_LOGGING_H_
