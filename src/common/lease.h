#ifndef CHARIOTS_COMMON_LEASE_H_
#define CHARIOTS_COMMON_LEASE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace chariots {

/// Lease-based failure detection: a table of keyed leases on an injected
/// Clock. A holder renews its lease by heartbeating; a key whose lease
/// passes its expiry without renewal is reported by Expired() and the
/// failure handler (e.g. the FLStore controller's failover path) takes over.
///
/// A key has no lease until its first Renew() — an entity that never
/// heartbeats is never suspected, which keeps deployments without failure
/// detection (no heartbeat wiring) fully backward compatible.
///
/// All timing flows through the Clock, so a ManualClock drives expiry
/// deterministically in tests; with the default lease duration and a
/// SystemClock this is the paper's control-cluster failure detector.
/// Thread-safe.
class LeaseTable {
 public:
  LeaseTable(Clock* clock, int64_t lease_nanos)
      : clock_(clock != nullptr ? clock : SystemClock::Default()),
        lease_nanos_(lease_nanos) {}

  /// Grants or extends the lease for `key` to now + lease duration.
  void Renew(uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    expiry_[key] = clock_->NowNanos() + lease_nanos_;
  }

  /// Drops the lease (the holder left, or failover replaced it; the new
  /// holder re-arms detection with its first Renew()).
  void Remove(uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    expiry_.erase(key);
  }

  /// True while `key` holds an unexpired lease.
  bool Held(uint64_t key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = expiry_.find(key);
    return it != expiry_.end() && it->second > clock_->NowNanos();
  }

  /// Nanos until `key`'s lease expires — negative means it expired that
  /// long ago; nullopt when the key holds no lease at all. Observability
  /// surface (e.g. kCtrlStatus lease ages), not a liveness check: use
  /// Held()/Expired() for decisions.
  std::optional<int64_t> RemainingNanos(uint64_t key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = expiry_.find(key);
    if (it == expiry_.end()) return std::nullopt;
    return it->second - clock_->NowNanos();
  }

  /// Keys whose leases have expired (granted but not renewed in time).
  std::vector<uint64_t> Expired() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t> out;
    int64_t now = clock_->NowNanos();
    for (const auto& [key, at] : expiry_) {
      if (at <= now) out.push_back(key);
    }
    return out;
  }

  int64_t lease_nanos() const { return lease_nanos_; }

 private:
  Clock* const clock_;
  const int64_t lease_nanos_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, int64_t> expiry_;
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_LEASE_H_
