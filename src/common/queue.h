#ifndef CHARIOTS_COMMON_QUEUE_H_
#define CHARIOTS_COMMON_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace chariots {

/// Bounded multi-producer multi-consumer blocking queue. The backbone of
/// every pipeline stage: bounded capacity gives backpressure, Close() gives
/// clean shutdown (producers stop, consumers drain then observe end).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false if
  /// the queue was closed, in which case the item was not enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns nullopt only at end-of-stream.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Pop with timeout; nullopt on timeout or end-of-stream. Use
  /// `closed()` to distinguish.
  std::optional<T> PopFor(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Marks the stream finished. Producers fail fast; consumers drain whatever
  /// is queued and then observe end-of-stream.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Fraction of capacity in use, in [0,1]. Cheap load signal for the
  /// overload models in the simulation harness.
  double fill_fraction() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_ == 0 ? 0.0
                          : static_cast<double>(items_.size()) / capacity_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_QUEUE_H_
