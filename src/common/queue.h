#ifndef CHARIOTS_COMMON_QUEUE_H_
#define CHARIOTS_COMMON_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace chariots {

/// Bounded multi-producer multi-consumer blocking queue. The backbone of
/// every pipeline stage: bounded capacity gives backpressure, Close() gives
/// clean shutdown (producers stop, consumers drain then observe end).
///
/// Condvar hygiene: every method signals AFTER releasing `mu_`, so woken
/// threads never immediately block on a still-held mutex (hurry-up-and-wait).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false if
  /// the queue was closed, in which case the item was not enqueued.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
      NoteSizeLocked();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      NoteSizeLocked();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push that leaves `*item` intact on failure (the
  /// by-value overload above consumes the item even when it returns false),
  /// so producers can retry or redirect the same item.
  bool TryPush(T* item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(*item));
      NoteSizeLocked();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Moves every element of `*items` into the queue under one lock
  /// acquisition per admitted chunk, blocking for space as needed. A batch
  /// larger than the remaining capacity is admitted in capacity-sized chunks
  /// so producers still see backpressure. On success `*items` is cleared.
  /// Returns false if the queue closed before all items were admitted (items
  /// not yet admitted are left in `*items`, already-admitted ones removed).
  bool PushAll(std::vector<T>* items) {
    size_t next = 0;
    const size_t total = items->size();
    while (next < total) {
      size_t pushed;
      {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock,
                       [&] { return closed_ || items_.size() < capacity_; });
        if (closed_) {
          items->erase(items->begin(), items->begin() + next);
          return false;
        }
        size_t room = capacity_ - items_.size();
        pushed = std::min(room, total - next);
        for (size_t i = 0; i < pushed; ++i) {
          items_.push_back(std::move((*items)[next + i]));
        }
        NoteSizeLocked();
      }
      // One wakeup per admitted chunk; notify_all so several consumers can
      // start draining a multi-item chunk concurrently.
      if (pushed == 1) {
        not_empty_.notify_one();
      } else {
        not_empty_.notify_all();
      }
      next += pushed;
    }
    items->clear();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns nullopt only at end-of-stream.
  std::optional<T> Pop() {
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
      NoteSizeLocked();
    }
    not_full_.notify_one();
    return item;
  }

  /// Pop with timeout; nullopt on timeout or end-of-stream. Use
  /// `closed()` to distinguish.
  std::optional<T> PopFor(std::chrono::nanoseconds timeout) {
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait_for(lock, timeout,
                          [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
      NoteSizeLocked();
    }
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::optional<T> item;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
      NoteSizeLocked();
    }
    not_full_.notify_one();
    return item;
  }

  /// Blocks until at least one item is available (or end-of-stream), then
  /// drains up to `max_items` queued items into `*out` under one lock
  /// acquisition. Returns the number of items appended; 0 only at
  /// end-of-stream.
  size_t PopAll(std::vector<T>* out,
                size_t max_items = std::numeric_limits<size_t>::max()) {
    size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return 0;
      popped = std::min(items_.size(), max_items);
      out->reserve(out->size() + popped);
      for (size_t i = 0; i < popped; ++i) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
      }
      NoteSizeLocked();
    }
    if (popped == 1) {
      not_full_.notify_one();
    } else {
      not_full_.notify_all();
    }
    return popped;
  }

  /// Non-blocking PopAll: drains everything queued right now into `*out`
  /// under one lock acquisition without waiting. Returns the number of items
  /// appended (0 when empty — check closed() to distinguish end-of-stream).
  /// This is the drain primitive for executor tasks, which must never block.
  size_t TryPopAll(std::vector<T>* out,
                   size_t max_items = std::numeric_limits<size_t>::max()) {
    size_t popped = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return 0;
      popped = std::min(items_.size(), max_items);
      out->reserve(out->size() + popped);
      for (size_t i = 0; i < popped; ++i) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
      }
      NoteSizeLocked();
    }
    if (popped == 1) {
      not_full_.notify_one();
    } else {
      not_full_.notify_all();
    }
    return popped;
  }

  /// Marks the stream finished. Producers fail fast; consumers drain whatever
  /// is queued and then observe end-of-stream.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Current depth without taking the queue lock — safe to call from a
  /// metrics snapshot or monitoring thread at any rate. May lag a mutation
  /// in flight by one update (relaxed atomic), never by more.
  size_t ApproxSize() const {
    return approx_size_.load(std::memory_order_relaxed);
  }

  /// Highest depth ever observed after a push. Lock-free read.
  size_t high_watermark() const {
    return high_watermark_.load(std::memory_order_relaxed);
  }

  /// Fraction of capacity in use, in [0,1]. Cheap load signal for the
  /// overload models in the simulation harness.
  double fill_fraction() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_ == 0 ? 0.0
                          : static_cast<double>(items_.size()) / capacity_;
  }

 private:
  // Called with mu_ held after every mutation of items_: mirrors the depth
  // into a relaxed atomic (so gauges read it lock-free) and ratchets the
  // high watermark. The stores are ordered by mu_, so the mirror is exact
  // between critical sections.
  void NoteSizeLocked() {
    size_t n = items_.size();
    approx_size_.store(n, std::memory_order_relaxed);
    size_t seen = high_watermark_.load(std::memory_order_relaxed);
    while (n > seen && !high_watermark_.compare_exchange_weak(
                           seen, n, std::memory_order_relaxed)) {
    }
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::atomic<size_t> approx_size_{0};
  std::atomic<size_t> high_watermark_{0};
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_QUEUE_H_
