#include "common/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/metrics.h"

namespace chariots::flightrec {
namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr char kMagic[4] = {'C', 'H', 'F', 'R'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kEncodedEventBytes = 32;  // i64 + u16 + u16 + u32 + 2*u64

metrics::Counter* DumpBytesCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flightrec.dump_bytes");
  return c;
}

/// Per-thread ring cache: a recorder is identified by a process-unique id
/// (never reused), so a recorder destroyed and another allocated at the same
/// address cannot alias a stale cache entry. The list is tiny (one entry per
/// recorder this thread has ever written to), scanned linearly.
struct TlsRingRef {
  uint64_t recorder_id;
  void* ring;
};
thread_local std::vector<TlsRingRef> t_rings;

uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kNone:
      return "none";
    case EventType::kRpcStart:
      return "rpc_start";
    case EventType::kRpcEnd:
      return "rpc_end";
    case EventType::kQueueEnq:
      return "queue_enq";
    case EventType::kQueueDeq:
      return "queue_deq";
    case EventType::kFsync:
      return "fsync";
    case EventType::kReplInv:
      return "repl_inv";
    case EventType::kReplVal:
      return "repl_val";
    case EventType::kLeaseTick:
      return "lease_tick";
    case EventType::kElection:
      return "election";
    case EventType::kFaultFire:
      return "fault_fire";
    case EventType::kWatchdogBreach:
      return "watchdog_breach";
    case EventType::kAppend:
      return "append";
    case EventType::kDumpMark:
      return "dump_mark";
  }
  return "unknown";
}

/// One thread's ring. Single writer (the owning thread), any number of
/// concurrent dump readers. Every shared word is an atomic accessed relaxed
/// on the write path; a per-slot seqlock word (2*index+1 while the slot is
/// being written, 2*index+2 once complete) lets a reader detect both "not
/// yet written" and "overwritten underneath me" without ever blocking the
/// writer.
struct Recorder::Ring {
  Ring(size_t slots, uint32_t ordinal)
      : ordinal(ordinal), seqs(slots), words(slots * 4) {
    for (auto& s : seqs) s.store(0, std::memory_order_relaxed);
    for (auto& w : words) w.store(0, std::memory_order_relaxed);
  }

  const uint32_t ordinal;
  std::atomic<uint64_t> head{0};  // events ever written by this ring
  std::vector<std::atomic<uint64_t>> seqs;
  std::vector<std::atomic<uint64_t>> words;  // 4 words per slot
};

Recorder& Recorder::Default() {
  static Recorder* recorder = new Recorder();  // leaked: outlives teardown
  return *recorder;
}

Recorder::Recorder(size_t slots_per_ring)
    : slots_per_ring_(std::max<size_t>(slots_per_ring, 8)),
      id_(NextRecorderId()) {}

Recorder::~Recorder() = default;

void Recorder::SetClock(Clock* clock) {
  clock_.store(clock, std::memory_order_relaxed);
}

void Recorder::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

Recorder::Ring* Recorder::RingForThisThread() {
  for (const TlsRingRef& ref : t_rings) {
    if (ref.recorder_id == id_) return static_cast<Ring*>(ref.ring);
  }
  Ring* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::make_unique<Ring>(
        slots_per_ring_, static_cast<uint32_t>(rings_.size())));
    ring = rings_.back().get();
  }
  // Bound the cache for long-lived threads that outlive many test-local
  // recorders; evicting an entry only costs one fresh ring on re-use.
  if (t_rings.size() >= 16) t_rings.erase(t_rings.begin());
  t_rings.push_back(TlsRingRef{id_, ring});
  return ring;
}

void Recorder::Record(EventType type, uint16_t code, uint32_t arg, uint64_t a,
                      uint64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = RingForThisThread();
  Clock* clock = clock_.load(std::memory_order_relaxed);
  int64_t now = clock != nullptr ? clock->NowNanos() : SteadyNowNanos();
  uint64_t idx = ring->head.load(std::memory_order_relaxed);  // single writer
  size_t slot = idx % slots_per_ring_;
  std::atomic<uint64_t>* w = &ring->words[slot * 4];
  ring->seqs[slot].store(2 * idx + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  w[0].store(static_cast<uint64_t>(now), std::memory_order_relaxed);
  w[1].store((static_cast<uint64_t>(type) << 48) |
                 (static_cast<uint64_t>(code) << 32) | arg,
             std::memory_order_relaxed);
  w[2].store(a, std::memory_order_relaxed);
  w[3].store(b, std::memory_order_relaxed);
  ring->seqs[slot].store(2 * idx + 2, std::memory_order_release);
  ring->head.store(idx + 1, std::memory_order_release);
}

std::string Recorder::Dump() const {
  std::vector<Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  Clock* clock = clock_.load(std::memory_order_relaxed);

  BinaryWriter out;
  out.PutRaw(std::string_view(kMagic, sizeof(kMagic)));
  out.PutU32(kFormatVersion);
  out.PutI64(clock != nullptr ? clock->NowNanos() : SteadyNowNanos());
  out.PutU32(static_cast<uint32_t>(rings.size()));

  const uint64_t slots = slots_per_ring_;
  for (Ring* ring : rings) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t lo = head > slots ? head - slots : 0;
    uint64_t wrapped = lo;
    uint64_t torn = 0;

    BinaryWriter events;
    uint32_t count = 0;
    for (uint64_t idx = lo; idx < head; ++idx) {
      size_t slot = idx % slots;
      uint64_t seq1 = ring->seqs[slot].load(std::memory_order_acquire);
      if (seq1 != 2 * idx + 2) {
        ++torn;  // being overwritten right now (or lapped since `head` read)
        continue;
      }
      const std::atomic<uint64_t>* w = &ring->words[slot * 4];
      uint64_t w0 = w[0].load(std::memory_order_relaxed);
      uint64_t w1 = w[1].load(std::memory_order_relaxed);
      uint64_t w2 = w[2].load(std::memory_order_relaxed);
      uint64_t w3 = w[3].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (ring->seqs[slot].load(std::memory_order_relaxed) != seq1) {
        ++torn;
        continue;
      }
      events.PutI64(static_cast<int64_t>(w0));
      events.PutU16(static_cast<uint16_t>(w1 >> 48));
      events.PutU16(static_cast<uint16_t>(w1 >> 32));
      events.PutU32(static_cast<uint32_t>(w1));
      events.PutU64(w2);
      events.PutU64(w3);
      ++count;
    }

    BinaryWriter payload;
    payload.PutU32(ring->ordinal);
    payload.PutU64(head);
    payload.PutU64(slots);
    payload.PutU64(wrapped + torn);
    payload.PutU32(count);
    payload.PutRaw(events.data());

    out.PutU32(static_cast<uint32_t>(payload.size()));
    out.PutU32(crc32c::Mask(crc32c::Value(payload.data())));
    out.PutRaw(payload.data());
  }

  DumpBytesCounter()->Add(out.size());
  return std::move(out).data();
}

Status Recorder::DumpToFile(const std::string& path) const {
  std::string dump = Dump();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("flight recorder: cannot open " + path);
  }
  size_t written = std::fwrite(dump.data(), 1, dump.size(), f);
  int close_rc = std::fclose(f);
  if (written != dump.size() || close_rc != 0) {
    return Status::IOError("flight recorder: short write to " + path);
  }
  return Status::OK();
}

Status Recorder::Decode(std::string_view data, DecodedDump* out) {
  *out = DecodedDump{};
  if (data.size() < sizeof(kMagic) ||
      data.substr(0, sizeof(kMagic)) !=
          std::string_view(kMagic, sizeof(kMagic))) {
    return Status::Corruption("flight recorder dump: bad magic");
  }
  BinaryReader r(data.substr(sizeof(kMagic)));
  uint32_t version = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&version));
  if (version != kFormatVersion) {
    return Status::Corruption("flight recorder dump: unknown version " +
                              std::to_string(version));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetI64(&out->dumped_at_nanos));
  uint32_t ring_count = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&ring_count));
  // Each ring frame is at least 8 bytes of framing; reject counts that
  // cannot fit in what's left instead of looping on them.
  if (static_cast<uint64_t>(ring_count) * 8 > r.remaining()) {
    return Status::Corruption("flight recorder dump: ring count implausible");
  }
  out->rings = ring_count;

  for (uint32_t i = 0; i < ring_count; ++i) {
    uint32_t len = 0;
    uint32_t masked_crc = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&len));
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&masked_crc));
    std::string_view payload;
    CHARIOTS_RETURN_IF_ERROR(r.GetRawView(len, &payload));
    if (crc32c::Value(payload) != crc32c::Unmask(masked_crc)) {
      return Status::Corruption("flight recorder dump: ring " +
                                std::to_string(i) + " CRC mismatch");
    }
    BinaryReader p(payload);
    uint32_t ordinal = 0;
    uint64_t head = 0, slots = 0, dropped = 0;
    uint32_t count = 0;
    CHARIOTS_RETURN_IF_ERROR(p.GetU32(&ordinal));
    CHARIOTS_RETURN_IF_ERROR(p.GetU64(&head));
    CHARIOTS_RETURN_IF_ERROR(p.GetU64(&slots));
    CHARIOTS_RETURN_IF_ERROR(p.GetU64(&dropped));
    CHARIOTS_RETURN_IF_ERROR(p.GetU32(&count));
    if (static_cast<uint64_t>(count) * kEncodedEventBytes > p.remaining()) {
      return Status::Corruption("flight recorder dump: ring " +
                                std::to_string(i) + " event count truncated");
    }
    out->recorded += head;
    out->dropped += dropped;
    out->events.reserve(out->events.size() + count);
    for (uint32_t e = 0; e < count; ++e) {
      Event ev;
      uint16_t type = 0;
      CHARIOTS_RETURN_IF_ERROR(p.GetI64(&ev.nanos));
      CHARIOTS_RETURN_IF_ERROR(p.GetU16(&type));
      CHARIOTS_RETURN_IF_ERROR(p.GetU16(&ev.code));
      CHARIOTS_RETURN_IF_ERROR(p.GetU32(&ev.arg));
      CHARIOTS_RETURN_IF_ERROR(p.GetU64(&ev.a));
      CHARIOTS_RETURN_IF_ERROR(p.GetU64(&ev.b));
      ev.type = static_cast<EventType>(type);
      ev.ring = ordinal;
      out->events.push_back(ev);
    }
  }

  std::stable_sort(
      out->events.begin(), out->events.end(),
      [](const Event& a, const Event& b) { return a.nanos < b.nanos; });
  return Status::OK();
}

uint64_t Recorder::recorded() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : rings_) {
    total += r->head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Recorder::dropped() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : rings_) {
    uint64_t head = r->head.load(std::memory_order_relaxed);
    if (head > slots_per_ring_) total += head - slots_per_ring_;
  }
  return total;
}

size_t Recorder::rings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

void Recorder::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : rings_) {
    for (auto& s : r->seqs) s.store(0, std::memory_order_relaxed);
    r->head.store(0, std::memory_order_relaxed);
  }
}

std::string RenderDumpText(const DecodedDump& dump, size_t max_events) {
  std::string out;
  out += "flight recorder dump: " + std::to_string(dump.events.size()) +
         " events across " + std::to_string(dump.rings) + " rings (" +
         std::to_string(dump.recorded) + " recorded, " +
         std::to_string(dump.dropped) + " dropped), dumped_at=" +
         std::to_string(dump.dumped_at_nanos) + "\n";
  size_t start =
      dump.events.size() > max_events ? dump.events.size() - max_events : 0;
  if (start > 0) {
    out += "  ... " + std::to_string(start) + " older events elided ...\n";
  }
  for (size_t i = start; i < dump.events.size(); ++i) {
    const Event& e = dump.events[i];
    out += "  t=" + std::to_string(e.nanos) + " ring=" +
           std::to_string(e.ring) + " " + EventTypeName(e.type) +
           " code=" + std::to_string(e.code) + " arg=" +
           std::to_string(e.arg) + " a=" + std::to_string(e.a) +
           " b=" + std::to_string(e.b) + "\n";
  }
  return out;
}

void RegisterFlightRecorderMetrics() {
  metrics::Registry& reg = metrics::Registry::Default();
  DumpBytesCounter();
  reg.RegisterCallback("chariots.flightrec.events", [] {
    return static_cast<int64_t>(Recorder::Default().recorded());
  });
  reg.RegisterCallback("chariots.flightrec.drops", [] {
    return static_cast<int64_t>(Recorder::Default().dropped());
  });
}

namespace {

std::mutex g_crash_mu;
std::string* g_crash_path = nullptr;  // leaked: read from the signal handler

extern "C" void FlightRecCrashHandler(int sig) {
  // Restore default disposition first so the re-raise below terminates even
  // if dumping crashes again.
  std::signal(sig, SIG_DFL);
  const char* path = nullptr;
  if (g_crash_path != nullptr) path = g_crash_path->c_str();
  if (path != nullptr) {
    // Best-effort: Dump() allocates, which is not async-signal-safe, but a
    // crash artifact of last resort is worth the attempt.
    std::string dump = Recorder::Default().Dump();
    int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      size_t off = 0;
      while (off < dump.size()) {
        ssize_t n = ::write(fd, dump.data() + off, dump.size() - off);
        if (n <= 0) break;
        off += static_cast<size_t>(n);
      }
      ::close(fd);
    }
  }
  ::raise(sig);
}

}  // namespace

void InstallCrashDump(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_crash_mu);
  if (g_crash_path == nullptr) {
    g_crash_path = new std::string(path);
    std::signal(SIGSEGV, &FlightRecCrashHandler);
    std::signal(SIGBUS, &FlightRecCrashHandler);
    std::signal(SIGABRT, &FlightRecCrashHandler);
  } else {
    *g_crash_path = path;
  }
}

}  // namespace chariots::flightrec
