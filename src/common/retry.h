#ifndef CHARIOTS_COMMON_RETRY_H_
#define CHARIOTS_COMMON_RETRY_H_

#include <cstdint>
#include <limits>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"

namespace chariots {

/// Jittered-exponential-backoff parameters shared by every retry loop in the
/// system (RPC channel, FLStore client, geo senders). All durations are
/// nanoseconds.
struct BackoffPolicy {
  /// Delay before the first retry.
  int64_t initial_nanos = 1'000'000;  // 1 ms
  /// Ceiling the exponential growth saturates at.
  int64_t max_nanos = 200'000'000;  // 200 ms
  /// Growth factor per attempt.
  double multiplier = 2.0;
  /// Uniform jitter fraction: each delay is scaled by a factor drawn from
  /// [1 - jitter, 1 + jitter] so synchronized retriers decorrelate. 0
  /// disables jitter (fully deterministic backoff).
  double jitter = 0.2;
};

/// One retry loop's backoff state. Seeded, so a run's exact delay sequence
/// is reproducible; give each call site its own instance (not thread-safe).
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = BackoffPolicy{}, uint64_t seed = 1)
      : policy_(policy), rng_(seed), next_nanos_(policy.initial_nanos) {}

  /// Delay to sleep before the next attempt; advances the exponential state.
  int64_t NextDelayNanos() {
    int64_t base = next_nanos_;
    double grown = static_cast<double>(base) * policy_.multiplier;
    next_nanos_ = grown >= static_cast<double>(policy_.max_nanos)
                      ? policy_.max_nanos
                      : static_cast<int64_t>(grown);
    ++attempts_;
    if (policy_.jitter <= 0) return base;
    double scale = 1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    int64_t jittered = static_cast<int64_t>(static_cast<double>(base) * scale);
    return jittered > 0 ? jittered : 1;
  }

  /// Rewinds to the initial delay (call after a success so the next failure
  /// burst starts gentle again). The jitter stream is not rewound.
  void Reset() {
    next_nanos_ = policy_.initial_nanos;
    attempts_ = 0;
  }

  /// Retries handed out since construction or the last Reset().
  uint32_t attempts() const { return attempts_; }

 private:
  BackoffPolicy policy_;
  Random rng_;
  int64_t next_nanos_;
  uint32_t attempts_ = 0;
};

/// An absolute point on a Clock by which an operation must finish. Threaded
/// through call options so one budget covers a whole retry loop rather than
/// each attempt getting a fresh timeout. Default-constructed deadlines are
/// infinite. Copyable value type; the referenced clock must outlive it.
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  /// Expires `nanos` from now on `clock`.
  static Deadline After(int64_t nanos, const Clock* clock) {
    Deadline d;
    d.clock_ = clock;
    d.at_nanos_ = clock->NowNanos() + nanos;
    return d;
  }

  bool IsInfinite() const { return clock_ == nullptr; }

  /// Nanoseconds left (clamped at 0); int64 max when infinite.
  int64_t RemainingNanos() const {
    if (IsInfinite()) return std::numeric_limits<int64_t>::max();
    int64_t left = at_nanos_ - clock_->NowNanos();
    return left > 0 ? left : 0;
  }

  bool Expired() const { return !IsInfinite() && RemainingNanos() == 0; }

  /// Status for an operation that ran out of budget at this deadline.
  static Status ExceededError(const std::string& what) {
    return Status::TimedOut("deadline exceeded: " + what);
  }

 private:
  const Clock* clock_ = nullptr;  // null = infinite
  int64_t at_nanos_ = 0;
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_RETRY_H_
