#ifndef CHARIOTS_COMMON_CRC32C_H_
#define CHARIOTS_COMMON_CRC32C_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace chariots::crc32c {

/// Extends `init_crc` with `data` using the CRC-32C (Castagnoli) polynomial.
/// Dispatches at runtime to the SSE4.2 `crc32` instruction when the CPU
/// supports it, and to the portable slicing-by-8 implementation otherwise.
/// Both paths produce identical results.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// Table-driven slicing-by-8 implementation. Always available; used directly
/// by tests to cross-check the hardware path.
uint32_t ExtendPortable(uint32_t init_crc, const char* data, size_t n);

/// Hardware (SSE4.2) implementation. Falls back to ExtendPortable when the
/// CPU lacks SSE4.2 — check HardwareAccelerated() to know which ran.
uint32_t ExtendHardware(uint32_t init_crc, const char* data, size_t n);

/// True if Extend() dispatches to the SSE4.2 hardware path on this CPU.
bool HardwareAccelerated();

/// CRC-32C of a whole buffer.
inline uint32_t Value(std::string_view data) {
  return Extend(0, data.data(), data.size());
}

/// Masked CRC as used by LevelDB/RocksDB: storing the CRC of data that itself
/// contains CRCs can defeat error detection, so stored checksums are masked.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace chariots::crc32c

#endif  // CHARIOTS_COMMON_CRC32C_H_
