#ifndef CHARIOTS_COMMON_CLOCK_H_
#define CHARIOTS_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

namespace chariots {

/// Abstract monotonic clock, injectable for deterministic tests. Time is
/// expressed as nanoseconds since an arbitrary epoch.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current monotonic time in nanoseconds.
  virtual int64_t NowNanos() const = 0;

  /// Blocks the calling thread for (at least) `nanos` nanoseconds.
  virtual void SleepFor(int64_t nanos) = 0;

  int64_t NowMicros() const { return NowNanos() / 1000; }
  int64_t NowMillis() const { return NowNanos() / 1000000; }
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  /// Process-wide shared instance.
  static SystemClock* Default();

  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepFor(int64_t nanos) override {
    if (nanos > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
};

/// Manually advanced clock for deterministic unit tests. SleepFor advances
/// the clock instead of blocking, so timeout logic can be tested instantly.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_nanos = 0) : now_(start_nanos) {}

  int64_t NowNanos() const override {
    return now_.load(std::memory_order_acquire);
  }

  void SleepFor(int64_t nanos) override { Advance(nanos); }

  void Advance(int64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_acq_rel);
  }
  void Set(int64_t nanos) { now_.store(nanos, std::memory_order_release); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_CLOCK_H_
