#ifndef CHARIOTS_COMMON_THREAD_POOL_H_
#define CHARIOTS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace chariots {

/// Fixed-size worker pool executing std::function tasks FIFO. Destruction
/// drains the queue (all submitted work runs) and joins workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; returns false (with a rate-limited warning) if the
  /// pool has shut down — the task is definitively dropped, never run.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void Wait();

  /// Drains queued tasks and joins all workers. Idempotent; also run by the
  /// destructor. After Shutdown(), Submit() returns false.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  const std::string name_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

/// Single-use barrier: Wait() blocks until CountDown() has been called
/// `count` times.
class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  bool WaitFor(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_THREAD_POOL_H_
