#include "common/clock.h"

namespace chariots {

SystemClock* SystemClock::Default() {
  static SystemClock* const clock = new SystemClock();
  return clock;
}

}  // namespace chariots
