#ifndef CHARIOTS_COMMON_WATCHDOG_H_
#define CHARIOTS_COMMON_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/executor.h"
#include "common/metrics.h"

namespace chariots {

/// Health watchdog (ISSUE 9 tentpole part 2). A server registers a set of
/// probes — each a cheap lock-free read of state it already maintains — and
/// the watchdog evaluates them on a periodic tick riding the executor timer
/// service (virtual-time executors tick on AdvanceBy, so drills run with
/// zero real sleeps). Four probe kinds cover the gray-failure taxonomy:
///
///   * progress — a monotone counter that stopped advancing while the
///     subsystem claims to be active: a stalled worker/strand;
///   * queue    — a BoundedQueue pinned above a fill threshold: saturation;
///   * latency  — windowed mean of a cumulative histogram (delta sum /
///     delta count per tick) above an SLO: replication lag, slow reads;
///   * rate     — a counter advancing faster than budget: election churn.
///
/// A probe must breach on `trip_ticks` consecutive ticks before it is
/// reported (default 2: one slow tick is noise, two is a signal). Every
/// reported breach increments the `chariots.health.*` families, logs a
/// rate-limited warning, records a flight-recorder event, and — through the
/// `on_breach` hook — typically triggers a flight-recorder dump so the
/// events leading up to the breach are preserved.

/// One probe's contribution to a health report.
struct ProbeReport {
  std::string name;  // e.g. "dc0/maintainer/0.repl_round"
  std::string kind;  // "progress" | "queue" | "latency" | "rate"
  bool breached = false;
  double value = 0;      // observed this tick (kind-specific unit)
  double threshold = 0;  // breach boundary in the same unit
  std::string detail;    // human-readable one-liner
};

/// Structured health report: what `/healthz`, the kHealth RPC, and
/// `chariots_cli health` all serve (as JSON via RenderHealthJson).
struct HealthReport {
  std::string node;
  int64_t now_nanos = 0;
  uint64_t ticks = 0;
  uint64_t breaches = 0;  // cumulative probe-breach-ticks since start
  bool healthy = true;    // no probe breached on the latest tick
  std::vector<ProbeReport> probes;
};

std::string RenderHealthJson(const HealthReport& report);

class Watchdog {
 public:
  struct Options {
    /// Label stamped on every report (the owning server's node id).
    std::string node;
    /// Clock for report timestamps and dump rate-limiting (null = system).
    Clock* clock = nullptr;
    /// Probe evaluation period when Start() is called.
    int64_t tick_interval_nanos = 100'000'000;  // 100 ms
    /// Consecutive breaching ticks before a probe reports a breach.
    int trip_ticks = 2;
    /// Invoked (outside the watchdog lock) after any tick that reports at
    /// least one breach — the flight-recorder dump hook. Rate-limited to
    /// one invocation per `breach_hook_min_interval_nanos`.
    std::function<void(const HealthReport&)> on_breach;
    int64_t breach_hook_min_interval_nanos = 1'000'000'000;  // 1 s
  };

  explicit Watchdog(Options options);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Progress probe: breaches when `progress()` is unchanged for
  /// `trip_ticks` consecutive ticks while `active()` is true. Pass a null
  /// `active` for a subsystem that should always advance (heartbeats,
  /// gossip rounds).
  void AddProgressProbe(std::string name, std::function<uint64_t()> progress,
                        std::function<bool()> active = nullptr);

  /// Queue probe: breaches when `size()` / capacity >= fill_threshold.
  void AddQueueProbe(std::string name, std::function<uint64_t()> size,
                     uint64_t capacity, double fill_threshold = 0.9);

  /// Latency SLO probe over a cumulative histogram: breaches when the
  /// windowed mean (delta sum / delta count since the previous tick)
  /// exceeds `threshold_nanos`. Ticks with no new samples are healthy.
  void AddLatencyProbe(std::string name, const metrics::Histogram* histogram,
                       uint64_t threshold_nanos);

  /// Rate probe: breaches when `counter()` advances by more than
  /// `max_delta_per_tick` in one tick (election churn, retry storms).
  void AddRateProbe(std::string name, std::function<uint64_t()> counter,
                    uint64_t max_delta_per_tick);

  /// Drops a probe by name. The owner of captured state must remove its
  /// probes (or Stop() the watchdog) before that state is destroyed.
  void RemoveProbe(const std::string& name);

  /// Begins periodic ticking on `executor`'s timer service.
  void Start(Executor* executor);

  /// Cancels the periodic tick; blocks until an in-flight tick returns.
  void Stop();

  /// Evaluates every probe once and returns the report. This is both the
  /// timer body and the direct drive for tests and the kHealth RPC.
  HealthReport TickOnce();

  /// Most recent report (empty before the first tick).
  HealthReport LastReport() const;

  /// Probe-breach-ticks reported since construction.
  uint64_t breaches() const;

 private:
  struct Probe;

  /// Registers `probe`, replacing any existing probe with the same name —
  /// so a server Restart() that re-registers its probes doesn't duplicate
  /// them (a duplicate would double-count breaches).
  void InstallProbe(Probe probe);

  const Options options_;
  mutable std::mutex mu_;
  std::vector<Probe> probes_;
  HealthReport last_report_;
  uint64_t ticks_ = 0;
  uint64_t breaches_ = 0;
  int64_t last_hook_nanos_ = 0;
  bool hook_fired_ = false;
  Executor::TimerToken tick_timer_;
};

/// Force-registers the `chariots.health.{stalls,slo_breaches,dumps}`
/// families on the default registry (PR 7/8 convention). Idempotent; call
/// from server Start().
void RegisterHealthMetrics();

}  // namespace chariots

#endif  // CHARIOTS_COMMON_WATCHDOG_H_
