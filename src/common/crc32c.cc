#include "common/crc32c.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define CHARIOTS_CRC32C_X86 1
#include <nmmintrin.h>
#endif

namespace chariots::crc32c {
namespace {

// CRC-32C (Castagnoli) reflected polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  uint32_t t[8][256];
};

Tables BuildTables() {
  Tables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tb.t[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tb.t[k][i] = (tb.t[k - 1][i] >> 8) ^ tb.t[0][tb.t[k - 1][i] & 0xff];
    }
  }
  return tb;
}

const Tables& GetTables() {
  static const Tables& tables = *new Tables(BuildTables());
  return tables;
}

inline uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

#if CHARIOTS_CRC32C_X86

__attribute__((target("sse4.2"))) uint32_t ExtendSse42(uint32_t init_crc,
                                                       const char* data,
                                                       size_t n) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  uint32_t crc32 = init_crc ^ 0xffffffffu;
  // Byte-wise to 8-byte alignment, then 8 bytes per crc32q instruction.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc32 = _mm_crc32_u8(crc32, *p++);
    --n;
  }
  uint64_t crc = crc32;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = _mm_crc32_u64(crc, chunk);
    p += 8;
    n -= 8;
  }
  crc32 = static_cast<uint32_t>(crc);
  while (n--) {
    crc32 = _mm_crc32_u8(crc32, *p++);
  }
  return crc32 ^ 0xffffffffu;
}

bool CpuHasSse42() { return __builtin_cpu_supports("sse4.2") != 0; }

#else

bool CpuHasSse42() { return false; }

#endif  // CHARIOTS_CRC32C_X86

using ExtendFn = uint32_t (*)(uint32_t, const char*, size_t);

ExtendFn ChooseExtend() {
#if CHARIOTS_CRC32C_X86
  if (CpuHasSse42()) return &ExtendSse42;
#endif
  return &ExtendPortable;
}

ExtendFn DispatchedExtend() {
  static const ExtendFn fn = ChooseExtend();
  return fn;
}

}  // namespace

uint32_t ExtendPortable(uint32_t init_crc, const char* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;

  // Slicing-by-8 main loop: two 32-bit loads, eight table lookups.
  while (n >= 8) {
    uint32_t lo = crc ^ LoadU32(p);
    uint32_t hi = LoadU32(p + 4);
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xff] ^ tb.t[2][(hi >> 8) & 0xff] ^
          tb.t[1][(hi >> 16) & 0xff] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

uint32_t ExtendHardware(uint32_t init_crc, const char* data, size_t n) {
#if CHARIOTS_CRC32C_X86
  if (CpuHasSse42()) return ExtendSse42(init_crc, data, n);
#endif
  return ExtendPortable(init_crc, data, n);
}

bool HardwareAccelerated() { return DispatchedExtend() != &ExtendPortable; }

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  return DispatchedExtend()(init_crc, data, n);
}

}  // namespace chariots::crc32c
