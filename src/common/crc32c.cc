#include "common/crc32c.h"

#include <array>

namespace chariots::crc32c {
namespace {

// CRC-32C (Castagnoli) reflected polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  uint32_t t[4][256];
};

Tables BuildTables() {
  Tables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tb.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tb.t[1][i] = (tb.t[0][i] >> 8) ^ tb.t[0][tb.t[0][i] & 0xff];
    tb.t[2][i] = (tb.t[1][i] >> 8) ^ tb.t[0][tb.t[1][i] & 0xff];
    tb.t[3][i] = (tb.t[2][i] >> 8) ^ tb.t[0][tb.t[2][i] & 0xff];
  }
  return tb;
}

const Tables& GetTables() {
  static const Tables& tables = *new Tables(BuildTables());
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;

  // Slicing-by-4 main loop.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xff] ^ tb.t[2][(crc >> 8) & 0xff] ^
          tb.t[1][(crc >> 16) & 0xff] ^ tb.t[0][(crc >> 24) & 0xff];
    p += 4;
    n -= 4;
  }
  while (n--) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

}  // namespace chariots::crc32c
