#ifndef CHARIOTS_COMMON_FLIGHT_RECORDER_H_
#define CHARIOTS_COMMON_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace chariots::flightrec {

/// Always-on flight recorder (ISSUE 9 tentpole part 1). Every thread that
/// records events owns a fixed-size ring of compact 32-byte slots; writes are
/// a handful of relaxed atomic stores plus one clock read, so the recorder
/// can stay enabled on the append hot path (acceptance: <= 5% on
/// bench_micro). Rings overwrite their oldest events when full — the
/// recorder answers "what was the process doing just now", not "everything
/// that ever happened"; overwrites are counted as drops.
///
/// A dump is a CRC-framed binary snapshot of every ring, readable while
/// writers keep running: each slot carries a seqlock word, so a dump either
/// sees a slot's complete event or skips it (counted as a torn drop). Dumps
/// are triggered on demand (`/debug/flightrecorder`, `chariots_cli
/// flightrec`), by the health watchdog when an SLO breach fires, and
/// best-effort from a fatal-signal handler (InstallCrashDump).
///
/// Compile-out: building with -DCHARIOTS_DISABLE_FLIGHTREC turns Record()
/// into an inline no-op, the baseline for the overhead gate in
/// tools/check_flightrec_overhead.sh.

#if defined(CHARIOTS_DISABLE_FLIGHTREC)
#define CHARIOTS_FLIGHTREC_ENABLED 0
#else
#define CHARIOTS_FLIGHTREC_ENABLED 1
#endif

/// Event taxonomy (DESIGN.md §14.1). `code` and `arg` are per-type details
/// (RPC opcode, queue ordinal, fault kind...), `a`/`b` free payload words
/// (latency nanos, byte counts, epochs, LIds).
enum class EventType : uint16_t {
  kNone = 0,
  kRpcStart = 1,       // code=opcode, a=rpc_id, b=payload bytes
  kRpcEnd = 2,         // code=opcode, arg=status code, a=rpc_id, b=latency ns
  kQueueEnq = 3,       // code=queue ordinal, arg=dc, a=depth after, b=records
  kQueueDeq = 4,       // code=queue ordinal, arg=dc, a=depth after, b=records
  kFsync = 5,          // a=latency ns, b=bytes synced
  kReplInv = 6,        // arg=stripe, a=top lid, b=batch records
  kReplVal = 7,        // arg=stripe, a=top lid, b=round latency ns
  kLeaseTick = 8,      // code=1 leader, arg=replica index, a=epoch, b=lease ns
  kElection = 9,       // arg=replica index, a=term, b=1 won / 0 lost
  kFaultFire = 10,     // code=fault kind (FaultSchedule), a=delay ns
  kWatchdogBreach = 11,  // code=probe kind, a=value, b=threshold
  kAppend = 12,        // arg=stripe, a=lid, b=body bytes
  kDumpMark = 13,      // a=events recorded so far (stamps the dump itself)
};

/// Stable lowercase name for an event type, e.g. "rpc_start"; "unknown" for
/// values outside the taxonomy (a decoder must render anything).
const char* EventTypeName(EventType type);

/// One decoded event. `ring` is the ordinal of the originating thread ring.
struct Event {
  int64_t nanos = 0;
  EventType type = EventType::kNone;
  uint16_t code = 0;
  uint32_t arg = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t ring = 0;
};

/// Decoded snapshot: header stats plus events merged from all rings in
/// timestamp order.
struct DecodedDump {
  int64_t dumped_at_nanos = 0;
  uint32_t rings = 0;
  uint64_t recorded = 0;  // events ever written, including overwritten
  uint64_t dropped = 0;   // overwritten + torn at dump time
  std::vector<Event> events;
};

class Recorder {
 public:
  static constexpr size_t kDefaultSlotsPerRing = 4096;

  /// Process-wide instance (leaked: threads may record during teardown).
  static Recorder& Default();

  explicit Recorder(size_t slots_per_ring = kDefaultSlotsPerRing);
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Injects the timestamp clock (null restores the steady clock). Virtual
  /// time in tests makes "events cover the breach window" assertable.
  void SetClock(Clock* clock);

  /// Runtime gate, default on. Disabled recording is one relaxed load.
  void SetEnabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Hot path: appends one event to the calling thread's ring.
  void Record(EventType type, uint16_t code, uint32_t arg, uint64_t a,
              uint64_t b);

  /// CRC-framed binary snapshot of every ring (format: DESIGN.md §14.2).
  /// Safe to call concurrently with writers.
  std::string Dump() const;

  /// Writes Dump() to `path` (truncating). Used by the crash handler and
  /// the watchdog breach hook.
  Status DumpToFile(const std::string& path) const;

  /// Decodes a dump produced by Dump(). Truncated, bit-flipped, or
  /// otherwise damaged input returns Status::Corruption — never crashes,
  /// never reads out of bounds (fuzzed in tests/fuzz_test.cc).
  static Status Decode(std::string_view data, DecodedDump* out);

  /// Events ever recorded / dropped (ring overwrite), summed over rings.
  uint64_t recorded() const;
  uint64_t dropped() const;
  /// Number of thread rings ever created (rings outlive their threads).
  size_t rings() const;
  size_t slots_per_ring() const { return slots_per_ring_; }

  /// Rewinds every ring and the drop accounting. Test isolation only — must
  /// not race with concurrent writers.
  void ResetForTest();

 private:
  struct Ring;

  Ring* RingForThisThread();

  const size_t slots_per_ring_;
  const uint64_t id_;  // process-unique, keys the per-thread ring cache
  std::atomic<bool> enabled_{true};
  std::atomic<Clock*> clock_{nullptr};
  mutable std::mutex mu_;                     // guards rings_ growth
  std::vector<std::unique_ptr<Ring>> rings_;  // never shrinks
};

/// Hot-path entry point used by instrumentation sites; compiles out
/// entirely under -DCHARIOTS_DISABLE_FLIGHTREC.
inline void Record(EventType type, uint16_t code = 0, uint32_t arg = 0,
                   uint64_t a = 0, uint64_t b = 0) {
#if CHARIOTS_FLIGHTREC_ENABLED
  Recorder::Default().Record(type, code, arg, a, b);
#else
  (void)type;
  (void)code;
  (void)arg;
  (void)a;
  (void)b;
#endif
}

/// Human-readable rendering of a decoded dump: header line plus the most
/// recent `max_events` events, one per line (what `chariots_cli flightrec`
/// prints).
std::string RenderDumpText(const DecodedDump& dump, size_t max_events = 64);

/// Force-registers the `chariots.flightrec.{events,drops,dump_bytes}`
/// families on the default registry (PR 7/8 convention: exporters see the
/// families from process start, not first use). Idempotent.
void RegisterFlightRecorderMetrics();

/// Installs SIGSEGV/SIGABRT/SIGBUS handlers that write a final dump of the
/// default recorder to `path` before re-raising. Best-effort: the dump path
/// allocates, which is not async-signal-safe in general — acceptable for a
/// crash artifact of last resort. Idempotent; the last path wins.
void InstallCrashDump(const std::string& path);

}  // namespace chariots::flightrec

#endif  // CHARIOTS_COMMON_FLIGHT_RECORDER_H_
