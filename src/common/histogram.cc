#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace chariots {

namespace {
// Geometric bucket boundaries: bucket i upper bound = kBase^i.
constexpr double kBase = 1.2;
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(double value) const {
  if (value <= 1.0) return 0;
  size_t idx = static_cast<size_t>(std::log(value) / std::log(kBase)) + 1;
  return std::min(idx, kNumBuckets - 1);
}

double Histogram::BucketUpper(size_t index) const {
  return std::pow(kBase, static_cast<double>(index));
}

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  // Lock ordering by address avoids deadlock on cross merges.
  if (this == &other) return;
  std::scoped_lock lock(mu_, other.mu_);
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  uint64_t threshold =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  threshold = std::max<uint64_t>(threshold, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= threshold) {
      return std::min(BucketUpper(i), max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << mean() << " p50=" << Percentile(50)
     << " p99=" << Percentile(99) << " max=" << max();
  return os.str();
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

}  // namespace chariots
