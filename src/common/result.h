#ifndef CHARIOTS_COMMON_RESULT_H_
#define CHARIOTS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace chariots {

/// A Status or a value of type T — the StatusOr pattern. A Result is either
/// OK and holds a T, or non-OK and holds only the error Status. Accessing the
/// value of a non-OK Result aborts (programming error, like dereferencing an
/// empty optional).
template <typename T>
class Result {
 public:
  /// Implicit from value (OK result).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
///   CHARIOTS_ASSIGN_OR_RETURN(auto v, Compute());
#define CHARIOTS_ASSIGN_OR_RETURN(lhs, expr)                    \
  CHARIOTS_ASSIGN_OR_RETURN_IMPL_(                              \
      CHARIOTS_CONCAT_(_result_tmp_, __LINE__), lhs, expr)
#define CHARIOTS_CONCAT_INNER_(a, b) a##b
#define CHARIOTS_CONCAT_(a, b) CHARIOTS_CONCAT_INNER_(a, b)
#define CHARIOTS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace chariots

#endif  // CHARIOTS_COMMON_RESULT_H_
