#ifndef CHARIOTS_COMMON_METRICS_H_
#define CHARIOTS_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace chariots::metrics {

/// Lock-light process-wide instrument registry (ISSUE 4 tentpole). Three
/// instrument kinds:
///
///   * Counter   — monotonically increasing, sharded atomics so concurrent
///                 hot-path increments don't bounce one cache line;
///   * Gauge     — settable point-in-time value (also available as a
///                 registered callback evaluated at snapshot time, for
///                 values like queue depth that live in the owning object);
///   * Histogram — log-bucketed distribution over non-negative integers
///                 (latencies in nanoseconds, sizes in bytes) with
///                 approximate percentiles, all atomics on the write path.
///
/// Naming scheme (DESIGN.md §9): dot-separated, lowercase,
/// `<subsystem>[.<instance>].<what>[_<unit>]`, e.g.
/// `chariots.dc0.batcher.records_in`, `net.rpc.call_latency_ns`,
/// `storage.fsync_latency_ns`. Units are spelled in the name (`_ns`,
/// `_bytes`) so exporters need no side table.
///
/// Compile-out: building with -DCHARIOTS_DISABLE_METRICS turns every write
/// operation into an inline no-op (reads return zeros) so the overhead of
/// instrumentation can be measured (acceptance: <= 5% on bench_micro).

#if defined(CHARIOTS_DISABLE_METRICS)
#define CHARIOTS_METRICS_ENABLED 0
#else
#define CHARIOTS_METRICS_ENABLED 1
#endif

/// Monotonic counter. Increments hash the calling thread onto one of a few
/// cache-line-padded shards; Value() sums them (reads are rare).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
#if CHARIOTS_METRICS_ENABLED
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex() {
    // Distinct threads land on distinct shards with high probability; a
    // collision only costs contention, never correctness.
    static std::atomic<size_t> next{0};
    thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
    return index % kShards;
  }

  std::array<Shard, kShards> shards_{};
};

/// Point-in-time signed value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
#if CHARIOTS_METRICS_ENABLED
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t n) {
#if CHARIOTS_METRICS_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void MaxOf(int64_t v) {
#if CHARIOTS_METRICS_ENABLED
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Stable summary of one histogram, computed at snapshot time.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double p999 = 0;
  /// Occupied buckets as (upper bound, cumulative count ≤ bound) pairs, in
  /// increasing bound order — exactly the shape of a Prometheus
  /// `_bucket{le="..."}` series; empty buckets are elided.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
  double mean() const { return count == 0 ? 0 : sum / double(count); }
};

/// Log-bucketed histogram over uint64 values with 4 sub-buckets per octave
/// (~12.5% value resolution, enough for one significant digit on latency
/// percentiles). All writes are relaxed atomics; no locks anywhere.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
#if CHARIOTS_METRICS_ENABLED
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    AtomicMin(&min_, value);
    AtomicMax(&max_, value);
#else
    (void)value;
#endif
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  HistogramStats Stats() const;

  void Reset();

  /// Bucket math, exposed for tests: values 0..7 map to their own bucket;
  /// beyond that, bucket = 8 + 4*(octave-3) + top-2-mantissa-bits.
  static size_t BucketFor(uint64_t value);
  /// Representative (upper-bound) value of a bucket, for percentile
  /// interpolation.
  static uint64_t BucketUpper(size_t bucket);

  static constexpr size_t kNumBuckets = 256;

 private:
  static void AtomicMin(std::atomic<uint64_t>* slot, uint64_t v) {
    uint64_t seen = slot->load(std::memory_order_relaxed);
    while (v < seen && !slot->compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>* slot, uint64_t v) {
    uint64_t seen = slot->load(std::memory_order_relaxed);
    while (v > seen && !slot->compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

/// Everything the registry knows at one instant. Maps are ordered so
/// exports are stable across snapshots.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;
};

/// Process-wide instrument registry. Get* registers on first use and
/// returns a stable pointer (instruments are never deleted), so call sites
/// resolve the name once and cache the pointer.
class Registry {
 public:
  static Registry& Default();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Registers (or replaces) a gauge evaluated lazily at snapshot time —
  /// for values owned by another object (queue depth, buffer size). The
  /// owner MUST call UnregisterCallback before it is destroyed.
  void RegisterCallback(std::string name, std::function<int64_t()> fn);
  void UnregisterCallback(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument and drops callbacks. Instrument
  /// pointers stay valid. Test isolation only.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::function<int64_t()>> callbacks_;
};

/// RAII callback-gauge registration (owner lifetime == gauge lifetime).
class ScopedCallbackGauge {
 public:
  ScopedCallbackGauge() = default;
  ScopedCallbackGauge(std::string name, std::function<int64_t()> fn)
      : name_(std::move(name)) {
    Registry::Default().RegisterCallback(name_, std::move(fn));
  }
  ~ScopedCallbackGauge() { Release(); }
  ScopedCallbackGauge(const ScopedCallbackGauge&) = delete;
  ScopedCallbackGauge& operator=(const ScopedCallbackGauge&) = delete;
  ScopedCallbackGauge(ScopedCallbackGauge&& other) noexcept
      : name_(std::move(other.name_)) {
    other.name_.clear();
  }
  ScopedCallbackGauge& operator=(ScopedCallbackGauge&& other) noexcept {
    if (this != &other) {
      Release();
      name_ = std::move(other.name_);
      other.name_.clear();
    }
    return *this;
  }

 private:
  void Release() {
    if (!name_.empty()) Registry::Default().UnregisterCallback(name_);
    name_.clear();
  }
  std::string name_;
};

/// Records elapsed nanoseconds into `hist` when destroyed (pass nullptr to
/// disable). One steady-clock read at each end.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist);
  ~ScopedLatencyTimer();
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* const hist_;
  int64_t start_nanos_;
};

/// Prometheus text exposition (one `# TYPE` line + value per instrument;
/// histograms become real Prometheus histograms: cumulative
/// `<name>_bucket{le="..."}` samples from the occupied log-buckets, a
/// closing `le="+Inf"` bucket, then <name>_sum and <name>_count).
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
std::string RenderJson(const MetricsSnapshot& snapshot);

}  // namespace chariots::metrics

#endif  // CHARIOTS_COMMON_METRICS_H_
