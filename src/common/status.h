#ifndef CHARIOTS_COMMON_STATUS_H_
#define CHARIOTS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace chariots {

/// Canonical error space used across the code base. Mirrors the usual
/// database-systems convention (RocksDB / Abseil): no exceptions cross a
/// public API boundary; fallible calls return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kTimedOut,
  kCorruption,
  kIOError,
  kAborted,
  kResourceExhausted,
  kInternal,
  kNotSupported,
};

/// Returns the canonical lowercase name for `code`, e.g. "corruption".
std::string_view StatusCodeName(StatusCode code);

/// Retryability taxonomy: whether an operation failing with `code` may
/// succeed if simply repeated against the same endpoint. kUnavailable (the
/// destination is unreachable, overloaded, or shedding) and kTimedOut (the
/// deadline passed with no answer — the call may or may not have executed)
/// are the only transient codes; everything else reports a property of the
/// request or of durable state and retrying verbatim cannot help. Retried
/// calls must be idempotent (see net::RetryingChannel and the FLStore
/// append dedup tokens) because a kTimedOut attempt may have executed.
bool IsRetryable(StatusCode code);

/// Value-type result of a fallible operation: a code plus an optional
/// human-readable message. The OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }

  /// True if the failure is transient (see IsRetryable(StatusCode)).
  bool IsRetryable() const { return chariots::IsRetryable(code_); }

  /// "<code name>: <message>" or "ok".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status to the caller. Usage:
///   CHARIOTS_RETURN_IF_ERROR(DoThing());
#define CHARIOTS_RETURN_IF_ERROR(expr)               \
  do {                                               \
    ::chariots::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace chariots

#endif  // CHARIOTS_COMMON_STATUS_H_
