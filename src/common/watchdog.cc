#include "common/watchdog.h"

#include <cmath>
#include <utility>

#include "common/flight_recorder.h"
#include "common/logging.h"

namespace chariots {
namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

metrics::Counter* StallsCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.health.stalls");
  return c;
}

metrics::Counter* SloBreachesCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.health.slo_breaches");
  return c;
}

metrics::Counter* DumpsCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.health.dumps");
  return c;
}

uint16_t KindCode(const std::string& kind) {
  if (kind == "progress") return 1;
  if (kind == "queue") return 2;
  if (kind == "latency") return 3;
  if (kind == "rate") return 4;
  return 0;
}

}  // namespace

std::string RenderHealthJson(const HealthReport& report) {
  std::string out = "{\"node\":";
  AppendJsonString(&out, report.node);
  out += ",\"now_nanos\":" + std::to_string(report.now_nanos);
  out += ",\"ticks\":" + std::to_string(report.ticks);
  out += ",\"breaches\":" + std::to_string(report.breaches);
  out += ",\"healthy\":";
  out += report.healthy ? "true" : "false";
  out += ",\"probes\":[";
  bool first = true;
  for (const ProbeReport& p : report.probes) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, p.name);
    out += ",\"kind\":";
    AppendJsonString(&out, p.kind);
    out += ",\"breached\":";
    out += p.breached ? "true" : "false";
    out += ",\"value\":" + JsonDouble(p.value);
    out += ",\"threshold\":" + JsonDouble(p.threshold);
    out += ",\"detail\":";
    AppendJsonString(&out, p.detail);
    out += "}";
  }
  out += "]}";
  return out;
}

/// One registered probe: a closure that evaluates this tick's raw reading
/// (name and trip-count handling belong to the watchdog, not the closure).
struct Watchdog::Probe {
  std::string name;
  std::string kind;
  std::function<ProbeReport()> eval;
  int consecutive = 0;  // consecutive raw-breach ticks
};

Watchdog::Watchdog(Options options) : options_(std::move(options)) {}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::AddProgressProbe(std::string name,
                                std::function<uint64_t()> progress,
                                std::function<bool()> active) {
  Probe probe;
  probe.name = std::move(name);
  probe.kind = "progress";
  probe.eval = [progress = std::move(progress), active = std::move(active),
                prev = uint64_t{0}, seen = false]() mutable {
    ProbeReport r;
    uint64_t cur = progress();
    bool is_active = active == nullptr || active();
    uint64_t delta = cur >= prev ? cur - prev : 0;
    r.value = static_cast<double>(delta);
    r.threshold = 1;  // must advance by at least one step per tick
    r.breached = seen && is_active && delta == 0;
    r.detail = r.breached ? "no progress since last tick (counter at " +
                                std::to_string(cur) + ")"
                          : "advanced " + std::to_string(delta);
    prev = cur;
    seen = true;
    return r;
  };
  InstallProbe(std::move(probe));
}

void Watchdog::AddQueueProbe(std::string name, std::function<uint64_t()> size,
                             uint64_t capacity, double fill_threshold) {
  Probe probe;
  probe.name = std::move(name);
  probe.kind = "queue";
  probe.eval = [size = std::move(size), capacity, fill_threshold] {
    ProbeReport r;
    uint64_t depth = size();
    double fill =
        capacity == 0 ? 0.0 : static_cast<double>(depth) / capacity;
    r.value = fill;
    r.threshold = fill_threshold;
    r.breached = fill >= fill_threshold;
    r.detail = std::to_string(depth) + "/" + std::to_string(capacity) +
               " queued";
    return r;
  };
  InstallProbe(std::move(probe));
}

void Watchdog::AddLatencyProbe(std::string name,
                               const metrics::Histogram* histogram,
                               uint64_t threshold_nanos) {
  Probe probe;
  probe.name = std::move(name);
  probe.kind = "latency";
  probe.eval = [histogram, threshold_nanos, prev_count = uint64_t{0},
                prev_sum = 0.0]() mutable {
    ProbeReport r;
    metrics::HistogramStats stats = histogram->Stats();
    uint64_t dcount = stats.count - prev_count;
    double dsum = stats.sum - prev_sum;
    prev_count = stats.count;
    prev_sum = stats.sum;
    double window_mean = dcount == 0 ? 0.0 : dsum / static_cast<double>(dcount);
    r.value = window_mean;
    r.threshold = static_cast<double>(threshold_nanos);
    r.breached = dcount > 0 && window_mean > static_cast<double>(threshold_nanos);
    r.detail = std::to_string(dcount) + " samples, window mean " +
               std::to_string(static_cast<int64_t>(window_mean)) + " ns";
    return r;
  };
  InstallProbe(std::move(probe));
}

void Watchdog::AddRateProbe(std::string name, std::function<uint64_t()> counter,
                            uint64_t max_delta_per_tick) {
  Probe probe;
  probe.name = std::move(name);
  probe.kind = "rate";
  probe.eval = [counter = std::move(counter), max_delta_per_tick,
                prev = uint64_t{0}, seen = false]() mutable {
    ProbeReport r;
    uint64_t cur = counter();
    uint64_t delta = seen && cur >= prev ? cur - prev : 0;
    prev = cur;
    seen = true;
    r.value = static_cast<double>(delta);
    r.threshold = static_cast<double>(max_delta_per_tick);
    r.breached = delta > max_delta_per_tick;
    r.detail = "+" + std::to_string(delta) + " this tick";
    return r;
  };
  InstallProbe(std::move(probe));
}

void Watchdog::InstallProbe(Probe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = probes_.begin(); it != probes_.end(); ++it) {
    if (it->name == probe.name) {
      *it = std::move(probe);
      return;
    }
  }
  probes_.push_back(std::move(probe));
}

void Watchdog::RemoveProbe(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = probes_.begin(); it != probes_.end(); ++it) {
    if (it->name == name) {
      probes_.erase(it);
      return;
    }
  }
}

void Watchdog::Start(Executor* executor) {
  if (executor == nullptr) executor = Executor::Default();
  tick_timer_ = executor->ScheduleEvery(options_.tick_interval_nanos,
                                        [this] { TickOnce(); });
}

void Watchdog::Stop() { tick_timer_.Cancel(); }

HealthReport Watchdog::TickOnce() {
  HealthReport report;
  std::function<void(const HealthReport&)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++ticks_;
    report.node = options_.node;
    report.now_nanos = options_.clock != nullptr
                           ? options_.clock->NowNanos()
                           : SystemClock::Default()->NowNanos();
    report.ticks = ticks_;
    for (Probe& probe : probes_) {
      ProbeReport pr = probe.eval();
      pr.name = probe.name;
      pr.kind = probe.kind;
      probe.consecutive = pr.breached ? probe.consecutive + 1 : 0;
      // A single bad tick is noise; `trip_ticks` consecutive ones report.
      pr.breached = probe.consecutive >= options_.trip_ticks;
      if (pr.breached) {
        ++breaches_;
        report.healthy = false;
        (probe.kind == "progress" ? StallsCounter() : SloBreachesCounter())
            ->Add();
        flightrec::Record(flightrec::EventType::kWatchdogBreach,
                          KindCode(probe.kind), 0,
                          static_cast<uint64_t>(pr.value < 0 ? 0 : pr.value),
                          static_cast<uint64_t>(pr.threshold));
        LOG_EVERY_N_SEC(kWarn, 5)
            << "watchdog[" << options_.node << "] " << probe.kind
            << " breach: " << probe.name << " value=" << pr.value
            << " threshold=" << pr.threshold << " (" << pr.detail << ")";
      }
      report.probes.push_back(std::move(pr));
    }
    report.breaches = breaches_;
    last_report_ = report;
    if (!report.healthy && options_.on_breach != nullptr) {
      bool due = !hook_fired_ ||
                 report.now_nanos - last_hook_nanos_ >=
                     options_.breach_hook_min_interval_nanos;
      if (due) {
        hook = options_.on_breach;
        hook_fired_ = true;
        last_hook_nanos_ = report.now_nanos;
      }
    }
  }
  if (hook != nullptr) {
    hook(report);
    DumpsCounter()->Add();
  }
  return report;
}

HealthReport Watchdog::LastReport() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_report_;
}

uint64_t Watchdog::breaches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaches_;
}

void RegisterHealthMetrics() {
  StallsCounter();
  SloBreachesCounter();
  DumpsCounter();
}

}  // namespace chariots
