#ifndef CHARIOTS_COMMON_EXECUTOR_H_
#define CHARIOTS_COMMON_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace chariots {

/// RAII registration of the calling thread with the runtime census: names
/// the OS thread via pthread_setname_np (truncated to the kernel's 15-char
/// limit) and counts it in the `chariots.runtime.threads` gauge, so ops can
/// both `ps -T` a node and alert when the thread budget is exceeded. Used by
/// every long-lived thread the system creates (executor workers, timer,
/// thread pools, reactor I/O threads, sim machines).
class ScopedRuntimeThread {
 public:
  explicit ScopedRuntimeThread(const std::string& name);
  ~ScopedRuntimeThread();

  ScopedRuntimeThread(const ScopedRuntimeThread&) = delete;
  ScopedRuntimeThread& operator=(const ScopedRuntimeThread&) = delete;
};

///// Current value of the `chariots.runtime.threads` gauge: how many
/// census-registered threads are alive in this process right now.
int64_t RuntimeThreadCount();

/// High-water mark of the census (`chariots.runtime.threads_peak`): the
/// steady-state thread budget, readable even after teardown.
int64_t RuntimeThreadPeak();

/// Serializes tasks for one component and gates them against its shutdown.
/// The shared state outlives the owning component, so a task queued on an
/// executor can safely capture the gate plus a raw `this`: the body only
/// runs while the gate is open, and Close() blocks until an in-flight body
/// finishes — after Close() returns, no task will ever touch the component
/// again. This replaces per-component worker threads' implicit "join = no
/// more callbacks" guarantee with a single lock.
class SerialGate {
 public:
  SerialGate() : state_(std::make_shared<State>()) {}

  /// Runs `fn` now, on the calling thread, serialized against every other
  /// Run/Wrap body on this gate. Returns false (without running) if closed.
  bool Run(const std::function<void()>& fn) const {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->open) return false;
    fn();
    return true;
  }

  /// Wraps `fn` into a task safe to execute after the owner is gone: the
  /// returned callable locks the gate and silently no-ops once closed.
  std::function<void()> Wrap(std::function<void()> fn) const {
    std::shared_ptr<State> state = state_;
    return [state, fn = std::move(fn)] {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->open) fn();
    };
  }

  /// Closes the gate: blocks until the running body (if any) returns, then
  /// causes every future Run/Wrap body to no-op. Idempotent.
  void Close() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->open = false;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return !state_->open;
  }

 private:
  struct State {
    std::mutex mu;
    bool open = true;
  };
  std::shared_ptr<State> state_;
};

/// Shared task executor + timer service (DESIGN.md §10): O(cores) named
/// worker threads over sharded work-stealing deques, plus a hierarchical
/// timer driven by the injectable Clock. Every background loop in the
/// system — batcher flushes, filter drains, token circulation, GC sweeps,
/// replication ticks, gossip, heartbeats, lease monitors, transport
/// dispatch — runs here as a task, so the process thread count is a
/// function of cores, not of topology size.
///
/// Two execution lanes:
///  * worker lane: Submit() and (by default) timer callbacks. Tasks here
///    may block for bounded durations (disk writes, RPC calls with
///    timeouts) — liveness then depends on the guarantee below.
///  * timer lane: the dedicated timer thread. Callbacks scheduled with
///    Lane::kTimer run directly on it and MUST NOT block; the transports
///    use this lane to deliver RPC *responses*, so a worker blocked inside
///    a handler waiting on a Call() is always unblocked even when every
///    worker is busy. This is the invariant that makes blocking handlers on
///    a small worker pool deadlock-free.
///
/// Virtual time: constructed with Options::manual_clock, the executor has
/// no timer thread; AdvanceUntil() fires due timers inline on the calling
/// thread, in timestamp order, stepping the ManualClock to each deadline —
/// zero real sleeps, fully deterministic (the executor unit tests and the
/// converted batcher/lease tests run this way).
class Executor {
 public:
  struct Options {
    /// Worker count; 0 = max(2, min(8, hardware_concurrency)). The floor of
    /// 2 keeps producer/consumer task pairs live on single-core machines.
    size_t num_threads = 0;
    /// Thread-name prefix (workers are "<name>/<i>", timer "<name>/tmr").
    std::string name = "exec";
    /// Timer clock; null = SystemClock::Default(). Ignored (replaced) when
    /// manual_clock is set.
    Clock* clock = nullptr;
    /// Non-null switches the executor to virtual time: timers fire only via
    /// AdvanceUntil()/AdvanceBy() on the caller's thread.
    ManualClock* manual_clock = nullptr;
  };

  /// Which thread a timer callback runs on once due.
  enum class Lane {
    kWorker,  ///< dispatched to the worker pool (may block, bounded)
    kTimer,   ///< inline on the timer thread (must never block)
  };

  /// Cancellation handle for ScheduleAt/ScheduleEvery. Destroying or
  /// discarding a token does NOT cancel the timer (the executor owns the
  /// schedule); only Cancel() does.
  class TimerToken {
   public:
    TimerToken() = default;

    /// Cancels the timer. If its callback is running on another thread,
    /// blocks until it returns — after Cancel() the callback will never run
    /// (again). Calling Cancel() from inside the callback itself is allowed
    /// and returns immediately (the current run completes). Idempotent.
    void Cancel();

    /// True if this token refers to a timer (cancelled or not).
    bool valid() const { return state_ != nullptr; }

   private:
    friend class Executor;
    struct TimerState;
    explicit TimerToken(std::shared_ptr<TimerState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<TimerState> state_;
  };

  Executor();  // default Options
  explicit Executor(Options options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Process-wide shared executor, created on first use (and intentionally
  /// never destroyed, like SystemClock::Default(), so tasks queued during
  /// static teardown cannot touch a dead pool).
  static Executor* Default();

  /// Overrides the Options used to build Default(). Must be called before
  /// the first Default() call (e.g. from main() flag parsing); later calls
  /// are ignored with a warning.
  static void ConfigureDefault(Options options);

  /// Enqueues `fn` on the worker lane; returns false (with a rate-limited
  /// warning) if the executor is shutting down.
  bool Submit(std::function<void()> fn);

  /// Runs `fn` once when the executor clock reaches `at_nanos` (immediately
  /// if already past). Returns an invalid token (never fires) if the
  /// executor has shut down — check valid() when the schedule must happen.
  TimerToken ScheduleAt(int64_t at_nanos, std::function<void()> fn,
                        Lane lane = Lane::kWorker);

  /// Runs `fn` once after `delay_nanos` (of the executor clock).
  TimerToken ScheduleAfter(int64_t delay_nanos, std::function<void()> fn,
                           Lane lane = Lane::kWorker);

  /// Runs `fn` every `period_nanos`, fixed-delay and non-overlapping: the
  /// next run is armed `period_nanos` after the previous run *returns*
  /// (matching the `sleep(interval); work()` loops this replaces).
  TimerToken ScheduleEvery(int64_t period_nanos, std::function<void()> fn,
                           Lane lane = Lane::kWorker);

  /// Virtual time only: fires every timer due at or before `target_nanos`
  /// inline on the calling thread, in deadline order, stepping the
  /// ManualClock to each deadline and finally to `target_nanos`. Periodic
  /// timers re-arm and keep firing within the window.
  void AdvanceUntil(int64_t target_nanos);

  /// Virtual time only: AdvanceUntil(now + delta_nanos).
  void AdvanceBy(int64_t delta_nanos);

  /// Blocks until the worker lane is quiescent: no queued and no running
  /// task. The complement of AdvanceBy for deterministic virtual-time
  /// tests — timers fire inline on the advancing thread, but the work they
  /// Submit (message deliveries, handler bodies) runs on worker threads
  /// asynchronously; stepping `AdvanceBy(step); WaitIdle();` guarantees
  /// every side effect of one window has landed before the next window's
  /// timers observe state. A task submitted concurrently with the return
  /// is not waited for. Returns immediately after Shutdown.
  void WaitIdle();

  /// Stops accepting work, runs every already-queued worker task, drops
  /// pending timers, and joins all threads. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  Clock* clock() const { return clock_; }
  bool virtual_time() const { return manual_ != nullptr; }
  size_t num_workers() const { return workers_.size(); }

  /// Tasks executed so far (worker lane), for tests and debugging.
  uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard;
  struct TimerEntry;

  void WorkerLoop(size_t index);
  void TimerLoop();
  bool PopTask(size_t index, std::function<void()>* task);
  void RunTimer(const std::shared_ptr<TimerToken::TimerState>& state);
  void Arm(std::shared_ptr<TimerToken::TimerState> state, int64_t due_nanos);

  const std::string name_;
  Clock* clock_ = nullptr;
  ManualClock* manual_ = nullptr;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> submit_rr_{0};
  std::atomic<size_t> pending_{0};
  /// Tasks currently executing on a worker (pending_ counts only queued
  /// ones — it is decremented before the task body runs).
  std::atomic<size_t> running_{0};
  /// Number of WaitIdle callers; workers skip the completion notify when 0.
  std::atomic<size_t> idle_waiters_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::condition_variable idle_cv_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  uint64_t timer_seq_ = 0;

  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> workers_;
  std::thread timer_thread_;
};

}  // namespace chariots

#endif  // CHARIOTS_COMMON_EXECUTOR_H_
