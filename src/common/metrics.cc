#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

namespace chariots::metrics {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// JSON string escaping for metric names (which may only contain [a-z0-9._]
// by convention, but render defensively anyway).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumber(double v) {
  if (std::isnan(v) || std::isinf(v)) return "0";
  // Integral values print without a fractional part for readability.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map dots
// (and anything else) to underscores.
std::string PromName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

size_t Histogram::BucketFor(uint64_t value) {
  if (value < 8) return static_cast<size_t>(value);
  // Octave = index of the highest set bit (>= 3 here). Within an octave we
  // keep the next 2 mantissa bits: 4 sub-buckets per power of two.
  int exp = 63 - __builtin_clzll(value);
  size_t sub = static_cast<size_t>((value >> (exp - 2)) & 0x3);
  size_t bucket = 8 + static_cast<size_t>(exp - 3) * 4 + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpper(size_t bucket) {
  if (bucket < 8) return static_cast<uint64_t>(bucket);
  size_t rel = bucket - 8;
  int exp = static_cast<int>(rel / 4) + 3;
  uint64_t sub = rel % 4;
  if (exp >= 63) return ~uint64_t{0};
  // Upper edge of the sub-bucket: (1 + (sub+1)/4) * 2^exp, minus one.
  return (uint64_t{1} << exp) + ((sub + 1) << (exp - 2)) - 1;
}

HistogramStats Histogram::Stats() const {
  HistogramStats out;
  // Copy buckets first; count/sum may drift slightly vs. the copy under
  // concurrent writes, so recompute the total from the copy for quantiles.
  std::array<uint64_t, kNumBuckets> counts;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  out.count = total;
  out.sum = static_cast<double>(sum_.load(std::memory_order_relaxed));
  if (total == 0) return out;
  uint64_t mn = min_.load(std::memory_order_relaxed);
  out.min = (mn == ~uint64_t{0}) ? 0 : mn;
  out.max = max_.load(std::memory_order_relaxed);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    cumulative += counts[i];
    out.buckets.emplace_back(BucketUpper(i), cumulative);
  }

  auto quantile = [&](double q) -> double {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) {
        double v = static_cast<double>(BucketUpper(i));
        return std::min(v, static_cast<double>(out.max));
      }
    }
    return static_cast<double>(out.max);
  };
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p99 = quantile(0.99);
  out.p999 = quantile(0.999);
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Default() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void Registry::RegisterCallback(std::string name, std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_[std::move(name)] = std::move(fn);
}

void Registry::UnregisterCallback(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.erase(name);
}

MetricsSnapshot Registry::Snapshot() const {
  // Copy callbacks under the lock, evaluate them outside it: a callback may
  // itself touch the registry (e.g. a queue-depth lambda reading a gauge).
  std::map<std::string, std::function<int64_t()>> callbacks;
  MetricsSnapshot out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) out.counters[name] = c->Value();
    for (const auto& [name, g] : gauges_) out.gauges[name] = g->Value();
    for (const auto& [name, h] : histograms_) {
      out.histograms[name] = h->Stats();
    }
    callbacks = callbacks_;
  }
  for (const auto& [name, fn] : callbacks) out.gauges[name] = fn();
  return out;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  callbacks_.clear();
}

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* hist)
    : hist_(hist), start_nanos_(hist ? NowNanos() : 0) {}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (hist_ == nullptr) return;
  int64_t elapsed = NowNanos() - start_nanos_;
  hist_->Record(elapsed > 0 ? static_cast<uint64_t>(elapsed) : 0);
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snapshot.counters) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " histogram\n";
    for (const auto& [upper, cumulative] : stats.buckets) {
      out += p + "_bucket{le=\"" + std::to_string(upper) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(stats.count) + "\n";
    out += p + "_sum " + JsonNumber(stats.sum) + "\n";
    out += p + "_count " + std::to_string(stats.count) + "\n";
    // Precomputed quantiles alongside the buckets, so dashboards get tails
    // without a histogram_quantile() query (and without its interpolation
    // error — these come from the same log-bucket estimate as RenderJson).
    out += p + "{quantile=\"0.5\"} " + JsonNumber(stats.p50) + "\n";
    out += p + "{quantile=\"0.9\"} " + JsonNumber(stats.p90) + "\n";
    out += p + "{quantile=\"0.99\"} " + JsonNumber(stats.p99) + "\n";
    out += p + "{quantile=\"0.999\"} " + JsonNumber(stats.p999) + "\n";
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":" + std::to_string(stats.count);
    out += ",\"sum\":" + JsonNumber(stats.sum);
    out += ",\"min\":" + std::to_string(stats.min);
    out += ",\"max\":" + std::to_string(stats.max);
    out += ",\"mean\":" + JsonNumber(stats.mean());
    out += ",\"p50\":" + JsonNumber(stats.p50);
    out += ",\"p90\":" + JsonNumber(stats.p90);
    out += ",\"p99\":" + JsonNumber(stats.p99);
    out += ",\"p999\":" + JsonNumber(stats.p999);
    out += ",\"buckets\":[";
    for (size_t i = 0; i < stats.buckets.size(); ++i) {
      if (i > 0) out += ",";
      out += "[" + std::to_string(stats.buckets[i].first) + "," +
             std::to_string(stats.buckets[i].second) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace chariots::metrics
