#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <mutex>

namespace chariots {
namespace internal_logging {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

std::mutex& EmitMutex() {
  static std::mutex* const mu = new std::mutex();
  return *mu;
}
}  // namespace

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  auto now = std::chrono::system_clock::now().time_since_epoch();
  long ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  {
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::fprintf(stderr, "[%ld.%03ld %s %s:%d] %s\n", ms / 1000, ms % 1000,
                 LevelName(level), base, line, msg.c_str());
  }
  if (level == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

bool ShouldLogEveryN(std::atomic<int64_t>* next_nanos, int interval_sec) {
  int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  int64_t next = next_nanos->load(std::memory_order_relaxed);
  if (now < next) return false;
  int64_t interval = int64_t{interval_sec < 1 ? 1 : interval_sec} * 1000000000;
  // One winner per interval: losers see the updated deadline and back off.
  return next_nanos->compare_exchange_strong(next, now + interval,
                                             std::memory_order_relaxed);
}

}  // namespace internal_logging

void SetLogLevel(LogLevel level) {
  internal_logging::g_min_level.store(static_cast<int>(level),
                                      std::memory_order_relaxed);
}

}  // namespace chariots
