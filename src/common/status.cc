#include "common/status.h"

namespace chariots {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kTimedOut:
      return "timed out";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotSupported:
      return "not supported";
  }
  return "unknown";
}

bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimedOut;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace chariots
