#include "common/thread_pool.h"

namespace chariots {

ThreadPool::ThreadPool(size_t num_threads, std::string name) {
  (void)name;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    task_ready_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return false;
  tasks_.push_back(std::move(task));
  task_ready_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace chariots
