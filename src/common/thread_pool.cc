#include "common/thread_pool.h"

#include "common/executor.h"
#include "common/logging.h"

namespace chariots {

ThreadPool::ThreadPool(size_t num_threads, std::string name)
    : name_(std::move(name)) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      ScopedRuntimeThread census(name_ + "/" + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    task_ready_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      tasks_.push_back(std::move(task));
      task_ready_.notify_one();
      return true;
    }
  }
  LOG_EVERY_N_SEC(kWarn, 5) << "thread pool '" << name_
                           << "': Submit after shutdown; task dropped";
  return false;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace chariots
