#ifndef CHARIOTS_COMMON_TRACE_H_
#define CHARIOTS_COMMON_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/codec.h"

namespace chariots::trace {

/// Record-level tracing (ISSUE 4 tentpole part 2). A sampled append carries
/// a TraceContext — trace id plus per-hop timestamps — through the RPC
/// message header and inside the encoded GeoRecord, so one record can be
/// reconstructed hop-by-hop across the whole pipeline and across
/// datacenters: client → batcher → filter → queue → maintainer → sender →
/// remote receiver → remote ATable merge.
///
/// Unsampled records have trace_id == 0 and pay zero bytes on the wire and
/// zero work on the hot path.

struct TraceHop {
  std::string stage;  // "client", "batcher", "filter", "queue", ...
  uint32_t dc = 0;    // datacenter the hop was recorded in
  int64_t nanos = 0;  // steady-clock timestamp (same epoch within a process)

  bool operator==(const TraceHop& other) const {
    return stage == other.stage && dc == other.dc && nanos == other.nanos;
  }
};

struct TraceContext {
  uint64_t trace_id = 0;
  std::vector<TraceHop> hops;

  bool active() const { return trace_id != 0; }

  /// Appends a hop stamped with the current steady-clock time. No-op when
  /// inactive, so call sites don't need their own sampling check.
  void AddHop(std::string_view stage, uint32_t dc);
};

/// Deterministic sampling rule: sample when `every` > 0 and
/// `seq % every == 1` (so sequence number 1 — the first real record — is
/// always sampled, which keeps tests deterministic). `every` == 1 samples
/// every record.
bool ShouldSample(uint64_t seq, uint32_t every);

/// Derives a nonzero trace id from (dc, seq). Deterministic so the same
/// record gets the same id on an idempotent retry.
uint64_t MakeTraceId(uint32_t dc, uint64_t seq);

/// Wire format: [u64 trace_id][u32 hop_count]{[bytes stage][u32 dc]
/// [i64 nanos]}*. EncodeTrace appends NOTHING when the context is inactive;
/// DecodeTrace on an exhausted reader yields an inactive context. Both
/// properties keep old encoders/decoders compatible and unsampled records
/// free.
void EncodeTrace(const TraceContext& ctx, BinaryWriter* writer);
bool DecodeTrace(BinaryReader* reader, TraceContext* ctx);

/// Global ring buffer of completed traces plus per-hop latency histograms
/// (`chariots.trace.hop_ns.<stage>`, fed from consecutive-hop deltas when a
/// trace is recorded). Mutex-guarded: only sampled traffic reaches it.
class TraceSink {
 public:
  static TraceSink& Default();

  explicit TraceSink(size_t capacity = 256) : capacity_(capacity) {}

  void Record(TraceContext ctx);

  std::vector<TraceContext> Traces() const;

  /// Most recent trace whose id matches, if any.
  bool Find(uint64_t trace_id, TraceContext* out) const;

  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceContext> traces_;
};

/// JSON array of trace objects:
/// [{"trace_id":N,"hops":[{"stage":"client","dc":0,"nanos":T},...]},...]
std::string RenderTracesJson(const std::vector<TraceContext>& traces);

}  // namespace chariots::trace

#endif  // CHARIOTS_COMMON_TRACE_H_
