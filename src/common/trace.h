#ifndef CHARIOTS_COMMON_TRACE_H_
#define CHARIOTS_COMMON_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/codec.h"

namespace chariots {
class Clock;
}

namespace chariots::trace {

/// Record-level tracing (ISSUE 4 tentpole part 2, extended by ISSUE 9 to
/// parent-linked spans). A sampled append carries a TraceContext — trace id
/// plus per-hop timestamps plus a span tree — through the RPC message
/// header and inside the encoded GeoRecord, so one record can be
/// reconstructed hop-by-hop across the whole pipeline and across
/// datacenters: client → batcher → filter → queue → maintainer → sender →
/// remote receiver → remote ATable merge.
///
/// Unsampled records have trace_id == 0 and pay zero bytes on the wire and
/// zero work on the hot path.

struct TraceHop {
  std::string stage;  // "client", "batcher", "filter", "queue", ...
  uint32_t dc = 0;    // datacenter the hop was recorded in
  int64_t nanos = 0;  // steady-clock timestamp (same epoch within a process)

  bool operator==(const TraceHop& other) const {
    return stage == other.stage && dc == other.dc && nanos == other.nanos;
  }
};

/// One interval in the trace's span tree (ISSUE 9 tentpole part 3). Each
/// AddHop() closes the current pipeline-stage span and opens the next one as
/// its child, so every trace carries a parent-linked chain covering the
/// whole critical path; BeginSpan/EndSpan hang extra sub-operation spans
/// (an RPC, an fsync) off the stage they happened inside, turning the chain
/// into a tree.
struct TraceSpan {
  uint32_t id = 0;      // 1-based, unique within the trace
  uint32_t parent = 0;  // 0 = root
  std::string stage;
  uint32_t dc = 0;
  int64_t start_nanos = 0;
  int64_t end_nanos = 0;  // 0 = still open

  bool open() const { return end_nanos == 0; }
  bool operator==(const TraceSpan& other) const {
    return id == other.id && parent == other.parent &&
           stage == other.stage && dc == other.dc &&
           start_nanos == other.start_nanos && end_nanos == other.end_nanos;
  }
};

struct TraceContext {
  uint64_t trace_id = 0;
  std::vector<TraceHop> hops;
  std::vector<TraceSpan> spans;
  /// Id of the currently open pipeline-stage span (0 before the first hop).
  uint32_t chain = 0;

  bool active() const { return trace_id != 0; }

  /// Appends a hop stamped with the current steady-clock time, closing the
  /// current stage span and opening the next as its child. No-op when
  /// inactive, so call sites don't need their own sampling check.
  void AddHop(std::string_view stage, uint32_t dc);

  /// Opens a sub-operation span under the current stage span. Returns its
  /// id (0 when the context is inactive). Pair with EndSpan.
  uint32_t BeginSpan(std::string_view stage, uint32_t dc);

  /// Closes the span returned by BeginSpan. Idempotent; ignores id 0.
  void EndSpan(uint32_t id);
};

/// Overrides the timestamp clock used by AddHop/BeginSpan/EndSpan (null
/// restores the steady clock). Span-tree tests use a ManualClock so stage
/// shares are exact.
void SetClockForTest(Clock* clock);

/// Deterministic sampling rule: sample when `every` > 0 and
/// `seq % every == 1` (so sequence number 1 — the first real record — is
/// always sampled, which keeps tests deterministic). `every` == 1 samples
/// every record.
bool ShouldSample(uint64_t seq, uint32_t every);

/// Derives a nonzero trace id from (dc, seq). Deterministic so the same
/// record gets the same id on an idempotent retry.
uint64_t MakeTraceId(uint32_t dc, uint64_t seq);

/// Wire format: [u64 trace_id][u32 hop_count]{[bytes stage][u32 dc]
/// [i64 nanos]}* [u32 span_count]{[u32 id][u32 parent][bytes stage][u32 dc]
/// [i64 start][i64 end]}* [u32 chain]. EncodeTrace appends NOTHING when the
/// context is inactive; DecodeTrace on an exhausted reader yields an
/// inactive context, and a reader exhausted after the hops yields a span-
/// free trace (pre-span encoders). Both properties keep old
/// encoders/decoders compatible and unsampled records free.
void EncodeTrace(const TraceContext& ctx, BinaryWriter* writer);
bool DecodeTrace(BinaryReader* reader, TraceContext* ctx);

/// One stage of the reconstructed critical path.
struct CriticalPathEntry {
  std::string stage;
  uint32_t dc = 0;
  int64_t start_nanos = 0;
  int64_t duration_nanos = 0;
  double share = 0;  // fraction of end-to-end latency, in [0,1]
};

/// Reconstructs the pipeline-stage chain (following parent links from
/// `chain`) in chronological order with per-stage share of end-to-end
/// latency. Falls back to consecutive-hop deltas for span-free traces.
std::vector<CriticalPathEntry> CriticalPath(const TraceContext& ctx);

/// Human-readable per-record breakdown (what `chariots_cli trace` prints):
/// one line per critical-path stage plus indented sub-operation spans.
std::string RenderCriticalPath(const TraceContext& ctx);

/// Global ring buffer of completed traces plus per-hop latency histograms
/// (`chariots.trace.hop_ns.<stage>`, fed from consecutive-hop deltas when a
/// trace is recorded). Mutex-guarded: only sampled traffic reaches it.
class TraceSink {
 public:
  static TraceSink& Default();

  explicit TraceSink(size_t capacity = 256) : capacity_(capacity) {}

  void Record(TraceContext ctx);

  std::vector<TraceContext> Traces() const;

  /// Most recent trace whose id matches, if any.
  bool Find(uint64_t trace_id, TraceContext* out) const;

  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceContext> traces_;
};

/// JSON array of trace objects:
/// [{"trace_id":N,"hops":[{"stage":"client","dc":0,"nanos":T},...]},...]
std::string RenderTracesJson(const std::vector<TraceContext>& traces);

}  // namespace chariots::trace

#endif  // CHARIOTS_COMMON_TRACE_H_
