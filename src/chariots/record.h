#ifndef CHARIOTS_CHARIOTS_RECORD_H_
#define CHARIOTS_CHARIOTS_RECORD_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "flstore/types.h"

namespace chariots::geo {

/// Datacenter identifier (index into the replication group).
using DatacenterId = uint32_t;

/// Total-order id (paper §3): position of a record among records created at
/// its *host* datacenter. 1-based ("the first record of each node has a TOId
/// of 1"); identical across all replicas of the record.
using TOId = uint64_t;

/// Per-datacenter causal dependency vector: deps[d] is the highest TOId of
/// datacenter d that is causally before this record. The record itself
/// additionally depends on (host, toid-1) implicitly.
using DepVector = std::vector<TOId>;

/// A record in the geo-replicated shared log. The LId differs per
/// datacenter; host/toid/deps/body/tags are identical everywhere.
struct GeoRecord {
  DatacenterId host = 0;
  TOId toid = 0;
  /// Position in the local datacenter's log; kInvalidLId until the queues
  /// stage assigns it.
  flstore::LId lid = flstore::kInvalidLId;
  DepVector deps;
  std::string body;
  std::vector<flstore::Tag> tags;

  /// Record-level trace (ISSUE 4): hop timestamps accumulated as the record
  /// moves through the pipeline. Inactive (trace_id 0, zero wire bytes) for
  /// all but sampled records; IS serialized, so the trace crosses
  /// datacenters inside the replicated bytes.
  trace::TraceContext trace;

  /// Completion hook for locally appended records: fires once the record is
  /// persisted locally, with its TOId and LId (paper §3: "The assigned TOId
  /// and LId will be sent back to the Application client"). Never
  /// serialized; remote copies carry none.
  std::function<void(TOId, flstore::LId)> on_committed;
};

/// Serializes the replicated part of a record (everything but lid and the
/// completion hook).
std::string EncodeGeoRecord(const GeoRecord& record);
Result<GeoRecord> DecodeGeoRecord(std::string_view data);

/// Converts to the FLStore representation: body = encoded GeoRecord, tags
/// copied for indexing.
flstore::LogRecord ToLogRecord(const GeoRecord& record);

/// Inverse of ToLogRecord (lid taken from the log record).
Result<GeoRecord> FromLogRecord(const flstore::LogRecord& log_record);

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_RECORD_H_
