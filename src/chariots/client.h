#ifndef CHARIOTS_CHARIOTS_CLIENT_H_
#define CHARIOTS_CHARIOTS_CLIENT_H_

#include <chrono>
#include <mutex>
#include <utility>

#include "chariots/datacenter.h"
#include "chariots/read_rules.h"

namespace chariots::geo {

/// An application-client session against one datacenter (paper §3): the
/// append/read interface plus automatic causal dependency tracking. Reads
/// fold the read record's (host, toid) and its dependency vector into the
/// session's vector; appends carry the vector, so the causal order of
/// everything this session observed is honored at every replica.
class ChariotsClient {
 public:
  explicit ChariotsClient(Datacenter* dc);

  /// Appends and waits for the local commit; returns (toid, lid).
  Result<std::pair<TOId, flstore::LId>> Append(
      std::string body, std::vector<flstore::Tag> tags = {},
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Fire-and-forget append; the session dependency on it is still
  /// recorded (subsequent appends causally follow it). Returns its TOId.
  TOId AppendAsync(std::string body, std::vector<flstore::Tag> tags = {});

  /// Reads the record at `lid` and absorbs its causal information.
  Result<GeoRecord> Read(flstore::LId lid);

  /// Most recent record carrying the tag, as of `before_lid` (kInvalidLId =
  /// head of log). Absorbs causal information like Read.
  Result<GeoRecord> ReadMostRecent(const std::string& tag_key,
                                   flstore::LId before_lid =
                                       flstore::kInvalidLId);

  /// The paper's rule-based read (§3): selects by LId, LId range,
  /// (host, toid), or tag. Absorbs causal information from every record
  /// returned.
  Result<std::vector<GeoRecord>> Read(const ReadRules& rules);

  /// The local log's gap-free head.
  flstore::LId Head() const { return dc_->HeadLid(); }

  /// Folds a record's causal information (host/toid + dependency vector)
  /// into the session without re-reading it from the log. Used by layers
  /// that serve reads from their own replay-built indexes (e.g. Hyksos'
  /// version index) and must still honor session causality.
  void Absorb(const GeoRecord& record);

  /// Snapshot of the session's causal dependency vector (deps()[d] = max
  /// TOId of datacenter d this session has observed).
  DepVector deps() const;

  Datacenter* datacenter() const { return dc_; }

 private:
  void AbsorbLocked(const GeoRecord& record);

  Datacenter* const dc_;
  mutable std::mutex mu_;
  DepVector deps_;
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_CLIENT_H_
