#ifndef CHARIOTS_CHARIOTS_REPLICATION_H_
#define CHARIOTS_CHARIOTS_REPLICATION_H_

#include <atomic>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "chariots/atable.h"
#include "chariots/fabric.h"
#include "chariots/record.h"
#include "common/clock.h"
#include "common/executor.h"
#include "common/result.h"

namespace chariots::geo {

/// One replication message: the sender's whole awareness table (transitive
/// knowledge piggyback, paper §6.1) plus a run of the sender's local records
/// starting at `first_toid` (empty for pure heartbeats).
struct ReplicationBatch {
  std::string atable;  ///< encoded AwarenessTable
  TOId first_toid = 0;
  std::vector<std::string> records;  ///< encoded GeoRecords, consecutive TOIds
};

std::string EncodeReplicationBatch(const ReplicationBatch& batch);
Result<ReplicationBatch> DecodeReplicationBatch(std::string_view data);

/// Holds this datacenter's *local* records (host == self), indexed by TOId,
/// for the senders to read and ship. Local records are incorporated in
/// strict TOId order (queue admission), so puts are sequential. Old entries
/// are dropped once every replica is known to have them.
class LocalRecordBuffer {
 public:
  LocalRecordBuffer() = default;

  /// Adds the record with TOId `toid` (must be exactly max_toid() + 1).
  void Put(TOId toid, std::string encoded);

  /// Recovery: declares that the buffer starts at `first_toid` (earlier
  /// records were garbage collected — every replica already has them).
  /// Only valid while empty.
  void SetBase(TOId first_toid);

  /// Highest TOId stored (0 if none ever).
  TOId max_toid() const;

  /// Copies up to `max_records` encoded records starting at `from` (only as
  /// far as contiguously available). Returns how many were copied; records
  /// older than the retention floor yield 0 (caller falls back to asking
  /// the peer to recover via another replica — not modeled).
  size_t Read(TOId from, size_t max_records,
              std::vector<std::string>* out) const;

  /// Drops records with TOId < floor.
  void TruncateBelow(TOId floor);

  size_t size() const;

 private:
  mutable std::mutex mu_;
  TOId base_ = 1;  // TOId of front()
  std::deque<std::string> records_;
};

/// The senders stage (paper §6.2): ships local records to every other
/// datacenter, with the awareness table piggybacked. Retransmits from the
/// last *acknowledged* TOId — acknowledgement is simply the peer's awareness
/// row coming back — so datacenter-level failures and partitions heal
/// automatically. One Sender instance can own several destinations; a
/// deployment scales by giving each destination (or destination shard) its
/// own sender.
class Sender {
 public:
  struct Options {
    size_t batch_records = 256;
    int64_t tick_nanos = 1'000'000;         ///< send-loop cadence (1 ms)
    int64_t resend_nanos = 50'000'000;      ///< rewind if unacked (50 ms)
    /// Each consecutive rewind without ack progress doubles the rewind
    /// interval up to this cap; progress resets it to resend_nanos. Keeps a
    /// partitioned destination from being blasted with the same batch.
    /// (resend_nanos == 0 disables backoff: rewind on every tick.)
    int64_t resend_max_nanos = 1'000'000'000;
    int64_t heartbeat_nanos = 10'000'000;   ///< ATable-only message (10 ms)
    /// Executor running the periodic send task (null = Executor::Default()).
    Executor* executor = nullptr;
  };

  /// `clock` null means the executor's clock (so a virtual-time executor
  /// automatically drives the backoff/heartbeat arithmetic too).
  Sender(DatacenterId self, std::vector<DatacenterId> destinations,
         const LocalRecordBuffer* buffer, const AwarenessTable* atable,
         ReplicationFabric* fabric, Options options, Clock* clock = nullptr);
  ~Sender();

  void Start();
  void Stop();

  /// One pass over all destinations; returns records shipped. Exposed for
  /// deterministic tests (the periodic executor task just calls this until
  /// it reports idle).
  size_t Tick();

  uint64_t records_sent() const { return records_sent_.load(); }
  uint64_t batches_sent() const { return batches_sent_.load(); }
  /// Retransmission rewinds performed (ack stalls detected).
  uint64_t rewinds() const { return rewinds_.load(); }

 private:
  struct DestState {
    DatacenterId dc;
    TOId acked = 0;              // peer's awareness of us, last observed
    TOId sent_upto = 0;          // optimistic high-water mark
    int64_t last_send_nanos = 0;
    int64_t last_heartbeat_nanos = 0;
    int64_t resend_interval_nanos = 0;  // current backoff (0 = base)
  };

  const DatacenterId self_;
  const LocalRecordBuffer* const buffer_;
  const AwarenessTable* const atable_;
  ReplicationFabric* const fabric_;
  const Options options_;
  Executor* const executor_;
  Clock* const clock_;

  std::mutex mu_;
  std::vector<DestState> dests_;
  std::atomic<bool> stop_{true};
  Executor::TimerToken tick_token_;
  std::atomic<uint64_t> records_sent_{0};
  std::atomic<uint64_t> batches_sent_{0};
  std::atomic<uint64_t> rewinds_{0};
};

/// The receiving half: decodes replication batches from peers, merges the
/// awareness table, and hands records to the local pipeline (batchers
/// stage).
///
/// Two duplicate/overload defenses before the pipeline sees a record:
///  * records the local knowledge vector already covers (retransmitted
///    after the ack was lost) are dropped here — no pipeline work at all;
///    in-flight duplicates deeper in still get dropped by the filters;
///  * the submit callback may *refuse* a record (return false) when the
///    pipeline is congested. Shedding is safe precisely because the sender
///    retransmits everything un-acked — awareness only advances on
///    incorporation, so a shed record is delivered again later.
class Receiver {
 public:
  /// Returns false to shed the record (congestion); true if accepted.
  using SubmitFn = std::function<bool(GeoRecord)>;

  Receiver(DatacenterId self, AwarenessTable* atable, SubmitFn submit);

  /// Fabric handler.
  void OnMessage(DatacenterId from, std::string payload);

  uint64_t records_received() const { return records_received_.load(); }
  uint64_t batches_received() const { return batches_received_.load(); }
  /// Records dropped because the knowledge vector already covered them.
  uint64_t records_deduped() const { return records_deduped_.load(); }
  /// Records refused by the pipeline under congestion.
  uint64_t records_shed() const { return records_shed_.load(); }

 private:
  const DatacenterId self_;
  AwarenessTable* const atable_;
  SubmitFn submit_;
  std::atomic<uint64_t> records_received_{0};
  std::atomic<uint64_t> batches_received_{0};
  std::atomic<uint64_t> records_deduped_{0};
  std::atomic<uint64_t> records_shed_{0};
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_REPLICATION_H_
