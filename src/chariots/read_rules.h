#ifndef CHARIOTS_CHARIOTS_READ_RULES_H_
#define CHARIOTS_CHARIOTS_READ_RULES_H_

#include <optional>
#include <string>
#include <vector>

#include "chariots/record.h"
#include "flstore/indexer.h"

namespace chariots::geo {

/// The paper's Read interface (§3): "Read(in: rules, out: records) —
/// return the records that match the input rules. A rule might involve
/// TOIds, LIds, and tags information."
///
/// Exactly one selector must be set:
///  * `lid`            — one record by local position;
///  * `lid_range`      — records in [first, last) by position;
///  * `host` + `toid`  — one record by replication identity;
///  * `tag`            — most recent `limit` records carrying the tag,
///                       optionally value-filtered and pinned below
///                       `before_lid` (snapshot reads).
struct ReadRules {
  std::optional<flstore::LId> lid;
  std::optional<std::pair<flstore::LId, flstore::LId>> lid_range;

  std::optional<DatacenterId> host;
  std::optional<TOId> toid;

  std::optional<std::string> tag;
  std::optional<std::string> tag_value_equals;
  std::optional<int64_t> tag_value_min;
  std::optional<int64_t> tag_value_max;
  flstore::LId before_lid = flstore::kInvalidLId;

  /// Maximum records returned (tag and range selectors).
  uint32_t limit = 1;
};

class Datacenter;

/// Evaluates `rules` against `dc`'s log. InvalidArgument if the rules do
/// not name exactly one selector.
Result<std::vector<GeoRecord>> ReadWithRules(const Datacenter& dc,
                                             const ReadRules& rules);

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_READ_RULES_H_
