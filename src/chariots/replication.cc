#include "chariots/replication.h"

#include <algorithm>
#include <cassert>

#include "common/codec.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::geo {

namespace {

metrics::Counter* RecordsSentCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.sender.records_sent");
  return c;
}

metrics::Counter* BatchesSentCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.sender.batches_sent");
  return c;
}

metrics::Counter* RewindsCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.sender.rewinds");
  return c;
}

metrics::Histogram* SenderTickHist() {
  static metrics::Histogram* h =
      metrics::Registry::Default().GetHistogram("chariots.sender.tick_ns");
  return h;
}

metrics::Counter* RecordsReceivedCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.receiver.records_received");
  return c;
}

metrics::Counter* RecordsDedupedCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.receiver.records_deduped");
  return c;
}

metrics::Counter* RecordsShedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.receiver.records_shed");
  return c;
}

metrics::Histogram* ReceiverOnMessageHist() {
  static metrics::Histogram* h = metrics::Registry::Default().GetHistogram(
      "chariots.receiver.on_message_ns");
  return h;
}

}  // namespace

std::string EncodeReplicationBatch(const ReplicationBatch& batch) {
  BinaryWriter w;
  w.PutBytes(batch.atable);
  w.PutU64(batch.first_toid);
  w.PutU32(static_cast<uint32_t>(batch.records.size()));
  for (const std::string& r : batch.records) w.PutBytes(r);
  return std::move(w).data();
}

Result<ReplicationBatch> DecodeReplicationBatch(std::string_view data) {
  BinaryReader r(data);
  ReplicationBatch batch;
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&batch.atable));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&batch.first_toid));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  batch.records.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string rec;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec));
    batch.records.push_back(std::move(rec));
  }
  return batch;
}

// ------------------------------------------------------ LocalRecordBuffer

void LocalRecordBuffer::Put(TOId toid, std::string encoded) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(toid == base_ + records_.size() &&
         "local records must be incorporated in TOId order");
  (void)toid;
  records_.push_back(std::move(encoded));
}

void LocalRecordBuffer::SetBase(TOId first_toid) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(records_.empty() && "SetBase only valid on an empty buffer");
  base_ = first_toid;
}

TOId LocalRecordBuffer::max_toid() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_ + records_.size() - 1;
}

size_t LocalRecordBuffer::Read(TOId from, size_t max_records,
                               std::vector<std::string>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from < base_) return 0;  // already garbage collected
  size_t offset = from - base_;
  size_t available = records_.size() > offset ? records_.size() - offset : 0;
  size_t n = std::min(available, max_records);
  for (size_t i = 0; i < n; ++i) out->push_back(records_[offset + i]);
  return n;
}

void LocalRecordBuffer::TruncateBelow(TOId floor) {
  std::lock_guard<std::mutex> lock(mu_);
  while (base_ < floor && !records_.empty()) {
    records_.pop_front();
    ++base_;
  }
}

size_t LocalRecordBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

// ------------------------------------------------------------------ Sender

Sender::Sender(DatacenterId self, std::vector<DatacenterId> destinations,
               const LocalRecordBuffer* buffer, const AwarenessTable* atable,
               ReplicationFabric* fabric, Options options, Clock* clock)
    : self_(self),
      buffer_(buffer),
      atable_(atable),
      fabric_(fabric),
      options_(options),
      executor_(options.executor != nullptr ? options.executor
                                            : Executor::Default()),
      clock_(clock != nullptr ? clock : executor_->clock()) {
  for (DatacenterId dc : destinations) {
    dests_.push_back(
        DestState{dc, 0, 0, 0, 0, options_.resend_nanos});
  }
}

Sender::~Sender() { Stop(); }

void Sender::Start() {
  bool expected = true;
  if (!stop_.compare_exchange_strong(expected, false)) return;
  // Each firing drains until a tick ships nothing, then waits out the
  // cadence — the executor equivalent of the old spin-while-busy loop.
  // Cancel() in Stop() fences the `this` capture.
  tick_token_ = executor_->ScheduleEvery(options_.tick_nanos, [this] {
    while (!stop_.load(std::memory_order_relaxed) && Tick() > 0) {
    }
  });
}

void Sender::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  tick_token_.Cancel();
}

size_t Sender::Tick() {
  metrics::ScopedLatencyTimer timer(SenderTickHist());
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = clock_->NowNanos();
  size_t shipped = 0;

  for (DestState& dest : dests_) {
    // The peer's awareness of us doubles as the acknowledgement.
    TOId acked = atable_->Get(dest.dc, self_);
    if (acked > dest.acked) {
      // Ack progress: the destination is alive and absorbing — retransmit
      // eagerly again.
      dest.acked = acked;
      dest.resend_interval_nanos = options_.resend_nanos;
    }
    if (acked > dest.sent_upto) dest.sent_upto = acked;
    // No ack progress for the current backoff interval: rewind and
    // retransmit (the receiver and filters at the destination absorb
    // duplicates), then back the interval off exponentially so a dead or
    // partitioned peer is probed, not flooded.
    if (acked < dest.sent_upto &&
        now - dest.last_send_nanos > dest.resend_interval_nanos) {
      dest.sent_upto = acked;
      dest.resend_interval_nanos = std::min(dest.resend_interval_nanos * 2,
                                            options_.resend_max_nanos);
      rewinds_.fetch_add(1, std::memory_order_relaxed);
      RewindsCounter()->Add();
    }

    TOId max = buffer_->max_toid();
    if (dest.sent_upto < max) {
      ReplicationBatch batch;
      batch.atable = atable_->Encode();
      batch.first_toid = dest.sent_upto + 1;
      size_t n = buffer_->Read(batch.first_toid, options_.batch_records,
                               &batch.records);
      if (n > 0) {
        Status s = fabric_->Send(self_, dest.dc,
                                 EncodeReplicationBatch(batch));
        if (s.ok()) {
          dest.sent_upto += n;
          dest.last_send_nanos = now;
          dest.last_heartbeat_nanos = now;
          shipped += n;
          records_sent_.fetch_add(n, std::memory_order_relaxed);
          batches_sent_.fetch_add(1, std::memory_order_relaxed);
          RecordsSentCounter()->Add(n);
          BatchesSentCounter()->Add();
        }
        continue;
      }
    }

    // Nothing to ship: heartbeat the awareness table so knowledge (and GC
    // eligibility) keeps flowing.
    if (now - dest.last_heartbeat_nanos > options_.heartbeat_nanos) {
      ReplicationBatch hb;
      hb.atable = atable_->Encode();
      if (fabric_->Send(self_, dest.dc, EncodeReplicationBatch(hb)).ok()) {
        dest.last_heartbeat_nanos = now;
        batches_sent_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return shipped;
}

// ---------------------------------------------------------------- Receiver

Receiver::Receiver(DatacenterId self, AwarenessTable* atable, SubmitFn submit)
    : self_(self), atable_(atable), submit_(std::move(submit)) {}

void Receiver::OnMessage(DatacenterId from, std::string payload) {
  (void)from;
  metrics::ScopedLatencyTimer timer(ReceiverOnMessageHist());
  Result<ReplicationBatch> batch = DecodeReplicationBatch(payload);
  if (!batch.ok()) {
    LOG_EVERY_N_SEC(kWarn, 5)
        << "dc" << self_
        << ": undecodable replication batch: " << batch.status().ToString();
    return;
  }
  if (!batch->atable.empty()) {
    Status s = atable_->MergeEncoded(batch->atable);
    if (!s.ok()) {
      LOG_WARN << "dc" << self_ << ": bad piggybacked atable: "
               << s.ToString();
    }
  }
  batches_received_.fetch_add(1, std::memory_order_relaxed);
  for (const std::string& encoded : batch->records) {
    Result<GeoRecord> record = DecodeGeoRecord(encoded);
    if (!record.ok()) {
      LOG_EVERY_N_SEC(kWarn, 5) << "dc" << self_
                                << ": undecodable record in batch";
      continue;
    }
    records_received_.fetch_add(1, std::memory_order_relaxed);
    RecordsReceivedCounter()->Add();
    // Knowledge-vector dedup: row self only advances when a record is
    // incorporated into the local log, so anything at or below it is a
    // retransmitted duplicate — drop it before it costs pipeline work.
    if (atable_->Get(self_, record->host) >= record->toid) {
      records_deduped_.fetch_add(1, std::memory_order_relaxed);
      RecordsDedupedCounter()->Add();
      continue;
    }
    if (!submit_(std::move(record).value())) {
      // Pipeline congested: shed. The sender's rewind re-ships this record
      // once the backlog (and our awareness row) stops advancing.
      records_shed_.fetch_add(1, std::memory_order_relaxed);
      RecordsShedCounter()->Add();
    }
  }
}

}  // namespace chariots::geo
