#include "chariots/datacenter.h"

#include <algorithm>
#include <cstdio>

#include "common/codec.h"
#include "common/flight_recorder.h"
#include "common/logging.h"
#include "storage/file.h"

namespace chariots::geo {

namespace {
std::vector<DatacenterId> OtherDatacenters(uint32_t self, uint32_t n) {
  std::vector<DatacenterId> out;
  for (uint32_t d = 0; d < n; ++d) {
    if (d != self) out.push_back(d);
  }
  return out;
}
}  // namespace

Datacenter::Datacenter(ChariotsConfig config, ReplicationFabric* fabric)
    : config_(config),
      fabric_(fabric),
      executor_(config.executor != nullptr ? config.executor
                                           : Executor::Default()),
      journal_(config.num_maintainers, config.stripe_batch),
      filter_map_(config.num_filters, config.num_datacenters),
      atable_(config.num_datacenters, config.dc_id),
      token_(config.num_datacenters),
      toid_to_lid_(config.num_datacenters),
      toid_base_(config.num_datacenters, 1) {
  // Per-dc counters: several Datacenter instances can share one process (in
  // tests and simulations), so these are namespaced by dc id; the per-stage
  // process-global instruments live in the stage classes.
  std::string prefix = "chariots.dc" + std::to_string(config_.dc_id) + ".";
  metrics::Registry& registry = metrics::Registry::Default();
  appends_counter_ = registry.GetCounter(prefix + "appends");
  refused_counter_ = registry.GetCounter(prefix + "appends_refused");
  incorporated_counter_ = registry.GetCounter(prefix + "records_incorporated");
  maintainer_append_hist_ =
      registry.GetHistogram("chariots.maintainer.append_ns");
}

Datacenter::~Datacenter() { Stop(); }

void Datacenter::Subscribe(std::function<void(const GeoRecord&)> subscriber) {
  subscribers_.push_back(std::move(subscriber));
}

Status Datacenter::Start() {
  if (config_.dc_id >= config_.num_datacenters) {
    return Status::InvalidArgument("dc_id must be < num_datacenters");
  }
  if (config_.num_batchers == 0 || config_.num_filters == 0 ||
      config_.num_queues == 0 || config_.num_maintainers == 0) {
    return Status::InvalidArgument("every stage needs at least one machine");
  }
  if (config_.num_filters > kMaxFilters ||
      config_.num_batchers > kMaxBatchers ||
      config_.num_queues > kMaxQueues) {
    return Status::InvalidArgument("stage width beyond reserved capacity");
  }
  if (config_.stripe_batch == 0) {
    return Status::InvalidArgument("stripe_batch must be positive");
  }
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("datacenter already running");
  }

  // Log maintainers (FLStore stage).
  for (uint32_t m = 0; m < config_.num_maintainers; ++m) {
    flstore::MaintainerOptions mo;
    mo.index = m;
    mo.journal = journal_;
    mo.store.mode = config_.store_mode;
    mo.store.io_engine = config_.io_engine;
    if (!config_.store_dir.empty()) {
      mo.store.dir =
          config_.store_dir + "/maintainer-" + std::to_string(m);
    }
    maintainers_.push_back(std::make_unique<flstore::LogMaintainer>(mo));
    CHARIOTS_RETURN_IF_ERROR(maintainers_.back()->Open());
  }

  // Whole-datacenter restart: rebuild replica clocks, awareness, index,
  // GC metadata, and the sender buffer from the persisted log before any
  // pipeline thread starts.
  if (!config_.store_dir.empty()) {
    CHARIOTS_RETURN_IF_ERROR(RecoverFromStorage());
  }

  // Queues + token.
  queues_.reserve(kMaxQueues);
  for (uint32_t q = 0; q < config_.num_queues; ++q) {
    queues_.push_back(std::make_unique<GeoQueue>(
        q, &journal_,
        [this](uint32_t m, GeoRecord r) {
          r.trace.AddHop("queue", config_.dc_id);
          RouteToMaintainer(m, std::move(r));
        }));
  }
  queue_count_.store(queues_.size(), std::memory_order_release);

  // Filters, each with a bounded inbox drained on an executor strand.
  filters_.reserve(kMaxFilters);
  for (uint32_t f = 0; f < config_.num_filters; ++f) {
    auto stage = std::make_unique<FilterStage>();
    stage->inbox = std::make_unique<BoundedQueue<std::vector<GeoRecord>>>(
        config_.stage_queue_capacity);
    stage->filter = std::make_unique<Filter>(
        f, &filter_map_, [this](GeoRecord r) {
          r.trace.AddHop("filter", config_.dc_id);
          uint64_t i = queue_rr_.fetch_add(1, std::memory_order_relaxed);
          size_t n = queue_count_.load(std::memory_order_acquire);
          queues_[i % n]->Enqueue(std::move(r));
        });
    filters_.push_back(std::move(stage));
  }
  // After a restart the filters resume their champion streams where the
  // recovered log left off.
  std::vector<TOId> incorporated = atable_.KnowledgeVector();
  for (auto& stage : filters_) {
    for (DatacenterId d = 0; d < config_.num_datacenters; ++d) {
      if (incorporated[d] > 0) stage->filter->SeedHost(d, incorporated[d]);
    }
  }
  filter_count_.store(filters_.size(), std::memory_order_release);

  // Batchers.
  batchers_.reserve(kMaxBatchers);
  for (uint32_t b = 0; b < config_.num_batchers; ++b) {
    batchers_.push_back(std::make_unique<Batcher>(
        &filter_map_, config_.batcher_flush_records,
        config_.batcher_flush_nanos,
        [this](uint32_t filter_id, std::vector<GeoRecord> batch) {
          DeliverToFilter(filter_id, std::move(batch));
        },
        executor_));
    batchers_.back()->Start();
  }
  batcher_count_.store(batchers_.size(), std::memory_order_release);

  // Token circulation: a self-rescheduling executor task.
  token_done_ = std::make_unique<CountDownLatch>(1);
  if (!executor_->Submit(token_gate_.Wrap([this] { TokenStep(); }))) {
    token_done_->CountDown();
  }

  // Replication: receiver first, then senders (sharded by destination).
  if (config_.num_datacenters > 1) {
    receiver_ = std::make_unique<Receiver>(
        config_.dc_id, &atable_, [this](GeoRecord r) {
          // Shed remote records while congested (a partitioned or slow
          // peer's backlog must not grow the queues without bound): the
          // origin's sender retransmits them once we make progress.
          if (Congested()) return false;
          r.trace.AddHop("receiver", config_.dc_id);
          SubmitToBatcher(std::move(r));
          return true;
        });
    CHARIOTS_RETURN_IF_ERROR(fabric_->RegisterReceiver(
        config_.dc_id, [this](DatacenterId from, std::string payload) {
          receiver_->OnMessage(from, std::move(payload));
        }));

    std::vector<DatacenterId> others =
        OtherDatacenters(config_.dc_id, config_.num_datacenters);
    uint32_t num_senders =
        std::max<uint32_t>(1, std::min<uint32_t>(config_.num_senders,
                                                 others.size()));
    std::vector<std::vector<DatacenterId>> shards(num_senders);
    for (size_t i = 0; i < others.size(); ++i) {
      shards[i % num_senders].push_back(others[i]);
    }
    Sender::Options so;
    so.batch_records = config_.sender_batch_records;
    so.resend_nanos = config_.sender_resend_nanos;
    so.resend_max_nanos = config_.sender_resend_max_nanos;
    so.executor = executor_;
    for (auto& shard : shards) {
      if (shard.empty()) continue;
      senders_.push_back(std::make_unique<Sender>(
          config_.dc_id, shard, &local_buffer_, &atable_, fabric_, so));
      senders_.back()->Start();
    }
  }

  if (config_.gc_interval_nanos > 0) {
    gc_token_ = executor_->ScheduleEvery(config_.gc_interval_nanos, [this] {
      Status gc = RunGcOnce();
      if (!gc.ok()) {
        LOG_WARN << "dc" << config_.dc_id << ": gc failed: " << gc.ToString();
      }
    });
  }

  // Snapshot-time gauges for state owned by the pipeline. The lock-free
  // readers (BoundedQueue::ApproxSize, atomics) make these safe to evaluate
  // from any monitoring thread; Stop() releases them before teardown.
  std::string prefix = "chariots.dc" + std::to_string(config_.dc_id) + ".";
  callback_gauges_.emplace_back(prefix + "head_lid", [this] {
    return static_cast<int64_t>(head_lid_.load(std::memory_order_relaxed));
  });
  callback_gauges_.emplace_back(prefix + "pipeline_pending", [this] {
    return static_cast<int64_t>(PipelinePending());
  });
  callback_gauges_.emplace_back(prefix + "local_buffer_records", [this] {
    return static_cast<int64_t>(local_buffer_.size());
  });
  size_t nf = filter_count_.load(std::memory_order_acquire);
  for (size_t f = 0; f < nf; ++f) {
    BoundedQueue<std::vector<GeoRecord>>* inbox = filters_[f]->inbox.get();
    callback_gauges_.emplace_back(
        prefix + "filter" + std::to_string(f) + ".inbox_depth",
        [inbox] { return static_cast<int64_t>(inbox->ApproxSize()); });
    callback_gauges_.emplace_back(
        prefix + "filter" + std::to_string(f) + ".inbox_high_watermark",
        [inbox] { return static_cast<int64_t>(inbox->high_watermark()); });
  }
  return Status::OK();
}

void Datacenter::Stop() {
  if (!running_.exchange(false)) return;

  // Release snapshot callbacks first: they read pipeline state that the
  // teardown below starts dismantling.
  callback_gauges_.clear();

  // Upstream first: batchers flush, filters drain, token drains queues.
  for (auto& b : batchers_) b->Stop();
  for (auto& f : filters_) f->inbox->Close();
  // Final inline drain so nothing queued is lost, then seal each strand:
  // after Close() no drain task can touch the stage again.
  for (auto& f : filters_) {
    FilterStage* stage = f.get();
    stage->gate.Run([this, stage] { DrainFilter(stage); });
    stage->gate.Close();
  }
  // The token chain observes running_ == false, drains the queues, counts
  // the latch down, and stops rescheduling itself.
  if (token_done_ != nullptr &&
      !token_done_->WaitFor(std::chrono::seconds(30))) {
    LOG_WARN << "dc" << config_.dc_id
             << ": token drain timed out; records may be left in queues";
  }
  token_gate_.Close();
  for (auto& s : senders_) s->Stop();
  if (receiver_ != nullptr) (void)fabric_->Unregister(config_.dc_id);
  gc_token_.Cancel();
  // Clean shutdown: sync the log and leave a fresh recovery point.
  Status s = WriteCheckpoint();
  if (!s.ok()) {
    LOG_WARN << "dc" << config_.dc_id << ": checkpoint on stop failed: "
             << s.ToString();
  }
}

namespace {
constexpr uint32_t kCheckpointMagic = 0xC4A210;
constexpr uint32_t kCheckpointVersion = 1;
}  // namespace

Status Datacenter::WriteCheckpoint() {
  if (config_.store_dir.empty()) return Status::OK();
  // Durability order: the log first, then the checkpoint that summarizes
  // it — a checkpoint must never claim records the log lost.
  for (auto& m : maintainers_) {
    CHARIOTS_RETURN_IF_ERROR(m->Sync());
  }
  BinaryWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU32(kCheckpointVersion);
  w.PutU64(head_lid_.load(std::memory_order_acquire));
  w.PutU64(next_toid_.load(std::memory_order_acquire));
  w.PutU64(gc_horizon_.load(std::memory_order_acquire));
  w.PutBytes(atable_.Encode());
  return storage::WriteStringToFileAtomic(
      std::move(w).data(), config_.store_dir + "/checkpoint");
}

Status Datacenter::RecoverFromStorage() {
  // 1. Load the checkpoint, if any.
  flstore::LId ckpt_next_lid = 0;
  TOId ckpt_next_toid = 0;
  flstore::LId ckpt_horizon = 0;
  std::string raw;
  std::string path = config_.store_dir + "/checkpoint";
  if (storage::FileExists(path) &&
      storage::ReadFileToString(path, &raw).ok()) {
    BinaryReader r(raw);
    uint32_t magic = 0, version = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&magic));
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&version));
    if (magic != kCheckpointMagic || version != kCheckpointVersion) {
      return Status::Corruption("bad checkpoint header");
    }
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&ckpt_next_lid));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&ckpt_next_toid));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&ckpt_horizon));
    std::string atable_bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&atable_bytes));
    CHARIOTS_RETURN_IF_ERROR(atable_.MergeEncoded(atable_bytes));
  }

  // 2. Gather every stored lid across the maintainers.
  std::vector<flstore::LId> lids;
  for (auto& m : maintainers_) {
    std::vector<flstore::LId> mine = m->StoredLids();
    lids.insert(lids.end(), mine.begin(), mine.end());
  }
  std::sort(lids.begin(), lids.end());

  // 3. Records at/after the checkpoint must form a contiguous run (the
  //    token assigned them consecutively); a hole means the crash lost a
  //    buffered write, and everything past the hole is a straggler whose
  //    causal prefix is gone — discard it (tombstone) so the positions can
  //    be reassigned.
  flstore::LId resume_lid = ckpt_next_lid;
  size_t straggler_start = lids.size();
  for (size_t i = 0; i < lids.size(); ++i) {
    if (lids[i] < ckpt_next_lid) continue;
    if (lids[i] != resume_lid) {
      straggler_start = i;
      break;
    }
    ++resume_lid;
  }
  for (size_t i = straggler_start; i < lids.size(); ++i) {
    LOG_WARN << "dc" << config_.dc_id << ": discarding straggler record at "
             << "lid " << lids[i] << " (hole below it after crash)";
    uint32_t m = journal_.MaintainerFor(lids[i]);
    CHARIOTS_RETURN_IF_ERROR(maintainers_[m]->Remove(lids[i]));
  }
  lids.resize(straggler_start);

  // 4. Replay the surviving records: rebuild GC metadata + index for all
  //    of them, replica clocks only for those past the checkpoint, and the
  //    sender buffer for local records.
  meta_base_ = ckpt_horizon;
  gc_horizon_.store(ckpt_horizon);
  next_toid_.store(ckpt_next_toid);
  bool local_base_set = false;
  uint64_t replayed = 0;
  for (flstore::LId lid : lids) {
    if (lid < ckpt_horizon) continue;  // partially-GC'd cold segment
    uint32_t m = journal_.MaintainerFor(lid);
    CHARIOTS_ASSIGN_OR_RETURN(flstore::LogRecord log_record,
                              maintainers_[m]->Read(lid));
    CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record, FromLogRecord(log_record));
    lid_meta_.emplace_back(record.host, record.toid);
    if (toid_to_lid_[record.host].empty()) {
      toid_base_[record.host] = record.toid;
    }
    toid_to_lid_[record.host].push_back(lid);
    indexer_.AddRecord(log_record, lid);
    if (lid >= ckpt_next_lid) {
      atable_.Advance(config_.dc_id, record.host, record.toid);
      ++replayed;
      if (record.host == config_.dc_id) {
        TOId expected =
            next_toid_.load(std::memory_order_relaxed);
        if (record.toid > expected) next_toid_.store(record.toid);
      }
    }
    if (record.host == config_.dc_id) {
      if (!local_base_set) {
        local_buffer_.SetBase(record.toid);
        local_base_set = true;
      }
      local_buffer_.Put(record.toid, EncodeGeoRecord(record));
    }
  }

  if (!local_base_set) {
    // No local records survive (all GC'd or none ever): the buffer starts
    // at the next local TOId to be handed out.
    local_buffer_.SetBase(next_toid_.load(std::memory_order_relaxed) + 1);
  }

  // 5. Seed the token and head from the recovered prefix.
  token_.max_toid = atable_.KnowledgeVector();
  token_.next_lid = resume_lid;
  head_lid_.store(resume_lid, std::memory_order_release);
  incorporated_.store(replayed);
  if (!lids.empty() || ckpt_next_lid > 0) {
    LOG_INFO << "dc" << config_.dc_id << ": recovered " << lids.size()
             << " records; log resumes at lid " << resume_lid
             << ", next local toid "
             << next_toid_.load(std::memory_order_relaxed) + 1;
  }
  return Status::OK();
}

void Datacenter::DeliverToFilter(uint32_t filter_id,
                                 std::vector<GeoRecord> batch) {
  if (filter_id >= filter_count_.load(std::memory_order_acquire)) return;
  FilterStage* stage = filters_[filter_id].get();
  // Producer-helps-consumer backpressure: executor tasks must never block,
  // so on a full inbox the producer drains the stage inline (serialized by
  // the strand gate) instead of waiting for a worker. The backlog moves to
  // the unbounded GeoQueues, where max_pipeline_pending admission control
  // sheds load.
  const size_t batch_records = batch.size();
  while (!stage->inbox->TryPush(&batch)) {
    if (stage->inbox->closed()) return;
    stage->gate.Run([this, stage] { DrainFilter(stage); });
  }
  flightrec::Record(flightrec::EventType::kQueueEnq,
                    static_cast<uint16_t>(filter_id), config_.dc_id,
                    stage->inbox->ApproxSize(), batch_records);
  ScheduleFilterDrain(stage);
}

void Datacenter::ScheduleFilterDrain(FilterStage* stage) {
  // Collapse concurrent wakeups: one strand task drains everything queued.
  if (stage->drain_scheduled.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  executor_->Submit(stage->gate.Wrap([this, stage] {
    // Cleared before draining: a batch arriving mid-drain schedules a fresh
    // task rather than being lost.
    stage->drain_scheduled.store(false, std::memory_order_release);
    DrainFilter(stage);
  }));
}

void Datacenter::DrainFilter(FilterStage* stage) {
  // Drain the whole inbox under one lock acquisition and hand the filter a
  // single merged batch — one wakeup and one Accept per backlog instead of
  // one per enqueued batch.
  std::vector<std::vector<GeoRecord>> batches;
  while (stage->inbox->TryPopAll(&batches) > 0) {
    size_t popped = 0;
    for (const auto& b : batches) popped += b.size();
    flightrec::Record(flightrec::EventType::kQueueDeq,
                      static_cast<uint16_t>(stage->filter->id()),
                      config_.dc_id, stage->inbox->ApproxSize(), popped);
    if (batches.size() == 1) {
      stage->filter->Accept(std::move(batches.front()));
    } else {
      size_t total = popped;
      std::vector<GeoRecord> merged;
      merged.reserve(total);
      for (auto& b : batches) {
        merged.insert(merged.end(), std::make_move_iterator(b.begin()),
                      std::make_move_iterator(b.end()));
      }
      stage->filter->Accept(std::move(merged));
    }
    batches.clear();
  }
}

void Datacenter::TokenStep() {
  size_t appended = 0;
  size_t n = queue_count_.load(std::memory_order_acquire);
  for (size_t q = 0; q < n; ++q) {
    appended += queues_[q]->ProcessToken(&token_);
    head_lid_.store(token_.next_lid, std::memory_order_release);
  }
  token_deferred_.store(token_.deferred.size(), std::memory_order_relaxed);
  if (appended == 0) {
    if (!running_.load(std::memory_order_relaxed)) {
      // Drain check: stop once no queue has pending input. Records still
      // deferred in the token have unsatisfiable dependencies (nothing new
      // is coming) and are abandoned, matching a shutdown mid-replication.
      bool idle = true;
      for (size_t q = 0; q < n; ++q) {
        idle = idle && queues_[q]->pending() == 0;
      }
      if (idle) {
        token_done_->CountDown();
        return;
      }
    }
    // Idle: poll again in 100µs instead of monopolizing a worker.
    Executor::TimerToken t = executor_->ScheduleAfter(
        100'000, token_gate_.Wrap([this] { TokenStep(); }));
    if (!t.valid()) token_done_->CountDown();  // executor shutting down
    return;
  }
  // Work is flowing: continue immediately (yield the worker between steps).
  if (!executor_->Submit(token_gate_.Wrap([this] { TokenStep(); }))) {
    token_done_->CountDown();
  }
}

void Datacenter::RouteToMaintainer(uint32_t maintainer_index,
                                   GeoRecord record) {
  flstore::LogRecord log_record = ToLogRecord(record);
  Status s;
  {
    metrics::ScopedLatencyTimer timer(maintainer_append_hist_);
    s = maintainers_[maintainer_index]->AppendAt(record.lid, log_record);
  }
  if (!s.ok()) {
    LOG_ERROR << "dc" << config_.dc_id << ": AppendAt(" << record.lid
              << ") failed: " << s.ToString();
    return;
  }
  record.trace.AddHop("maintainer", config_.dc_id);
  indexer_.AddRecord(log_record, record.lid);
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    lid_meta_.emplace_back(record.host, record.toid);
    if (toid_to_lid_[record.host].empty()) {
      toid_base_[record.host] = record.toid;
    }
    toid_to_lid_[record.host].push_back(record.lid);
  }
  // The token assigns consecutive LIds and routes synchronously in
  // assignment order, so once `lid` is persisted the whole prefix is.
  head_lid_.store(record.lid + 1, std::memory_order_release);
  atable_.Advance(config_.dc_id, record.host, record.toid);
  incorporated_.fetch_add(1, std::memory_order_relaxed);
  incorporated_counter_->Add();
  // Subscribers run before the append acknowledgment, so "append returned"
  // implies every subscriber has seen the record.
  for (const auto& subscriber : subscribers_) subscriber(record);
  if (record.host == config_.dc_id) {
    // The sender hop is stamped before encoding so the replicated copy
    // carries the full local pipeline history to the remote datacenter.
    record.trace.AddHop("sender", config_.dc_id);
    local_buffer_.Put(record.toid, EncodeGeoRecord(record));
    if (record.trace.active()) {
      trace::TraceSink::Default().Record(std::move(record.trace));
    }
    if (record.on_committed) record.on_committed(record.toid, record.lid);
  } else {
    record.trace.AddHop("incorporated", config_.dc_id);
    if (record.trace.active()) {
      trace::TraceSink::Default().Record(std::move(record.trace));
    }
  }
  {
    // Taking the lock orders this notify with the waiter's predicate check.
    std::lock_guard<std::mutex> lock(wait_mu_);
  }
  wait_cv_.notify_all();
}

void Datacenter::SubmitToBatcher(GeoRecord record) {
  record.trace.AddHop("batcher", config_.dc_id);
  uint64_t i = batcher_rr_.fetch_add(1, std::memory_order_relaxed);
  size_t n = batcher_count_.load(std::memory_order_acquire);
  batchers_[i % n]->Submit(std::move(record));
}

size_t Datacenter::PipelinePending() const {
  // Backlog lives in two places: the queues' own buffers, and records the
  // token deferred because their causal dependencies are not satisfied yet
  // (during a partition that is where the pile-up happens).
  size_t pending = token_deferred_.load(std::memory_order_relaxed);
  size_t n = queue_count_.load(std::memory_order_acquire);
  for (size_t q = 0; q < n; ++q) pending += queues_[q]->pending();
  return pending;
}

bool Datacenter::Congested() const {
  return PipelinePending() > config_.max_pipeline_pending;
}

TOId Datacenter::Append(std::string body, std::vector<flstore::Tag> tags,
                        DepVector deps,
                        std::function<void(TOId, flstore::LId)> on_committed,
                        trace::TraceContext client_trace) {
  GeoRecord record;
  record.host = config_.dc_id;
  record.toid = next_toid_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.body = std::move(body);
  record.tags = std::move(tags);
  record.deps = std::move(deps);
  record.deps.resize(config_.num_datacenters, 0);
  record.on_committed = std::move(on_committed);
  record.trace = std::move(client_trace);
  if (!record.trace.active() &&
      trace::ShouldSample(record.toid, config_.trace_sample_every)) {
    record.trace.trace_id = trace::MakeTraceId(config_.dc_id, record.toid);
  }
  record.trace.AddHop("client", config_.dc_id);
  appends_counter_->Add();
  TOId toid = record.toid;
  SubmitToBatcher(std::move(record));
  return toid;
}

Result<TOId> Datacenter::TryAppend(
    std::string body, std::vector<flstore::Tag> tags, DepVector deps,
    std::function<void(TOId, flstore::LId)> on_committed,
    trace::TraceContext client_trace) {
  // Check admission before consuming a TOId: a refused append must leave no
  // trace, or the TOId sequence would grow holes that never fill.
  if (Congested()) {
    appends_refused_.fetch_add(1, std::memory_order_relaxed);
    refused_counter_->Add();
    return Status::Unavailable("pipeline congested; retry with backoff");
  }
  return Append(std::move(body), std::move(tags), std::move(deps),
                std::move(on_committed), std::move(client_trace));
}

Result<GeoRecord> Datacenter::Read(flstore::LId lid) const {
  uint32_t m = journal_.MaintainerFor(lid);
  CHARIOTS_ASSIGN_OR_RETURN(flstore::LogRecord log_record,
                            maintainers_[m]->Read(lid));
  return FromLogRecord(log_record);
}

flstore::LId Datacenter::HeadLid() const {
  return head_lid_.load(std::memory_order_acquire);
}

std::vector<GeoRecord> Datacenter::ReadRange(flstore::LId from,
                                             size_t limit) const {
  std::vector<GeoRecord> out;
  flstore::LId head = HeadLid();
  for (flstore::LId lid = from; lid < head && out.size() < limit; ++lid) {
    Result<GeoRecord> r = Read(lid);
    if (r.ok()) out.push_back(std::move(r).value());
  }
  return out;
}

std::vector<flstore::Posting> Datacenter::Lookup(
    const flstore::IndexQuery& query) const {
  return indexer_.Lookup(query);
}

Result<GeoRecord> Datacenter::ReadByToid(DatacenterId host,
                                         TOId toid) const {
  if (host >= config_.num_datacenters || toid == 0) {
    return Status::InvalidArgument("bad (host, toid)");
  }
  flstore::LId lid;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    if (toid < toid_base_[host]) {
      return Status::NotFound("record garbage collected");
    }
    size_t idx = toid - toid_base_[host];
    if (idx >= toid_to_lid_[host].size()) {
      return Status::NotFound("record not incorporated yet");
    }
    lid = toid_to_lid_[host][idx];
  }
  return Read(lid);
}

std::vector<TOId> Datacenter::IncorporatedVector() const {
  return atable_.KnowledgeVector();
}

bool Datacenter::WaitForToid(DatacenterId dc, TOId toid,
                             int64_t timeout_nanos) const {
  std::unique_lock<std::mutex> lock(wait_mu_);
  return wait_cv_.wait_for(lock, std::chrono::nanoseconds(timeout_nanos),
                           [&] {
                             return atable_.Get(config_.dc_id, dc) >= toid;
                           });
}

Datacenter::Stats Datacenter::GetStats() const {
  Stats stats;
  stats.appends_local = next_toid_.load();
  stats.records_incorporated = incorporated_.load();
  size_t nb = batcher_count_.load(std::memory_order_acquire);
  for (size_t b = 0; b < nb; ++b) {
    stats.batcher_records_in += batchers_[b]->records_in();
    stats.batches_flushed += batchers_[b]->batches_out();
  }
  size_t nf = filter_count_.load(std::memory_order_acquire);
  for (size_t f = 0; f < nf; ++f) {
    stats.filter_forwarded += filters_[f]->filter->forwarded();
    stats.filter_duplicates += filters_[f]->filter->duplicates_dropped();
    stats.filter_buffered += filters_[f]->filter->buffered();
  }
  size_t nq = queue_count_.load(std::memory_order_acquire);
  for (size_t q = 0; q < nq; ++q) {
    stats.queue_duplicates += queues_[q]->duplicates_dropped();
  }
  for (const auto& s : senders_) {
    stats.records_sent += s->records_sent();
    stats.batches_sent += s->batches_sent();
    stats.sender_rewinds += s->rewinds();
  }
  if (receiver_ != nullptr) {
    stats.records_received = receiver_->records_received();
    stats.records_deduped = receiver_->records_deduped();
    stats.records_shed = receiver_->records_shed();
  }
  stats.appends_refused = appends_refused_.load(std::memory_order_relaxed);
  stats.index_postings = indexer_.posting_count();
  stats.head_lid = HeadLid();
  stats.gc_horizon = gc_horizon_.load();
  return stats;
}

std::string Datacenter::DebugString() const {
  Stats s = GetStats();
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "dc%u stats:\n", config_.dc_id);
  out += line;
  auto row = [&](const char* name, uint64_t value) {
    std::snprintf(line, sizeof(line), "  %-22s %llu\n", name,
                  static_cast<unsigned long long>(value));
    out += line;
  };
  row("appends_local", s.appends_local);
  row("records_incorporated", s.records_incorporated);
  row("batcher_records_in", s.batcher_records_in);
  row("batches_flushed", s.batches_flushed);
  row("filter_forwarded", s.filter_forwarded);
  row("filter_duplicates", s.filter_duplicates);
  row("filter_buffered", s.filter_buffered);
  row("queue_duplicates", s.queue_duplicates);
  row("records_sent", s.records_sent);
  row("batches_sent", s.batches_sent);
  row("sender_rewinds", s.sender_rewinds);
  row("records_received", s.records_received);
  row("records_deduped", s.records_deduped);
  row("records_shed", s.records_shed);
  row("appends_refused", s.appends_refused);
  row("index_postings", s.index_postings);
  row("head_lid", s.head_lid);
  row("gc_horizon", s.gc_horizon);
  return out;
}

void Datacenter::RegisterWatchdogProbes(Watchdog* wd) {
  std::string prefix = "dc" + std::to_string(config_.dc_id) + ".";
  size_t n = filter_count_.load(std::memory_order_acquire);
  for (size_t f = 0; f < n; ++f) {
    BoundedQueue<std::vector<GeoRecord>>* inbox = filters_[f]->inbox.get();
    // Depth is measured in batches (what the queue holds), matching the
    // inbox_depth gauge.
    wd->AddQueueProbe(prefix + "filter" + std::to_string(f) + ".inbox",
                      [inbox] { return inbox->ApproxSize(); },
                      config_.stage_queue_capacity);
  }
  wd->AddQueueProbe(prefix + "pipeline_pending",
                    [this] { return static_cast<uint64_t>(PipelinePending()); },
                    config_.max_pipeline_pending);
}

Status Datacenter::SplitFilterChampionship(DatacenterId host, TOId from_toid,
                                           std::vector<uint32_t> filters) {
  for (uint32_t f : filters) {
    if (f >= kMaxFilters) {
      return Status::InvalidArgument("filter id beyond reserved capacity");
    }
    // Grow the filter stage if the reassignment references new filters.
    while (f >= filters_.size()) {
      auto stage = std::make_unique<FilterStage>();
      stage->inbox = std::make_unique<BoundedQueue<std::vector<GeoRecord>>>(
          config_.stage_queue_capacity);
      uint32_t id = static_cast<uint32_t>(filters_.size());
      stage->filter = std::make_unique<Filter>(
          id, &filter_map_, [this](GeoRecord r) {
            r.trace.AddHop("filter", config_.dc_id);
            uint64_t i = queue_rr_.fetch_add(1, std::memory_order_relaxed);
            queues_[i % queues_.size()]->Enqueue(std::move(r));
          });
      filters_.push_back(std::move(stage));
      // No thread to start: the stage's drain strand is scheduled on demand
      // when the first batch arrives.
      filter_count_.store(filters_.size(), std::memory_order_release);
    }
  }
  return filter_map_.Reassign(host, from_toid, std::move(filters));
}

Status Datacenter::AddBatcher() {
  if (batchers_.size() >= kMaxBatchers) {
    return Status::ResourceExhausted("batcher capacity reached");
  }
  batchers_.push_back(std::make_unique<Batcher>(
      &filter_map_, config_.batcher_flush_records,
      config_.batcher_flush_nanos,
      [this](uint32_t filter_id, std::vector<GeoRecord> batch) {
        DeliverToFilter(filter_id, std::move(batch));
      },
      executor_));
  batchers_.back()->Start();
  batcher_count_.store(batchers_.size(), std::memory_order_release);
  return Status::OK();
}

Status Datacenter::AddQueue() {
  if (queues_.size() >= kMaxQueues) {
    return Status::ResourceExhausted("queue capacity reached");
  }
  uint32_t id = static_cast<uint32_t>(queues_.size());
  queues_.push_back(std::make_unique<GeoQueue>(
      id, &journal_, [this](uint32_t m, GeoRecord r) {
        r.trace.AddHop("queue", config_.dc_id);
        RouteToMaintainer(m, std::move(r));
      }));
  // Publishing the count both inserts the queue into the token circulation
  // and lets filters start routing records to it.
  queue_count_.store(queues_.size(), std::memory_order_release);
  return Status::OK();
}

size_t Datacenter::num_batchers() const {
  return batcher_count_.load(std::memory_order_acquire);
}

size_t Datacenter::num_queues() const {
  return queue_count_.load(std::memory_order_acquire);
}

Status Datacenter::RunGcOnce() {
  flstore::LId horizon;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    horizon = gc_horizon_.load();
    while (!lid_meta_.empty() && horizon >= meta_base_ &&
           horizon - meta_base_ < lid_meta_.size()) {
      auto [host, toid] = lid_meta_[horizon - meta_base_];
      if (!atable_.GcEligible(host, toid)) break;
      ++horizon;
    }
    // Drop metadata below the new horizon. Per-host TOId order respects
    // lid order, so each dropped record is the front of its host's
    // toid->lid map.
    while (meta_base_ < horizon && !lid_meta_.empty()) {
      auto [host, toid] = lid_meta_.front();
      (void)toid;
      if (!toid_to_lid_[host].empty()) {
        toid_to_lid_[host].pop_front();
        ++toid_base_[host];
      }
      lid_meta_.pop_front();
      ++meta_base_;
    }
    gc_horizon_.store(horizon);
  }
  // Checkpoint before truncating: the checkpoint carries the state below
  // the horizon that the truncated records can no longer replay.
  CHARIOTS_RETURN_IF_ERROR(WriteCheckpoint());
  for (auto& m : maintainers_) {
    CHARIOTS_RETURN_IF_ERROR(
        m->TruncateBelow(horizon, config_.gc_archive_path));
  }
  indexer_.TruncateBelow(horizon);
  // Local records everyone has can leave the send buffer.
  local_buffer_.TruncateBelow(atable_.GlobalFloor(config_.dc_id) + 1);
  return Status::OK();
}

}  // namespace chariots::geo
