#include "chariots/read_rules.h"

#include "chariots/datacenter.h"

namespace chariots::geo {

Result<std::vector<GeoRecord>> ReadWithRules(const Datacenter& dc,
                                             const ReadRules& rules) {
  int selectors = (rules.lid.has_value() ? 1 : 0) +
                  (rules.lid_range.has_value() ? 1 : 0) +
                  (rules.host.has_value() || rules.toid.has_value() ? 1 : 0) +
                  (rules.tag.has_value() ? 1 : 0);
  if (selectors != 1) {
    return Status::InvalidArgument(
        "rules must name exactly one selector (lid, lid_range, host+toid, "
        "or tag)");
  }

  std::vector<GeoRecord> out;
  if (rules.lid) {
    CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record, dc.Read(*rules.lid));
    out.push_back(std::move(record));
    return out;
  }

  if (rules.lid_range) {
    auto [first, last] = *rules.lid_range;
    if (first > last) {
      return Status::InvalidArgument("lid_range first > last");
    }
    flstore::LId stop = std::min<flstore::LId>(last, dc.HeadLid());
    for (flstore::LId lid = first;
         lid < stop && out.size() < rules.limit; ++lid) {
      Result<GeoRecord> record = dc.Read(lid);
      if (record.ok()) out.push_back(std::move(record).value());
    }
    return out;
  }

  if (rules.host || rules.toid) {
    if (!rules.host || !rules.toid) {
      return Status::InvalidArgument("host and toid must be set together");
    }
    CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record,
                              dc.ReadByToid(*rules.host, *rules.toid));
    out.push_back(std::move(record));
    return out;
  }

  flstore::IndexQuery query;
  query.key = *rules.tag;
  query.value_equals = rules.tag_value_equals;
  query.value_min = rules.tag_value_min;
  query.value_max = rules.tag_value_max;
  query.before_lid =
      rules.before_lid == flstore::kInvalidLId ? dc.HeadLid()
                                               : rules.before_lid;
  query.limit = rules.limit;
  for (const flstore::Posting& posting : dc.Lookup(query)) {
    Result<GeoRecord> record = dc.Read(posting.lid);
    if (record.ok()) out.push_back(std::move(record).value());
  }
  return out;
}

}  // namespace chariots::geo
