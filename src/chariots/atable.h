#ifndef CHARIOTS_CHARIOTS_ATABLE_H_
#define CHARIOTS_CHARIOTS_ATABLE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "chariots/record.h"
#include "common/result.h"

namespace chariots::geo {

/// The Awareness Table (paper §6.1, after the Replicated Dictionary): an
/// n×n matrix per datacenter. At datacenter A, entry T[B][C] is a TOId t
/// meaning "A is certain B has incorporated all of C's records up to t".
///
/// Row `self` is the local knowledge vector (what this DC has incorporated);
/// other rows are learned from propagation and advance monotonically.
/// Thread-safe.
class AwarenessTable {
 public:
  AwarenessTable(uint32_t num_datacenters, DatacenterId self);

  /// Movable (fresh mutex); not copyable or move-assignable.
  AwarenessTable(AwarenessTable&& other) noexcept;
  AwarenessTable(const AwarenessTable&) = delete;
  AwarenessTable& operator=(const AwarenessTable&) = delete;
  AwarenessTable& operator=(AwarenessTable&&) = delete;

  uint32_t size() const { return n_; }
  DatacenterId self() const { return self_; }

  /// T[row][col].
  TOId Get(DatacenterId row, DatacenterId col) const;

  /// Advances T[row][col] to at least `toid`.
  void Advance(DatacenterId row, DatacenterId col, TOId toid);

  /// This DC's knowledge vector (row self).
  std::vector<TOId> KnowledgeVector() const;

  /// Element-wise max merge with a peer's whole table (transitive knowledge:
  /// what the peer knows about everyone's awareness).
  void Merge(const AwarenessTable& other);
  Status MergeEncoded(std::string_view encoded);

  /// Garbage-collection rule (paper §6.1): a record r hosted at `host` with
  /// TOId `toid` may be collected iff every datacenter is known to have it:
  /// ∀j: T[j][host] ≥ toid.
  bool GcEligible(DatacenterId host, TOId toid) const;

  /// Min over rows of T[row][col]: the TOId of `col` that everyone is known
  /// to have reached.
  TOId GlobalFloor(DatacenterId col) const;

  std::string Encode() const;
  static Result<AwarenessTable> Decode(std::string_view data);

 private:
  uint32_t n_;
  DatacenterId self_;
  mutable std::mutex mu_;
  std::vector<std::vector<TOId>> t_;
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_ATABLE_H_
