#ifndef CHARIOTS_CHARIOTS_BATCHER_H_
#define CHARIOTS_CHARIOTS_BATCHER_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chariots/filter_map.h"
#include "chariots/record.h"
#include "common/clock.h"
#include "common/executor.h"

namespace chariots::geo {

/// A batcher (paper §6.2): buffers records received locally or from remote
/// datacenters, one buffer per destination filter, and flushes a buffer to
/// its filter when it reaches the size threshold (or on a timer so sparse
/// traffic is not delayed indefinitely). Batchers are completely independent
/// of each other — adding one requires no coordination. The flush timer is a
/// periodic task on the shared executor, not a dedicated thread.
class Batcher {
 public:
  /// Delivers a flushed batch to filter `filter_id`.
  using FlushFn =
      std::function<void(uint32_t filter_id, std::vector<GeoRecord> batch)>;

  Batcher(const FilterMap* filter_map, size_t flush_records,
          int64_t flush_interval_nanos, FlushFn flush,
          Executor* executor = nullptr);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Starts the background flush timer.
  void Start();

  /// Flushes everything and stops the timer.
  void Stop();

  /// Routes `record` into the buffer of its championing filter; flushes
  /// that buffer if it reached the threshold.
  void Submit(GeoRecord record);

  /// Forces all buffers out immediately.
  void FlushAll();

  uint64_t records_in() const { return records_in_.load(); }
  uint64_t batches_out() const { return batches_out_.load(); }

 private:
  void FlushLocked(uint32_t filter_id);

  const FilterMap* const filter_map_;
  const size_t flush_records_;
  const int64_t flush_interval_nanos_;
  FlushFn flush_;
  Executor* const executor_;

  std::mutex mu_;
  std::unordered_map<uint32_t, std::vector<GeoRecord>> buffers_;
  std::atomic<bool> stop_{true};
  Executor::TimerToken timer_token_;
  std::atomic<uint64_t> records_in_{0};
  std::atomic<uint64_t> batches_out_{0};
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_BATCHER_H_
