#include "chariots/atable.h"

#include <algorithm>

#include "common/codec.h"

namespace chariots::geo {

AwarenessTable::AwarenessTable(uint32_t num_datacenters, DatacenterId self)
    : n_(num_datacenters),
      self_(self),
      t_(num_datacenters, std::vector<TOId>(num_datacenters, 0)) {}

AwarenessTable::AwarenessTable(AwarenessTable&& other) noexcept
    : n_(other.n_), self_(other.self_) {
  std::lock_guard<std::mutex> lock(other.mu_);
  t_ = std::move(other.t_);
}

TOId AwarenessTable::Get(DatacenterId row, DatacenterId col) const {
  std::lock_guard<std::mutex> lock(mu_);
  return t_[row][col];
}

void AwarenessTable::Advance(DatacenterId row, DatacenterId col, TOId toid) {
  std::lock_guard<std::mutex> lock(mu_);
  t_[row][col] = std::max(t_[row][col], toid);
}

std::vector<TOId> AwarenessTable::KnowledgeVector() const {
  std::lock_guard<std::mutex> lock(mu_);
  return t_[self_];
}

void AwarenessTable::Merge(const AwarenessTable& other) {
  std::vector<std::vector<TOId>> snapshot;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    snapshot = other.t_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t i = 0; i < n_ && i < snapshot.size(); ++i) {
    for (uint32_t j = 0; j < n_ && j < snapshot[i].size(); ++j) {
      t_[i][j] = std::max(t_[i][j], snapshot[i][j]);
    }
  }
}

Status AwarenessTable::MergeEncoded(std::string_view encoded) {
  CHARIOTS_ASSIGN_OR_RETURN(AwarenessTable other, Decode(encoded));
  Merge(other);
  return Status::OK();
}

bool AwarenessTable::GcEligible(DatacenterId host, TOId toid) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t j = 0; j < n_; ++j) {
    if (t_[j][host] < toid) return false;
  }
  return true;
}

TOId AwarenessTable::GlobalFloor(DatacenterId col) const {
  std::lock_guard<std::mutex> lock(mu_);
  TOId floor = t_[0][col];
  for (uint32_t j = 1; j < n_; ++j) floor = std::min(floor, t_[j][col]);
  return floor;
}

std::string AwarenessTable::Encode() const {
  std::lock_guard<std::mutex> lock(mu_);
  BinaryWriter w;
  w.PutU32(n_);
  w.PutU32(self_);
  for (const auto& row : t_) {
    for (TOId v : row) w.PutU64(v);
  }
  return std::move(w).data();
}

Result<AwarenessTable> AwarenessTable::Decode(std::string_view data) {
  BinaryReader r(data);
  uint32_t n = 0, self = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&self));
  if (n == 0 || self >= n ||
      r.remaining() < static_cast<size_t>(n) * n * 8) {
    return Status::Corruption("bad awareness table encoding");
  }
  AwarenessTable table(n, self);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      CHARIOTS_RETURN_IF_ERROR(r.GetU64(&table.t_[i][j]));
    }
  }
  return table;
}

}  // namespace chariots::geo
