#ifndef CHARIOTS_CHARIOTS_GEO_SERVICE_H_
#define CHARIOTS_CHARIOTS_GEO_SERVICE_H_

#include <atomic>
#include <string>
#include <vector>

#include "chariots/datacenter.h"
#include "common/watchdog.h"
#include "net/rpc.h"

namespace chariots::geo {

/// RPC opcodes for the datacenter's client-facing service. (Replication
/// between datacenters uses the fabric directly; these opcodes are for
/// application clients running outside the datacenter process.)
enum GeoOpcode : uint16_t {
  kGeoAppend = 50,     ///< body + tags + deps -> toid + lid (waits durable)
  kGeoRead = 51,       ///< u64 lid -> encoded GeoRecord + lid
  kGeoHead = 52,       ///< () -> u64 head lid
  kGeoLookup = 53,     ///< IndexQuery -> postings
  kGeoReadByToid = 54, ///< u32 host + u64 toid -> encoded GeoRecord + lid
  kGeoMetrics = 55,    ///< () -> process metrics snapshot as JSON
  kGeoTrace = 56,      ///< optional u8 mode -> traces (0/empty = JSON,
                       ///< 1 = per-record critical-path text)
  /// Batched range read: u64 from + u32 limit -> u32 n + n × (record +
  /// lid). N sequential reads cost one round trip instead of N.
  kGeoReadRange = 57,
  /// () -> health-report JSON: one on-demand watchdog tick over the
  /// datacenter's pipeline probes (filter inboxes, pending backlog).
  kGeoHealth = 58,
  /// u8 mode -> raw flight-recorder dump (0/empty = live snapshot, 1 = the
  /// snapshot taken at the last watchdog breach; kNotFound if none).
  kGeoFlightRec = 59,
};

/// Observability knobs for GeoServer (all default-off, preserving existing
/// deployments byte for byte).
struct GeoServerOptions {
  /// Health-watchdog tick period (0 = on-demand via kGeoHealth only).
  int64_t watchdog_interval_nanos = 0;
  /// Executor for the periodic watchdog tick (null = Executor::Default()).
  Executor* executor = nullptr;
  /// Clock for health-report timestamps (null = system).
  Clock* clock = nullptr;
  /// Breach-hook dump destination ("" = in-memory snapshot only).
  std::string breach_dump_path;
};

/// Hosts a Datacenter's client API on the RPC fabric, so application
/// clients can run as separate processes (see tools/chariots_node
/// --role=datacenter).
class GeoServer {
 public:
  /// `node` is this server's address (e.g. "geo/dc0/api").
  GeoServer(net::Transport* transport, net::NodeId node, Datacenter* dc,
            GeoServerOptions options = {});
  ~GeoServer();

  Status Start();
  void Stop();

  Watchdog& watchdog() { return watchdog_; }

  /// Flight-recorder snapshot taken at the last watchdog breach ("" if no
  /// breach has fired).
  std::string LastBreachDump() const;

 private:
  Watchdog::Options WatchdogConfig(const net::NodeId& node);
  void OnWatchdogBreach(const HealthReport& report);

  Datacenter* const dc_;
  GeoServerOptions options_;
  net::RpcEndpoint endpoint_;
  Watchdog watchdog_;
  mutable std::mutex dump_mu_;
  std::string last_breach_dump_;
};

/// Remote-process counterpart of ChariotsClient: the same append/read
/// interface with causal dependency tracking, over RPC.
class GeoRpcClient {
 public:
  GeoRpcClient(net::Transport* transport, net::NodeId node,
               net::NodeId server);
  ~GeoRpcClient();

  Status Start();
  void Stop();

  /// Appends and waits until durable at the datacenter; returns
  /// (toid, lid). The session's causal dependencies ride along.
  Result<std::pair<TOId, flstore::LId>> Append(
      std::string body, std::vector<flstore::Tag> tags = {});

  /// Reads by local position, absorbing causal dependencies.
  Result<GeoRecord> Read(flstore::LId lid);

  /// Reads by replication identity.
  Result<GeoRecord> ReadByToid(DatacenterId host, TOId toid);

  Result<flstore::LId> Head();

  Result<std::vector<flstore::Posting>> Lookup(
      const flstore::IndexQuery& query);

  /// Batched range read: up to `limit` records in [from, head), in one
  /// round trip, absorbing causal dependencies from every record returned.
  Result<std::vector<GeoRecord>> ReadRange(flstore::LId from, size_t limit);

  /// Most recent record with `tag_key` as of `before_lid` (kInvalidLId =
  /// current head), absorbing causal dependencies.
  Result<GeoRecord> ReadMostRecent(const std::string& tag_key,
                                   flstore::LId before_lid =
                                       flstore::kInvalidLId);

  /// The server process's metrics snapshot, rendered as JSON.
  Result<std::string> Metrics();

  /// The server process's sampled record traces, rendered as JSON.
  Result<std::string> Trace();

  /// The server process's sampled traces as per-record critical-path
  /// breakdowns (one RenderCriticalPath block per trace).
  Result<std::string> TraceCriticalPath();

  /// One on-demand watchdog tick at the server, as health-report JSON.
  Result<std::string> Health();

  /// Raw flight-recorder dump bytes from the server process (decode with
  /// flightrec::Recorder::Decode). Mode 1 asks for the snapshot taken at
  /// the last watchdog breach instead of a live one.
  Result<std::string> FlightRec(uint8_t mode = 0);

 private:
  void Absorb(const GeoRecord& record);

  net::RpcEndpoint endpoint_;
  const net::NodeId server_;
  std::mutex mu_;
  DepVector deps_;
  /// Client-side append sequence, used only to decide which appends start a
  /// sampled trace (every 1024th, plus the first).
  std::atomic<uint64_t> append_seq_{0};
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_GEO_SERVICE_H_
