#ifndef CHARIOTS_CHARIOTS_GEO_SERVICE_H_
#define CHARIOTS_CHARIOTS_GEO_SERVICE_H_

#include <atomic>
#include <string>
#include <vector>

#include "chariots/datacenter.h"
#include "net/rpc.h"

namespace chariots::geo {

/// RPC opcodes for the datacenter's client-facing service. (Replication
/// between datacenters uses the fabric directly; these opcodes are for
/// application clients running outside the datacenter process.)
enum GeoOpcode : uint16_t {
  kGeoAppend = 50,     ///< body + tags + deps -> toid + lid (waits durable)
  kGeoRead = 51,       ///< u64 lid -> encoded GeoRecord + lid
  kGeoHead = 52,       ///< () -> u64 head lid
  kGeoLookup = 53,     ///< IndexQuery -> postings
  kGeoReadByToid = 54, ///< u32 host + u64 toid -> encoded GeoRecord + lid
  kGeoMetrics = 55,    ///< () -> process metrics snapshot as JSON
  kGeoTrace = 56,      ///< () -> sampled record traces as JSON
  /// Batched range read: u64 from + u32 limit -> u32 n + n × (record +
  /// lid). N sequential reads cost one round trip instead of N.
  kGeoReadRange = 57,
};

/// Hosts a Datacenter's client API on the RPC fabric, so application
/// clients can run as separate processes (see tools/chariots_node
/// --role=datacenter).
class GeoServer {
 public:
  /// `node` is this server's address (e.g. "geo/dc0/api").
  GeoServer(net::Transport* transport, net::NodeId node, Datacenter* dc);
  ~GeoServer();

  Status Start();
  void Stop();

 private:
  Datacenter* const dc_;
  net::RpcEndpoint endpoint_;
};

/// Remote-process counterpart of ChariotsClient: the same append/read
/// interface with causal dependency tracking, over RPC.
class GeoRpcClient {
 public:
  GeoRpcClient(net::Transport* transport, net::NodeId node,
               net::NodeId server);
  ~GeoRpcClient();

  Status Start();
  void Stop();

  /// Appends and waits until durable at the datacenter; returns
  /// (toid, lid). The session's causal dependencies ride along.
  Result<std::pair<TOId, flstore::LId>> Append(
      std::string body, std::vector<flstore::Tag> tags = {});

  /// Reads by local position, absorbing causal dependencies.
  Result<GeoRecord> Read(flstore::LId lid);

  /// Reads by replication identity.
  Result<GeoRecord> ReadByToid(DatacenterId host, TOId toid);

  Result<flstore::LId> Head();

  Result<std::vector<flstore::Posting>> Lookup(
      const flstore::IndexQuery& query);

  /// Batched range read: up to `limit` records in [from, head), in one
  /// round trip, absorbing causal dependencies from every record returned.
  Result<std::vector<GeoRecord>> ReadRange(flstore::LId from, size_t limit);

  /// Most recent record with `tag_key` as of `before_lid` (kInvalidLId =
  /// current head), absorbing causal dependencies.
  Result<GeoRecord> ReadMostRecent(const std::string& tag_key,
                                   flstore::LId before_lid =
                                       flstore::kInvalidLId);

  /// The server process's metrics snapshot, rendered as JSON.
  Result<std::string> Metrics();

  /// The server process's sampled record traces, rendered as JSON.
  Result<std::string> Trace();

 private:
  void Absorb(const GeoRecord& record);

  net::RpcEndpoint endpoint_;
  const net::NodeId server_;
  std::mutex mu_;
  DepVector deps_;
  /// Client-side append sequence, used only to decide which appends start a
  /// sampled trace (every 1024th, plus the first).
  std::atomic<uint64_t> append_seq_{0};
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_GEO_SERVICE_H_
