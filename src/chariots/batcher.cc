#include "chariots/batcher.h"

namespace chariots::geo {

Batcher::Batcher(const FilterMap* filter_map, size_t flush_records,
                 int64_t flush_interval_nanos, FlushFn flush, Clock* clock)
    : filter_map_(filter_map),
      flush_records_(flush_records),
      flush_interval_nanos_(flush_interval_nanos),
      flush_(std::move(flush)),
      clock_(clock) {}

Batcher::~Batcher() { Stop(); }

void Batcher::Start() {
  bool expected = true;
  if (!stop_.compare_exchange_strong(expected, false)) return;
  timer_ = std::thread([this] { TimerLoop(); });
}

void Batcher::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  if (timer_.joinable()) timer_.join();
  FlushAll();
}

void Batcher::Submit(GeoRecord record) {
  records_in_.fetch_add(1, std::memory_order_relaxed);
  uint32_t filter_id = filter_map_->FilterFor(record.host, record.toid);
  std::vector<GeoRecord> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<GeoRecord>& buf = buffers_[filter_id];
    buf.push_back(std::move(record));
    if (buf.size() < flush_records_) return;
    ready.swap(buf);
  }
  batches_out_.fetch_add(1, std::memory_order_relaxed);
  flush_(filter_id, std::move(ready));
}

void Batcher::FlushAll() {
  std::unordered_map<uint32_t, std::vector<GeoRecord>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(buffers_);
  }
  for (auto& [filter_id, batch] : out) {
    if (batch.empty()) continue;
    batches_out_.fetch_add(1, std::memory_order_relaxed);
    flush_(filter_id, std::move(batch));
  }
}

void Batcher::TimerLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    clock_->SleepFor(flush_interval_nanos_);
    FlushAll();
  }
}

}  // namespace chariots::geo
