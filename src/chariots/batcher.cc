#include "chariots/batcher.h"

#include "common/metrics.h"

namespace chariots::geo {

namespace {

// Stage instruments are process-global (shared by every batcher in every
// in-process datacenter): counters are additive and histograms merge, so no
// per-instance naming is needed. Per-dc gauges live in datacenter.cc.
metrics::Counter* RecordsInCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.batcher.records_in");
  return c;
}

metrics::Counter* BatchesOutCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.batcher.batches_out");
  return c;
}

metrics::Histogram* BatchSizeHist() {
  static metrics::Histogram* h =
      metrics::Registry::Default().GetHistogram("chariots.batcher.batch_size");
  return h;
}

metrics::Histogram* FlushLatencyHist() {
  static metrics::Histogram* h =
      metrics::Registry::Default().GetHistogram("chariots.batcher.flush_ns");
  return h;
}

}  // namespace

Batcher::Batcher(const FilterMap* filter_map, size_t flush_records,
                 int64_t flush_interval_nanos, FlushFn flush,
                 Executor* executor)
    : filter_map_(filter_map),
      flush_records_(flush_records),
      flush_interval_nanos_(flush_interval_nanos),
      flush_(std::move(flush)),
      executor_(executor != nullptr ? executor : Executor::Default()) {}

Batcher::~Batcher() { Stop(); }

void Batcher::Start() {
  bool expected = true;
  if (!stop_.compare_exchange_strong(expected, false)) return;
  // Cancel() in Stop() blocks until an in-flight flush returns, so `this`
  // is safe to capture for the token's lifetime.
  timer_token_ =
      executor_->ScheduleEvery(flush_interval_nanos_, [this] { FlushAll(); });
}

void Batcher::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  timer_token_.Cancel();
  FlushAll();
}

void Batcher::Submit(GeoRecord record) {
  records_in_.fetch_add(1, std::memory_order_relaxed);
  RecordsInCounter()->Add();
  uint32_t filter_id = filter_map_->FilterFor(record.host, record.toid);
  // Flush EVERY buffer at/over threshold, not just this record's: a racing
  // FlushAll (or a flush_ running outside the lock while other Submits keep
  // pushing) can leave several buffers over flush_records_. Loop until this
  // submit observes all buffers below threshold.
  std::vector<std::pair<uint32_t, std::vector<GeoRecord>>> ready;
  bool pushed = false;
  for (;;) {
    ready.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!pushed) {
        buffers_[filter_id].push_back(std::move(record));
        pushed = true;
      }
      for (auto& [id, buf] : buffers_) {
        if (buf.size() >= flush_records_) {
          ready.emplace_back(id, std::move(buf));
          buf.clear();
        }
      }
    }
    if (ready.empty()) return;
    for (auto& [id, batch] : ready) {
      batches_out_.fetch_add(1, std::memory_order_relaxed);
      BatchesOutCounter()->Add();
      BatchSizeHist()->Record(batch.size());
      metrics::ScopedLatencyTimer timer(FlushLatencyHist());
      flush_(id, std::move(batch));
    }
  }
}

void Batcher::FlushAll() {
  std::unordered_map<uint32_t, std::vector<GeoRecord>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(buffers_);
  }
  for (auto& [filter_id, batch] : out) {
    if (batch.empty()) continue;
    batches_out_.fetch_add(1, std::memory_order_relaxed);
    BatchesOutCounter()->Add();
    BatchSizeHist()->Record(batch.size());
    metrics::ScopedLatencyTimer timer(FlushLatencyHist());
    flush_(filter_id, std::move(batch));
  }
}

}  // namespace chariots::geo
