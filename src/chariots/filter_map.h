#ifndef CHARIOTS_CHARIOTS_FILTER_MAP_H_
#define CHARIOTS_CHARIOTS_FILTER_MAP_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "chariots/record.h"
#include "common/status.h"

namespace chariots::geo {

/// Championing assignment for the filters stage (paper §6.2): every record
/// is championed by exactly one filter, determined by its host datacenter
/// and TOId. When there are at least as many datacenters as filters, each
/// filter champions whole datacenters (host mod filters). When there are
/// more filters than datacenters, a datacenter's stream is split across
/// several filters by TOId stride (the paper's odd/even example generalized
/// to modulus classes).
///
/// Live elasticity (§6.3) uses *future reassignment*: a new assignment
/// becomes effective for records with TOId ≥ a transition point, per
/// datacenter, so batchers can switch over without coordination.
class FilterMap {
 public:
  /// Champion shape for one datacenter from some TOId on.
  struct Assignment {
    TOId from_toid = 1;          ///< effective for toid >= from_toid
    std::vector<uint32_t> filters;  ///< filter ids; record goes to
                                    ///< filters[toid % filters.size()]
  };

  FilterMap(uint32_t num_filters, uint32_t num_datacenters);

  /// The filter championing (host, toid).
  uint32_t FilterFor(DatacenterId host, TOId toid) const;

  /// Stride and phase of filter `filter` for `host` at `toid`: the filter
  /// champions toids with toid % stride == phase (within the assignment
  /// containing `toid`). Returns false if the filter does not champion this
  /// host there at all.
  bool StrideFor(uint32_t filter, DatacenterId host, TOId toid,
                 uint64_t* stride, uint64_t* phase) const;

  /// The smallest TOId strictly greater than `after` that `filter`
  /// champions for `host`; 0 if there is none (the filter left the
  /// assignment and no future segment includes it).
  TOId NextChampioned(uint32_t filter, DatacenterId host, TOId after) const;

  /// Future reassignment: records of `host` with TOId >= `from_toid` are
  /// championed by `filters` (modulus split). `from_toid` must be beyond
  /// every previously installed transition for that host.
  Status Reassign(DatacenterId host, TOId from_toid,
                  std::vector<uint32_t> filters);

  uint32_t num_filters() const { return num_filters_; }

 private:
  const Assignment& AssignmentFor(DatacenterId host, TOId toid) const;

  uint32_t num_filters_;
  mutable std::mutex mu_;
  // Per datacenter: assignments sorted by from_toid (first covers toid 1).
  std::vector<std::vector<Assignment>> per_dc_;
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_FILTER_MAP_H_
