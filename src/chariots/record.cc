#include "chariots/record.h"

#include "common/codec.h"
#include "net/message.h"

namespace chariots::geo {

std::string EncodeGeoRecord(const GeoRecord& record) {
  // The record body enters the datapath here, and this serialization is its
  // ONE budgeted copy — every later layer borrows the encoded bytes
  // (chariots.net.copies_per_record audits exactly this).
  net::CountPayloadEntered(record.body.size());
  net::CountPayloadCopied(record.body.size());
  BinaryWriter w;
  w.PutU32(record.host);
  w.PutU64(record.toid);
  w.PutU32(static_cast<uint32_t>(record.deps.size()));
  for (TOId d : record.deps) w.PutU64(d);
  w.PutU32(static_cast<uint32_t>(record.tags.size()));
  for (const flstore::Tag& tag : record.tags) {
    w.PutBytes(tag.key);
    w.PutBytes(tag.value);
  }
  w.PutBytes(record.body);
  // Optional trailing trace: absent entirely for unsampled records, and
  // invisible to decoders that stop after body.
  trace::EncodeTrace(record.trace, &w);
  return std::move(w).data();
}

Result<GeoRecord> DecodeGeoRecord(std::string_view data) {
  BinaryReader r(data);
  GeoRecord record;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&record.host));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&record.toid));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  if (r.remaining() < static_cast<size_t>(n) * 8) {
    return Status::Corruption("record deps truncated");
  }
  record.deps.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&record.deps[i]));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  record.tags.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&record.tags[i].key));
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&record.tags[i].value));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&record.body));
  if (!trace::DecodeTrace(&r, &record.trace)) {
    return Status::Corruption("bad trace trailer in record");
  }
  return record;
}

flstore::LogRecord ToLogRecord(const GeoRecord& record) {
  flstore::LogRecord lr;
  lr.lid = record.lid;
  lr.body = EncodeGeoRecord(record);
  lr.tags = record.tags;
  return lr;
}

Result<GeoRecord> FromLogRecord(const flstore::LogRecord& log_record) {
  CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record,
                            DecodeGeoRecord(log_record.body));
  record.lid = log_record.lid;
  return record;
}

}  // namespace chariots::geo
