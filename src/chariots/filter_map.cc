#include "chariots/filter_map.h"

#include <algorithm>
#include <cassert>

namespace chariots::geo {

FilterMap::FilterMap(uint32_t num_filters, uint32_t num_datacenters)
    : num_filters_(num_filters), per_dc_(num_datacenters) {
  assert(num_filters > 0 && num_datacenters > 0);
  // Default assignment: spread filters over datacenters as evenly as
  // possible. DC d gets the filters f with f % num_datacenters == d when
  // filters > datacenters; otherwise the single filter d % num_filters.
  for (DatacenterId d = 0; d < num_datacenters; ++d) {
    Assignment a;
    a.from_toid = 1;
    if (num_filters <= num_datacenters) {
      a.filters = {d % num_filters};
    } else {
      for (uint32_t f = 0; f < num_filters; ++f) {
        if (f % num_datacenters == d) a.filters.push_back(f);
      }
    }
    per_dc_[d].push_back(std::move(a));
  }
}

const FilterMap::Assignment& FilterMap::AssignmentFor(DatacenterId host,
                                                      TOId toid) const {
  const std::vector<Assignment>& list = per_dc_[host];
  // Last assignment with from_toid <= toid.
  for (auto it = list.rbegin(); it != list.rend(); ++it) {
    if (it->from_toid <= toid) return *it;
  }
  return list.front();
}

uint32_t FilterMap::FilterFor(DatacenterId host, TOId toid) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Assignment& a = AssignmentFor(host, toid);
  return a.filters[toid % a.filters.size()];
}

bool FilterMap::StrideFor(uint32_t filter, DatacenterId host, TOId toid,
                          uint64_t* stride, uint64_t* phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Assignment& a = AssignmentFor(host, toid);
  for (size_t i = 0; i < a.filters.size(); ++i) {
    if (a.filters[i] == filter) {
      *stride = a.filters.size();
      *phase = i;
      return true;
    }
  }
  return false;
}

TOId FilterMap::NextChampioned(uint32_t filter, DatacenterId host,
                               TOId after) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<Assignment>& list = per_dc_[host];
  for (size_t a = 0; a < list.size(); ++a) {
    // Segment [from, to): to = next assignment's from, or unbounded.
    TOId from = list[a].from_toid;
    TOId to = a + 1 < list.size() ? list[a + 1].from_toid : 0;  // 0 = open
    TOId start = std::max(after + 1, from);
    if (to != 0 && start >= to) continue;
    // Find this filter's phase within the segment.
    const std::vector<uint32_t>& filters = list[a].filters;
    for (size_t p = 0; p < filters.size(); ++p) {
      if (filters[p] != filter) continue;
      uint64_t stride = filters.size();
      // Smallest toid >= start with toid % stride == p.
      TOId candidate = start + ((p + stride - start % stride) % stride);
      if (to == 0 || candidate < to) return candidate;
    }
  }
  return 0;
}

Status FilterMap::Reassign(DatacenterId host, TOId from_toid,
                           std::vector<uint32_t> filters) {
  if (host >= per_dc_.size()) {
    return Status::InvalidArgument("unknown datacenter");
  }
  if (filters.empty()) {
    return Status::InvalidArgument("assignment needs at least one filter");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t f : filters) {
    if (f >= num_filters_) {
      // Growing the filter pool: extend the known width.
      num_filters_ = f + 1;
    }
  }
  if (from_toid <= per_dc_[host].back().from_toid) {
    return Status::InvalidArgument(
        "future reassignment must start after the current assignment");
  }
  per_dc_[host].push_back(Assignment{from_toid, std::move(filters)});
  return Status::OK();
}

}  // namespace chariots::geo
