#ifndef CHARIOTS_CHARIOTS_CONFIG_H_
#define CHARIOTS_CHARIOTS_CONFIG_H_

#include <cstdint>
#include <string>

#include "storage/log_store.h"

namespace chariots {
class Executor;
}

namespace chariots::geo {

/// Deployment shape of one datacenter's Chariots pipeline (paper §6.2).
/// Every stage count is independently scalable (live elasticity, §6.3).
struct ChariotsConfig {
  /// This datacenter's id and the size of the replication group.
  uint32_t dc_id = 0;
  uint32_t num_datacenters = 1;

  /// Stage widths.
  uint32_t num_batchers = 1;
  uint32_t num_filters = 1;
  uint32_t num_queues = 1;
  uint32_t num_maintainers = 1;
  uint32_t num_senders = 1;

  /// FLStore striping batch (records per maintainer per round).
  uint64_t stripe_batch = 1000;

  /// Batcher flush policy: flush a filter buffer at this many records or
  /// after this much time, whichever first.
  size_t batcher_flush_records = 64;
  int64_t batcher_flush_nanos = 1'000'000;  // 1 ms

  /// Bounded-queue capacity between stages (backpressure depth).
  size_t stage_queue_capacity = 4096;

  /// Storage mode for the log maintainers. kMemoryOnly by default (benches);
  /// set dir to a base directory to persist (per-maintainer subdirs).
  storage::SyncMode store_mode = storage::SyncMode::kMemoryOnly;
  std::string store_dir;

  /// I/O engine for the maintainer stores; nullptr picks the process
  /// default ($CHARIOTS_IO_ENGINE or sync — see storage/io_engine.h).
  storage::IoEngine* io_engine = nullptr;

  /// Sender batch size (records per replication message) and resend timer.
  size_t sender_batch_records = 256;
  int64_t sender_resend_nanos = 50'000'000;  // 50 ms
  /// Cap for the sender's exponential retransmit backoff (the interval
  /// doubles from sender_resend_nanos on every ack stall, resets on
  /// progress).
  int64_t sender_resend_max_nanos = 1'000'000'000;  // 1 s

  /// Admission bound for the pipeline: once this many records sit in the
  /// queues stage awaiting LId assignment, remote records are shed (the
  /// sender retransmits them) and TryAppend refuses with kUnavailable.
  /// Bounds memory during a partition instead of buffering without limit.
  size_t max_pipeline_pending = 1 << 16;

  /// Garbage collection sweep interval; <= 0 disables the GC thread
  /// (the user may keep the log forever — paper §6.1).
  int64_t gc_interval_nanos = 0;
  /// Optional cold-storage archive file for GC'd segments.
  std::string gc_archive_path;

  /// Executor that runs every pipeline task (filter strands, token chain,
  /// batcher/GC/sender timers). Null means the process-wide
  /// Executor::Default(). Inject a virtual-time executor for deterministic
  /// tests.
  Executor* executor = nullptr;

  /// Record-level trace sampling: sample one append whose TOId satisfies
  /// `toid % trace_sample_every == 1` (so the first record is always
  /// sampled). 0 disables tracing entirely. Sampled records carry their
  /// hop timestamps on the wire; unsampled records pay nothing.
  uint32_t trace_sample_every = 1024;
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_CONFIG_H_
