#ifndef CHARIOTS_CHARIOTS_FABRIC_H_
#define CHARIOTS_CHARIOTS_FABRIC_H_

#include <functional>
#include <mutex>
#include <unordered_map>

#include "chariots/record.h"
#include "common/status.h"
#include "net/rpc.h"
#include "net/transport.h"

namespace chariots::geo {

/// Inter-datacenter message fabric: moves opaque replication payloads
/// between datacenters. Implementations differ in realism; the Chariots
/// logic above is identical.
class ReplicationFabric {
 public:
  using Handler = std::function<void(DatacenterId from, std::string payload)>;

  virtual ~ReplicationFabric() = default;

  /// Binds the receiving side of datacenter `dc`.
  virtual Status RegisterReceiver(DatacenterId dc, Handler handler) = 0;
  virtual Status Unregister(DatacenterId dc) = 0;

  /// Ships `payload` from `from` to `to`. Best-effort: loss surfaces as a
  /// missing delivery, not an error.
  virtual Status Send(DatacenterId from, DatacenterId to,
                      std::string payload) = 0;
};

/// Synchronous in-process fabric: Send() invokes the destination handler on
/// the caller thread. Zero latency; useful for unit tests and benches where
/// WAN behaviour is out of scope.
class DirectFabric : public ReplicationFabric {
 public:
  Status RegisterReceiver(DatacenterId dc, Handler handler) override;
  Status Unregister(DatacenterId dc) override;
  Status Send(DatacenterId from, DatacenterId to,
              std::string payload) override;

 private:
  std::mutex mu_;
  std::unordered_map<DatacenterId, Handler> handlers_;
};

/// Fabric over a net::Transport (in-process simulated WAN or TCP): each
/// datacenter is the node "geo/dc<N>"; payloads travel as one-way messages,
/// so latency, bandwidth caps, partitions and message loss configured on the
/// transport all apply to replication traffic.
class TransportFabric : public ReplicationFabric {
 public:
  explicit TransportFabric(net::Transport* transport);
  ~TransportFabric() override;

  Status RegisterReceiver(DatacenterId dc, Handler handler) override;
  Status Unregister(DatacenterId dc) override;
  Status Send(DatacenterId from, DatacenterId to,
              std::string payload) override;

  /// The transport node id used for datacenter `dc`.
  static std::string NodeFor(DatacenterId dc);

 private:
  net::Transport* const transport_;
  std::mutex mu_;
  std::unordered_map<DatacenterId, bool> registered_;
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_FABRIC_H_
