#ifndef CHARIOTS_CHARIOTS_QUEUE_H_
#define CHARIOTS_CHARIOTS_QUEUE_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <vector>

#include "chariots/record.h"
#include "flstore/striping.h"

namespace chariots::geo {

/// The token circulating among the queues (paper §6.2): the single point of
/// truth for LId assignment. Carries the maximum TOId per datacenter already
/// incorporated into the local log, the next LId to hand out, and the
/// deferred records whose causal dependencies are not yet satisfied.
struct Token {
  std::vector<TOId> max_toid;
  flstore::LId next_lid = 0;
  std::vector<GeoRecord> deferred;

  explicit Token(uint32_t num_datacenters)
      : max_toid(num_datacenters, 0) {}
};

/// A queue (paper §6.2): buffers filtered records; when holding the token it
/// appends every record whose causal dependencies are satisfied — assigning
/// consecutive LIds, so the log below `next_lid` is gap-free by construction
/// — and defers the rest into the token.
///
/// Admission rule for record r (host h, toid t, deps d[]):
///   * t ≤ token.max_toid[h]  → duplicate, dropped;
///   * t == token.max_toid[h] + 1  AND  d[k] ≤ token.max_toid[k] ∀k  →
///     admitted (total order per host + happened-before, paper §3);
///   * otherwise deferred.
class GeoQueue {
 public:
  /// Routes an admitted record (lid filled in) to maintainer
  /// `maintainer_index`.
  using RouteFn = std::function<void(uint32_t maintainer_index, GeoRecord)>;

  GeoQueue(uint32_t id, const flstore::EpochJournal* journal, RouteFn route);

  GeoQueue(const GeoQueue&) = delete;
  GeoQueue& operator=(const GeoQueue&) = delete;

  /// Stashes a record until this queue next holds the token. Thread-safe.
  void Enqueue(GeoRecord record);

  /// Runs the token protocol over everything pending + previously deferred.
  /// Returns the number of records appended this turn.
  size_t ProcessToken(Token* token);

  uint32_t id() const { return id_; }
  size_t pending() const;
  uint64_t appended() const { return appended_.load(); }
  uint64_t duplicates_dropped() const { return duplicates_.load(); }

 private:
  bool Admissible(const Token& token, const GeoRecord& r) const;

  const uint32_t id_;
  const flstore::EpochJournal* const journal_;
  RouteFn route_;

  mutable std::mutex mu_;
  std::vector<GeoRecord> pending_;
  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> duplicates_{0};
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_QUEUE_H_
