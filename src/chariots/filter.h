#ifndef CHARIOTS_CHARIOTS_FILTER_H_
#define CHARIOTS_CHARIOTS_FILTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chariots/filter_map.h"
#include "chariots/record.h"

namespace chariots::geo {

/// A filter (paper §6.2): champions a subset of the records (by host
/// datacenter and TOId modulus class) and ensures each record enters the
/// queues stage exactly once and in champion order. Duplicates (sender
/// retransmissions) are dropped; out-of-order arrivals are buffered until
/// the next expected TOId shows up. Filters never talk to each other, so
/// the stage scales without overhead.
class Filter {
 public:
  /// Forwards an accepted record to the queues stage.
  using ForwardFn = std::function<void(GeoRecord)>;

  Filter(uint32_t id, const FilterMap* filter_map, ForwardFn forward);

  Filter(const Filter&) = delete;
  Filter& operator=(const Filter&) = delete;

  /// Processes a batch from a batcher (or receiver). Thread-safe.
  void Accept(std::vector<GeoRecord> batch);

  /// Recovery seeding: everything of `host` up to `last_seen_toid` is
  /// already in the log; this filter's champion stream resumes at its next
  /// championed TOId after that.
  void SeedHost(DatacenterId host, TOId last_seen_toid);

  uint32_t id() const { return id_; }
  uint64_t forwarded() const { return forwarded_.load(); }
  uint64_t duplicates_dropped() const { return duplicates_.load(); }
  uint64_t misrouted() const { return misrouted_.load(); }
  /// Records buffered waiting for an earlier TOId.
  size_t buffered() const;

 private:
  struct HostState {
    /// Next championed TOId this filter expects for the host (0 = compute).
    TOId next_expected = 0;
    /// Out-of-order arrivals keyed by TOId.
    std::map<TOId, GeoRecord> buffer;
  };

  void ProcessLocked(GeoRecord record, std::vector<GeoRecord>* out);

  const uint32_t id_;
  const FilterMap* const filter_map_;
  ForwardFn forward_;

  mutable std::mutex mu_;
  std::unordered_map<DatacenterId, HostState> hosts_;
  std::atomic<uint64_t> forwarded_{0};
  std::atomic<uint64_t> duplicates_{0};
  std::atomic<uint64_t> misrouted_{0};
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_FILTER_H_
