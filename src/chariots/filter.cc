#include "chariots/filter.h"

#include "common/metrics.h"

namespace chariots::geo {

namespace {

metrics::Counter* ForwardedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.filter.forwarded");
  return c;
}

metrics::Counter* DuplicatesCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.filter.duplicates_dropped");
  return c;
}

metrics::Histogram* AcceptLatencyHist() {
  static metrics::Histogram* h =
      metrics::Registry::Default().GetHistogram("chariots.filter.accept_ns");
  return h;
}

}  // namespace

Filter::Filter(uint32_t id, const FilterMap* filter_map, ForwardFn forward)
    : id_(id), filter_map_(filter_map), forward_(std::move(forward)) {}

void Filter::Accept(std::vector<GeoRecord> batch) {
  metrics::ScopedLatencyTimer timer(AcceptLatencyHist());
  std::vector<GeoRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (GeoRecord& record : batch) {
      ProcessLocked(std::move(record), &out);
    }
  }
  ForwardedCounter()->Add(out.size());
  for (GeoRecord& record : out) {
    forwarded_.fetch_add(1, std::memory_order_relaxed);
    forward_(std::move(record));
  }
}

void Filter::ProcessLocked(GeoRecord record, std::vector<GeoRecord>* out) {
  // A record this filter does not champion (possible transiently during a
  // future reassignment while batchers catch up): pass it through. The
  // queues re-check order and uniqueness against the token, so liveness is
  // preserved without inter-filter coordination.
  if (filter_map_->FilterFor(record.host, record.toid) != id_) {
    misrouted_.fetch_add(1, std::memory_order_relaxed);
    out->push_back(std::move(record));
    return;
  }

  HostState& state = hosts_[record.host];
  if (state.next_expected == 0) {
    state.next_expected = filter_map_->NextChampioned(id_, record.host, 0);
  }

  if (record.toid < state.next_expected) {
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    DuplicatesCounter()->Add();
    return;
  }
  if (record.toid > state.next_expected) {
    // Out of order: buffer (idempotently — a duplicate of a buffered record
    // is also dropped).
    auto [it, inserted] = state.buffer.try_emplace(record.toid,
                                                   std::move(record));
    (void)it;
    if (!inserted) duplicates_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Exactly the expected record: forward, then drain the buffer.
  DatacenterId host = record.host;
  state.next_expected =
      filter_map_->NextChampioned(id_, host, record.toid);
  out->push_back(std::move(record));
  while (!state.buffer.empty() && state.next_expected != 0) {
    auto it = state.buffer.find(state.next_expected);
    if (it == state.buffer.end()) break;
    state.next_expected =
        filter_map_->NextChampioned(id_, host, it->first);
    out->push_back(std::move(it->second));
    state.buffer.erase(it);
  }
}

void Filter::SeedHost(DatacenterId host, TOId last_seen_toid) {
  std::lock_guard<std::mutex> lock(mu_);
  hosts_[host].next_expected =
      filter_map_->NextChampioned(id_, host, last_seen_toid);
}

size_t Filter::buffered() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [_, state] : hosts_) total += state.buffer.size();
  return total;
}

}  // namespace chariots::geo
