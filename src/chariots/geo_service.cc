#include "chariots/geo_service.h"

#include <condition_variable>

#include "common/codec.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "flstore/service.h"

namespace chariots::geo {

namespace {

/// Client-side trace sampling rate: every 1024th append per client session
/// (plus the first) originates a sampled trace, matching the server-side
/// default in ChariotsConfig::trace_sample_every.
constexpr uint32_t kClientTraceSampleEvery = 1024;

/// "Datacenter id" stamped into trace ids originated by RPC clients, which
/// do not know which datacenter they talk to. Distinct from any real dc id
/// so client-originated ids cannot collide with server-originated ones.
constexpr uint32_t kClientTraceDc = 0xFFFF;

std::string EncodeRecordWithLid(const GeoRecord& record) {
  BinaryWriter w;
  w.PutU64(record.lid);
  w.PutBytes(EncodeGeoRecord(record));
  return std::move(w).data();
}

Result<GeoRecord> DecodeRecordWithLid(std::string_view data) {
  BinaryReader r(data);
  flstore::LId lid = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
  std::string bytes;
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&bytes));
  CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record, DecodeGeoRecord(bytes));
  record.lid = lid;
  return record;
}

}  // namespace

GeoServer::GeoServer(net::Transport* transport, net::NodeId node,
                     Datacenter* dc, GeoServerOptions options)
    : dc_(dc),
      options_(std::move(options)),
      endpoint_(transport, node),
      watchdog_(WatchdogConfig(node)) {}

Watchdog::Options GeoServer::WatchdogConfig(const net::NodeId& node) {
  Watchdog::Options wd;
  wd.node = node;
  wd.clock = options_.clock;
  if (options_.watchdog_interval_nanos > 0) {
    wd.tick_interval_nanos = options_.watchdog_interval_nanos;
  }
  wd.on_breach = [this](const HealthReport& report) {
    OnWatchdogBreach(report);
  };
  return wd;
}

void GeoServer::OnWatchdogBreach(const HealthReport&) {
  std::string dump = flightrec::Recorder::Default().Dump();
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    last_breach_dump_ = std::move(dump);
  }
  if (!options_.breach_dump_path.empty()) {
    (void)flightrec::Recorder::Default().DumpToFile(options_.breach_dump_path);
  }
}

std::string GeoServer::LastBreachDump() const {
  std::lock_guard<std::mutex> lock(dump_mu_);
  return last_breach_dump_;
}

GeoServer::~GeoServer() { Stop(); }

Status GeoServer::Start() {
  // Keep the metric family set identical across roles: a datacenter's
  // metrics dump carries the chariots.flstore.repl.* families at zero even
  // though replication runs in MaintainerServer, so the same dashboards
  // and `chariots_cli metrics` prefixes work against every node.
  flstore::RegisterReplicationMetrics();
  RegisterHealthMetrics();
  flightrec::RegisterFlightRecorderMetrics();
  dc_->RegisterWatchdogProbes(&watchdog_);
  endpoint_.Handle(kGeoAppend, [this](const net::NodeId&,
                                      const std::string& payload)
                                   -> Result<std::string> {
    // Request: body, u32 tag count + tags, u32 dep count + deps.
    BinaryReader r(payload);
    std::string body;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&body));
    uint32_t n = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
    std::vector<flstore::Tag> tags(n);
    for (uint32_t i = 0; i < n; ++i) {
      CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&tags[i].key));
      CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&tags[i].value));
    }
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
    DepVector deps(n);
    for (uint32_t i = 0; i < n; ++i) {
      CHARIOTS_RETURN_IF_ERROR(r.GetU64(&deps[i]));
    }

    // Block the RPC until locally durable (the paper's append contract:
    // TOId and LId go back to the application client).
    struct Wait {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      flstore::LId lid = flstore::kInvalidLId;
    };
    auto wait = std::make_shared<Wait>();
    // Continue a trace the RPC client started (handlers run on the
    // transport delivery thread, where the inbound trace is current).
    TOId toid = dc_->Append(std::move(body), std::move(tags),
                            std::move(deps),
                            [wait](TOId, flstore::LId lid) {
                              std::lock_guard<std::mutex> lock(wait->mu);
                              wait->done = true;
                              wait->lid = lid;
                              wait->cv.notify_all();
                            },
                            net::CurrentRpcTrace());
    std::unique_lock<std::mutex> lock(wait->mu);
    if (!wait->cv.wait_for(lock, std::chrono::seconds(5),
                           [&] { return wait->done; })) {
      return Status::TimedOut("append not durable in time");
    }
    BinaryWriter out;
    out.PutU64(toid);
    out.PutU64(wait->lid);
    return std::move(out).data();
  });

  endpoint_.Handle(kGeoRead, [this](const net::NodeId&,
                                    const std::string& payload)
                                 -> Result<std::string> {
    BinaryReader r(payload);
    flstore::LId lid = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
    CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record, dc_->Read(lid));
    return EncodeRecordWithLid(record);
  });

  endpoint_.Handle(kGeoReadRange, [this](const net::NodeId&,
                                         const std::string& payload)
                                      -> Result<std::string> {
    BinaryReader r(payload);
    flstore::LId from = 0;
    uint32_t limit = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&from));
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&limit));
    // Bound the response: a huge limit must not turn into an unbounded
    // payload. Clients loop on the truncated result.
    constexpr uint32_t kMaxRangeRecords = 4096;
    std::vector<GeoRecord> records =
        dc_->ReadRange(from, std::min(limit, kMaxRangeRecords));
    BinaryWriter out;
    out.PutU32(static_cast<uint32_t>(records.size()));
    for (const GeoRecord& record : records) {
      out.PutBytes(EncodeRecordWithLid(record));
    }
    return std::move(out).data();
  });

  endpoint_.Handle(kGeoHead, [this](const net::NodeId&, const std::string&)
                                 -> Result<std::string> {
    BinaryWriter out;
    out.PutU64(dc_->HeadLid());
    return std::move(out).data();
  });

  endpoint_.Handle(kGeoLookup, [this](const net::NodeId&,
                                      const std::string& payload)
                                   -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(flstore::IndexQuery query,
                              flstore::DecodeIndexQuery(payload));
    return flstore::EncodePostings(dc_->Lookup(query));
  });

  endpoint_.Handle(kGeoReadByToid, [this](const net::NodeId&,
                                          const std::string& payload)
                                       -> Result<std::string> {
    BinaryReader r(payload);
    uint32_t host = 0;
    TOId toid = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&host));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&toid));
    CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record,
                              dc_->ReadByToid(host, toid));
    return EncodeRecordWithLid(record);
  });

  endpoint_.Handle(kGeoMetrics, [](const net::NodeId&, const std::string&)
                                    -> Result<std::string> {
    return metrics::RenderJson(metrics::Registry::Default().Snapshot());
  });

  endpoint_.Handle(kGeoTrace, [](const net::NodeId&,
                                 const std::string& payload)
                                  -> Result<std::string> {
    uint8_t mode = 0;
    if (!payload.empty()) {
      BinaryReader r(payload);
      CHARIOTS_RETURN_IF_ERROR(r.GetU8(&mode));
    }
    std::vector<trace::TraceContext> traces =
        trace::TraceSink::Default().Traces();
    if (mode == 1) {
      // Critical-path mode: render the per-stage breakdown server-side so
      // the CLI needs no access to the span wire format.
      std::string out;
      for (const trace::TraceContext& ctx : traces) {
        out += trace::RenderCriticalPath(ctx);
        out += '\n';
      }
      if (out.empty()) out = "no sampled traces recorded yet\n";
      return out;
    }
    return trace::RenderTracesJson(traces);
  });

  endpoint_.Handle(kGeoHealth, [this](const net::NodeId&, const std::string&)
                                   -> Result<std::string> {
    return RenderHealthJson(watchdog_.TickOnce());
  });

  endpoint_.Handle(kGeoFlightRec, [this](const net::NodeId&,
                                         const std::string& payload)
                                      -> Result<std::string> {
    uint8_t mode = 0;
    if (!payload.empty()) {
      BinaryReader r(payload);
      CHARIOTS_RETURN_IF_ERROR(r.GetU8(&mode));
    }
    if (mode == 1) {
      std::string dump = LastBreachDump();
      if (dump.empty()) {
        return Status::NotFound("no watchdog breach has fired yet");
      }
      return dump;
    }
    return flightrec::Recorder::Default().Dump();
  });

  CHARIOTS_RETURN_IF_ERROR(endpoint_.Start());
  if (options_.watchdog_interval_nanos > 0) {
    watchdog_.Start(options_.executor);
  }
  return Status::OK();
}

void GeoServer::Stop() {
  watchdog_.Stop();
  endpoint_.Stop();
}

// ------------------------------------------------------------ GeoRpcClient

GeoRpcClient::GeoRpcClient(net::Transport* transport, net::NodeId node,
                           net::NodeId server)
    : endpoint_(transport, std::move(node)), server_(std::move(server)) {}

GeoRpcClient::~GeoRpcClient() { Stop(); }

Status GeoRpcClient::Start() { return endpoint_.Start(); }

void GeoRpcClient::Stop() { endpoint_.Stop(); }

void GeoRpcClient::Absorb(const GeoRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t need = std::max<size_t>(record.host + 1, record.deps.size());
  if (deps_.size() < need) deps_.resize(need, 0);
  deps_[record.host] = std::max(deps_[record.host], record.toid);
  for (size_t d = 0; d < record.deps.size(); ++d) {
    deps_[d] = std::max(deps_[d], record.deps[d]);
  }
}

Result<std::pair<TOId, flstore::LId>> GeoRpcClient::Append(
    std::string body, std::vector<flstore::Tag> tags) {
  BinaryWriter w;
  w.PutBytes(body);
  w.PutU32(static_cast<uint32_t>(tags.size()));
  for (const flstore::Tag& tag : tags) {
    w.PutBytes(tag.key);
    w.PutBytes(tag.value);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    w.PutU32(static_cast<uint32_t>(deps_.size()));
    for (TOId d : deps_) w.PutU64(d);
  }
  // A sampled append originates its trace here: only the id crosses the
  // wire; all hop timestamps are stamped by the server process, keeping
  // them on one clock (and therefore monotonic).
  net::CallOptions options;
  uint64_t seq = append_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (trace::ShouldSample(seq, kClientTraceSampleEvery)) {
    options.trace.trace_id = trace::MakeTraceId(kClientTraceDc, seq);
  }
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      endpoint_.Call(server_, kGeoAppend, std::move(w).data(), options));
  BinaryReader r(payload);
  TOId toid = 0;
  flstore::LId lid = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&toid));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
  return std::make_pair(toid, lid);
}

Result<GeoRecord> GeoRpcClient::Read(flstore::LId lid) {
  BinaryWriter w;
  w.PutU64(lid);
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      endpoint_.Call(server_, kGeoRead, std::move(w).data()));
  CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record, DecodeRecordWithLid(payload));
  Absorb(record);
  return record;
}

Result<GeoRecord> GeoRpcClient::ReadByToid(DatacenterId host, TOId toid) {
  BinaryWriter w;
  w.PutU32(host);
  w.PutU64(toid);
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      endpoint_.Call(server_, kGeoReadByToid, std::move(w).data()));
  CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record, DecodeRecordWithLid(payload));
  Absorb(record);
  return record;
}

Result<flstore::LId> GeoRpcClient::Head() {
  CHARIOTS_ASSIGN_OR_RETURN(std::string payload,
                            endpoint_.Call(server_, kGeoHead, ""));
  BinaryReader r(payload);
  flstore::LId head = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&head));
  return head;
}

Result<std::string> GeoRpcClient::Metrics() {
  return endpoint_.Call(server_, kGeoMetrics, "");
}

Result<std::string> GeoRpcClient::Trace() {
  return endpoint_.Call(server_, kGeoTrace, "");
}

Result<std::string> GeoRpcClient::TraceCriticalPath() {
  BinaryWriter w;
  w.PutU8(1);
  return endpoint_.Call(server_, kGeoTrace, std::move(w).data());
}

Result<std::string> GeoRpcClient::Health() {
  return endpoint_.Call(server_, kGeoHealth, "");
}

Result<std::string> GeoRpcClient::FlightRec(uint8_t mode) {
  BinaryWriter w;
  w.PutU8(mode);
  return endpoint_.Call(server_, kGeoFlightRec, std::move(w).data());
}

Result<std::vector<GeoRecord>> GeoRpcClient::ReadRange(flstore::LId from,
                                                       size_t limit) {
  BinaryWriter w;
  w.PutU64(from);
  w.PutU32(static_cast<uint32_t>(limit));
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      endpoint_.Call(server_, kGeoReadRange, std::move(w).data()));
  BinaryReader r(payload);
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  std::vector<GeoRecord> records;
  records.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&bytes));
    CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record, DecodeRecordWithLid(bytes));
    Absorb(record);
    records.push_back(std::move(record));
  }
  return records;
}

Result<std::vector<flstore::Posting>> GeoRpcClient::Lookup(
    const flstore::IndexQuery& query) {
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      endpoint_.Call(server_, kGeoLookup,
                     flstore::EncodeIndexQuery(query)));
  return flstore::DecodePostings(payload);
}

Result<GeoRecord> GeoRpcClient::ReadMostRecent(const std::string& tag_key,
                                               flstore::LId before_lid) {
  flstore::IndexQuery query;
  query.key = tag_key;
  if (before_lid == flstore::kInvalidLId) {
    CHARIOTS_ASSIGN_OR_RETURN(before_lid, Head());
  }
  query.before_lid = before_lid;
  query.limit = 1;
  CHARIOTS_ASSIGN_OR_RETURN(std::vector<flstore::Posting> postings,
                            Lookup(query));
  if (postings.empty()) {
    return Status::NotFound("no record with tag " + tag_key);
  }
  return Read(postings.front().lid);
}

}  // namespace chariots::geo
