#include "chariots/client.h"

#include <condition_variable>

namespace chariots::geo {

ChariotsClient::ChariotsClient(Datacenter* dc)
    : dc_(dc), deps_(dc->config().num_datacenters, 0) {}

Result<std::pair<TOId, flstore::LId>> ChariotsClient::Append(
    std::string body, std::vector<flstore::Tag> tags,
    std::chrono::milliseconds timeout) {
  struct WaitState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    flstore::LId lid = flstore::kInvalidLId;
  };
  auto state = std::make_shared<WaitState>();

  DepVector deps;
  {
    std::lock_guard<std::mutex> lock(mu_);
    deps = deps_;
  }
  TOId toid = dc_->Append(std::move(body), std::move(tags), std::move(deps),
                          [state](TOId, flstore::LId lid) {
                            std::lock_guard<std::mutex> lock(state->mu);
                            state->done = true;
                            state->lid = lid;
                            state->cv.notify_all();
                          });
  {
    std::lock_guard<std::mutex> lock(mu_);
    deps_[dc_->dc_id()] = std::max(deps_[dc_->dc_id()], toid);
  }

  std::unique_lock<std::mutex> lock(state->mu);
  if (!state->cv.wait_for(lock, timeout, [&] { return state->done; })) {
    return Status::TimedOut("append not committed locally in time");
  }
  return std::make_pair(toid, state->lid);
}

TOId ChariotsClient::AppendAsync(std::string body,
                                 std::vector<flstore::Tag> tags) {
  DepVector deps;
  {
    std::lock_guard<std::mutex> lock(mu_);
    deps = deps_;
  }
  TOId toid = dc_->Append(std::move(body), std::move(tags), std::move(deps));
  {
    std::lock_guard<std::mutex> lock(mu_);
    deps_[dc_->dc_id()] = std::max(deps_[dc_->dc_id()], toid);
  }
  return toid;
}

void ChariotsClient::AbsorbLocked(const GeoRecord& record) {
  if (record.host < deps_.size()) {
    deps_[record.host] = std::max(deps_[record.host], record.toid);
  }
  for (size_t d = 0; d < record.deps.size() && d < deps_.size(); ++d) {
    deps_[d] = std::max(deps_[d], record.deps[d]);
  }
}

Result<GeoRecord> ChariotsClient::Read(flstore::LId lid) {
  CHARIOTS_ASSIGN_OR_RETURN(GeoRecord record, dc_->Read(lid));
  {
    std::lock_guard<std::mutex> lock(mu_);
    AbsorbLocked(record);
  }
  return record;
}

void ChariotsClient::Absorb(const GeoRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  AbsorbLocked(record);
}

DepVector ChariotsClient::deps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deps_;
}

Result<std::vector<GeoRecord>> ChariotsClient::Read(const ReadRules& rules) {
  CHARIOTS_ASSIGN_OR_RETURN(std::vector<GeoRecord> records,
                            ReadWithRules(*dc_, rules));
  std::lock_guard<std::mutex> lock(mu_);
  for (const GeoRecord& record : records) AbsorbLocked(record);
  return records;
}

Result<GeoRecord> ChariotsClient::ReadMostRecent(const std::string& tag_key,
                                                 flstore::LId before_lid) {
  flstore::IndexQuery query;
  query.key = tag_key;
  query.before_lid =
      before_lid == flstore::kInvalidLId ? dc_->HeadLid() : before_lid;
  query.limit = 1;
  std::vector<flstore::Posting> postings = dc_->Lookup(query);
  if (postings.empty()) {
    return Status::NotFound("no record with tag " + tag_key);
  }
  return Read(postings.front().lid);
}

}  // namespace chariots::geo
