#include "chariots/fabric.h"

#include "common/codec.h"

namespace chariots::geo {

// ---------------------------------------------------------------- direct

Status DirectFabric::RegisterReceiver(DatacenterId dc, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!handlers_.emplace(dc, std::move(handler)).second) {
    return Status::AlreadyExists("datacenter already registered");
  }
  return Status::OK();
}

Status DirectFabric::Unregister(DatacenterId dc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (handlers_.erase(dc) == 0) return Status::NotFound("datacenter");
  return Status::OK();
}

Status DirectFabric::Send(DatacenterId from, DatacenterId to,
                          std::string payload) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(to);
    if (it == handlers_.end()) return Status::NotFound("datacenter");
    handler = it->second;
  }
  handler(from, std::move(payload));
  return Status::OK();
}

// ------------------------------------------------------------- transport

namespace {
constexpr uint16_t kReplicationOpcode = 100;
}  // namespace

TransportFabric::TransportFabric(net::Transport* transport)
    : transport_(transport) {}

TransportFabric::~TransportFabric() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [dc, _] : registered_) {
    (void)transport_->Unregister(NodeFor(dc));
  }
}

std::string TransportFabric::NodeFor(DatacenterId dc) {
  return "geo/dc" + std::to_string(dc) + "/receiver";
}

Status TransportFabric::RegisterReceiver(DatacenterId dc, Handler handler) {
  CHARIOTS_RETURN_IF_ERROR(transport_->Register(
      NodeFor(dc), [handler = std::move(handler)](net::Message msg) {
        // Sender id travels in the first 4 payload bytes.
        BinaryReader r(msg.payload);
        uint32_t from = 0;
        if (!r.GetU32(&from).ok()) return;
        handler(from, msg.payload.substr(4));
      }));
  std::lock_guard<std::mutex> lock(mu_);
  registered_[dc] = true;
  return Status::OK();
}

Status TransportFabric::Unregister(DatacenterId dc) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    registered_.erase(dc);
  }
  return transport_->Unregister(NodeFor(dc));
}

Status TransportFabric::Send(DatacenterId from, DatacenterId to,
                             std::string payload) {
  net::Message msg;
  msg.from = NodeFor(from);
  msg.to = NodeFor(to);
  msg.type = kReplicationOpcode;
  BinaryWriter w;
  w.PutU32(from);
  w.PutRaw(payload);
  msg.payload = std::move(w).data();
  return transport_->Send(std::move(msg));
}

}  // namespace chariots::geo
