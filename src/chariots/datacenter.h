#ifndef CHARIOTS_CHARIOTS_DATACENTER_H_
#define CHARIOTS_CHARIOTS_DATACENTER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "chariots/atable.h"
#include "chariots/batcher.h"
#include "chariots/config.h"
#include "chariots/fabric.h"
#include "chariots/filter.h"
#include "chariots/filter_map.h"
#include "chariots/queue.h"
#include "chariots/record.h"
#include "chariots/replication.h"
#include "common/executor.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/queue.h"
#include "common/trace.h"
#include "common/watchdog.h"
#include "flstore/indexer.h"
#include "flstore/maintainer.h"

namespace chariots::geo {

/// One datacenter's Chariots instance (paper §6.2): the full multi-stage
/// pipeline — receivers → batchers → filters → queues (token ring) → FLStore
/// log maintainers → senders — plus the awareness table, local indexing, and
/// garbage collection.
///
/// Execution model (DESIGN.md §10): every stage runs as tasks on the shared
/// executor instead of owning threads. Batcher flush timers are periodic
/// timer tasks; each filter drains its bounded inbox on a serialized strand
/// (one drain task at a time, scheduled on demand when batches arrive); the
/// token circulates as a self-rescheduling task (immediately while work is
/// flowing, on a 100µs timer when idle) so LId assignment still serializes
/// through the token exactly as in the paper; appends to the log maintainers
/// happen inside the token task (in-process FLStore); senders and GC are
/// periodic timer tasks. Thread count is therefore a function of cores, not
/// of topology width.
class Datacenter {
 public:
  Datacenter(ChariotsConfig config, ReplicationFabric* fabric);
  ~Datacenter();

  Datacenter(const Datacenter&) = delete;
  Datacenter& operator=(const Datacenter&) = delete;

  Status Start();
  void Stop();

  // ------------------------------------------------------------ client API

  /// Appends a record created at this datacenter. Assigns and returns its
  /// TOId immediately; `on_committed` (optional, moved from `record`-style
  /// callers) fires with (toid, lid) once the record is persisted locally.
  /// `deps` is the caller's causal dependency vector (may be empty).
  /// `client_trace` continues an already-sampled trace from the caller
  /// (e.g. an RPC client); when inactive, the append is sampled locally per
  /// config.trace_sample_every.
  TOId Append(std::string body, std::vector<flstore::Tag> tags,
              DepVector deps,
              std::function<void(TOId, flstore::LId)> on_committed = {},
              trace::TraceContext client_trace = {});

  /// Admission-controlled Append: refuses with kUnavailable — without
  /// consuming a TOId — when the pipeline is congested past
  /// config.max_pipeline_pending (e.g. queue backlog piling up behind a
  /// partition). kUnavailable is retryable: the caller backs off and tries
  /// again; nothing was accepted.
  Result<TOId> TryAppend(std::string body, std::vector<flstore::Tag> tags,
                         DepVector deps,
                         std::function<void(TOId, flstore::LId)> on_committed =
                             {},
                         trace::TraceContext client_trace = {});

  /// Reads the record at local position `lid`. NotFound below the GC
  /// horizon or above the filled prefix.
  Result<GeoRecord> Read(flstore::LId lid) const;

  /// The local log's gap-free head: every position < HeadLid() is persisted
  /// (the token assigns LIds consecutively and appends synchronously).
  flstore::LId HeadLid() const;

  /// Reads up to `limit` records in [from, HeadLid()).
  std::vector<GeoRecord> ReadRange(flstore::LId from, size_t limit) const;

  /// Tag lookup against the local index.
  std::vector<flstore::Posting> Lookup(const flstore::IndexQuery& query) const;

  /// Registers a push subscriber invoked (on the token thread, so keep it
  /// fast) for every record as it becomes durable, local and remote alike,
  /// in LId order. Must be called before Start().
  void Subscribe(std::function<void(const GeoRecord&)> subscriber);

  /// Reads a record by its replication identity (host, toid) — the paper's
  /// Read-by-TOId rule (§3). NotFound if not yet incorporated or GC'd.
  Result<GeoRecord> ReadByToid(DatacenterId host, TOId toid) const;

  // --------------------------------------------------------- introspection

  uint32_t dc_id() const { return config_.dc_id; }
  const ChariotsConfig& config() const { return config_; }
  const AwarenessTable& atable() const { return atable_; }
  /// Highest TOId handed out to local appends.
  TOId max_local_toid() const { return next_toid_.load(); }
  /// Highest TOId of each datacenter incorporated into the local log.
  std::vector<TOId> IncorporatedVector() const;

  /// Blocks until the local log has incorporated `toid` of datacenter `dc`
  /// (or the timeout passes). Convenience for tests and examples.
  bool WaitForToid(DatacenterId dc, TOId toid, int64_t timeout_nanos) const;

  struct Stats {
    uint64_t appends_local = 0;
    uint64_t records_incorporated = 0;
    uint64_t batcher_records_in = 0;
    uint64_t batches_flushed = 0;
    uint64_t filter_forwarded = 0;
    uint64_t filter_duplicates = 0;
    uint64_t filter_buffered = 0;
    uint64_t queue_duplicates = 0;
    uint64_t records_sent = 0;
    uint64_t batches_sent = 0;
    uint64_t sender_rewinds = 0;
    uint64_t records_received = 0;
    uint64_t records_deduped = 0;
    uint64_t records_shed = 0;
    uint64_t appends_refused = 0;
    uint64_t index_postings = 0;
    flstore::LId head_lid = 0;
    flstore::LId gc_horizon = 0;
  };
  Stats GetStats() const;

  /// Multi-line human-readable stats dump (ops/diagnostics).
  std::string DebugString() const;

  /// Registers this datacenter's pipeline saturation probes on `wd`: one
  /// queue probe per filter inbox plus the pipeline-pending backlog vs the
  /// admission-control ceiling. Saturation probes are idle-safe (an empty
  /// pipeline never breaches), unlike progress probes. Covers the filters
  /// present at call time; call again after elastic growth.
  void RegisterWatchdogProbes(Watchdog* wd);

  // ------------------------------------------------------------ elasticity

  /// Adds a filter with a future reassignment: records of `host` with TOId
  /// >= `from_toid` are split across `filters` (paper §6.3).
  Status SplitFilterChampionship(DatacenterId host, TOId from_toid,
                                 std::vector<uint32_t> filters);

  /// Adds a batcher. Batchers are completely independent (paper §6.3), so
  /// this takes effect immediately: future appends/receives round-robin
  /// over the grown set.
  Status AddBatcher();

  /// Adds a queue to the token ring. The token visits it from its next
  /// circulation; filters may route records to it immediately (a queue can
  /// receive any record).
  Status AddQueue();

  size_t num_batchers() const;
  size_t num_queues() const;
  size_t num_filters() const {
    return filter_count_.load(std::memory_order_acquire);
  }

  // -------------------------------------------------------------------- GC

  // ---------------------------------------------------- crash recovery

  /// Persists a recovery checkpoint (replica clocks + awareness table) to
  /// the store directory. Called automatically on Stop() and before each
  /// GC truncation; callable any time for tighter recovery points. No-op
  /// for memory-only deployments.
  Status WriteCheckpoint();

  /// Advances the GC horizon as far as the awareness table allows and
  /// truncates storage + index + sender buffer below it. Safe to call any
  /// time; also run periodically when config.gc_interval_nanos > 0.
  Status RunGcOnce();
  flstore::LId gc_horizon() const { return gc_horizon_.load(); }

 private:
  friend class DatacenterTestPeer;

  /// Rebuilds all volatile state from the persisted log + checkpoint after
  /// a whole-datacenter restart (paper §1: datacenter-level fault
  /// tolerance). Runs in Start() before the pipeline threads exist.
  Status RecoverFromStorage();

  struct FilterStage;
  void DeliverToFilter(uint32_t filter_id, std::vector<GeoRecord> batch);
  void ScheduleFilterDrain(FilterStage* stage);
  void DrainFilter(FilterStage* stage);
  void TokenStep();
  void RouteToMaintainer(uint32_t maintainer_index, GeoRecord record);
  void SubmitToBatcher(GeoRecord record);
  /// Records buffered in the queues stage awaiting assignment.
  size_t PipelinePending() const;
  bool Congested() const;

  ChariotsConfig config_;
  ReplicationFabric* const fabric_;
  Executor* const executor_;

  flstore::EpochJournal journal_;
  FilterMap filter_map_;
  AwarenessTable atable_;

  /// Batchers/queues are reserved to fixed capacities so elastic growth
  /// never reallocates under concurrent readers; readers bound their index
  /// by the companion atomic count.
  static constexpr size_t kMaxBatchers = 256;
  static constexpr size_t kMaxQueues = 256;
  std::vector<std::unique_ptr<Batcher>> batchers_;
  std::atomic<size_t> batcher_count_{0};
  std::atomic<uint64_t> batcher_rr_{0};

  struct FilterStage {
    std::unique_ptr<Filter> filter;
    std::unique_ptr<BoundedQueue<std::vector<GeoRecord>>> inbox;
    /// Serializes drains (the stage's "strand") and fences them off after
    /// Stop(); drain_scheduled collapses redundant wakeups to one task.
    SerialGate gate;
    std::atomic<bool> drain_scheduled{false};
  };
  /// Filter stages. Reserved to kMaxFilters at Start so elasticity can grow
  /// the stage without reallocating under concurrent readers; readers bound
  /// their index by filter_count_.
  static constexpr size_t kMaxFilters = 256;
  std::vector<std::unique_ptr<FilterStage>> filters_;
  std::atomic<size_t> filter_count_{0};
  std::atomic<uint64_t> queue_rr_{0};

  std::vector<std::unique_ptr<GeoQueue>> queues_;
  std::atomic<size_t> queue_count_{0};
  Token token_;
  /// The token circulation is a self-rescheduling executor task; the latch
  /// lets Stop() wait for the shutdown drain (created when the chain is
  /// first scheduled), and the gate fences the chain after Stop().
  SerialGate token_gate_;
  std::unique_ptr<CountDownLatch> token_done_;

  std::vector<std::unique_ptr<flstore::LogMaintainer>> maintainers_;
  flstore::Indexer indexer_;

  LocalRecordBuffer local_buffer_;
  std::vector<std::unique_ptr<Sender>> senders_;
  std::unique_ptr<Receiver> receiver_;

  // GC bookkeeping: (host, toid) per lid, from lid meta_base_.
  mutable std::mutex meta_mu_;
  std::deque<std::pair<DatacenterId, TOId>> lid_meta_;
  flstore::LId meta_base_ = 0;
  // TOId -> LId per host (dense, toids start at 1); bases advance with GC.
  std::vector<std::deque<flstore::LId>> toid_to_lid_;
  std::vector<TOId> toid_base_;
  Executor::TimerToken gc_token_;

  /// Per-dc observability: lazily-resolved counters (named
  /// chariots.dc<N>.*) plus callback gauges registered in Start() and
  /// released in Stop() so a destroyed Datacenter leaves no dangling
  /// snapshot callbacks behind.
  metrics::Counter* appends_counter_ = nullptr;
  metrics::Counter* refused_counter_ = nullptr;
  metrics::Counter* incorporated_counter_ = nullptr;
  metrics::Histogram* maintainer_append_hist_ = nullptr;
  std::vector<metrics::ScopedCallbackGauge> callback_gauges_;

  std::vector<std::function<void(const GeoRecord&)>> subscribers_;
  std::atomic<TOId> next_toid_{0};
  std::atomic<uint64_t> appends_refused_{0};
  /// Deferred-record count inside the token, mirrored after each
  /// circulation so admission control can read it off-thread.
  std::atomic<size_t> token_deferred_{0};
  std::atomic<flstore::LId> head_lid_{0};
  std::atomic<flstore::LId> gc_horizon_{0};
  std::atomic<uint64_t> incorporated_{0};
  std::atomic<bool> running_{false};

  mutable std::mutex wait_mu_;
  mutable std::condition_variable wait_cv_;
};

}  // namespace chariots::geo

#endif  // CHARIOTS_CHARIOTS_DATACENTER_H_
