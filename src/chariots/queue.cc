#include "chariots/queue.h"

#include <algorithm>

#include "common/metrics.h"

namespace chariots::geo {

namespace {

metrics::Counter* AppendedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("chariots.queue.appended");
  return c;
}

metrics::Counter* DuplicatesCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.queue.duplicates_dropped");
  return c;
}

metrics::Histogram* ProcessTokenHist() {
  static metrics::Histogram* h = metrics::Registry::Default().GetHistogram(
      "chariots.queue.process_token_ns");
  return h;
}

}  // namespace

GeoQueue::GeoQueue(uint32_t id, const flstore::EpochJournal* journal,
                   RouteFn route)
    : id_(id), journal_(journal), route_(std::move(route)) {}

void GeoQueue::Enqueue(GeoRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(std::move(record));
}

bool GeoQueue::Admissible(const Token& token, const GeoRecord& r) const {
  if (r.host >= token.max_toid.size()) return false;
  if (r.toid != token.max_toid[r.host] + 1) return false;
  for (size_t d = 0; d < r.deps.size() && d < token.max_toid.size(); ++d) {
    if (d == r.host) continue;  // own-host dependency is the toid order
    if (r.deps[d] > token.max_toid[d]) return false;
  }
  return true;
}

size_t GeoQueue::ProcessToken(Token* token) {
  metrics::ScopedLatencyTimer timer(ProcessTokenHist());
  // Collect work: newly filtered records plus the token's deferred ones.
  std::vector<GeoRecord> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    work.swap(pending_);
  }
  work.insert(work.end(), std::make_move_iterator(token->deferred.begin()),
              std::make_move_iterator(token->deferred.end()));
  token->deferred.clear();

  // Sorting by (host, toid) makes each pass admit whole runs.
  std::sort(work.begin(), work.end(),
            [](const GeoRecord& a, const GeoRecord& b) {
              if (a.host != b.host) return a.host < b.host;
              return a.toid < b.toid;
            });

  size_t appended_now = 0;
  bool progress = true;
  std::vector<GeoRecord> rest;
  while (progress) {
    progress = false;
    rest.clear();
    rest.reserve(work.size());
    for (GeoRecord& r : work) {
      if (r.host < token->max_toid.size() &&
          r.toid <= token->max_toid[r.host]) {
        // Already in the log somewhere: retransmission duplicate.
        duplicates_.fetch_add(1, std::memory_order_relaxed);
        DuplicatesCounter()->Add();
        continue;
      }
      if (!Admissible(*token, r)) {
        rest.push_back(std::move(r));
        continue;
      }
      r.lid = token->next_lid++;
      token->max_toid[r.host] = r.toid;
      uint32_t maintainer = journal_->MaintainerFor(r.lid);
      route_(maintainer, std::move(r));
      ++appended_now;
      progress = true;
    }
    work.swap(rest);
  }

  token->deferred = std::move(work);
  appended_.fetch_add(appended_now, std::memory_order_relaxed);
  AppendedCounter()->Add(appended_now);
  return appended_now;
}

size_t GeoQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace chariots::geo
