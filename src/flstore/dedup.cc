#include "flstore/dedup.h"

#include <algorithm>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::flstore {

namespace {

metrics::Counter* DedupHitCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.dedup.hits");
  return c;
}

metrics::Counter* DedupMissCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.dedup.misses");
  return c;
}

// Sidecar frame: u32 masked CRC32C (over body) | u32 body length | body,
// where body = PutBytes(client_id) PutU64(seq) PutBytes(response).
constexpr size_t kFrameHeader = 8;

std::string EncodeEntry(const std::string& client_id, uint64_t seq,
                        const std::string& response) {
  BinaryWriter body;
  body.PutBytes(client_id);
  body.PutU64(seq);
  body.PutBytes(response);
  std::string body_bytes = std::move(body).data();
  BinaryWriter frame;
  frame.PutU32(crc32c::Mask(crc32c::Value(body_bytes)));
  frame.PutU32(static_cast<uint32_t>(body_bytes.size()));
  frame.PutRaw(body_bytes);
  return std::move(frame).data();
}

}  // namespace

Status DedupWindow::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_) return Status::FailedPrecondition("DedupWindow already open");
  if (!options_.sidecar_path.empty()) {
    CHARIOTS_ASSIGN_OR_RETURN(sidecar_,
                              storage::FaultInjectingFile::OpenAppendable(
                                  options_.sidecar_path,
                                  options_.disk_faults));
    sidecar_frames_ = 0;
    CHARIOTS_RETURN_IF_ERROR(ReplaySidecarLocked());
    // A maintainer that crashed before it could compact leaves a mostly-dead
    // sidecar behind; rewrite it now so the next recovery replays only the
    // live window instead of the full append history.
    CHARIOTS_RETURN_IF_ERROR(MaybeCompactSidecarLocked());
  }
  open_ = true;
  return Status::OK();
}

Status DedupWindow::ReplaySidecarLocked() {
  const uint64_t size = sidecar_.size();
  uint64_t offset = 0;
  std::string header, body;
  while (offset + kFrameHeader <= size) {
    CHARIOTS_RETURN_IF_ERROR(sidecar_.ReadAt(offset, kFrameHeader, &header));
    BinaryReader hr(header);
    uint32_t stored_crc = 0, len = 0;
    (void)hr.GetU32(&stored_crc);
    (void)hr.GetU32(&len);
    bool bad = offset + kFrameHeader + len > size;
    if (!bad) {
      CHARIOTS_RETURN_IF_ERROR(
          sidecar_.ReadAt(offset + kFrameHeader, len, &body));
      bad = crc32c::Unmask(stored_crc) != crc32c::Value(body);
    }
    if (bad) {
      // Torn tail from a crash mid-append: keep the intact prefix. The
      // paired record write happens before the dedup append, so at worst
      // the lost entry makes a retry fail AlreadyExists, never duplicate.
      LOG_WARN << "truncating torn dedup sidecar " << options_.sidecar_path
               << " at offset " << offset;
      return sidecar_.Truncate(offset);
    }
    BinaryReader br(body);
    std::string client_id, response;
    uint64_t seq = 0;
    CHARIOTS_RETURN_IF_ERROR(br.GetBytes(&client_id));
    CHARIOTS_RETURN_IF_ERROR(br.GetU64(&seq));
    CHARIOTS_RETURN_IF_ERROR(br.GetBytes(&response));
    ClientWindow& window = clients_[client_id];
    if (window.responses.emplace(seq, std::move(response)).second) {
      ++entries_;
    }
    while (window.responses.size() > options_.window_per_client) {
      auto oldest = window.responses.begin();
      window.evicted_below = std::max(window.evicted_below, oldest->first);
      window.responses.erase(oldest);
      --entries_;
    }
    ++sidecar_frames_;
    offset += kFrameHeader + len;
  }
  if (offset < size) return sidecar_.Truncate(offset);  // torn header
  return Status::OK();
}

std::string DedupWindow::EncodeLiveLocked() const {
  std::string out;
  for (const auto& [client_id, window] : clients_) {
    for (const auto& [seq, response] : window.responses) {
      out += EncodeEntry(client_id, seq, response);
    }
  }
  return out;
}

Status DedupWindow::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::OK();
  open_ = false;
  if (!options_.sidecar_path.empty()) {
    // Compact: the append-only sidecar holds every response ever recorded;
    // rewrite it down to the live window so it stays O(clients * window).
    Status s = storage::WriteStringToFileAtomic(EncodeLiveLocked(),
                                                options_.sidecar_path);
    sidecar_ = storage::FaultInjectingFile();
    CHARIOTS_RETURN_IF_ERROR(s);
  }
  clients_.clear();
  entries_ = 0;
  sidecar_frames_ = 0;
  return Status::OK();
}

Status DedupWindow::CompactSidecarLocked() {
  sidecar_.Close();
  CHARIOTS_RETURN_IF_ERROR(storage::WriteStringToFileAtomic(
      EncodeLiveLocked(), options_.sidecar_path));
  CHARIOTS_ASSIGN_OR_RETURN(
      sidecar_, storage::FaultInjectingFile::OpenAppendable(
                    options_.sidecar_path, options_.disk_faults));
  sidecar_frames_ = entries_;
  ++compactions_;
  return Status::OK();
}

Status DedupWindow::MaybeCompactSidecarLocked() {
  if (options_.compact_min_frames == 0) return Status::OK();
  if (sidecar_frames_ < options_.compact_min_frames) return Status::OK();
  if (entries_ * 2 >= sidecar_frames_) return Status::OK();
  return CompactSidecarLocked();
}

Result<std::optional<std::string>> DedupWindow::Lookup(
    const std::string& client_id, uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("DedupWindow not open");
  auto it = clients_.find(client_id);
  if (it == clients_.end()) {
    DedupMissCounter()->Add();
    return std::optional<std::string>();
  }
  const ClientWindow& window = it->second;
  auto found = window.responses.find(seq);
  if (found != window.responses.end()) {
    ++hits_;
    DedupHitCounter()->Add();
    return std::optional<std::string>(found->second);
  }
  if (seq <= window.evicted_below) {
    // Too old to judge: the response was evicted, so re-executing could
    // duplicate. Make the window undersizing visible instead.
    return Status::FailedPrecondition(
        "append token fell out of the dedup window");
  }
  DedupMissCounter()->Add();
  return std::optional<std::string>();
}

Status DedupWindow::Record(const std::string& client_id, uint64_t seq,
                           const std::string& response) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("DedupWindow not open");
  ClientWindow& window = clients_[client_id];
  if (window.responses.emplace(seq, response).second) ++entries_;
  while (window.responses.size() > options_.window_per_client) {
    auto oldest = window.responses.begin();
    window.evicted_below = std::max(window.evicted_below, oldest->first);
    window.responses.erase(oldest);
    --entries_;
  }
  if (!options_.sidecar_path.empty()) {
    CHARIOTS_RETURN_IF_ERROR(AppendSidecarLocked(client_id, seq, response));
    CHARIOTS_RETURN_IF_ERROR(MaybeCompactSidecarLocked());
  }
  return Status::OK();
}

Status DedupWindow::AppendSidecarLocked(const std::string& client_id,
                                        uint64_t seq,
                                        const std::string& response) {
  CHARIOTS_RETURN_IF_ERROR(sidecar_.Append(EncodeEntry(client_id, seq,
                                                       response)));
  ++sidecar_frames_;
  return Status::OK();
}

uint64_t DedupWindow::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t DedupWindow::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

uint64_t DedupWindow::compactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

uint64_t DedupWindow::sidecar_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sidecar_frames_;
}

}  // namespace chariots::flstore
