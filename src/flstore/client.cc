#include "flstore/client.h"

#include "common/codec.h"

namespace chariots::flstore {

FLStoreClient::FLStoreClient(net::Transport* transport, net::NodeId node,
                             net::NodeId controller, ClientOptions options)
    : endpoint_(transport, std::move(node)),
      controller_(std::move(controller)),
      channel_(&endpoint_, options.retry,
               options.clock != nullptr ? options.clock
                                        : SystemClock::Default()) {}

void FLStoreClient::PutToken(BinaryWriter* w) {
  // The endpoint's fabric address is unique, so it doubles as the client id.
  w->PutBytes(endpoint_.node());
  w->PutU64(op_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
}

FLStoreClient::~FLStoreClient() { Stop(); }

Status FLStoreClient::Start() {
  CHARIOTS_RETURN_IF_ERROR(endpoint_.Start());
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  return RefreshClusterInfo();
}

void FLStoreClient::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    started_ = false;
  }
  endpoint_.Stop();
}

Status FLStoreClient::RefreshClusterInfo() {
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload, channel_.Call(controller_, kGetClusterInfo, ""));
  CHARIOTS_ASSIGN_OR_RETURN(ClusterInfo info, DecodeClusterInfo(payload));
  std::lock_guard<std::mutex> lock(mu_);
  info_ = std::move(info);
  return Status::OK();
}

ClusterInfo FLStoreClient::cluster_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_;
}

net::NodeId FLStoreClient::MaintainerForAppend() {
  std::lock_guard<std::mutex> lock(mu_);
  // Appends may go to any maintainer (paper §5.2: "randomly or intelligibly
  // selected"); round-robin spreads load evenly.
  uint64_t i = rr_.fetch_add(1, std::memory_order_relaxed);
  return info_.maintainers[i % info_.maintainers.size()];
}

Result<net::NodeId> FLStoreClient::MaintainerForLId(LId lid) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t index = info_.journal.MaintainerFor(lid);
  if (index >= info_.maintainers.size()) {
    return Status::Unavailable("stale cluster info: unknown maintainer");
  }
  return info_.maintainers[index];
}

Result<LId> FLStoreClient::Append(const LogRecord& record) {
  BinaryWriter w;
  PutToken(&w);
  w.PutBytes(EncodeLogRecord(record));
  // Pick the maintainer once: retries must hit the same node, whose dedup
  // window holds this token.
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      channel_.Call(MaintainerForAppend(), kAppend, std::move(w).data()));
  BinaryReader r(payload);
  LId lid = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
  return lid;
}

Result<std::vector<LId>> FLStoreClient::AppendBatch(
    const std::vector<LogRecord>& records) {
  BinaryWriter w;
  PutToken(&w);
  w.PutU32(static_cast<uint32_t>(records.size()));
  for (const LogRecord& record : records) {
    w.PutBytes(EncodeLogRecord(record));
  }
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      channel_.Call(MaintainerForAppend(), kAppendBatch,
                    std::move(w).data()));
  BinaryReader r(payload);
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  std::vector<LId> lids(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lids[i]));
  }
  return lids;
}

Result<LId> FLStoreClient::AppendOrdered(const LogRecord& record,
                                         LId min_lid) {
  BinaryWriter w;
  PutToken(&w);
  w.PutU64(min_lid);
  w.PutBytes(EncodeLogRecord(record));
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      channel_.Call(MaintainerForAppend(), kAppendOrdered,
                    std::move(w).data()));
  BinaryReader r(payload);
  LId lid = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
  return lid;
}

Result<LogRecord> FLStoreClient::Read(LId lid) {
  CHARIOTS_ASSIGN_OR_RETURN(net::NodeId node, MaintainerForLId(lid));
  BinaryWriter w;
  w.PutU64(lid);
  CHARIOTS_ASSIGN_OR_RETURN(std::string payload,
                            channel_.Call(node, kRead, std::move(w).data()));
  return DecodeLogRecord(lid, payload);
}

Result<LogRecord> FLStoreClient::ReadCommitted(LId lid) {
  CHARIOTS_ASSIGN_OR_RETURN(net::NodeId node, MaintainerForLId(lid));
  BinaryWriter w;
  w.PutU64(lid);
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      channel_.Call(node, kReadCommitted, std::move(w).data()));
  return DecodeLogRecord(lid, payload);
}

Result<LId> FLStoreClient::HeadOfLog() {
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      channel_.Call(MaintainerForAppend(), kHeadOfLog, ""));
  BinaryReader r(payload);
  LId hl = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&hl));
  return hl;
}

Result<std::vector<Posting>> FLStoreClient::Lookup(const IndexQuery& query) {
  net::NodeId indexer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (info_.indexers.empty()) {
      return Status::FailedPrecondition("cluster has no indexers");
    }
    indexer = info_.indexers[IndexerForKey(
        query.key, static_cast<uint32_t>(info_.indexers.size()))];
  }
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      channel_.Call(indexer, kIndexLookup, EncodeIndexQuery(query)));
  return DecodePostings(payload);
}

Result<std::vector<LogRecord>> FLStoreClient::ReadByTag(
    const IndexQuery& query) {
  CHARIOTS_ASSIGN_OR_RETURN(std::vector<Posting> postings, Lookup(query));
  std::vector<LogRecord> records;
  records.reserve(postings.size());
  for (const Posting& p : postings) {
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record, Read(p.lid));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace chariots::flstore
