#include "flstore/client.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <thread>
#include <tuple>

#include "common/codec.h"

namespace chariots::flstore {

namespace {

std::vector<net::NodeId> ControllerList(const net::NodeId& controller,
                                        const ClientOptions& options) {
  if (!options.controllers.empty()) return options.controllers;
  return {controller};
}

}  // namespace

FLStoreClient::FLStoreClient(net::Transport* transport, net::NodeId node,
                             net::NodeId controller, ClientOptions options)
    : endpoint_(transport, std::move(node)),
      controllers_(ControllerList(controller, options)),
      options_(std::move(options)),
      channel_(&endpoint_, options_.retry,
               options_.clock != nullptr ? options_.clock
                                         : SystemClock::Default()),
      read_cache_(options_.read_cache_bytes) {}

void FLStoreClient::PutToken(BinaryWriter* w) {
  // The endpoint's fabric address is unique, so it doubles as the client id.
  w->PutBytes(endpoint_.node());
  w->PutU64(op_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
}

FLStoreClient::~FLStoreClient() { Stop(); }

Status FLStoreClient::Start() {
  CHARIOTS_RETURN_IF_ERROR(endpoint_.Start());
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  return RefreshClusterInfo();
}

void FLStoreClient::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    started_ = false;
  }
  endpoint_.Stop();
}

Result<std::string> FLStoreClient::CallController(
    uint16_t op, const std::string& payload,
    std::chrono::milliseconds timeout) {
  Status last = Status::Unavailable("no controller replicas configured");
  const size_t n = controllers_.size();
  const uint64_t start = ctrl_rr_.load(std::memory_order_relaxed);
  // Fast cycle: one single-shot per replica. A follower's NOT_LEADER
  // answer and a dead replica both surface as retryable — rotate on.
  for (size_t k = 0; k < n; ++k) {
    const size_t i = (start + k) % n;
    Result<std::string> result =
        endpoint_.Call(controllers_[i], op, payload, timeout);
    if (result.ok()) {
      ctrl_rr_.store(i, std::memory_order_relaxed);  // sticky on the leader
      return result;
    }
    last = result.status();
    if (!IsRetryable(last.code())) return last;
  }
  // Slow cycle: the retrying channel (with backoff) per replica, covering
  // a leader election in progress.
  for (size_t k = 0; k < n; ++k) {
    const size_t i = (start + k) % n;
    Result<std::string> result = channel_.Call(controllers_[i], op, payload);
    if (result.ok()) {
      ctrl_rr_.store(i, std::memory_order_relaxed);
      return result;
    }
    last = result.status();
    if (!IsRetryable(last.code())) return last;
  }
  return last;
}

Status FLStoreClient::RefreshClusterInfo() {
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      CallController(kGetClusterInfo, "",
                     std::chrono::duration_cast<std::chrono::milliseconds>(
                         options_.retry.attempt_timeout)));
  CHARIOTS_ASSIGN_OR_RETURN(ClusterInfo info, DecodeClusterInfo(payload));
  std::lock_guard<std::mutex> lock(mu_);
  if (std::tie(info.ctrl_epoch, info.version) <
      std::tie(info_.ctrl_epoch, info_.version)) {
    // A deposed or lagging controller replica answered with an older
    // layout; moving backwards could resurrect a fenced coordinator. Keep
    // what we have.
    return Status::OK();
  }
  info_ = std::move(info);
  return Status::OK();
}

Result<ControlPlaneStatus> FLStoreClient::ControllerStatus() {
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      CallController(kCtrlStatus, "",
                     std::chrono::duration_cast<std::chrono::milliseconds>(
                         options_.retry.attempt_timeout)));
  BinaryReader r(payload);
  ControlPlaneStatus out;
  uint8_t is_leader = 0;
  uint64_t lease = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&out.ctrl_epoch));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&out.version));
  CHARIOTS_RETURN_IF_ERROR(r.GetU8(&is_leader));
  out.is_leader = is_leader != 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&out.leader));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lease));
  out.leader_lease_nanos = static_cast<int64_t>(lease);
  uint32_t num_stripes = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&num_stripes));
  for (uint32_t i = 0; i < num_stripes; ++i) {
    ControlPlaneStatus::Stripe stripe;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&stripe.coordinator));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&stripe.fence_epoch));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lease));
    stripe.lease_nanos = static_cast<int64_t>(lease);
    uint32_t num_replicas = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&num_replicas));
    for (uint32_t j = 0; j < num_replicas; ++j) {
      std::string node;
      CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&node));
      stripe.replicas.push_back(std::move(node));
    }
    out.stripes.push_back(std::move(stripe));
  }
  return out;
}

ClusterInfo FLStoreClient::cluster_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_;
}

uint32_t FLStoreClient::IndexForAppend() {
  std::lock_guard<std::mutex> lock(mu_);
  // Appends may go to any maintainer (paper §5.2: "randomly or intelligibly
  // selected"); round-robin spreads load evenly.
  uint64_t i = rr_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<uint32_t>(i % info_.maintainers.size());
}

Result<uint32_t> FLStoreClient::IndexForLId(LId lid) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t index = info_.journal.MaintainerFor(lid);
  if (index >= info_.maintainers.size()) {
    return Status::Unavailable("stale cluster info: unknown maintainer");
  }
  return index;
}

bool FLStoreClient::ReportSuspect(uint32_t index, const net::NodeId& node) {
  BinaryWriter w;
  w.PutU32(index);
  w.PutBytes(node);
  // Generous timeout: a confirmed-dead report runs the whole failover
  // (promote + replay) inside this call.
  Result<std::string> verdict =
      CallController(kSuspect, std::move(w).data(),
                     std::chrono::milliseconds(2000));
  if (verdict.ok() && !verdict->empty() && (*verdict)[0] == '\x01') {
    (void)RefreshClusterInfo();
    return true;
  }
  return false;
}

void FLStoreClient::NoteRead(const net::NodeId& node) {
  std::lock_guard<std::mutex> lock(mu_);
  ++reads_by_node_[node];
}

std::map<net::NodeId, uint64_t> FLStoreClient::reads_by_node() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reads_by_node_;
}

Result<std::string> FLStoreClient::CallMaintainerIndex(
    uint32_t index, uint16_t op, const std::string& payload) {
  Status last = Status::Unavailable("no failover attempts budgeted");
  bool skip_backoff = false;
  for (int attempt = 0; attempt < std::max(1, options_.failover_attempts);
       ++attempt) {
    if (attempt > 0) outer_retries_.fetch_add(1, std::memory_order_relaxed);
    if (attempt > 0 && !skip_backoff) {
      // Give an in-flight failover time to promote a replica, then learn
      // the new layout before re-resolving the stripe.
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options_.failover_backoff_nanos));
      Status refreshed = RefreshClusterInfo();
      if (!refreshed.ok()) {
        last = refreshed;
        continue;
      }
    }
    skip_backoff = false;
    net::NodeId node;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (index >= info_.maintainers.size()) {
        return Status::Unavailable("stale cluster info: unknown maintainer");
      }
      node = info_.maintainers[index];
    }
    // First attempt is a single shot (no channel backoff): a dead node
    // fails it fast, and the synchronous suspect report below repairs the
    // layout — detection + failover well under one lease.
    Result<std::string> result =
        attempt == 0
            ? endpoint_.Call(node, op, payload, options_.retry.attempt_timeout)
            : channel_.Call(node, op, payload);
    if (result.ok()) return result;
    last = result.status();
    // Only node loss (or fencing, which surfaces as kUnavailable) triggers
    // failover; a genuine handler error is the caller's to see.
    if (!IsRetryable(last.code())) return last;
    if (ReportSuspect(index, node)) skip_backoff = true;
  }
  return last;
}

Result<std::string> FLStoreClient::CallStripeRead(uint32_t index, uint16_t op,
                                                  const std::string& payload) {
  Status last = Status::Unavailable("no failover attempts budgeted");
  bool skip_backoff = false;
  for (int attempt = 0; attempt < std::max(1, options_.failover_attempts);
       ++attempt) {
    if (attempt > 0) outer_retries_.fetch_add(1, std::memory_order_relaxed);
    if (attempt > 0 && !skip_backoff) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options_.failover_backoff_nanos));
      Status refreshed = RefreshClusterInfo();
      if (!refreshed.ok()) {
        last = refreshed;
        continue;
      }
    }
    skip_backoff = false;
    std::vector<net::NodeId> members;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (index >= info_.maintainers.size()) {
        return Status::Unavailable("stale cluster info: unknown maintainer");
      }
      members.push_back(info_.maintainers[index]);
      if (index < info_.replicas.size()) {
        members.insert(members.end(), info_.replicas[index].begin(),
                       info_.replicas[index].end());
      }
    }
    const uint64_t start = read_rr_.fetch_add(1, std::memory_order_relaxed);
    bool all_not_found = true;
    net::NodeId first_down;
    for (size_t k = 0; k < members.size(); ++k) {
      const net::NodeId& node = members[(start + k) % members.size()];
      Result<std::string> result =
          endpoint_.Call(node, op, payload, options_.retry.attempt_timeout);
      if (result.ok()) {
        NoteRead(node);
        return result;
      }
      last = result.status();
      if (last.code() == StatusCode::kNotFound) continue;
      all_not_found = false;
      // A genuine handler error is final; kUnavailable/kTimedOut (down,
      // fenced, or INVALID_LID — not validated there yet) cycles on.
      if (!IsRetryable(last.code())) return last;
      if (first_down.empty()) first_down = node;
    }
    if (all_not_found) return last;  // every member agrees: no such record
    // Whole cycle failed. Let the controller probe the first dead-looking
    // member — if it really is down, the layout is repaired inside this
    // call and the next cycle reads from the survivors.
    if (!first_down.empty() && ReportSuspect(index, first_down)) {
      skip_backoff = true;
    }
  }
  return last;
}

Result<LId> FLStoreClient::Append(const LogRecord& record) {
  BinaryWriter w;
  PutToken(&w);
  w.PutBytes(EncodeLogRecord(record));
  // Pick the stripe once: retries stay keyed to it, so the token reaches
  // the dedup window that executed the first attempt — on the original
  // primary, or on its promoted backup after failover (dedup state is
  // replicated with every batch).
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      CallMaintainerIndex(IndexForAppend(), kAppend, std::move(w).data()));
  BinaryReader r(payload);
  LId lid = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
  return lid;
}

Result<std::vector<LId>> FLStoreClient::AppendBatch(
    const std::vector<LogRecord>& records) {
  BinaryWriter w;
  PutToken(&w);
  w.PutU32(static_cast<uint32_t>(records.size()));
  for (const LogRecord& record : records) {
    w.PutBytes(EncodeLogRecord(record));
  }
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      CallMaintainerIndex(IndexForAppend(), kAppendBatch,
                          std::move(w).data()));
  BinaryReader r(payload);
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  std::vector<LId> lids(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lids[i]));
  }
  return lids;
}

Result<LId> FLStoreClient::AppendOrdered(const LogRecord& record,
                                         LId min_lid) {
  BinaryWriter w;
  PutToken(&w);
  w.PutU64(min_lid);
  w.PutBytes(EncodeLogRecord(record));
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      CallMaintainerIndex(IndexForAppend(), kAppendOrdered,
                          std::move(w).data()));
  BinaryReader r(payload);
  LId lid = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
  return lid;
}

void FLStoreClient::CacheReadResponse(LId lid, uint32_t stripe,
                                      uint64_t epoch, uint64_t hl,
                                      const std::string& rec_bytes) {
  // Observe the epoch BEFORE inserting: if this response reveals a
  // failover, stale tail entries for the stripe are purged first and the
  // fresh record is cached under the new epoch.
  read_cache_.ObserveEpoch(stripe, epoch);
  read_cache_.Put(lid, rec_bytes, stripe, epoch, /*permanent=*/lid < hl);
}

Result<LogRecord> FLStoreClient::Read(LId lid) {
  if (std::optional<std::string> cached = read_cache_.Get(lid)) {
    return DecodeLogRecord(lid, *cached);
  }
  CHARIOTS_ASSIGN_OR_RETURN(uint32_t index, IndexForLId(lid));
  BinaryWriter w;
  w.PutU64(lid);
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      CallStripeRead(index, kRead, std::move(w).data()));
  BinaryReader r(payload);
  uint64_t epoch = 0, hl = 0;
  std::string rec_bytes;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&hl));
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
  CacheReadResponse(lid, index, epoch, hl, rec_bytes);
  return DecodeLogRecord(lid, rec_bytes);
}

Result<LogRecord> FLStoreClient::ReadCommitted(LId lid) {
  if (std::optional<std::string> cached = read_cache_.Get(lid)) {
    return DecodeLogRecord(lid, *cached);
  }
  CHARIOTS_ASSIGN_OR_RETURN(uint32_t index, IndexForLId(lid));
  BinaryWriter w;
  w.PutU64(lid);
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      CallStripeRead(index, kReadCommitted, std::move(w).data()));
  BinaryReader r(payload);
  uint64_t epoch = 0, hl = 0;
  std::string rec_bytes;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&hl));
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
  CacheReadResponse(lid, index, epoch, hl, rec_bytes);
  return DecodeLogRecord(lid, rec_bytes);
}

Result<std::vector<LogRecord>> FLStoreClient::ReadMany(
    const std::vector<LId>& lids) {
  std::vector<LogRecord> records(lids.size());
  // Cache pass first; group the misses by stripe for coalesced fetches.
  std::map<uint32_t, std::vector<size_t>> misses_by_stripe;
  for (size_t i = 0; i < lids.size(); ++i) {
    if (std::optional<std::string> cached = read_cache_.Get(lids[i])) {
      CHARIOTS_ASSIGN_OR_RETURN(records[i],
                                DecodeLogRecord(lids[i], *cached));
      continue;
    }
    CHARIOTS_ASSIGN_OR_RETURN(uint32_t index, IndexForLId(lids[i]));
    misses_by_stripe[index].push_back(i);
  }
  // One kReadRange round trip per stripe covers every miss.
  for (const auto& [index, positions] : misses_by_stripe) {
    BinaryWriter w;
    w.PutU32(static_cast<uint32_t>(positions.size()));
    for (size_t pos : positions) w.PutU64(lids[pos]);
    CHARIOTS_ASSIGN_OR_RETURN(
        std::string payload,
        CallStripeRead(index, kReadRange, std::move(w).data()));
    BinaryReader r(payload);
    uint64_t epoch = 0, hl = 0;
    uint32_t n = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&hl));
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
    if (n != positions.size()) {
      return Status::Internal("kReadRange response count mismatch");
    }
    for (size_t pos : positions) {
      LId lid = 0;
      uint8_t found = 0;
      CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
      CHARIOTS_RETURN_IF_ERROR(r.GetU8(&found));
      if (found == 0) {
        return Status::NotFound("no record at lid");
      }
      std::string rec_bytes;
      CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
      CacheReadResponse(lid, index, epoch, hl, rec_bytes);
      CHARIOTS_ASSIGN_OR_RETURN(records[pos],
                                DecodeLogRecord(lid, rec_bytes));
    }
  }
  return records;
}

Result<LId> FLStoreClient::HeadOfLog() {
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      CallStripeRead(IndexForAppend(), kHeadOfLog, ""));
  BinaryReader r(payload);
  LId hl = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&hl));
  return hl;
}

Result<std::vector<Posting>> FLStoreClient::Lookup(const IndexQuery& query) {
  net::NodeId indexer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (info_.indexers.empty()) {
      return Status::FailedPrecondition("cluster has no indexers");
    }
    indexer = info_.indexers[IndexerForKey(
        query.key, static_cast<uint32_t>(info_.indexers.size()))];
  }
  CHARIOTS_ASSIGN_OR_RETURN(
      std::string payload,
      channel_.Call(indexer, kIndexLookup, EncodeIndexQuery(query)));
  return DecodePostings(payload);
}

Result<std::vector<LogRecord>> FLStoreClient::ReadByTag(
    const IndexQuery& query) {
  CHARIOTS_ASSIGN_OR_RETURN(std::vector<Posting> postings, Lookup(query));
  std::vector<LId> lids;
  lids.reserve(postings.size());
  for (const Posting& p : postings) lids.push_back(p.lid);
  return ReadMany(lids);
}

}  // namespace chariots::flstore
