#ifndef CHARIOTS_FLSTORE_READ_CACHE_H_
#define CHARIOTS_FLSTORE_READ_CACHE_H_

// The memory-speed read path's caches (DESIGN.md §11):
//
//  * TailCache — maintainer-side bounded FIFO of recently appended record
//    payloads, populated by the append path, so reads of the hot tail never
//    touch the segment store.
//  * ClientReadCache — client-side read-through cache keyed by LId, with
//    epoch-based invalidation driven by the (fence epoch, head-of-log)
//    pair piggybacked on every read response.
//
// Both are byte-bounded and safe for concurrent use; both export the PR 4
// metric families so cache efficiency shows up in every bench report.

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/metrics.h"
#include "flstore/types.h"

namespace chariots::flstore {

/// Sizing knobs for a TailCache. Either bound at zero disables the cache
/// entirely (Put/Get become no-ops), which is the bench baseline mode.
struct TailCacheOptions {
  uint64_t max_bytes = 4ull << 20;  ///< payload-byte budget
  uint64_t max_records = 4096;      ///< entry-count budget
};

/// Bounded FIFO cache of encoded log records, keyed by LId. The append path
/// Put()s every landed record; eviction walks insertion order, so the cache
/// always holds the newest tail of this maintainer's log. A record larger
/// than the whole byte budget is never admitted.
///
/// Thread-safe behind its own mutex — deliberately separate from the
/// maintainer lock so cache hits never contend with appends.
class TailCache {
 public:
  explicit TailCache(TailCacheOptions options);

  TailCache(const TailCache&) = delete;
  TailCache& operator=(const TailCache&) = delete;

  bool enabled() const {
    return options_.max_bytes > 0 && options_.max_records > 0;
  }

  /// Inserts (or replaces) the encoded record at `lid`, evicting the oldest
  /// entries until both bounds hold again.
  void Put(LId lid, std::string encoded);

  /// Returns the encoded record, counting a hit or miss.
  std::optional<std::string> Get(LId lid) const;

  /// Drops one entry (hole repair / tombstone) — a later Get misses.
  void Invalidate(LId lid);

  /// Drops everything. Called on close and at epoch-fence transitions
  /// (promotion), so a node changing roles never serves a stale tail.
  void Clear();

  uint64_t bytes() const;
  uint64_t entries() const;

 private:
  void EvictToBoundsLocked();
  void EraseLocked(LId lid);

  const TailCacheOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<LId, std::string> map_;
  std::deque<LId> fifo_;  ///< insertion order; may hold stale keys
  uint64_t bytes_ = 0;
};

/// One cached read on the client. Entries below the head of the log at
/// fetch time are `permanent`: that region of the log is immutable (holes
/// are only junk-filled *above* HL), so they survive failover. Entries at
/// or beyond HL are tagged with the serving primary's fence epoch and are
/// purged the moment a newer epoch is observed for their stripe — a
/// demoted primary's tail can be junk-filled by its successor.
struct CachedRead {
  std::string encoded;
  uint32_t stripe = 0;
  uint64_t epoch = 0;
  bool permanent = false;
};

/// Client-side read-through cache keyed by LId, byte-bounded with FIFO
/// eviction. Invalidation is epoch-driven (Hermes-style explicit
/// invalidation rather than TTLs): every read response carries the stripe's
/// fence epoch, and ObserveEpoch() purges non-permanent entries of a stripe
/// whose epoch advanced. max_bytes == 0 disables the cache.
class ClientReadCache {
 public:
  explicit ClientReadCache(uint64_t max_bytes);

  ClientReadCache(const ClientReadCache&) = delete;
  ClientReadCache& operator=(const ClientReadCache&) = delete;

  bool enabled() const { return max_bytes_ > 0; }

  std::optional<std::string> Get(LId lid) const;

  void Put(LId lid, std::string encoded, uint32_t stripe, uint64_t epoch,
           bool permanent);

  /// Folds a piggybacked (stripe, fence epoch) observation in. If the epoch
  /// advanced past what this cache has seen for the stripe, every
  /// non-permanent entry of the stripe is purged (they may have been
  /// junk-filled or re-served by a promoted backup). Returns true if a
  /// purge happened.
  bool ObserveEpoch(uint32_t stripe, uint64_t epoch);

  void Clear();

  uint64_t bytes() const;
  uint64_t entries() const;

 private:
  void EraseLocked(LId lid);

  const uint64_t max_bytes_;

  mutable std::mutex mu_;
  std::unordered_map<LId, CachedRead> map_;
  std::deque<LId> fifo_;
  std::unordered_map<uint32_t, uint64_t> stripe_epochs_;
  uint64_t bytes_ = 0;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_READ_CACHE_H_
