#include "flstore/striping.h"

#include <algorithm>
#include <cassert>

#include "common/codec.h"

namespace chariots::flstore {

EpochJournal::EpochJournal(uint32_t num_maintainers, uint64_t batch_size) {
  assert(num_maintainers > 0 && batch_size > 0);
  epochs_.push_back(StripeEpoch{0, num_maintainers, batch_size});
}

EpochJournal::EpochJournal(std::vector<StripeEpoch> epochs)
    : epochs_(std::move(epochs)) {
  assert(!epochs_.empty() && epochs_.front().start_lid == 0);
}

Status EpochJournal::AddEpoch(const StripeEpoch& epoch) {
  if (epoch.num_maintainers == 0 || epoch.batch_size == 0) {
    return Status::InvalidArgument("epoch needs maintainers and batch > 0");
  }
  if (epoch.start_lid <= epochs_.back().start_lid) {
    return Status::InvalidArgument(
        "new epoch must start after the current epoch (future reassignment)");
  }
  epochs_.push_back(epoch);
  return Status::OK();
}

LId EpochJournal::EpochEnd(size_t i) const {
  return i + 1 < epochs_.size() ? epochs_[i + 1].start_lid : kInvalidLId;
}

size_t EpochJournal::EpochIndexFor(LId lid) const {
  // Last epoch with start_lid <= lid.
  size_t lo = 0, hi = epochs_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi + 1) / 2;
    if (epochs_[mid].start_lid <= lid) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

uint32_t EpochJournal::MaintainerFor(LId lid) const {
  size_t e = EpochIndexFor(lid);
  const StripeEpoch& ep = epochs_[e];
  uint64_t rel = lid - ep.start_lid;
  return static_cast<uint32_t>((rel / ep.batch_size) % ep.num_maintainers);
}

Result<LId> EpochJournal::GlobalFor(uint32_t m, SlotRef ref) const {
  if (ref.epoch_index >= epochs_.size()) {
    return Status::OutOfRange("epoch index out of range");
  }
  const StripeEpoch& ep = epochs_[ref.epoch_index];
  if (m >= ep.num_maintainers) {
    return Status::OutOfRange("maintainer not part of epoch");
  }
  uint64_t round = ref.slot / ep.batch_size;
  uint64_t offset = ref.slot % ep.batch_size;
  uint64_t rel = round * ep.num_maintainers * ep.batch_size +
                 static_cast<uint64_t>(m) * ep.batch_size + offset;
  LId global = ep.start_lid + rel;
  if (global >= EpochEnd(ref.epoch_index)) {
    return Status::OutOfRange("slot beyond epoch end");
  }
  return global;
}

SlotRef EpochJournal::SlotFor(LId lid) const {
  size_t e = EpochIndexFor(lid);
  const StripeEpoch& ep = epochs_[e];
  uint64_t rel = lid - ep.start_lid;
  uint64_t round = rel / (static_cast<uint64_t>(ep.num_maintainers) *
                          ep.batch_size);
  uint64_t offset = rel % ep.batch_size;
  return SlotRef{e, round * ep.batch_size + offset};
}

uint64_t EpochJournal::SlotCount(uint32_t m, size_t epoch_index) const {
  const StripeEpoch& ep = epochs_[epoch_index];
  if (m >= ep.num_maintainers) return 0;
  LId end = EpochEnd(epoch_index);
  if (end == kInvalidLId) return UINT64_MAX;  // open epoch
  uint64_t span = end - ep.start_lid;
  uint64_t stripe = static_cast<uint64_t>(ep.num_maintainers) * ep.batch_size;
  uint64_t full_rounds = span / stripe;
  uint64_t tail = span % stripe;
  uint64_t count = full_rounds * ep.batch_size;
  uint64_t m_start = static_cast<uint64_t>(m) * ep.batch_size;
  if (tail > m_start) {
    count += std::min(tail - m_start, ep.batch_size);
  }
  return count;
}

uint32_t EpochJournal::MaxMaintainers() const {
  uint32_t max = 0;
  for (const auto& ep : epochs_) max = std::max(max, ep.num_maintainers);
  return max;
}

std::string EpochJournal::Encode() const {
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(epochs_.size()));
  for (const auto& ep : epochs_) {
    w.PutU64(ep.start_lid);
    w.PutU32(ep.num_maintainers);
    w.PutU64(ep.batch_size);
  }
  return std::move(w).data();
}

Result<EpochJournal> EpochJournal::Decode(std::string_view data) {
  BinaryReader r(data);
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  if (n == 0) return Status::Corruption("empty epoch journal");
  // Each epoch is 20 bytes on the wire; reject counts the buffer can't hold.
  if (r.remaining() < static_cast<size_t>(n) * 20) {
    return Status::Corruption("epoch journal truncated");
  }
  std::vector<StripeEpoch> epochs(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epochs[i].start_lid));
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&epochs[i].num_maintainers));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epochs[i].batch_size));
  }
  if (epochs.front().start_lid != 0) {
    return Status::Corruption("first epoch must start at 0");
  }
  return EpochJournal(std::move(epochs));
}

}  // namespace chariots::flstore
