#include "flstore/types.h"

#include "common/codec.h"

namespace chariots::flstore {

std::string EncodeLogRecord(const LogRecord& record) {
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(record.tags.size()));
  for (const Tag& tag : record.tags) {
    w.PutBytes(tag.key);
    w.PutBytes(tag.value);
  }
  w.PutBytes(record.body);
  return std::move(w).data();
}

Result<LogRecord> DecodeLogRecord(LId lid, std::string_view data) {
  BinaryReader r(data);
  LogRecord record;
  record.lid = lid;
  uint32_t num_tags = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&num_tags));
  record.tags.resize(num_tags);
  for (uint32_t i = 0; i < num_tags; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&record.tags[i].key));
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&record.tags[i].value));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&record.body));
  return record;
}

LogRecord MakeJunkRecord(LId lid) {
  LogRecord record;
  record.lid = lid;
  record.tags.push_back(Tag{std::string(kJunkTagKey), "1"});
  return record;
}

bool IsJunkRecord(const LogRecord& record) {
  for (const Tag& tag : record.tags) {
    if (tag.key == kJunkTagKey) return true;
  }
  return false;
}

}  // namespace chariots::flstore
