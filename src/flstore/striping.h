#ifndef CHARIOTS_FLSTORE_STRIPING_H_
#define CHARIOTS_FLSTORE_STRIPING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "flstore/types.h"

namespace chariots::flstore {

/// One striping regime: from `start_lid` (inclusive) the log is striped
/// round-robin over `num_maintainers` maintainers in batches of `batch_size`
/// consecutive positions (paper §5.2, Figure 4). Live elasticity (§6.3)
/// installs a new epoch at a *future* LId instead of migrating records.
struct StripeEpoch {
  LId start_lid = 0;
  uint32_t num_maintainers = 1;
  uint64_t batch_size = 1000;

  friend bool operator==(const StripeEpoch&, const StripeEpoch&) = default;
};

/// Identifies one slot owned by one maintainer: the `slot`-th position (in
/// that maintainer's own dense numbering) within epoch `epoch_index`.
struct SlotRef {
  size_t epoch_index = 0;
  uint64_t slot = 0;
};

/// The epoch journal (paper §6.3): the full history of striping regimes.
/// Queues, maintainers, and readers consult it to translate between global
/// LIds and per-maintainer slots — including for old records written under
/// earlier regimes.
class EpochJournal {
 public:
  /// Starts with a single epoch at LId 0.
  explicit EpochJournal(uint32_t num_maintainers, uint64_t batch_size);
  explicit EpochJournal(std::vector<StripeEpoch> epochs);

  /// Installs a new striping regime taking effect at `epoch.start_lid`.
  /// Must be strictly greater than the previous epoch's start (future
  /// reassignment); InvalidArgument otherwise.
  Status AddEpoch(const StripeEpoch& epoch);

  /// The maintainer index that owns global position `lid`.
  uint32_t MaintainerFor(LId lid) const;

  /// The epoch index covering `lid`.
  size_t EpochIndexFor(LId lid) const;

  /// Global LId of maintainer `m`'s slot `ref`. Returns OutOfRange if the
  /// slot would land at or beyond the epoch's end.
  Result<LId> GlobalFor(uint32_t m, SlotRef ref) const;

  /// Inverse of GlobalFor: which (epoch, slot) of which maintainer holds
  /// `lid`.
  SlotRef SlotFor(LId lid) const;

  /// Number of slots maintainer `m` owns in epoch `epoch_index`
  /// (UINT64_MAX for the open final epoch if it owns any).
  uint64_t SlotCount(uint32_t m, size_t epoch_index) const;

  const std::vector<StripeEpoch>& epochs() const { return epochs_; }
  const StripeEpoch& current() const { return epochs_.back(); }
  size_t num_epochs() const { return epochs_.size(); }

  /// Maximum maintainer index + 1 across all epochs.
  uint32_t MaxMaintainers() const;

  std::string Encode() const;
  static Result<EpochJournal> Decode(std::string_view data);

 private:
  /// End (exclusive) of epoch i: next epoch's start, or UINT64_MAX.
  LId EpochEnd(size_t i) const;

  std::vector<StripeEpoch> epochs_;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_STRIPING_H_
