#ifndef CHARIOTS_FLSTORE_INDEXER_H_
#define CHARIOTS_FLSTORE_INDEXER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "flstore/types.h"

namespace chariots::flstore {

/// A tag lookup (paper §5.3): "return the most recent `limit` record LIds
/// carrying tag `key`", optionally restricted to an exact value, a numeric
/// value range, and positions strictly below `before_lid` (the snapshot
/// point used by Hyksos get-transactions).
struct IndexQuery {
  std::string key;
  std::optional<std::string> value_equals;
  /// Numeric comparisons: applied to values parseable as signed integers;
  /// non-numeric values never match when a bound is set.
  std::optional<int64_t> value_min;
  std::optional<int64_t> value_max;
  /// Only postings with lid < before_lid (kInvalidLId = no bound).
  LId before_lid = kInvalidLId;
  /// Max postings returned, most recent (highest lid) first.
  uint32_t limit = 1;
};

/// One posting in the index.
struct Posting {
  LId lid;
  std::string value;

  friend bool operator==(const Posting&, const Posting&) = default;
};

std::string EncodeIndexQuery(const IndexQuery& query);
Result<IndexQuery> DecodeIndexQuery(std::string_view data);
std::string EncodePostings(const std::vector<Posting>& postings);
Result<std::vector<Posting>> DecodePostings(std::string_view data);

/// An indexer maintains tag → postings for the subset of tag keys it
/// champions (keys are partitioned across indexers by hash — see
/// IndexerForKey). Postings per key are kept ordered by LId so "most recent
/// before position X" is a binary search.
class Indexer {
 public:
  Indexer() = default;

  /// Adds a posting. Idempotent per (key, lid).
  void Add(const std::string& key, const std::string& value, LId lid);

  /// Adds postings for every tag of a record.
  void AddRecord(const LogRecord& record, LId lid);

  /// Runs a query; results are most-recent-first.
  std::vector<Posting> Lookup(const IndexQuery& query) const;

  /// Drops postings with lid < horizon (GC alongside the log).
  void TruncateBelow(LId horizon);

  uint64_t posting_count() const;

 private:
  mutable std::mutex mu_;
  // key -> postings sorted ascending by lid.
  std::map<std::string, std::vector<Posting>> postings_;
  uint64_t count_ = 0;
};

/// Multiversion key → version-chain index (LogBase-style, DESIGN.md §11):
/// the log stays the only durable store; this index is rebuilt by log
/// replay and turns point reads into memory lookups. Each key's versions
/// are kept sorted ascending by LId, so "current value as of snapshot X"
/// is a binary search — exactly the shape Hyksos get-transactions need.
class VersionIndex {
 public:
  VersionIndex() = default;

  VersionIndex(const VersionIndex&) = delete;
  VersionIndex& operator=(const VersionIndex&) = delete;

  /// Records that `key` took `value` at log position `lid`. Idempotent per
  /// (key, lid) — replay may revisit records.
  void Apply(const std::string& key, const std::string& value, LId lid);

  /// Most recent version of `key` strictly below `before_lid`
  /// (kInvalidLId = no bound). nullopt if the key has no such version.
  std::optional<Posting> Get(const std::string& key,
                             LId before_lid = kInvalidLId) const;

  /// Drops versions with lid < horizon (GC alongside the log).
  void TruncateBelow(LId horizon);

  uint64_t version_count() const;

 private:
  mutable std::mutex mu_;
  // key -> versions sorted ascending by lid.
  std::map<std::string, std::vector<Posting>> chains_;
  uint64_t count_ = 0;
};

/// The partition function: which of `num_indexers` indexers champions `key`.
uint32_t IndexerForKey(const std::string& key, uint32_t num_indexers);

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_INDEXER_H_
