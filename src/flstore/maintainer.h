#ifndef CHARIOTS_FLSTORE_MAINTAINER_H_
#define CHARIOTS_FLSTORE_MAINTAINER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "flstore/read_cache.h"
#include "flstore/striping.h"
#include "flstore/types.h"
#include "storage/log_store.h"

namespace chariots::flstore {

/// Configuration for one log maintainer.
struct MaintainerOptions {
  /// This maintainer's index within the striping.
  uint32_t index = 0;
  /// Initial striping regime(s). All maintainers of a deployment must agree.
  EpochJournal journal{1, 1000};
  /// Storage engine configuration (in-memory or persistent).
  storage::LogStoreOptions store;
  /// Tail-cache bounds (read path, DESIGN.md §11). Zero disables the cache
  /// (the bench baseline); defaults keep the hot tail of a stripe in RAM.
  uint64_t tail_cache_bytes = 4ull << 20;
  uint64_t tail_cache_records = 4096;
};

/// A log maintainer (paper §5.2): owns the deterministic round-robin ranges
/// of the shared log given by the epoch journal, persists records, serves
/// reads, and participates in the Head-of-the-Log gossip (§5.4).
///
/// Two append paths:
///  * Append() — *post-assignment*: the maintainer assigns the record the
///    next free position it owns. This is the scalable single-datacenter
///    FLStore path; no cross-maintainer coordination.
///  * AppendAt() — pre-assigned LId, used by the Chariots queues stage
///    (§6.2), which performs the causal assignment centrally per token.
///
/// Thread-safe. Transport-agnostic: MaintainerServer (service.h) exposes it
/// over RPC and runs the gossip timer.
class LogMaintainer {
 public:
  explicit LogMaintainer(MaintainerOptions options);

  LogMaintainer(const LogMaintainer&) = delete;
  LogMaintainer& operator=(const LogMaintainer&) = delete;

  /// Opens the underlying store (recovering any persisted records, which
  /// also rebuilds the fill state).
  Status Open();

  /// Closes the underlying store (without syncing — models a crash; call
  /// Sync() first for a graceful shutdown). Open() afterwards re-runs
  /// recovery from disk. Deferred ordered appends and peer gossip knowledge
  /// are dropped, as a real restart would drop them.
  Status Close();

  /// Post-assignment append: assigns the next free owned position.
  /// Internally a batch of one — all assignment logic lives in the batch
  /// path.
  Result<LId> Append(const LogRecord& record);

  /// Batched post-assignment append: takes the lock once, reserves
  /// contiguous runs of owned slots (a run never crosses a stripe-batch or
  /// epoch boundary, so LIds within a run are consecutive), persists all
  /// records with one group-commit store write, and updates fill state and
  /// gossip once. Returns the assigned LIds in record order. All-or-nothing:
  /// on failure no record is persisted and no slot stays reserved.
  Result<std::vector<LId>> AppendBatch(std::span<const LogRecord> records);

  /// Explicit-order append (paper §5.4): the record is only assigned a
  /// position strictly greater than `min_lid`. If the next free position is
  /// not beyond the bound yet, the record is buffered and assigned once the
  /// log advances. Returns the LId if assigned immediately, or kInvalidLId
  /// if deferred (observer fires when it lands).
  Result<LId> AppendOrdered(const LogRecord& record, LId min_lid);

  /// Pre-assigned append. Fails with OutOfRange if `lid` is not owned by
  /// this maintainer, AlreadyExists if occupied.
  Status AppendAt(LId lid, const LogRecord& record);

  /// Fills every owned-but-unfilled position below this maintainer's
  /// assignment cursor with a copy of `junk` (paper §5.3's invalid records).
  /// Used at failover promotion: positions the failed primary assigned but
  /// never replicated would wedge the Head of the Log forever; junk-filling
  /// them lets HL advance, and readers skip records tagged as junk. Returns
  /// the positions filled. The observer fires for each, so fills replicate
  /// and index like any landed record.
  Result<std::vector<LId>> FillHoles(const LogRecord& junk);

  /// Raw read: the record at `lid` regardless of gaps before it. Memory
  /// speed on the hot tail: ownership + presence are answered from the
  /// in-memory read index under a shared lock (concurrent readers never
  /// serialize against each other), the payload comes from the tail cache
  /// when present, and only a cold read falls through to the segment store
  /// (pread under the store's own shared lock — the maintainer lock is NOT
  /// held across disk I/O).
  Result<LogRecord> Read(LId lid) const;

  /// Gap-safe read (paper §5.4): fails with Unavailable if `lid >=
  /// HeadOfLog()` — the caller must not observe positions that may still
  /// have gaps before them.
  Result<LogRecord> ReadCommitted(LId lid) const;

  /// First global position owned by this maintainer that is not yet filled
  /// (contiguously): everything this maintainer owns below it is present.
  /// kInvalidLId if the maintainer owns no unfilled positions (it left the
  /// striping in the current epoch and completed its history).
  LId FirstUnfilledGlobal() const;

  /// Ingests a gossip update from peer maintainer `peer_index`.
  void OnGossip(uint32_t peer_index, LId peer_first_unfilled);

  /// The Head of the Log: every position < HL is filled somewhere in the
  /// cluster (min over the gossip vector). Records below HL are safe to
  /// read in log order with no gaps. Lock-free: served from an atomic
  /// refreshed on every gossip/fill-state change.
  LId HeadOfLog() const;

  /// Installs a future striping epoch (live elasticity, §6.3).
  Status AddEpoch(const StripeEpoch& epoch);

  /// Observer called (outside the lock) for every record that lands, with
  /// its assigned LId. Used to publish index postings and to feed senders.
  void SetAppendObserver(std::function<void(const LogRecord&, LId)> observer);

  /// Flushes buffered writes to stable storage.
  Status Sync();

  /// Garbage-collects storage below `horizon` (see LogStore::TruncateBelow).
  Status TruncateBelow(LId horizon, const std::string& archive_path = "");

  /// Sorted LIds currently stored (recovery/diagnostics; O(n log n)).
  std::vector<LId> StoredLids() const;

  /// Removes a stored record (tombstone) and rebuilds the fill/assignment
  /// state. Used by datacenter crash recovery to discard records beyond a
  /// hole in the recovered prefix.
  Status Remove(LId lid);

  /// Drops every tail-cache entry. Called at epoch-fence transitions
  /// (promotion/demotion) so a node changing roles re-reads through the
  /// store instead of serving a possibly-superseded tail.
  void InvalidateTailCache();

  // Hermes write-state tracking (DESIGN.md §12). A position is *invalid*
  // from the moment its record lands under the replication protocol until
  // the validate leg covers it; the service layer refuses to serve reads of
  // invalid positions (they are not yet known durable everywhere). Absent =
  // valid, so records landed outside the protocol (solo stripes, recovery,
  // direct test appends) stay readable. Storage is not consulted: validity
  // is protocol state, not payload state, and it dies with the process —
  // a restarted replica rejoins via reconfiguration, not by trusting a
  // stale validity map.

  /// Marks `lid` invalid (INV received / landed but not yet all-acked).
  void MarkInvalid(LId lid);

  /// Marks `lid` valid again (VAL received / all peers acked).
  void MarkValid(LId lid);

  /// Flips every invalid position valid — promotion replay: once the new
  /// coordinator has re-broadcast the surviving invalid entries, everything
  /// it stores is the authoritative copy.
  void MarkAllValid();

  /// True while `lid` is in the invalid window.
  bool IsInvalid(LId lid) const;

  /// Number of positions currently invalid.
  uint64_t InvalidCount() const;

  /// Snapshot of every invalid position with its encoded record bytes — the
  /// replay set a promoted coordinator re-broadcasts. Positions whose
  /// payload cannot be read back are skipped (they never landed here).
  std::vector<std::pair<LId, std::string>> InvalidEntries() const;

  /// Asserts the read index and the segment store agree exactly (same lid
  /// set, same locations). Recovery/diagnostic check; O(n).
  Status VerifyReadIndex() const;

  /// Read-index size (test/diagnostic helper).
  uint64_t ReadIndexEntries() const;

  /// Tail-cache occupancy (test/diagnostic helpers).
  uint64_t TailCacheBytes() const { return tail_cache_.bytes(); }
  uint64_t TailCacheEntries() const { return tail_cache_.entries(); }

  uint64_t count() const;
  uint32_t index() const { return options_.index; }
  EpochJournal journal() const;
  /// Number of ordered appends still waiting for their minimum bound.
  size_t deferred_ordered() const;

 private:
  struct DeferredAppend {
    LogRecord record;
    LId min_lid;
  };

  /// A reserved run of consecutive owned slots (and thus consecutive LIds:
  /// runs never span a stripe-batch or epoch boundary).
  struct AssignRun {
    LId start_lid = kInvalidLId;
    uint64_t count = 0;
    size_t epoch_index = 0;
    uint64_t first_slot = 0;
  };

  // All Locked helpers require mu_ held.
  Result<LId> NextAssignableGlobalLocked() const;
  /// Next run of up to `max_records` consecutive assignable slots, clipped
  /// at the current stripe-batch and epoch boundaries. Does not advance the
  /// assignment cursor.
  Result<AssignRun> NextAssignableRunLocked(uint64_t max_records) const;
  /// Shared assignment+persist core: reserves runs covering `n` records,
  /// group-commits them to the store, marks fill state, and refreshes the
  /// gossip entry once. Rolls back reservations if the store write fails.
  Status AppendBatchLocked(const LogRecord* records, size_t n,
                           std::vector<LId>* lids);
  void RebuildStateLocked();
  /// Re-derives the lock-free HL snapshot from gossip_. Must be called
  /// after every mutation of gossip_.
  void RefreshHlLocked();
  void IndexPutLocked(LId lid, const storage::RecordLocation& loc);
  void IndexEraseLocked(LId lid);
  void IndexClearLocked();
  /// Store options with recovery observers attached, so the read index is
  /// rebuilt in the same single pass as segment recovery (no second scan).
  storage::LogStoreOptions HookedStoreOptions(storage::LogStoreOptions store);
  Result<LId> AppendLocked(const LogRecord& record);
  void MarkFilledLocked(SlotRef ref);
  LId FirstUnfilledGlobalLocked() const;
  // Drains deferred ordered appends that became eligible; returns landed
  // (record, lid) pairs for observer notification.
  std::vector<std::pair<LogRecord, LId>> DrainDeferredLocked();

  MaintainerOptions options_;

  /// Reader–writer lock: Read/ReadCommitted and the metadata accessors take
  /// it shared; appends, gossip ingestion, and recovery take it exclusive.
  mutable std::shared_mutex mu_;
  EpochJournal journal_;
  storage::LogStore store_;
  /// LId → payload location, in lockstep with the store: populated by the
  /// append path, rebuilt by the recovery-scan hooks, pruned by Remove and
  /// TruncateBelow. Guarded by mu_. Answers presence/ownership without
  /// touching the store and feeds RebuildStateLocked without a ListLids
  /// pass.
  std::unordered_map<LId, storage::RecordLocation> read_index_;
  /// Recently appended payloads (own internal lock; see read_cache.h).
  TailCache tail_cache_;
  /// Lock-free HL snapshot (min over gossip_), kept fresh by
  /// RefreshHlLocked so ReadCommitted/HeadOfLog never take mu_.
  std::atomic<LId> hl_cache_{0};
  // Post-assignment cursor: for each epoch, the next slot to hand out.
  std::vector<uint64_t> assign_next_;
  // Fill tracking: contiguous filled slot count per epoch + out-of-order
  // slots (pre-assigned appends may arrive ahead of earlier ones).
  std::vector<uint64_t> filled_contig_;
  std::vector<std::set<uint64_t>> filled_pending_;
  // Gossip vector: first-unfilled global per maintainer (self kept fresh).
  std::vector<LId> gossip_;
  std::deque<DeferredAppend> deferred_;
  /// Positions in the Hermes invalid window (see MarkInvalid). Guarded by
  /// mu_; tiny in steady state (only the in-flight write tail).
  std::set<LId> invalid_;
  std::function<void(const LogRecord&, LId)> observer_;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_MAINTAINER_H_
