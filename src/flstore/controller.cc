#include "flstore/controller.h"

#include <algorithm>
#include <utility>

#include "common/codec.h"
#include "common/logging.h"

namespace chariots::flstore {

std::string EncodeClusterInfo(const ClusterInfo& info) {
  BinaryWriter w;
  w.PutBytes(info.journal.Encode());
  w.PutU32(static_cast<uint32_t>(info.maintainers.size()));
  for (const auto& m : info.maintainers) w.PutBytes(m);
  w.PutU32(static_cast<uint32_t>(info.indexers.size()));
  for (const auto& i : info.indexers) w.PutBytes(i);
  w.PutU64(info.approx_records);
  w.PutU64(info.version);
  w.PutU32(static_cast<uint32_t>(info.replicas.size()));
  for (const auto& set : info.replicas) {
    w.PutU32(static_cast<uint32_t>(set.size()));
    for (const auto& node : set) w.PutBytes(node);
  }
  w.PutU32(static_cast<uint32_t>(info.fence_epochs.size()));
  for (uint64_t e : info.fence_epochs) w.PutU64(e);
  return std::move(w).data();
}

Result<ClusterInfo> DecodeClusterInfo(std::string_view data) {
  BinaryReader r(data);
  ClusterInfo info;
  std::string journal_bytes;
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&journal_bytes));
  CHARIOTS_ASSIGN_OR_RETURN(info.journal, EpochJournal::Decode(journal_bytes));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  info.maintainers.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&info.maintainers[i]));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  info.indexers.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&info.indexers[i]));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&info.approx_records));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&info.version));
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  info.replicas.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t m = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&m));
    info.replicas[i].resize(m);
    for (uint32_t j = 0; j < m; ++j) {
      CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&info.replicas[i][j]));
    }
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  info.fence_epochs.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&info.fence_epochs[i]));
  }
  return info;
}

Controller::Controller(ClusterInfo initial, ControllerOptions options)
    : info_(std::move(initial)),
      leases_(options.clock, options.lease_nanos) {
  // Normalize the replica-set vectors so callers that build a ClusterInfo
  // the pre-replication way (maintainers only) get sane defaults: no
  // replicas, every stripe at fencing epoch 1.
  info_.replicas.resize(info_.maintainers.size());
  if (info_.fence_epochs.size() < info_.maintainers.size()) {
    info_.fence_epochs.resize(info_.maintainers.size(), 1);
  }
  for (uint64_t& e : info_.fence_epochs) {
    if (e == 0) e = 1;
  }
}

ClusterInfo Controller::GetInfo() const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_;
}

Status Controller::AddMaintainer(const net::NodeId& node,
                                 const StripeEpoch& epoch,
                                 uint64_t expected_version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (expected_version != info_.version) {
    return Status::Aborted(
        "cluster layout moved (concurrent failover or membership change); "
        "re-read and retry AddMaintainer");
  }
  if (epoch.num_maintainers != info_.maintainers.size() + 1) {
    return Status::InvalidArgument(
        "new epoch must reference the grown maintainer count");
  }
  CHARIOTS_RETURN_IF_ERROR(info_.journal.AddEpoch(epoch));
  info_.maintainers.push_back(node);
  info_.replicas.emplace_back();
  info_.fence_epochs.push_back(1);
  ++info_.version;
  return Status::OK();
}

Status Controller::AddReplica(uint32_t index, const net::NodeId& replica) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= info_.maintainers.size()) {
    return Status::InvalidArgument("no such maintainer stripe");
  }
  info_.replicas[index].push_back(replica);
  ++info_.version;
  return Status::OK();
}

void Controller::SetApproxRecords(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  info_.approx_records = n;
}

void Controller::Heartbeat(uint32_t index, const net::NodeId& from) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (index >= info_.maintainers.size()) return;
    if (info_.maintainers[index] != from) return;  // fenced old coordinator
  }
  leases_.Renew(index);
}

std::vector<FailoverPlan> Controller::ExpiredLeases() {
  std::vector<FailoverPlan> plans;
  for (uint64_t key : leases_.Expired()) {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t index = static_cast<uint32_t>(key);
    if (in_failover_.count(index) != 0) continue;
    if (index >= info_.maintainers.size()) {
      leases_.Remove(key);
      continue;
    }
    if (info_.replicas[index].empty()) {
      // Nothing to promote; drop the lease so we don't report the stripe
      // every tick (it re-arms if the coordinator comes back and
      // heartbeats).
      LOG_WARN << "maintainer " << index << " (" << info_.maintainers[index]
               << ") lease expired but stripe has no replicas";
      leases_.Remove(key);
      continue;
    }
    in_failover_.insert(index);
    plans.push_back(FailoverPlan{
        .index = index,
        .new_epoch = info_.fence_epochs[index] + 1,
        .candidate = info_.replicas[index].front(),
        .survivors = {info_.replicas[index].begin() + 1,
                      info_.replicas[index].end()},
        .failed_primary = info_.maintainers[index],
    });
  }
  return plans;
}

Result<FailoverPlan> Controller::PlanFailover(uint32_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= info_.maintainers.size()) {
    return Status::InvalidArgument("no such maintainer stripe");
  }
  if (in_failover_.count(index) != 0) {
    return Status::Aborted("failover already in flight for this stripe");
  }
  if (info_.replicas[index].empty()) {
    return Status::FailedPrecondition("stripe has no replicas to promote");
  }
  in_failover_.insert(index);
  return FailoverPlan{
      .index = index,
      .new_epoch = info_.fence_epochs[index] + 1,
      .candidate = info_.replicas[index].front(),
      .survivors = {info_.replicas[index].begin() + 1,
                    info_.replicas[index].end()},
      .failed_primary = info_.maintainers[index],
  };
}

Status Controller::CommitFailover(const FailoverPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_failover_.count(plan.index) == 0) {
    return Status::FailedPrecondition("no failover planned for this stripe");
  }
  if (plan.index >= info_.maintainers.size() ||
      info_.replicas[plan.index].empty() ||
      info_.replicas[plan.index].front() != plan.candidate) {
    in_failover_.erase(plan.index);
    return Status::Aborted("stripe layout changed under the failover plan");
  }
  LOG_INFO << "failing over maintainer " << plan.index << ": "
           << plan.failed_primary << " -> " << plan.candidate << " (epoch "
           << plan.new_epoch << ")";
  info_.maintainers[plan.index] = plan.candidate;
  info_.replicas[plan.index] = plan.survivors;
  info_.fence_epochs[plan.index] = plan.new_epoch;
  ++info_.version;
  in_failover_.erase(plan.index);
  // The old lease belonged to the dead coordinator; detection for this
  // stripe re-arms when the promoted node first heartbeats.
  leases_.Remove(plan.index);
  return Status::OK();
}

void Controller::AbortFailover(uint32_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  in_failover_.erase(index);
  // Re-arm so the monitor retries after another full lease period instead
  // of hot-looping on a promotion RPC that just failed.
  leases_.Renew(index);
}

Result<ReplicaRemoval> Controller::PlanReplicaRemoval(
    uint32_t index, const net::NodeId& suspect) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= info_.maintainers.size()) {
    return Status::InvalidArgument("no such maintainer stripe");
  }
  if (in_failover_.count(index) != 0) {
    return Status::Aborted("reconfiguration already in flight for stripe");
  }
  const std::vector<net::NodeId>& set = info_.replicas[index];
  if (std::find(set.begin(), set.end(), suspect) == set.end()) {
    return Status::FailedPrecondition("suspect is not a replica of stripe");
  }
  in_failover_.insert(index);
  ReplicaRemoval removal;
  removal.index = index;
  removal.new_epoch = info_.fence_epochs[index] + 1;
  removal.removed = suspect;
  removal.coordinator = info_.maintainers[index];
  for (const net::NodeId& node : set) {
    if (node != suspect) removal.survivors.push_back(node);
  }
  return removal;
}

Status Controller::CommitReplicaRemoval(const ReplicaRemoval& removal) {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_failover_.count(removal.index) == 0) {
    return Status::FailedPrecondition("no eviction planned for this stripe");
  }
  in_failover_.erase(removal.index);
  if (removal.index >= info_.maintainers.size() ||
      info_.maintainers[removal.index] != removal.coordinator) {
    return Status::Aborted("stripe layout changed under the eviction plan");
  }
  LOG_INFO << "evicting replica " << removal.removed << " from maintainer "
           << removal.index << " (epoch " << removal.new_epoch << ")";
  info_.replicas[removal.index] = removal.survivors;
  info_.fence_epochs[removal.index] = removal.new_epoch;
  ++info_.version;
  return Status::OK();
}

void Controller::AbortReplicaRemoval(uint32_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  in_failover_.erase(index);
}

uint64_t Controller::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_.version;
}

}  // namespace chariots::flstore
