#include "flstore/controller.h"

#include "common/codec.h"

namespace chariots::flstore {

std::string EncodeClusterInfo(const ClusterInfo& info) {
  BinaryWriter w;
  w.PutBytes(info.journal.Encode());
  w.PutU32(static_cast<uint32_t>(info.maintainers.size()));
  for (const auto& m : info.maintainers) w.PutBytes(m);
  w.PutU32(static_cast<uint32_t>(info.indexers.size()));
  for (const auto& i : info.indexers) w.PutBytes(i);
  w.PutU64(info.approx_records);
  return std::move(w).data();
}

Result<ClusterInfo> DecodeClusterInfo(std::string_view data) {
  BinaryReader r(data);
  ClusterInfo info;
  std::string journal_bytes;
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&journal_bytes));
  CHARIOTS_ASSIGN_OR_RETURN(info.journal, EpochJournal::Decode(journal_bytes));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  info.maintainers.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&info.maintainers[i]));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  info.indexers.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&info.indexers[i]));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&info.approx_records));
  return info;
}

}  // namespace chariots::flstore
