#include "flstore/controller.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/codec.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::flstore {

namespace {

metrics::Counter* MetaWalAppendsCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.ctrl.meta_wal_appends");
  return c;
}

/// Guards a decoded element count against the bytes actually present:
/// every counted element consumes at least one byte downstream, so a count
/// beyond the remaining input is corruption — and resizing a vector to a
/// bit-flipped 4-billion count must never be attempted.
Status CheckCount(uint32_t n, const BinaryReader& r) {
  if (n > r.remaining()) {
    return Status::Corruption("element count exceeds remaining input");
  }
  return Status::OK();
}

void EncodeFailoverPlan(const FailoverPlan& plan, BinaryWriter* w) {
  w->PutU32(plan.index);
  w->PutU64(plan.new_epoch);
  w->PutBytes(plan.candidate);
  w->PutBytes(plan.failed_primary);
  w->PutU32(static_cast<uint32_t>(plan.survivors.size()));
  for (const net::NodeId& node : plan.survivors) w->PutBytes(node);
}

Status DecodeFailoverPlan(BinaryReader* r, FailoverPlan* plan) {
  CHARIOTS_RETURN_IF_ERROR(r->GetU32(&plan->index));
  CHARIOTS_RETURN_IF_ERROR(r->GetU64(&plan->new_epoch));
  CHARIOTS_RETURN_IF_ERROR(r->GetBytes(&plan->candidate));
  CHARIOTS_RETURN_IF_ERROR(r->GetBytes(&plan->failed_primary));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r->GetU32(&n));
  CHARIOTS_RETURN_IF_ERROR(CheckCount(n, *r));
  plan->survivors.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r->GetBytes(&plan->survivors[i]));
  }
  return Status::OK();
}

void EncodeReplicaRemoval(const ReplicaRemoval& removal, BinaryWriter* w) {
  w->PutU32(removal.index);
  w->PutU64(removal.new_epoch);
  w->PutBytes(removal.removed);
  w->PutBytes(removal.coordinator);
  w->PutU32(static_cast<uint32_t>(removal.survivors.size()));
  for (const net::NodeId& node : removal.survivors) w->PutBytes(node);
}

Status DecodeReplicaRemoval(BinaryReader* r, ReplicaRemoval* removal) {
  CHARIOTS_RETURN_IF_ERROR(r->GetU32(&removal->index));
  CHARIOTS_RETURN_IF_ERROR(r->GetU64(&removal->new_epoch));
  CHARIOTS_RETURN_IF_ERROR(r->GetBytes(&removal->removed));
  CHARIOTS_RETURN_IF_ERROR(r->GetBytes(&removal->coordinator));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r->GetU32(&n));
  CHARIOTS_RETURN_IF_ERROR(CheckCount(n, *r));
  removal->survivors.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r->GetBytes(&removal->survivors[i]));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeClusterInfo(const ClusterInfo& info) {
  BinaryWriter w;
  w.PutBytes(info.journal.Encode());
  w.PutU32(static_cast<uint32_t>(info.maintainers.size()));
  for (const auto& m : info.maintainers) w.PutBytes(m);
  w.PutU32(static_cast<uint32_t>(info.indexers.size()));
  for (const auto& i : info.indexers) w.PutBytes(i);
  w.PutU64(info.approx_records);
  w.PutU64(info.version);
  w.PutU32(static_cast<uint32_t>(info.replicas.size()));
  for (const auto& set : info.replicas) {
    w.PutU32(static_cast<uint32_t>(set.size()));
    for (const auto& node : set) w.PutBytes(node);
  }
  w.PutU32(static_cast<uint32_t>(info.fence_epochs.size()));
  for (uint64_t e : info.fence_epochs) w.PutU64(e);
  w.PutU64(info.ctrl_epoch);
  return std::move(w).data();
}

Result<ClusterInfo> DecodeClusterInfo(std::string_view data) {
  BinaryReader r(data);
  ClusterInfo info;
  std::string journal_bytes;
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&journal_bytes));
  CHARIOTS_ASSIGN_OR_RETURN(info.journal, EpochJournal::Decode(journal_bytes));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  CHARIOTS_RETURN_IF_ERROR(CheckCount(n, r));
  info.maintainers.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&info.maintainers[i]));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  CHARIOTS_RETURN_IF_ERROR(CheckCount(n, r));
  info.indexers.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&info.indexers[i]));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&info.approx_records));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&info.version));
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  CHARIOTS_RETURN_IF_ERROR(CheckCount(n, r));
  info.replicas.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t m = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&m));
    CHARIOTS_RETURN_IF_ERROR(CheckCount(m, r));
    info.replicas[i].resize(m);
    for (uint32_t j = 0; j < m; ++j) {
      CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&info.replicas[i][j]));
    }
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  CHARIOTS_RETURN_IF_ERROR(CheckCount(n, r));
  info.fence_epochs.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&info.fence_epochs[i]));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&info.ctrl_epoch));
  return info;
}

std::string EncodeControllerState(const ControllerState& state) {
  BinaryWriter w;
  w.PutBytes(EncodeClusterInfo(state.info));
  w.PutU64(state.max_granted_epoch);
  w.PutU32(static_cast<uint32_t>(state.inflight_failovers.size()));
  for (const FailoverPlan& plan : state.inflight_failovers) {
    EncodeFailoverPlan(plan, &w);
  }
  w.PutU32(static_cast<uint32_t>(state.inflight_removals.size()));
  for (const ReplicaRemoval& removal : state.inflight_removals) {
    EncodeReplicaRemoval(removal, &w);
  }
  return std::move(w).data();
}

Result<ControllerState> DecodeControllerState(std::string_view data) {
  BinaryReader r(data);
  ControllerState state;
  std::string info_bytes;
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&info_bytes));
  CHARIOTS_ASSIGN_OR_RETURN(state.info, DecodeClusterInfo(info_bytes));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&state.max_granted_epoch));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  CHARIOTS_RETURN_IF_ERROR(CheckCount(n, r));
  state.inflight_failovers.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(
        DecodeFailoverPlan(&r, &state.inflight_failovers[i]));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  CHARIOTS_RETURN_IF_ERROR(CheckCount(n, r));
  state.inflight_removals.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(
        DecodeReplicaRemoval(&r, &state.inflight_removals[i]));
  }
  return state;
}

Controller::Controller(ClusterInfo initial, ControllerOptions options)
    : options_(options),
      info_(std::move(initial)),
      leases_(options.clock, options.lease_nanos),
      wal_(storage::MetaWal::Options{options.meta_wal_path,
                                     options.disk_faults,
                                     options.meta_wal_compact_min_frames}) {
  // Normalize the replica-set vectors so callers that build a ClusterInfo
  // the pre-replication way (maintainers only) get sane defaults: no
  // replicas, every stripe at fencing epoch 1.
  info_.replicas.resize(info_.maintainers.size());
  if (info_.fence_epochs.size() < info_.maintainers.size()) {
    info_.fence_epochs.resize(info_.maintainers.size(), 1);
  }
  for (uint64_t& e : info_.fence_epochs) {
    if (e == 0) e = 1;
  }
  if (info_.ctrl_epoch == 0) info_.ctrl_epoch = 1;
}

Controller::~Controller() { (void)Close(); }

Status Controller::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.meta_wal_path.empty() || wal_open_) return Status::OK();
  CHARIOTS_RETURN_IF_ERROR(wal_.Open());
  wal_open_ = true;
  std::optional<std::string> frame = wal_.recovered();
  if (!frame.has_value()) {
    // First boot on this WAL: the constructor's initial state becomes
    // frame zero, so even a crash before the first mutation recovers it.
    return PersistLocked();
  }
  CHARIOTS_ASSIGN_OR_RETURN(ControllerState state,
                            DecodeControllerState(*frame));
  info_ = std::move(state.info);
  max_granted_epoch_ = state.max_granted_epoch;
  inflight_failovers_.clear();
  for (FailoverPlan& plan : state.inflight_failovers) {
    uint32_t index = plan.index;
    inflight_failovers_.emplace(index, std::move(plan));
  }
  inflight_removals_.clear();
  for (ReplicaRemoval& removal : state.inflight_removals) {
    uint32_t index = removal.index;
    inflight_removals_.emplace(index, std::move(removal));
  }
  // Leases are runtime state: detection re-arms as coordinators heartbeat
  // the recovered layout.
  return Status::OK();
}

Status Controller::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wal_open_) return Status::OK();
  wal_open_ = false;
  return wal_.Close();
}

Status Controller::PersistLocked() {
  if (!wal_open_) return Status::OK();
  ControllerState state;
  state.info = info_;
  state.max_granted_epoch = max_granted_epoch_;
  state.inflight_failovers.reserve(inflight_failovers_.size());
  for (const auto& [index, plan] : inflight_failovers_) {
    state.inflight_failovers.push_back(plan);
  }
  state.inflight_removals.reserve(inflight_removals_.size());
  for (const auto& [index, removal] : inflight_removals_) {
    state.inflight_removals.push_back(removal);
  }
  CHARIOTS_RETURN_IF_ERROR(wal_.Append(EncodeControllerState(state)));
  MetaWalAppendsCounter()->Add();
  return Status::OK();
}

template <typename Fn>
Status Controller::MutateLocked(Fn&& fn) {
  ClusterInfo saved_info = info_;
  std::map<uint32_t, FailoverPlan> saved_failovers = inflight_failovers_;
  std::map<uint32_t, ReplicaRemoval> saved_removals = inflight_removals_;
  uint64_t saved_granted = max_granted_epoch_;
  Status applied = fn();
  if (!applied.ok()) return applied;
  Status persisted = PersistLocked();
  if (!persisted.ok()) {
    // The disk refused the frame; roll memory back so the caller's failed
    // mutation really did not happen (a restart would not know it either).
    info_ = std::move(saved_info);
    inflight_failovers_ = std::move(saved_failovers);
    inflight_removals_ = std::move(saved_removals);
    max_granted_epoch_ = saved_granted;
    return persisted;
  }
  return Status::OK();
}

ClusterInfo Controller::GetInfo() const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_;
}

Status Controller::AddMaintainer(const net::NodeId& node,
                                 const StripeEpoch& epoch,
                                 uint64_t expected_version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (expected_version != info_.version) {
    return Status::Aborted(
        "cluster layout moved (concurrent failover or membership change); "
        "re-read and retry AddMaintainer");
  }
  if (epoch.num_maintainers != info_.maintainers.size() + 1) {
    return Status::InvalidArgument(
        "new epoch must reference the grown maintainer count");
  }
  return MutateLocked([&] {
    CHARIOTS_RETURN_IF_ERROR(info_.journal.AddEpoch(epoch));
    info_.maintainers.push_back(node);
    info_.replicas.emplace_back();
    info_.fence_epochs.push_back(1);
    ++info_.version;
    return Status::OK();
  });
}

Status Controller::AddReplica(uint32_t index, const net::NodeId& replica) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= info_.maintainers.size()) {
    return Status::InvalidArgument("no such maintainer stripe");
  }
  return MutateLocked([&] {
    info_.replicas[index].push_back(replica);
    ++info_.version;
    return Status::OK();
  });
}

void Controller::SetApproxRecords(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  // Advisory; not worth a WAL frame per update. The next durable mutation
  // snapshots it along with everything else.
  info_.approx_records = n;
}

void Controller::Heartbeat(uint32_t index, const net::NodeId& from) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (index >= info_.maintainers.size()) return;
    if (info_.maintainers[index] != from) return;  // fenced old coordinator
  }
  leases_.Renew(index);
}

std::vector<FailoverPlan> Controller::ExpiredLeases() {
  std::vector<FailoverPlan> plans;
  for (uint64_t key : leases_.Expired()) {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t index = static_cast<uint32_t>(key);
    if (InFailoverLocked(index)) continue;
    if (index >= info_.maintainers.size()) {
      leases_.Remove(key);
      continue;
    }
    if (info_.replicas[index].empty()) {
      // Nothing to promote; drop the lease so we don't report the stripe
      // every tick (it re-arms if the coordinator comes back and
      // heartbeats). Rate-limited: with the monitor ticking every few ms,
      // a replica-less dead stripe would otherwise flood the log.
      LOG_EVERY_N_SEC(kWarn, 5)
          << "maintainer " << index << " (" << info_.maintainers[index]
          << ") lease expired but stripe has no replicas";
      leases_.Remove(key);
      continue;
    }
    FailoverPlan plan{
        .index = index,
        .new_epoch = info_.fence_epochs[index] + 1,
        .candidate = info_.replicas[index].front(),
        .survivors = {info_.replicas[index].begin() + 1,
                      info_.replicas[index].end()},
        .failed_primary = info_.maintainers[index],
    };
    Status planned = MutateLocked([&] {
      inflight_failovers_.emplace(index, plan);
      return Status::OK();
    });
    if (!planned.ok()) {
      LOG_EVERY_N_SEC(kWarn, 5) << "could not persist failover plan for "
                                << "stripe " << index << ": "
                                << planned.ToString();
      continue;
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

Result<FailoverPlan> Controller::PlanFailover(uint32_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= info_.maintainers.size()) {
    return Status::InvalidArgument("no such maintainer stripe");
  }
  if (InFailoverLocked(index)) {
    return Status::Aborted("failover already in flight for this stripe");
  }
  if (info_.replicas[index].empty()) {
    return Status::FailedPrecondition("stripe has no replicas to promote");
  }
  FailoverPlan plan{
      .index = index,
      .new_epoch = info_.fence_epochs[index] + 1,
      .candidate = info_.replicas[index].front(),
      .survivors = {info_.replicas[index].begin() + 1,
                    info_.replicas[index].end()},
      .failed_primary = info_.maintainers[index],
  };
  CHARIOTS_RETURN_IF_ERROR(MutateLocked([&] {
    inflight_failovers_.emplace(index, plan);
    return Status::OK();
  }));
  return plan;
}

Status Controller::CommitFailover(const FailoverPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_failovers_.count(plan.index) == 0) {
    return Status::FailedPrecondition("no failover planned for this stripe");
  }
  if (plan.index >= info_.maintainers.size() ||
      info_.replicas[plan.index].empty() ||
      info_.replicas[plan.index].front() != plan.candidate) {
    inflight_failovers_.erase(plan.index);
    (void)PersistLocked();
    return Status::Aborted("stripe layout changed under the failover plan");
  }
  LOG_INFO << "failing over maintainer " << plan.index << ": "
           << plan.failed_primary << " -> " << plan.candidate << " (epoch "
           << plan.new_epoch << ")";
  CHARIOTS_RETURN_IF_ERROR(MutateLocked([&] {
    info_.maintainers[plan.index] = plan.candidate;
    info_.replicas[plan.index] = plan.survivors;
    info_.fence_epochs[plan.index] = plan.new_epoch;
    ++info_.version;
    inflight_failovers_.erase(plan.index);
    return Status::OK();
  }));
  // The old lease belonged to the dead coordinator; detection for this
  // stripe re-arms when the promoted node first heartbeats.
  leases_.Remove(plan.index);
  return Status::OK();
}

void Controller::AbortFailover(uint32_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)MutateLocked([&] {
    inflight_failovers_.erase(index);
    return Status::OK();
  });
  // Re-arm so the monitor retries after another full lease period instead
  // of hot-looping on a promotion RPC that just failed.
  leases_.Renew(index);
}

Result<ReplicaRemoval> Controller::PlanReplicaRemoval(
    uint32_t index, const net::NodeId& suspect) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= info_.maintainers.size()) {
    return Status::InvalidArgument("no such maintainer stripe");
  }
  if (InFailoverLocked(index)) {
    return Status::Aborted("reconfiguration already in flight for stripe");
  }
  const std::vector<net::NodeId>& set = info_.replicas[index];
  if (std::find(set.begin(), set.end(), suspect) == set.end()) {
    return Status::FailedPrecondition("suspect is not a replica of stripe");
  }
  ReplicaRemoval removal;
  removal.index = index;
  removal.new_epoch = info_.fence_epochs[index] + 1;
  removal.removed = suspect;
  removal.coordinator = info_.maintainers[index];
  for (const net::NodeId& node : set) {
    if (node != suspect) removal.survivors.push_back(node);
  }
  CHARIOTS_RETURN_IF_ERROR(MutateLocked([&] {
    inflight_removals_.emplace(index, removal);
    return Status::OK();
  }));
  return removal;
}

Status Controller::CommitReplicaRemoval(const ReplicaRemoval& removal) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_removals_.count(removal.index) == 0) {
    return Status::FailedPrecondition("no eviction planned for this stripe");
  }
  if (removal.index >= info_.maintainers.size() ||
      info_.maintainers[removal.index] != removal.coordinator) {
    inflight_removals_.erase(removal.index);
    (void)PersistLocked();
    return Status::Aborted("stripe layout changed under the eviction plan");
  }
  LOG_INFO << "evicting replica " << removal.removed << " from maintainer "
           << removal.index << " (epoch " << removal.new_epoch << ")";
  return MutateLocked([&] {
    info_.replicas[removal.index] = removal.survivors;
    info_.fence_epochs[removal.index] = removal.new_epoch;
    ++info_.version;
    inflight_removals_.erase(removal.index);
    return Status::OK();
  });
}

void Controller::AbortReplicaRemoval(uint32_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)MutateLocked([&] {
    inflight_removals_.erase(index);
    return Status::OK();
  });
}

uint64_t Controller::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_.version;
}

uint64_t Controller::ctrl_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_.ctrl_epoch;
}

uint64_t Controller::max_granted_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_granted_epoch_;
}

Status Controller::AdoptCtrlEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= info_.ctrl_epoch) return Status::OK();
  return MutateLocked([&] {
    info_.ctrl_epoch = epoch;
    return Status::OK();
  });
}

Result<bool> Controller::GrantVote(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= info_.ctrl_epoch || epoch <= max_granted_epoch_) {
    return false;
  }
  CHARIOTS_RETURN_IF_ERROR(MutateLocked([&] {
    max_granted_epoch_ = epoch;
    return Status::OK();
  }));
  return true;
}

Status Controller::InstallReplicatedState(const ClusterInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::tie(info.ctrl_epoch, info.version) <
      std::tie(info_.ctrl_epoch, info_.version)) {
    return Status::Aborted("offered layout is older than the local one");
  }
  return MutateLocked([&] {
    info_ = info;
    // Any locally planned two-phase work is moot: the leader that sent
    // this layout owns reconfiguration now.
    inflight_failovers_.clear();
    inflight_removals_.clear();
    return Status::OK();
  });
}

std::vector<FailoverPlan> Controller::InflightFailovers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FailoverPlan> plans;
  plans.reserve(inflight_failovers_.size());
  for (const auto& [index, plan] : inflight_failovers_) {
    plans.push_back(plan);
  }
  return plans;
}

std::vector<ReplicaRemoval> Controller::InflightRemovals() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReplicaRemoval> removals;
  removals.reserve(inflight_removals_.size());
  for (const auto& [index, removal] : inflight_removals_) {
    removals.push_back(removal);
  }
  return removals;
}

}  // namespace chariots::flstore
