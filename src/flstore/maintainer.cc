#include "flstore/maintainer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::flstore {

namespace {

metrics::Gauge* ReadIndexEntriesGauge() {
  static metrics::Gauge* g = metrics::Registry::Default().GetGauge(
      "chariots.flstore.read_index.entries");
  return g;
}

}  // namespace

LogMaintainer::LogMaintainer(MaintainerOptions options)
    : options_(options),
      journal_(options.journal),
      store_(HookedStoreOptions(std::move(options.store))),
      tail_cache_(TailCacheOptions{options.tail_cache_bytes,
                                   options.tail_cache_records}) {
  size_t epochs = journal_.num_epochs();
  assign_next_.assign(epochs, 0);
  filled_contig_.assign(epochs, 0);
  filled_pending_.assign(epochs, {});
  gossip_.assign(
      std::max<size_t>(journal_.MaxMaintainers(), options.index + 1), 0);
}

storage::LogStoreOptions LogMaintainer::HookedStoreOptions(
    storage::LogStoreOptions store) {
  // The hooks run under the store lock while Open() holds mu_ exclusively,
  // so plain read_index_ mutation is safe. They must not call back into the
  // store (see LogStoreOptions).
  store.on_recovered_record = [this](uint64_t lid,
                                     const storage::RecordLocation& loc) {
    IndexPutLocked(lid, loc);
  };
  store.on_recovered_tombstone = [this](uint64_t lid) {
    IndexEraseLocked(lid);
  };
  return store;
}

void LogMaintainer::IndexPutLocked(LId lid,
                                   const storage::RecordLocation& loc) {
  auto [it, inserted] = read_index_.insert_or_assign(lid, loc);
  (void)it;
  if (inserted) ReadIndexEntriesGauge()->Add(1);
}

void LogMaintainer::IndexEraseLocked(LId lid) {
  if (read_index_.erase(lid) != 0) ReadIndexEntriesGauge()->Add(-1);
}

void LogMaintainer::IndexClearLocked() {
  ReadIndexEntriesGauge()->Add(-static_cast<int64_t>(read_index_.size()));
  read_index_.clear();
}

Status LogMaintainer::Open() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  IndexClearLocked();  // the recovery-scan hooks repopulate it
  CHARIOTS_RETURN_IF_ERROR(store_.Open());
  RebuildStateLocked();
  return Status::OK();
}

Status LogMaintainer::Close() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  CHARIOTS_RETURN_IF_ERROR(store_.Close());
  // Crash semantics: buffered ordered appends that never landed are lost
  // (the client never got an LId for them, so it retries), and knowledge of
  // peers is stale on restart — gossip repopulates it. The read index and
  // tail cache die with the process image.
  deferred_.clear();
  IndexClearLocked();
  tail_cache_.Clear();
  invalid_.clear();
  std::fill(gossip_.begin(), gossip_.end(), 0);
  RefreshHlLocked();
  return Status::OK();
}

void LogMaintainer::RebuildStateLocked() {
  std::fill(assign_next_.begin(), assign_next_.end(), 0);
  std::fill(filled_contig_.begin(), filled_contig_.end(), 0);
  for (auto& pending : filled_pending_) pending.clear();
  // Rebuild fill/assignment state from the read index, which mirrors the
  // store exactly (populated by the recovery-scan hooks or the append
  // path) — no second pass over the store.
  for (const auto& [lid, loc] : read_index_) {
    SlotRef ref = journal_.SlotFor(lid);
    MarkFilledLocked(ref);
    assign_next_[ref.epoch_index] =
        std::max(assign_next_[ref.epoch_index], ref.slot + 1);
  }
  gossip_[options_.index] = FirstUnfilledGlobalLocked();
  RefreshHlLocked();
}

void LogMaintainer::RefreshHlLocked() {
  hl_cache_.store(*std::min_element(gossip_.begin(), gossip_.end()),
                  std::memory_order_release);
}

Result<LId> LogMaintainer::NextAssignableGlobalLocked() const {
  // Walk epochs starting from the first with unassigned slots; skip epochs
  // where this maintainer has no (or no more) slots.
  for (size_t e = 0; e < journal_.num_epochs(); ++e) {
    uint64_t slots = journal_.SlotCount(options_.index, e);
    if (assign_next_[e] >= slots) continue;  // exhausted or not a member
    Result<LId> global =
        journal_.GlobalFor(options_.index, SlotRef{e, assign_next_[e]});
    if (global.ok()) return global;
  }
  return Status::ResourceExhausted(
      "maintainer owns no further positions in the current striping");
}

void LogMaintainer::MarkFilledLocked(SlotRef ref) {
  if (ref.epoch_index >= filled_contig_.size()) return;
  uint64_t& contig = filled_contig_[ref.epoch_index];
  std::set<uint64_t>& pending = filled_pending_[ref.epoch_index];
  if (ref.slot == contig) {
    ++contig;
    while (!pending.empty() && *pending.begin() == contig) {
      pending.erase(pending.begin());
      ++contig;
    }
  } else if (ref.slot > contig) {
    pending.insert(ref.slot);
  }
}

LId LogMaintainer::FirstUnfilledGlobalLocked() const {
  for (size_t e = 0; e < journal_.num_epochs(); ++e) {
    uint64_t slots = journal_.SlotCount(options_.index, e);
    if (slots == 0) continue;
    if (filled_contig_[e] >= slots) continue;  // epoch fully filled
    Result<LId> global = journal_.GlobalFor(
        options_.index, SlotRef{e, filled_contig_[e]});
    if (global.ok()) return *global;
  }
  return kInvalidLId;
}

Result<LogMaintainer::AssignRun> LogMaintainer::NextAssignableRunLocked(
    uint64_t max_records) const {
  for (size_t e = 0; e < journal_.num_epochs(); ++e) {
    uint64_t slots = journal_.SlotCount(options_.index, e);
    if (assign_next_[e] >= slots) continue;  // exhausted or not a member
    uint64_t slot = assign_next_[e];
    Result<LId> global = journal_.GlobalFor(options_.index, SlotRef{e, slot});
    if (!global.ok()) continue;
    // LIds are consecutive only within one stripe batch of the epoch, so
    // clip the run at the stripe-batch boundary and the epoch's slot count.
    uint64_t batch = journal_.epochs()[e].batch_size;
    uint64_t run = std::min(max_records, batch - slot % batch);
    run = std::min(run, slots - slot);
    return AssignRun{*global, run, e, slot};
  }
  return Status::ResourceExhausted(
      "maintainer owns no further positions in the current striping");
}

Status LogMaintainer::AppendBatchLocked(const LogRecord* records, size_t n,
                                        std::vector<LId>* lids) {
  lids->clear();
  lids->reserve(n);

  // Reserve runs of consecutive slots covering the whole batch, advancing
  // the assignment cursor as we go so successive runs don't overlap.
  std::vector<AssignRun> runs;
  while (lids->size() < n) {
    Result<AssignRun> run = NextAssignableRunLocked(n - lids->size());
    if (!run.ok()) {
      for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
        assign_next_[it->epoch_index] = it->first_slot;
      }
      lids->clear();
      return run.status();
    }
    assign_next_[run->epoch_index] = run->first_slot + run->count;
    for (uint64_t i = 0; i < run->count; ++i) {
      lids->push_back(run->start_lid + i);
    }
    runs.push_back(*run);
  }

  // Encode outside the store, persist with one group-commit write. The
  // reserve is load-bearing: AppendEntry views alias the encoded strings.
  std::vector<std::string> encoded;
  encoded.reserve(n);
  std::vector<storage::AppendEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    encoded.push_back(EncodeLogRecord(records[i]));
    entries.push_back(storage::AppendEntry{(*lids)[i], encoded.back()});
  }
  std::vector<storage::RecordLocation> locations;
  Status status = store_.AppendBatch(entries, &locations);
  if (!status.ok()) {
    for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
      assign_next_[it->epoch_index] = it->first_slot;
    }
    lids->clear();
    return status;
  }
  for (size_t i = 0; i < n; ++i) {
    IndexPutLocked((*lids)[i], locations[i]);
    tail_cache_.Put((*lids)[i], std::move(encoded[i]));
  }

  for (const AssignRun& run : runs) {
    for (uint64_t i = 0; i < run.count; ++i) {
      MarkFilledLocked(SlotRef{run.epoch_index, run.first_slot + i});
    }
  }
  gossip_[options_.index] = FirstUnfilledGlobalLocked();
  RefreshHlLocked();
  return Status::OK();
}

Result<LId> LogMaintainer::AppendLocked(const LogRecord& record) {
  std::vector<LId> lids;
  CHARIOTS_RETURN_IF_ERROR(AppendBatchLocked(&record, 1, &lids));
  return lids[0];
}

Result<std::vector<LId>> LogMaintainer::AppendBatch(
    std::span<const LogRecord> records) {
  if (records.empty()) return std::vector<LId>{};
  std::vector<std::pair<LogRecord, LId>> landed;
  Result<std::vector<LId>> result = [&]() -> Result<std::vector<LId>> {
    std::lock_guard<std::shared_mutex> lock(mu_);
    std::vector<LId> lids;
    CHARIOTS_RETURN_IF_ERROR(
        AppendBatchLocked(records.data(), records.size(), &lids));
    if (observer_) {
      landed.reserve(records.size());
      for (size_t i = 0; i < records.size(); ++i) {
        landed.emplace_back(records[i], lids[i]);
      }
    }
    auto drained = DrainDeferredLocked();
    landed.insert(landed.end(), std::make_move_iterator(drained.begin()),
                  std::make_move_iterator(drained.end()));
    return lids;
  }();
  if (observer_) {
    for (auto& [rec, lid] : landed) observer_(rec, lid);
  }
  return result;
}

Result<LId> LogMaintainer::Append(const LogRecord& record) {
  std::vector<std::pair<LogRecord, LId>> landed;
  Result<LId> result = [&]() -> Result<LId> {
    std::lock_guard<std::shared_mutex> lock(mu_);
    CHARIOTS_ASSIGN_OR_RETURN(LId lid, AppendLocked(record));
    landed.emplace_back(record, lid);
    auto drained = DrainDeferredLocked();
    landed.insert(landed.end(), std::make_move_iterator(drained.begin()),
                  std::make_move_iterator(drained.end()));
    return lid;
  }();
  if (observer_) {
    for (auto& [rec, lid] : landed) observer_(rec, lid);
  }
  return result;
}

Result<LId> LogMaintainer::AppendOrdered(const LogRecord& record,
                                         LId min_lid) {
  std::vector<std::pair<LogRecord, LId>> landed;
  Result<LId> result = [&]() -> Result<LId> {
    std::lock_guard<std::shared_mutex> lock(mu_);
    CHARIOTS_ASSIGN_OR_RETURN(LId next, NextAssignableGlobalLocked());
    if (next > min_lid) {
      CHARIOTS_ASSIGN_OR_RETURN(LId lid, AppendLocked(record));
      landed.emplace_back(record, lid);
      return lid;
    }
    deferred_.push_back(DeferredAppend{record, min_lid});
    return kInvalidLId;
  }();
  if (observer_) {
    for (auto& [rec, lid] : landed) observer_(rec, lid);
  }
  return result;
}

std::vector<std::pair<LogRecord, LId>> LogMaintainer::DrainDeferredLocked() {
  std::vector<std::pair<LogRecord, LId>> landed;
  bool progress = true;
  while (progress && !deferred_.empty()) {
    progress = false;
    for (auto it = deferred_.begin(); it != deferred_.end();) {
      Result<LId> next = NextAssignableGlobalLocked();
      if (!next.ok()) return landed;
      if (*next > it->min_lid) {
        Result<LId> lid = AppendLocked(it->record);
        if (lid.ok()) {
          landed.emplace_back(std::move(it->record), *lid);
          it = deferred_.erase(it);
          progress = true;
          continue;
        }
      }
      ++it;
    }
  }
  return landed;
}

Status LogMaintainer::AppendAt(LId lid, const LogRecord& record) {
  std::vector<std::pair<LogRecord, LId>> landed;
  Status status = [&]() -> Status {
    std::lock_guard<std::shared_mutex> lock(mu_);
    if (journal_.MaintainerFor(lid) != options_.index) {
      return Status::OutOfRange("lid not owned by this maintainer");
    }
    std::string encoded = EncodeLogRecord(record);
    storage::AppendEntry entry{lid, encoded};
    std::vector<storage::RecordLocation> locations;
    CHARIOTS_RETURN_IF_ERROR(store_.AppendBatch({&entry, 1}, &locations));
    IndexPutLocked(lid, locations[0]);
    tail_cache_.Put(lid, std::move(encoded));
    SlotRef ref = journal_.SlotFor(lid);
    MarkFilledLocked(ref);
    assign_next_[ref.epoch_index] =
        std::max(assign_next_[ref.epoch_index], ref.slot + 1);
    gossip_[options_.index] = FirstUnfilledGlobalLocked();
    RefreshHlLocked();
    landed.emplace_back(record, lid);
    return Status::OK();
  }();
  if (status.ok() && observer_) {
    for (auto& [rec, l] : landed) observer_(rec, l);
  }
  return status;
}

Result<std::vector<LId>> LogMaintainer::FillHoles(const LogRecord& junk) {
  // Collect holes under the lock, then fill them through AppendAt so each
  // junk record goes through the normal landing path (store write, fill
  // state, gossip refresh, observer).
  std::vector<LId> holes;
  {
    std::lock_guard<std::shared_mutex> lock(mu_);
    for (size_t e = 0; e < journal_.num_epochs(); ++e) {
      const std::set<uint64_t>& pending = filled_pending_[e];
      for (uint64_t slot = filled_contig_[e]; slot < assign_next_[e];
           ++slot) {
        if (pending.count(slot) != 0) continue;
        Result<LId> global =
            journal_.GlobalFor(options_.index, SlotRef{e, slot});
        if (global.ok()) holes.push_back(*global);
      }
    }
  }
  std::vector<LId> filled;
  for (LId lid : holes) {
    LogRecord record = junk;
    record.lid = lid;
    Status status = AppendAt(lid, record);
    if (status.code() == StatusCode::kAlreadyExists) continue;  // late racer
    CHARIOTS_RETURN_IF_ERROR(status);
    filled.push_back(lid);
  }
  return filled;
}

Result<LogRecord> LogMaintainer::Read(LId lid) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (journal_.MaintainerFor(lid) != options_.index) {
      return Status::OutOfRange("lid not owned by this maintainer");
    }
    if (read_index_.find(lid) == read_index_.end()) {
      return Status::NotFound("no record at lid");
    }
  }
  // Lock released: the hot path below never holds mu_, so readers contend
  // with neither appends nor each other.
  if (std::optional<std::string> cached = tail_cache_.Get(lid)) {
    return DecodeLogRecord(lid, *cached);
  }
  // Cold read straight off the store (pread under its shared lock). A
  // concurrent Remove may have won the race — surface its NotFound.
  CHARIOTS_ASSIGN_OR_RETURN(std::string payload, store_.Get(lid));
  return DecodeLogRecord(lid, payload);
}

Result<LogRecord> LogMaintainer::ReadCommitted(LId lid) const {
  if (lid >= hl_cache_.load(std::memory_order_acquire)) {
    return Status::Unavailable(
        "lid is at or beyond the head of the log (possible gaps)");
  }
  return Read(lid);
}

LId LogMaintainer::FirstUnfilledGlobal() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FirstUnfilledGlobalLocked();
}

void LogMaintainer::OnGossip(uint32_t peer_index, LId peer_first_unfilled) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (peer_index >= gossip_.size()) {
    gossip_.resize(peer_index + 1, 0);
  }
  // Monotone: gossip may arrive out of order.
  gossip_[peer_index] = std::max(gossip_[peer_index], peer_first_unfilled);
  RefreshHlLocked();
}

LId LogMaintainer::HeadOfLog() const {
  return hl_cache_.load(std::memory_order_acquire);
}

Status LogMaintainer::AddEpoch(const StripeEpoch& epoch) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  CHARIOTS_RETURN_IF_ERROR(journal_.AddEpoch(epoch));
  assign_next_.push_back(0);
  filled_contig_.push_back(0);
  filled_pending_.emplace_back();
  if (journal_.MaxMaintainers() > gossip_.size()) {
    gossip_.resize(journal_.MaxMaintainers(), 0);
  }
  gossip_[options_.index] = FirstUnfilledGlobalLocked();
  RefreshHlLocked();
  return Status::OK();
}

void LogMaintainer::SetAppendObserver(
    std::function<void(const LogRecord&, LId)> observer) {
  observer_ = std::move(observer);
}

Status LogMaintainer::Sync() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  return store_.Sync();
}

Status LogMaintainer::TruncateBelow(LId horizon,
                                    const std::string& archive_path) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  CHARIOTS_RETURN_IF_ERROR(store_.TruncateBelow(horizon, archive_path));
  // GC drops whole segments; prune index entries the store no longer has.
  for (auto it = read_index_.begin(); it != read_index_.end();) {
    if (it->first < horizon && !store_.Contains(it->first)) {
      tail_cache_.Invalidate(it->first);
      ReadIndexEntriesGauge()->Add(-1);
      it = read_index_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

std::vector<LId> LogMaintainer::StoredLids() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.ListLids();
}

Status LogMaintainer::Remove(LId lid) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  CHARIOTS_RETURN_IF_ERROR(store_.Remove(lid));
  IndexEraseLocked(lid);
  tail_cache_.Invalidate(lid);
  invalid_.erase(lid);
  RebuildStateLocked();
  return Status::OK();
}

void LogMaintainer::InvalidateTailCache() { tail_cache_.Clear(); }

void LogMaintainer::MarkInvalid(LId lid) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  invalid_.insert(lid);
}

void LogMaintainer::MarkValid(LId lid) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  invalid_.erase(lid);
}

void LogMaintainer::MarkAllValid() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  invalid_.clear();
}

bool LogMaintainer::IsInvalid(LId lid) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return invalid_.count(lid) > 0;
}

uint64_t LogMaintainer::InvalidCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return invalid_.size();
}

std::vector<std::pair<LId, std::string>> LogMaintainer::InvalidEntries()
    const {
  std::vector<LId> lids;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    lids.assign(invalid_.begin(), invalid_.end());
  }
  // Payloads are fetched outside mu_ (Read never holds it across I/O). A
  // position whose record vanished concurrently is simply not replayable.
  std::vector<std::pair<LId, std::string>> entries;
  entries.reserve(lids.size());
  for (LId lid : lids) {
    Result<LogRecord> record = Read(lid);
    if (!record.ok()) continue;
    entries.emplace_back(lid, EncodeLogRecord(*record));
  }
  return entries;
}

Status LogMaintainer::VerifyReadIndex() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<LId> lids = store_.ListLids();
  if (lids.size() != read_index_.size()) {
    return Status::Internal("read index / store size mismatch");
  }
  for (LId lid : lids) {
    auto it = read_index_.find(lid);
    if (it == read_index_.end()) {
      return Status::Internal("stored lid missing from read index");
    }
    CHARIOTS_ASSIGN_OR_RETURN(storage::RecordLocation loc, store_.Locate(lid));
    if (!(loc == it->second)) {
      return Status::Internal("read index location disagrees with store");
    }
  }
  return Status::OK();
}

uint64_t LogMaintainer::ReadIndexEntries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return read_index_.size();
}

uint64_t LogMaintainer::count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.count();
}

EpochJournal LogMaintainer::journal() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return journal_;
}

size_t LogMaintainer::deferred_ordered() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return deferred_.size();
}

}  // namespace chariots::flstore
