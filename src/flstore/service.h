#ifndef CHARIOTS_FLSTORE_SERVICE_H_
#define CHARIOTS_FLSTORE_SERVICE_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "flstore/controller.h"
#include "flstore/dedup.h"
#include "flstore/indexer.h"
#include "flstore/maintainer.h"
#include "net/rpc.h"

namespace chariots::flstore {

/// RPC opcodes of the FLStore fabric.
enum Opcode : uint16_t {
  kAppend = 1,        ///< record -> u64 lid (post-assignment)
  kAppendAt = 2,      ///< u64 lid + record -> ()
  kAppendOrdered = 3, ///< u64 min_lid + record -> u64 lid (or kInvalidLId)
  kRead = 4,          ///< u64 lid -> record
  kReadCommitted = 5, ///< u64 lid -> record (gap-safe)
  kHeadOfLog = 6,     ///< () -> u64 HL
  kAddEpoch = 7,      ///< epoch -> ()
  kGossip = 8,        ///< one-way: u32 index + u64 first_unfilled
  kIndexLookup = 9,   ///< IndexQuery -> postings
  kIndexAdd = 10,     ///< one-way: key + value + u64 lid
  kGetClusterInfo = 11,  ///< () -> ClusterInfo
  kControllerAddMaintainer = 12,  ///< node + epoch -> ()
  kAppendBatch = 13,  ///< u32 n + n records -> n u64 lids
};

/// Wire encoding of a StripeEpoch (used by kAddEpoch /
/// kControllerAddMaintainer requests).
std::string EncodeEpoch(const StripeEpoch& epoch);
Result<StripeEpoch> DecodeEpoch(std::string_view data);

/// Hosts a LogMaintainer on the RPC fabric: serves appends/reads, runs the
/// HL gossip timer, and publishes tag postings to the indexers.
class MaintainerServer {
 public:
  struct Options {
    net::NodeId node;                    ///< this server's address
    std::vector<net::NodeId> peers;      ///< all maintainer nodes (by index)
    std::vector<net::NodeId> indexers;   ///< indexer nodes for postings
    int64_t gossip_interval_nanos = 2'000'000;  ///< 2 ms default
    /// Retried-append dedup: responses remembered per client (see
    /// DedupWindow for sizing guidance).
    size_t dedup_window = 128;
    /// Optional dedup persistence sidecar (typically a file next to the
    /// maintainer's segment dir). Empty = dedup state dies with the server.
    std::string dedup_sidecar;
  };

  MaintainerServer(net::Transport* transport, MaintainerOptions maintainer,
                   Options options);
  ~MaintainerServer();

  /// Opens the maintainer and begins serving + gossiping.
  Status Start();
  void Stop();

  /// Crash-and-restart: stops serving, closes the maintainer store and the
  /// dedup window, and starts again — recovering both from disk. Clients
  /// see the outage as kUnavailable/kTimedOut and retry through it.
  Status Restart();

  LogMaintainer& maintainer() { return maintainer_; }
  DedupWindow& dedup() { return dedup_; }

 private:
  void InstallHandlers();
  void GossipLoop();
  void PublishPostings(const LogRecord& record, LId lid);

  LogMaintainer maintainer_;
  Options options_;
  net::RpcEndpoint endpoint_;
  DedupWindow dedup_;
  std::atomic<bool> stop_{false};
  std::thread gossip_thread_;
};

/// Hosts an Indexer on the RPC fabric.
class IndexerServer {
 public:
  IndexerServer(net::Transport* transport, net::NodeId node);
  ~IndexerServer();

  Status Start();
  void Stop();

  Indexer& indexer() { return indexer_; }

 private:
  Indexer indexer_;
  net::RpcEndpoint endpoint_;
};

/// Hosts the Controller on the RPC fabric.
class ControllerServer {
 public:
  ControllerServer(net::Transport* transport, net::NodeId node,
                   ClusterInfo initial);
  ~ControllerServer();

  Status Start();
  void Stop();

  Controller& controller() { return controller_; }

 private:
  Controller controller_;
  net::RpcEndpoint endpoint_;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_SERVICE_H_
