#ifndef CHARIOTS_FLSTORE_SERVICE_H_
#define CHARIOTS_FLSTORE_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/executor.h"
#include "flstore/controller.h"
#include "flstore/dedup.h"
#include "flstore/indexer.h"
#include "flstore/maintainer.h"
#include "flstore/replica_group.h"
#include "net/rpc.h"

namespace chariots::flstore {

/// Registers the chariots.flstore.repl.* metric families (invalidations,
/// validations, replays, mttr_ns) with the default registry so they appear
/// — at zero — in every metrics dump. The registry registers lazily on
/// first use; calling this at server start keeps the family set stable
/// across roles, so dashboards and `chariots_cli metrics PREFIX` behave
/// identically whether or not a node has replicated anything yet.
void RegisterReplicationMetrics();

/// RPC opcodes of the FLStore fabric.
enum Opcode : uint16_t {
  kAppend = 1,        ///< record -> u64 lid (post-assignment)
  kAppendAt = 2,      ///< u64 lid + record -> ()
  kAppendOrdered = 3, ///< u64 min_lid + record -> u64 lid (or kInvalidLId)
  kRead = 4,          ///< u64 lid -> u64 epoch + u64 hl + record
  kReadCommitted = 5, ///< u64 lid -> u64 epoch + u64 hl + record (gap-safe)
  kHeadOfLog = 6,     ///< () -> u64 HL
  kAddEpoch = 7,      ///< epoch -> ()
  kGossip = 8,        ///< one-way: u32 index + u64 first_unfilled
  kIndexLookup = 9,   ///< IndexQuery -> postings
  kIndexAdd = 10,     ///< one-way: key + value + u64 lid
  kGetClusterInfo = 11,  ///< () -> ClusterInfo
  kControllerAddMaintainer = 12,  ///< node + epoch + u64 version -> ()
  kAppendBatch = 13,  ///< u32 n + n records -> n u64 lids
  kHeartbeat = 14,    ///< one-way to controller: u32 stripe index
  /// 15: InvalidateRequest -> () — the INV leg of the Hermes round,
  /// coordinator -> replica (carries the payload; the ack means applied +
  /// durable at the replica).
  kInvalidate = kInvalidateRpc,
  /// u64 new_epoch + u32 n + n peer nodes -> u32 n + n junk-filled lids
  /// (controller -> promotion candidate). The candidate replays the
  /// surviving invalid writes before junk-filling true holes.
  kPromote = 16,
  kFill = 17,         ///< u64 lid -> () (junk-fill one orphaned position)
  kPeerUpdate = 18,   ///< one-way: u32 index + node (new stripe coordinator)
  /// Batched multi-get: u32 n + n u64 lids -> u64 epoch + u64 hl + u32 n +
  /// n × (u64 lid, u8 found, record if found). One round trip for a whole
  /// coalesced read batch (the client's ReadMany).
  kReadRange = 19,
  /// 20: one-way ValidateNotice — the VAL leg, flipping positions readable
  /// on replicas and piggybacking the coordinator's validated floor.
  kValidate = kValidateRpc,
  /// u64 epoch -> u32 n + n × (u64 lid, record bytes): a promotion
  /// candidate pulling a surviving replica's invalid window (the replay
  /// set). The replica adopts the new epoch as a side effect.
  kFetchInvalid = 21,
  /// u64 new_epoch + u32 n + n peer nodes -> (): controller telling a
  /// coordinator its replica set changed (dead replica evicted).
  kReconfigure = 22,
  /// u32 index + suspect node -> u8 (0 = suspect alive / nothing changed,
  /// 1 = layout changed — refresh). Registered both as a request handler
  /// (clients confirm a dead coordinator synchronously: the failover runs
  /// *inside* the call, which is what makes MTTR sub-lease) and one-way
  /// (coordinators fire-and-forget dead-replica reports mid-append).
  kSuspect = 23,
  /// () -> (): liveness probe; a fenced node answers Unavailable so the
  /// controller treats it as dead.
  kPing = 24,
};

/// Wire encoding of a StripeEpoch (used by kAddEpoch /
/// kControllerAddMaintainer requests).
std::string EncodeEpoch(const StripeEpoch& epoch);
Result<StripeEpoch> DecodeEpoch(std::string_view data);

/// Hosts a LogMaintainer on the RPC fabric: serves appends/reads, runs the
/// HL gossip timer, publishes tag postings to the indexers, and — when the
/// stripe is replicated — runs the Hermes invalidate/validate broadcast for
/// every landed record before acking, serves linearizable reads of valid
/// positions from any role, heartbeats the controller, and obeys epoch
/// fencing (see ReplicaGroup for the protocol).
class MaintainerServer {
 public:
  struct Options {
    net::NodeId node;                    ///< this server's address
    std::vector<net::NodeId> peers;      ///< all maintainer nodes (by index)
    std::vector<net::NodeId> indexers;   ///< indexer nodes for postings
    int64_t gossip_interval_nanos = 2'000'000;  ///< 2 ms default
    /// Retried-append dedup: responses remembered per client (see
    /// DedupWindow for sizing guidance).
    size_t dedup_window = 128;
    /// Optional dedup persistence sidecar (typically a file next to the
    /// maintainer's segment dir). Empty = dedup state dies with the server.
    std::string dedup_sidecar;
    /// Sidecar compaction threshold (see DedupWindow::Options).
    size_t dedup_compact_min_frames = 64;
    /// Optional scripted disk-fault plan for the dedup sidecar (the log
    /// store takes its own via LogStoreOptions::disk_faults).
    storage::DiskFaultSchedule* dedup_disk_faults = nullptr;
    /// This node's position in its stripe replica set (solo by default, so
    /// unreplicated deployments are unchanged).
    ReplicaOptions replica;
    /// Controller node to heartbeat ("" = no heartbeats; the controller
    /// then never arms a lease for this stripe, and suspect reports have
    /// nowhere to go).
    net::NodeId controller;
    int64_t heartbeat_interval_nanos = 30'000'000;  ///< 30 ms default
    /// Executor running the gossip/heartbeat timers (null =
    /// Executor::Default()). A virtual-time executor makes both loops
    /// test-drivable via AdvanceUntil().
    Executor* executor = nullptr;
  };

  MaintainerServer(net::Transport* transport, MaintainerOptions maintainer,
                   Options options);
  ~MaintainerServer();

  /// Opens the maintainer and begins serving + gossiping (+ heartbeating
  /// when a controller is configured and this node serves its stripe).
  Status Start();
  void Stop();

  /// Crash-and-restart: stops serving, closes the maintainer store and the
  /// dedup window, and starts again — recovering both from disk. Clients
  /// see the outage as kUnavailable/kTimedOut and retry through it.
  Status Restart();

  LogMaintainer& maintainer() { return maintainer_; }
  DedupWindow& dedup() { return dedup_; }
  ReplicaGroup& replica() { return replica_; }

 private:
  void InstallHandlers();
  void GossipOnce();
  void HeartbeatOnce();
  void OnLanded(const LogRecord& record, LId lid);
  void PublishPostings(const LogRecord& record, LId lid);
  /// Advances the replicated floor past `top_lid` (the highest position of
  /// a batch every peer just acked; kInvalidLId = empty batch, no-op).
  void NoteReplicated(LId top_lid);
  /// Folds a floor learned from a VAL piggyback (replica side).
  void AdvanceReplicatedFloor(LId floor);
  /// The HL value piggybacked on read responses for cacheability. On any
  /// member of a replicated stripe it is capped at the validated floor: a
  /// record not yet validated everywhere can still be junk-filled by a
  /// failover, so clients must not cache it as permanent (read_cache.h).
  LId CacheableHl() const;
  /// One Hermes write round for a landed batch: INV-broadcast it (carrying
  /// the dedup token so a replica can answer a retry after failover), and on
  /// all-acks validate locally, advance the floor, and VAL-broadcast. On a
  /// transport failure the batch stays parked (applied-but-invalid), the
  /// dedup token is recorded so a retry completes the round instead of
  /// re-appending, and the dead peer is reported to the controller.
  Status RunReplicationRound(std::vector<ReplicatedEntry> batch,
                             const std::string& client_id, uint64_t seq,
                             const std::string& response);
  /// Re-broadcasts every invalid (parked) position to the current peers and
  /// validates on success — the write replay that completes in-flight
  /// writes after a replica eviction (called from kReconfigure and from
  /// retried appends that hit the dedup window).
  Status DriveReplication();
  /// Fire-and-forget dead-peer report to the controller ("" = no
  /// controller configured; no-op). Sent on the repl endpoint: the main
  /// endpoint's inbox may be busy running the very append that failed.
  void SuspectPeer(const net::NodeId& suspect);

  LogMaintainer maintainer_;
  Options options_;
  Executor* const executor_;
  net::RpcEndpoint endpoint_;
  /// Dedicated endpoint for outbound replication calls. The main endpoint's
  /// inbox delivers one message at a time, and an invalidate is issued from
  /// *inside* an append handler — waiting for its response on the same
  /// endpoint would deadlock behind the very handler that is waiting.
  net::RpcEndpoint repl_endpoint_;
  DedupWindow dedup_;
  ReplicaGroup replica_;
  /// One past the highest position validated everywhere (monotonic). On the
  /// coordinator it advances when every peer acks an INV; on replicas it
  /// follows the VAL piggyback. Only meaningful while
  /// replica_.in_replica_set(); see CacheableHl().
  std::atomic<LId> replicated_floor_{0};
  std::atomic<bool> stop_{false};
  Executor::TimerToken gossip_token_;
  Executor::TimerToken heartbeat_token_;
  /// Maintainer nodes by stripe index; starts as options_.peers and is
  /// updated by kPeerUpdate when the controller commits a failover.
  std::mutex peers_mu_;
  std::vector<net::NodeId> peers_;
};

/// Hosts an Indexer on the RPC fabric.
class IndexerServer {
 public:
  IndexerServer(net::Transport* transport, net::NodeId node);
  ~IndexerServer();

  Status Start();
  void Stop();

  Indexer& indexer() { return indexer_; }

 private:
  Indexer indexer_;
  net::RpcEndpoint endpoint_;
};

/// Knobs for the hosted controller.
struct ControllerServerOptions {
  ControllerOptions controller;
  /// Interval of the background lease monitor; 0 disables it (tests drive
  /// failover deterministically via TickLeases()).
  int64_t monitor_interval_nanos = 0;
  /// Executor running the lease monitor (null = Executor::Default()).
  Executor* executor = nullptr;
};

/// Hosts the Controller on the RPC fabric: serves cluster info and
/// membership changes, collects coordinator heartbeats, and runs failover
/// two ways — the lease monitor as backstop, and the kSuspect fast path
/// (probe the reported node, then promote a replica or evict a dead one
/// inside the call), which is what gets MTTR under the lease.
class ControllerServer {
 public:
  ControllerServer(net::Transport* transport, net::NodeId node,
                   ClusterInfo initial, ControllerServerOptions options = {});
  ~ControllerServer();

  Status Start();
  void Stop();

  /// One failure-detection sweep: for every stripe whose coordinator lease
  /// expired, deliver the promotion RPC to the first replica and, on
  /// success, commit the new layout and broadcast it to the surviving
  /// maintainers. Returns the number of failovers committed. Public so
  /// tests (and the disabled-monitor deployment) can drive failover
  /// deterministically.
  int TickLeases();

  Controller& controller() { return controller_; }

 private:
  /// Delivers a planned promotion and commits it (aborting on failure);
  /// broadcasts the new layout on success.
  Status ExecuteFailover(const FailoverPlan& plan);
  /// The kSuspect body, shared by the request and one-way registrations.
  Result<std::string> HandleSuspect(const std::string& payload);

  Controller controller_;
  ControllerServerOptions options_;
  Executor* const executor_;
  net::RpcEndpoint endpoint_;
  std::atomic<bool> stop_{false};
  Executor::TimerToken monitor_token_;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_SERVICE_H_
