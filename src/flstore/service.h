#ifndef CHARIOTS_FLSTORE_SERVICE_H_
#define CHARIOTS_FLSTORE_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/executor.h"
#include "common/lease.h"
#include "common/metrics.h"
#include "common/watchdog.h"
#include "flstore/controller.h"
#include "flstore/dedup.h"
#include "flstore/indexer.h"
#include "flstore/maintainer.h"
#include "flstore/replica_group.h"
#include "net/rpc.h"

namespace chariots::flstore {

/// Registers the chariots.flstore.repl.* metric families (invalidations,
/// validations, replays, mttr_ns) with the default registry so they appear
/// — at zero — in every metrics dump. The registry registers lazily on
/// first use; calling this at server start keeps the family set stable
/// across roles, so dashboards and `chariots_cli metrics PREFIX` behave
/// identically whether or not a node has replicated anything yet.
void RegisterReplicationMetrics();

/// Same, for the chariots.flstore.ctrl.* control-plane families (elections,
/// meta_wal_appends, false_suspects, plan_replays): force-registered at
/// server start so they export at zero before the first election or crash.
void RegisterControllerMetrics();

/// RPC opcodes of the FLStore fabric.
enum Opcode : uint16_t {
  kAppend = 1,        ///< record -> u64 lid (post-assignment)
  kAppendAt = 2,      ///< u64 lid + record -> ()
  kAppendOrdered = 3, ///< u64 min_lid + record -> u64 lid (or kInvalidLId)
  kRead = 4,          ///< u64 lid -> u64 epoch + u64 hl + record
  kReadCommitted = 5, ///< u64 lid -> u64 epoch + u64 hl + record (gap-safe)
  kHeadOfLog = 6,     ///< () -> u64 HL
  kAddEpoch = 7,      ///< epoch -> ()
  kGossip = 8,        ///< one-way: u32 index + u64 first_unfilled
  kIndexLookup = 9,   ///< IndexQuery -> postings
  kIndexAdd = 10,     ///< one-way: key + value + u64 lid
  kGetClusterInfo = 11,  ///< () -> ClusterInfo
  kControllerAddMaintainer = 12,  ///< node + epoch + u64 version -> ()
  kAppendBatch = 13,  ///< u32 n + n records -> n u64 lids
  kHeartbeat = 14,    ///< one-way to controller: u32 stripe index
  /// 15: InvalidateRequest -> () — the INV leg of the Hermes round,
  /// coordinator -> replica (carries the payload; the ack means applied +
  /// durable at the replica).
  kInvalidate = kInvalidateRpc,
  /// u64 new_epoch + u32 n + n peer nodes -> u32 n + n junk-filled lids
  /// (controller -> promotion candidate). The candidate replays the
  /// surviving invalid writes before junk-filling true holes.
  kPromote = 16,
  kFill = 17,         ///< u64 lid -> () (junk-fill one orphaned position)
  kPeerUpdate = 18,   ///< one-way: u32 index + node (new stripe coordinator)
  /// Batched multi-get: u32 n + n u64 lids -> u64 epoch + u64 hl + u32 n +
  /// n × (u64 lid, u8 found, record if found). One round trip for a whole
  /// coalesced read batch (the client's ReadMany).
  kReadRange = 19,
  /// 20: one-way ValidateNotice — the VAL leg, flipping positions readable
  /// on replicas and piggybacking the coordinator's validated floor.
  kValidate = kValidateRpc,
  /// u64 epoch -> u32 n + n × (u64 lid, record bytes): a promotion
  /// candidate pulling a surviving replica's invalid window (the replay
  /// set). The replica adopts the new epoch as a side effect.
  kFetchInvalid = 21,
  /// u64 new_epoch + u32 n + n peer nodes -> (): controller telling a
  /// coordinator its replica set changed (dead replica evicted).
  kReconfigure = 22,
  /// u32 index + suspect node -> u8 (0 = suspect alive / nothing changed,
  /// 1 = layout changed — refresh). Registered both as a request handler
  /// (clients confirm a dead coordinator synchronously: the failover runs
  /// *inside* the call, which is what makes MTTR sub-lease) and one-way
  /// (coordinators fire-and-forget dead-replica reports mid-append).
  kSuspect = 23,
  /// () -> (): liveness probe; a fenced node answers Unavailable so the
  /// controller treats it as dead.
  kPing = 24,
  /// () -> control-plane status dump: controller epoch + leader + leader
  /// lease age, then per-stripe coordinator/replicas/fence epoch/lease age.
  /// Served by ANY controller replica (each answers from its own view).
  kCtrlStatus = 25,
  /// one-way controller-replica heartbeat: u64 ctrl_epoch + leader node.
  /// Renews the follower's leader lease; a follower whose leader lease
  /// lapses campaigns for the next (striped) epoch.
  kCtrlLeaderBeat = 26,
  /// u64 epoch -> u8 granted + u64 voter ctrl_epoch + u64 voter layout
  /// version. The vote is durable at the voter before the response leaves,
  /// so a crash-restart can never hand one epoch to two candidates; the
  /// piggybacked (ctrl_epoch, version) lets the winner pull a newer layout
  /// it may have missed before serving.
  kCtrlVote = 27,
  /// u64 epoch -> (): leadership confirmation, acked iff the peer knows no
  /// higher epoch (adopted or granted). The leader collects a majority of
  /// acks immediately before every layout commit — which is exactly what
  /// makes a partitioned minority leader unable to promote anything.
  kCtrlConfirm = 28,
  /// ClusterInfo bytes -> (): leader pushing a committed layout to a
  /// follower replica (rejected when older than the follower's view).
  kCtrlReplicateState = 29,
  /// () -> health-report JSON (RenderHealthJson). Served by maintainers and
  /// controllers alike: runs one watchdog tick on demand and returns the
  /// report, so `chariots_cli health` works even on deployments that never
  /// armed the periodic tick.
  kHealth = 30,
  /// u8 mode -> raw flight-recorder dump bytes (Recorder::Dump framing).
  /// Mode 0 (or empty payload) snapshots the rings now; mode 1 returns the
  /// snapshot taken at the last watchdog breach (empty if none fired).
  kFlightRec = 31,
};

/// Wire encoding of a StripeEpoch (used by kAddEpoch /
/// kControllerAddMaintainer requests).
std::string EncodeEpoch(const StripeEpoch& epoch);
Result<StripeEpoch> DecodeEpoch(std::string_view data);

/// Hosts a LogMaintainer on the RPC fabric: serves appends/reads, runs the
/// HL gossip timer, publishes tag postings to the indexers, and — when the
/// stripe is replicated — runs the Hermes invalidate/validate broadcast for
/// every landed record before acking, serves linearizable reads of valid
/// positions from any role, heartbeats the controller, and obeys epoch
/// fencing (see ReplicaGroup for the protocol).
class MaintainerServer {
 public:
  struct Options {
    net::NodeId node;                    ///< this server's address
    std::vector<net::NodeId> peers;      ///< all maintainer nodes (by index)
    std::vector<net::NodeId> indexers;   ///< indexer nodes for postings
    int64_t gossip_interval_nanos = 2'000'000;  ///< 2 ms default
    /// Retried-append dedup: responses remembered per client (see
    /// DedupWindow for sizing guidance).
    size_t dedup_window = 128;
    /// Optional dedup persistence sidecar (typically a file next to the
    /// maintainer's segment dir). Empty = dedup state dies with the server.
    std::string dedup_sidecar;
    /// Sidecar compaction threshold (see DedupWindow::Options).
    size_t dedup_compact_min_frames = 64;
    /// Optional scripted disk-fault plan for the dedup sidecar (the log
    /// store takes its own via LogStoreOptions::disk_faults).
    storage::DiskFaultSchedule* dedup_disk_faults = nullptr;
    /// This node's position in its stripe replica set (solo by default, so
    /// unreplicated deployments are unchanged).
    ReplicaOptions replica;
    /// Controller node to heartbeat ("" = no heartbeats; the controller
    /// then never arms a lease for this stripe, and suspect reports have
    /// nowhere to go).
    net::NodeId controller;
    /// Replicated control plane: ALL controller replicas. When non-empty it
    /// supersedes `controller` — heartbeats and suspect reports go to every
    /// replica (followers track leases too, so whoever wins the next
    /// election already knows who is alive; only the leader acts).
    std::vector<net::NodeId> controllers;
    int64_t heartbeat_interval_nanos = 30'000'000;  ///< 30 ms default
    /// Executor running the gossip/heartbeat timers (null =
    /// Executor::Default()). A virtual-time executor makes both loops
    /// test-drivable via AdvanceUntil().
    Executor* executor = nullptr;
    /// Clock for the health watchdog and replication-round timing (null =
    /// SystemClock::Default()). Inject a ManualClock to drive SLO drills in
    /// virtual time.
    Clock* clock = nullptr;
    /// Health-watchdog tick period. 0 (default) leaves the periodic tick
    /// unarmed — the kHealth RPC still evaluates every probe on demand, so
    /// existing deployments and tests are unperturbed.
    int64_t watchdog_interval_nanos = 0;
    /// Replication-round latency SLO: the watchdog breaches when the
    /// windowed mean of this server's INV/VAL round time exceeds it.
    int64_t repl_round_slo_nanos = 50'000'000;  ///< 50 ms
    /// Read-latency SLO over the process-wide flstore.read_ns histogram
    /// (0 = probe not registered; the family is shared across in-process
    /// servers, so only enable it where one server owns the process).
    int64_t read_slo_nanos = 0;
    /// Where the watchdog's breach hook writes a flight-recorder dump
    /// ("" = keep the snapshot in memory only; kFlightRec mode 1 serves it).
    std::string breach_dump_path;
  };

  MaintainerServer(net::Transport* transport, MaintainerOptions maintainer,
                   Options options);
  ~MaintainerServer();

  /// Opens the maintainer and begins serving + gossiping (+ heartbeating
  /// when a controller is configured and this node serves its stripe).
  Status Start();
  void Stop();

  /// Crash-and-restart: stops serving, closes the maintainer store and the
  /// dedup window, and starts again — recovering both from disk. Clients
  /// see the outage as kUnavailable/kTimedOut and retry through it.
  Status Restart();

  LogMaintainer& maintainer() { return maintainer_; }
  DedupWindow& dedup() { return dedup_; }
  ReplicaGroup& replica() { return replica_; }
  Watchdog& watchdog() { return watchdog_; }

  /// Flight-recorder snapshot taken by the watchdog's breach hook ("" if no
  /// breach has fired). What kFlightRec mode 1 serves.
  std::string LastBreachDump() const;

 private:
  void InstallHandlers();
  /// Watchdog configuration for this server (node label, injected clock,
  /// tick period, breach hook).
  Watchdog::Options WatchdogConfig();
  /// Breach hook: snapshots the flight recorder so the events leading up to
  /// the breach survive ring wrap, and optionally writes them to disk.
  void OnWatchdogBreach(const HealthReport& report);
  void GossipOnce();
  void HeartbeatOnce();
  void OnLanded(const LogRecord& record, LId lid);
  void PublishPostings(const LogRecord& record, LId lid);
  /// Advances the replicated floor past `top_lid` (the highest position of
  /// a batch every peer just acked; kInvalidLId = empty batch, no-op).
  void NoteReplicated(LId top_lid);
  /// Folds a floor learned from a VAL piggyback (replica side).
  void AdvanceReplicatedFloor(LId floor);
  /// The HL value piggybacked on read responses for cacheability. On any
  /// member of a replicated stripe it is capped at the validated floor: a
  /// record not yet validated everywhere can still be junk-filled by a
  /// failover, so clients must not cache it as permanent (read_cache.h).
  LId CacheableHl() const;
  /// One Hermes write round for a landed batch: INV-broadcast it (carrying
  /// the dedup token so a replica can answer a retry after failover), and on
  /// all-acks validate locally, advance the floor, and VAL-broadcast. On a
  /// transport failure the batch stays parked (applied-but-invalid), the
  /// dedup token is recorded so a retry completes the round instead of
  /// re-appending, and the dead peer is reported to the controller.
  Status RunReplicationRound(std::vector<ReplicatedEntry> batch,
                             const std::string& client_id, uint64_t seq,
                             const std::string& response);
  /// Re-broadcasts every invalid (parked) position to the current peers and
  /// validates on success — the write replay that completes in-flight
  /// writes after a replica eviction (called from kReconfigure and from
  /// retried appends that hit the dedup window).
  Status DriveReplication();
  /// Fire-and-forget dead-peer report to every controller replica (no-op
  /// when none is configured). Sent on the repl endpoint: the main
  /// endpoint's inbox may be busy running the very append that failed.
  void SuspectPeer(const net::NodeId& suspect);
  /// The controller replicas this node talks to (options_.controllers, or
  /// the single legacy options_.controller).
  std::vector<net::NodeId> ControllerTargets() const;
  /// Controller-epoch fence (PR 3 idiom, lifted to the control plane):
  /// folds `epoch` into the highest controller epoch this node has ever
  /// seen and rejects commands below it — a deposed controller leader's
  /// promotion or reconfiguration must not move a stripe.
  Status CheckCtrlEpoch(uint64_t epoch);

  LogMaintainer maintainer_;
  Options options_;
  Executor* const executor_;
  net::RpcEndpoint endpoint_;
  /// Dedicated endpoint for outbound replication calls. The main endpoint's
  /// inbox delivers one message at a time, and an invalidate is issued from
  /// *inside* an append handler — waiting for its response on the same
  /// endpoint would deadlock behind the very handler that is waiting.
  net::RpcEndpoint repl_endpoint_;
  DedupWindow dedup_;
  ReplicaGroup replica_;
  /// One past the highest position validated everywhere (monotonic). On the
  /// coordinator it advances when every peer acks an INV; on replicas it
  /// follows the VAL piggyback. Only meaningful while
  /// replica_.in_replica_set(); see CacheableHl().
  std::atomic<LId> replicated_floor_{0};
  std::atomic<bool> stop_{false};
  Executor::TimerToken gossip_token_;
  Executor::TimerToken heartbeat_token_;
  /// Maintainer nodes by stripe index; starts as options_.peers and is
  /// updated by kPeerUpdate when the controller commits a failover.
  std::mutex peers_mu_;
  std::vector<net::NodeId> peers_;
  /// Highest controller epoch observed in any layout/promotion RPC.
  std::atomic<uint64_t> ctrl_epoch_seen_{0};
  /// This server's own replication-round latency (server-local, unlike the
  /// registry's process-wide families): feeds the watchdog's SLO probe, so
  /// a breach names THIS stripe even with many servers in one process.
  metrics::Histogram repl_round_ns_;
  /// Gossip rounds completed — the progress probe's counter.
  std::atomic<uint64_t> gossip_rounds_{0};
  Watchdog watchdog_;
  mutable std::mutex dump_mu_;
  std::string last_breach_dump_;
};

/// Hosts an Indexer on the RPC fabric.
class IndexerServer {
 public:
  IndexerServer(net::Transport* transport, net::NodeId node);
  ~IndexerServer();

  Status Start();
  void Stop();

  Indexer& indexer() { return indexer_; }

 private:
  Indexer indexer_;
  net::RpcEndpoint endpoint_;
};

/// Knobs for the hosted controller.
struct ControllerServerOptions {
  ControllerOptions controller;
  /// Interval of the background lease monitor; 0 disables it (tests drive
  /// failover deterministically via TickLeases() / TickControl()).
  int64_t monitor_interval_nanos = 0;
  /// Executor running the lease monitor (null = Executor::Default()).
  Executor* executor = nullptr;
  /// The OTHER controller replicas (empty = single-controller deployment,
  /// which starts as leader immediately — the pre-HA behavior).
  std::vector<net::NodeId> peers;
  /// This replica's index in the controller cluster (0..N-1, where N =
  /// peers.size() + 1). Election epochs are striped by this index — replica
  /// i only ever campaigns with epochs e where e % N == i — so two
  /// simultaneous candidates can never collide on one epoch number.
  uint32_t replica_index = 0;
  /// How long a follower waits without hearing a leader beat before it
  /// campaigns. Runs on the controller's injected clock.
  int64_t leader_lease_nanos = 300'000'000;  // 300 ms
  /// Probe (kPing) a coordinator whose lease expired before evicting it:
  /// a node that still answers is alive — its heartbeats are partitioned
  /// away (one-way cut) or merely late — and promoting over it would be a
  /// false eviction. Default off: the classic lease contract treats a full
  /// lease of silence as death, and some deployments prefer that MTTR over
  /// gray-failure tolerance. The kSuspect fast path always probes.
  bool probe_before_failover = false;
  /// Health-watchdog tick period (0 = on-demand via kHealth only, the
  /// default — same contract as MaintainerServer::Options).
  int64_t watchdog_interval_nanos = 0;
  /// Election-churn budget: the watchdog breaches when more than this many
  /// elections are won in one tick (a flapping leader, dueling candidates).
  uint64_t max_elections_per_tick = 2;
  /// Breach-hook dump destination ("" = in-memory snapshot only).
  std::string breach_dump_path;
};

/// Hosts the Controller on the RPC fabric: serves cluster info and
/// membership changes, collects coordinator heartbeats, and runs failover
/// two ways — the lease monitor as backstop, and the kSuspect fast path
/// (probe the reported node, then promote a replica or evict a dead one
/// inside the call), which is what gets MTTR under the lease.
class ControllerServer {
 public:
  ControllerServer(net::Transport* transport, net::NodeId node,
                   ClusterInfo initial, ControllerServerOptions options = {});
  ~ControllerServer();

  Status Start();
  void Stop();

  /// One failure-detection sweep: for every stripe whose coordinator lease
  /// expired, deliver the promotion RPC to the first replica and, on
  /// success, commit the new layout and broadcast it to the surviving
  /// maintainers. Returns the number of failovers committed. Leader-only
  /// (a follower sweep returns 0 without acting). Public so tests (and the
  /// disabled-monitor deployment) can drive failover deterministically.
  int TickLeases();

  /// One control-plane tick: a leader broadcasts its beat and sweeps
  /// leases; a follower whose leader lease lapsed campaigns. This is what
  /// the background monitor runs. Returns committed failovers.
  int TickControl();

  /// Runs one election for the next epoch striped to this replica: the
  /// self-vote is persisted, peers vote (durably) over kCtrlVote, and a
  /// majority — counting self — makes this replica leader: it adopts the
  /// epoch, pulls any newer layout a voter advertised, announces itself,
  /// and completes plans recovered from the meta WAL. kAborted on a lost
  /// election (the leader lease re-arms to back off a full period).
  Status Campaign();

  bool IsLeader() const;
  /// Last known leader ("" when unknown).
  net::NodeId leader() const;

  Controller& controller() { return controller_; }
  Watchdog& watchdog() { return watchdog_; }

  /// Breach-time flight-recorder snapshot ("" if none fired yet).
  std::string LastBreachDump() const;

 private:
  /// kUnavailable("NOT_LEADER...") unless this replica is leader — the
  /// redirect non-leader replicas give every mutating RPC; clients treat it
  /// as retryable and rotate their controller channel.
  Status RequireLeader() const;
  /// Majority confirmation that no peer knows a higher epoch, collected
  /// immediately before every layout commit. A minority-partitioned leader
  /// fails here and commits nothing.
  Status ConfirmLeadership();
  /// Best-effort push of the committed layout to every follower.
  void ReplicateState();
  /// One-way leader announcement to every peer.
  void BroadcastBeat();
  /// Follower side of kCtrlLeaderBeat.
  void OnLeaderBeat(uint64_t epoch, const net::NodeId& from);
  /// Re-drives every in-flight two-phase plan recovered from the meta WAL
  /// (or inherited at election) to completion or abort. Returns how many
  /// plans were resolved.
  int CompleteRecoveredPlans();
  /// Delivers a planned promotion and commits it (aborting on failure);
  /// broadcasts the new layout on success. With `recheck_lease` set (the
  /// lease-expiry and recovered-plan paths), a stripe lease renewed between
  /// planning and acting aborts the plan — the coordinator is demonstrably
  /// alive again (a healed partition), so evicting it would be wrong. The
  /// suspect fast path passes false: its premise is a liveness probe that
  /// just failed, and the lease may well still be held (that is what makes
  /// it sub-lease).
  Status ExecuteFailover(const FailoverPlan& plan, bool recheck_lease);
  /// Delivers a planned replica eviction and commits it (same two-phase
  /// shape as ExecuteFailover).
  Status ExecuteRemoval(const ReplicaRemoval& removal);
  /// The kSuspect body, shared by the request and one-way registrations.
  Result<std::string> HandleSuspect(const std::string& payload);
  Watchdog::Options WatchdogConfig();
  void OnWatchdogBreach(const HealthReport& report);

  Controller controller_;
  ControllerServerOptions options_;
  Executor* const executor_;
  const net::NodeId node_;
  net::RpcEndpoint endpoint_;
  /// Follower's view of leader liveness: key 0, renewed by every beat (and
  /// by granting a vote), armed at Start so a dead initial leader is
  /// detected. Runs on the controller's injected clock.
  LeaseTable leader_lease_;
  mutable std::mutex lead_mu_;
  net::NodeId leader_;
  bool is_leader_ = false;
  std::atomic<bool> stop_{false};
  Executor::TimerToken monitor_token_;
  Watchdog watchdog_;
  mutable std::mutex dump_mu_;
  std::string last_breach_dump_;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_SERVICE_H_
