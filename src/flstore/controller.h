#ifndef CHARIOTS_FLSTORE_CONTROLLER_H_
#define CHARIOTS_FLSTORE_CONTROLLER_H_

#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/lease.h"
#include "common/result.h"
#include "common/status.h"
#include "flstore/striping.h"
#include "net/message.h"

namespace chariots::flstore {

/// Everything an application client needs to run a session (paper §5.1):
/// addresses of the maintainers and indexers, the striping history, and an
/// approximate record count — plus, since the replication layer, the
/// per-stripe replica sets and fencing epochs.
struct ClusterInfo {
  EpochJournal journal{1, 1000};
  /// Maintainer node ids, position-aligned with maintainer indices. With
  /// replication these are the *primaries*.
  std::vector<net::NodeId> maintainers;
  std::vector<net::NodeId> indexers;
  uint64_t approx_records = 0;
  /// Layout version, bumped by every membership change and failover. Writers
  /// of layout (AddMaintainer) must present the version they read — a CAS
  /// that rejects installs racing a concurrent failover promotion.
  uint64_t version = 0;
  /// Backup node per maintainer index; "" = that stripe is unreplicated.
  std::vector<net::NodeId> backups;
  /// Fencing epoch per maintainer index (starts at 1, bumped on every
  /// failover promotion; see ReplicaGroup for the fencing rules).
  std::vector<uint64_t> fence_epochs;
};

std::string EncodeClusterInfo(const ClusterInfo& info);
Result<ClusterInfo> DecodeClusterInfo(std::string_view data);

/// One failover the lease monitor decided on: promote `backup` to primary of
/// stripe `index` under the bumped fencing epoch. Two-phase: the caller
/// delivers the promotion RPC first, then commits (or aborts) the plan.
struct FailoverPlan {
  uint32_t index = 0;
  uint64_t new_epoch = 0;
  net::NodeId backup;
  net::NodeId failed_primary;
};

/// Timing knobs for the controller's failure detector.
struct ControllerOptions {
  /// Clock the leases run on; null = system clock. A ManualClock makes
  /// expiry (and thus failover) fully deterministic in tests.
  Clock* clock = nullptr;
  /// Lease duration: a primary missing heartbeats for this long is declared
  /// dead and its backup promoted.
  int64_t lease_nanos = 150'000'000;  // 150 ms
};

/// The highly-available control cluster of the paper (§5): an oracle
/// application clients poll at session start for the locations and striping
/// of the log maintainers, now also the failure detector — primaries
/// heartbeat it, and an expired lease triggers promotion of the stripe's
/// backup under a bumped fencing epoch (paper §5.3 reconfiguration).
class Controller {
 public:
  explicit Controller(ClusterInfo initial, ControllerOptions options = {});

  ClusterInfo GetInfo() const;

  /// Live elasticity: appends `node` as a new maintainer and installs the
  /// given future epoch (which must reference the grown maintainer count).
  /// CAS-fenced: `expected_version` must equal the current layout version
  /// (the caller's read), else kAborted — an install racing a concurrent
  /// failover promotion must re-read the layout and retry, not clobber it.
  Status AddMaintainer(const net::NodeId& node, const StripeEpoch& epoch,
                       uint64_t expected_version);

  /// Declares `backup` the replica of stripe `index` (bumps the version).
  Status SetBackup(uint32_t index, const net::NodeId& backup);

  void SetApproxRecords(uint64_t n);

  /// Heartbeat from the primary of stripe `index`; renews its lease iff
  /// `from` is the node the layout names as that primary (a fenced old
  /// primary's heartbeats no longer count).
  void Heartbeat(uint32_t index, const net::NodeId& from);

  /// Stripes whose primary lease expired and which have a backup to promote.
  /// Marks each returned stripe in-failover so repeated calls don't plan the
  /// same promotion twice; resolve with CommitFailover or AbortFailover.
  std::vector<FailoverPlan> ExpiredLeases();

  /// Applies a planned failover: the backup becomes the stripe's primary
  /// under the new fencing epoch, the version bumps, and the stripe's lease
  /// re-arms when the new primary first heartbeats.
  Status CommitFailover(const FailoverPlan& plan);

  /// Abandons a planned failover (promotion RPC failed); the lease re-arms
  /// so the monitor retries after another lease period.
  void AbortFailover(uint32_t index);

  /// True while stripe `index`'s primary holds an unexpired lease.
  bool LeaseHeld(uint32_t index) const { return leases_.Held(index); }

  uint64_t version() const;
  int64_t lease_nanos() const { return leases_.lease_nanos(); }

 private:
  mutable std::mutex mu_;
  ClusterInfo info_;
  LeaseTable leases_;
  /// Stripes with a planned, uncommitted promotion.
  std::set<uint32_t> in_failover_;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_CONTROLLER_H_
