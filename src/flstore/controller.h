#ifndef CHARIOTS_FLSTORE_CONTROLLER_H_
#define CHARIOTS_FLSTORE_CONTROLLER_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "flstore/striping.h"
#include "net/message.h"

namespace chariots::flstore {

/// Everything an application client needs to run a session (paper §5.1):
/// addresses of the maintainers and indexers, the striping history, and an
/// approximate record count.
struct ClusterInfo {
  EpochJournal journal{1, 1000};
  /// Maintainer node ids, position-aligned with maintainer indices.
  std::vector<net::NodeId> maintainers;
  std::vector<net::NodeId> indexers;
  uint64_t approx_records = 0;
};

std::string EncodeClusterInfo(const ClusterInfo& info);
Result<ClusterInfo> DecodeClusterInfo(std::string_view data);

/// The highly-available stateless control cluster of the paper, realized as
/// a single in-memory metadata service: an oracle application clients poll
/// at session start for the locations and striping of the log maintainers.
/// (The paper's controller holds no data-path state; neither does this one.)
class Controller {
 public:
  explicit Controller(ClusterInfo initial) : info_(std::move(initial)) {}

  ClusterInfo GetInfo() const {
    std::lock_guard<std::mutex> lock(mu_);
    return info_;
  }

  /// Live elasticity: appends `node` as a new maintainer and installs the
  /// given future epoch (which must reference the grown maintainer count).
  Status AddMaintainer(const net::NodeId& node, const StripeEpoch& epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch.num_maintainers != info_.maintainers.size() + 1) {
      return Status::InvalidArgument(
          "epoch maintainer count must equal current + 1");
    }
    CHARIOTS_RETURN_IF_ERROR(info_.journal.AddEpoch(epoch));
    info_.maintainers.push_back(node);
    return Status::OK();
  }

  void SetApproxRecords(uint64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    info_.approx_records = n;
  }

 private:
  mutable std::mutex mu_;
  ClusterInfo info_;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_CONTROLLER_H_
