#ifndef CHARIOTS_FLSTORE_CONTROLLER_H_
#define CHARIOTS_FLSTORE_CONTROLLER_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/lease.h"
#include "common/result.h"
#include "common/status.h"
#include "flstore/striping.h"
#include "net/message.h"
#include "storage/meta_wal.h"

namespace chariots::flstore {

/// Everything an application client needs to run a session (paper §5.1):
/// addresses of the maintainers and indexers, the striping history, and an
/// approximate record count — plus, since the replication layer, the
/// per-stripe replica sets and fencing epochs.
struct ClusterInfo {
  EpochJournal journal{1, 1000};
  /// Maintainer node ids, position-aligned with maintainer indices. With
  /// replication these are the stripe *coordinators*.
  std::vector<net::NodeId> maintainers;
  std::vector<net::NodeId> indexers;
  uint64_t approx_records = 0;
  /// Layout version, bumped by every membership change and failover. Writers
  /// of layout (AddMaintainer) must present the version they read — a CAS
  /// that rejects installs racing a concurrent failover promotion.
  uint64_t version = 0;
  /// Replica nodes per maintainer index (the stripe's replica set minus its
  /// coordinator); empty = that stripe is unreplicated. Every replica serves
  /// linearizable reads, so clients spread reads across coordinator +
  /// replicas.
  std::vector<std::vector<net::NodeId>> replicas;
  /// Fencing epoch per maintainer index (starts at 1, bumped on every
  /// failover promotion or replica-set change; see ReplicaGroup).
  std::vector<uint64_t> fence_epochs;
  /// Controller (leadership) epoch, bumped by every leader election of the
  /// replicated control plane. Stamped into every layout/promotion RPC so
  /// maintainers reject commands from a deposed leader, and carried in the
  /// layout so clients reject a stale leader's view: layouts are ordered by
  /// (ctrl_epoch, version) lexicographically.
  uint64_t ctrl_epoch = 1;
};

std::string EncodeClusterInfo(const ClusterInfo& info);
Result<ClusterInfo> DecodeClusterInfo(std::string_view data);

/// One failover the failure detector decided on: promote `candidate` to
/// coordinator of stripe `index` under the bumped fencing epoch, with
/// `survivors` as its new replica set. Two-phase: the caller delivers the
/// promotion RPC first, then commits (or aborts) the plan.
struct FailoverPlan {
  uint32_t index = 0;
  uint64_t new_epoch = 0;
  net::NodeId candidate;
  std::vector<net::NodeId> survivors;
  net::NodeId failed_primary;
};

/// One replica eviction: drop `removed` from stripe `index`'s replica set
/// under a bumped epoch, so the surviving coordinator's writes stop waiting
/// on a dead peer. Two-phase like FailoverPlan: the caller reconfigures the
/// coordinator first, then commits.
struct ReplicaRemoval {
  uint32_t index = 0;
  uint64_t new_epoch = 0;
  net::NodeId removed;
  net::NodeId coordinator;
  std::vector<net::NodeId> survivors;
};

/// Everything the controller must not forget across a crash: the layout
/// (with its epochs), the highest election epoch it ever voted for, and any
/// two-phase plan that was in flight. One encoded ControllerState is one
/// meta-WAL frame; recovery decodes the last intact frame and *resumes* the
/// in-flight plans (complete or abort) instead of forgetting them.
struct ControllerState {
  ClusterInfo info;
  /// Highest controller epoch this replica granted a vote for (durable so a
  /// restart cannot double-vote in the same epoch).
  uint64_t max_granted_epoch = 0;
  std::vector<FailoverPlan> inflight_failovers;
  std::vector<ReplicaRemoval> inflight_removals;
};

std::string EncodeControllerState(const ControllerState& state);
Result<ControllerState> DecodeControllerState(std::string_view data);

/// Timing knobs for the controller's failure detector.
struct ControllerOptions {
  /// Clock the leases run on; null = system clock. A ManualClock makes
  /// expiry (and thus failover) fully deterministic in tests.
  Clock* clock = nullptr;
  /// Lease duration: a coordinator missing heartbeats for this long is
  /// declared dead and a replica promoted. With the suspect fast path this
  /// is the *backstop* detector, not the expected MTTR.
  int64_t lease_nanos = 150'000'000;  // 150 ms
  /// Metadata WAL path ("" = in-memory only, the pre-durability behavior).
  /// When set, every layout change, epoch bump, vote, and in-flight plan is
  /// framed to this file before the mutation is acknowledged, and Open()
  /// recovers the exact pre-crash state from it.
  std::string meta_wal_path;
  /// Optional scripted disk-fault plan for the meta WAL (crash matrix).
  storage::DiskFaultSchedule* disk_faults = nullptr;
  /// Meta-WAL compaction threshold (see storage::MetaWal::Options).
  size_t meta_wal_compact_min_frames = 16;
};

/// The highly-available control cluster of the paper (§5): an oracle
/// application clients poll at session start for the locations and striping
/// of the log maintainers, now also the failure detector — coordinators
/// heartbeat it, an expired lease triggers promotion of a stripe replica
/// under a bumped fencing epoch (paper §5.3 reconfiguration), and suspect
/// reports from clients or coordinators trigger the same reconfigurations
/// without waiting out the lease.
class Controller {
 public:
  explicit Controller(ClusterInfo initial, ControllerOptions options = {});
  ~Controller();

  /// Opens the metadata WAL (when configured) and recovers from it: a
  /// non-empty WAL *replaces* the constructor's initial info with the exact
  /// pre-crash state — layout, fence epochs, controller epoch, granted
  /// votes, and in-flight plans. An empty WAL persists the initial state as
  /// its first frame. No-op without a WAL path. Call before serving.
  Status Open();
  Status Close();

  ClusterInfo GetInfo() const;

  /// Live elasticity: appends `node` as a new maintainer and installs the
  /// given future epoch (which must reference the grown maintainer count).
  /// CAS-fenced: `expected_version` must equal the current layout version
  /// (the caller's read), else kAborted — an install racing a concurrent
  /// failover promotion must re-read the layout and retry, not clobber it.
  Status AddMaintainer(const net::NodeId& node, const StripeEpoch& epoch,
                       uint64_t expected_version);

  /// Adds `replica` to stripe `index`'s replica set (bumps the version).
  Status AddReplica(uint32_t index, const net::NodeId& replica);

  void SetApproxRecords(uint64_t n);

  /// Heartbeat from the coordinator of stripe `index`; renews its lease iff
  /// `from` is the node the layout names as that coordinator (a fenced old
  /// coordinator's heartbeats no longer count).
  void Heartbeat(uint32_t index, const net::NodeId& from);

  /// Stripes whose coordinator lease expired and which have a replica to
  /// promote. Marks each returned stripe in-failover so repeated calls don't
  /// plan the same promotion twice; resolve with CommitFailover or
  /// AbortFailover.
  std::vector<FailoverPlan> ExpiredLeases();

  /// Plans a failover for stripe `index` right now (the suspect fast path —
  /// a client or peer reported the coordinator dead and a probe agreed).
  /// kAborted if a failover is already in flight for the stripe;
  /// kFailedPrecondition if there is no replica to promote.
  Result<FailoverPlan> PlanFailover(uint32_t index);

  /// Applies a planned failover: the candidate becomes the stripe's
  /// coordinator under the new fencing epoch with the surviving replicas,
  /// the version bumps, and the stripe's lease re-arms when the new
  /// coordinator first heartbeats.
  Status CommitFailover(const FailoverPlan& plan);

  /// Abandons a planned failover (promotion RPC failed); the lease re-arms
  /// so the monitor retries after another lease period.
  void AbortFailover(uint32_t index);

  /// Plans the eviction of `suspect` from stripe `index`'s replica set (the
  /// coordinator reported it unreachable and a probe agreed). Same
  /// in-flight guard as PlanFailover.
  Result<ReplicaRemoval> PlanReplicaRemoval(uint32_t index,
                                            const net::NodeId& suspect);

  /// Applies a planned eviction: the survivors become the replica set under
  /// the bumped epoch and the version bumps. The coordinator is unchanged,
  /// so its lease keeps running.
  Status CommitReplicaRemoval(const ReplicaRemoval& removal);

  /// Abandons a planned eviction.
  void AbortReplicaRemoval(uint32_t index);

  /// True while stripe `index`'s coordinator holds an unexpired lease.
  bool LeaseHeld(uint32_t index) const { return leases_.Held(index); }

  /// Nanos left on stripe `index`'s coordinator lease (kCtrlStatus).
  std::optional<int64_t> LeaseRemainingNanos(uint32_t index) const {
    return leases_.RemainingNanos(index);
  }

  uint64_t version() const;
  int64_t lease_nanos() const { return leases_.lease_nanos(); }

  // ------------------------------------------------ replicated control plane

  /// Current controller (leadership) epoch.
  uint64_t ctrl_epoch() const;

  /// Highest election epoch this replica granted a vote for.
  uint64_t max_granted_epoch() const;

  /// Adopts `epoch` as the controller epoch if it is higher (durable). A
  /// follower calls this when a leader announces itself; a candidate calls
  /// it after winning an election.
  Status AdoptCtrlEpoch(uint64_t epoch);

  /// Leader-election vote: grants iff `epoch` is strictly higher than both
  /// the current controller epoch and every previously granted epoch. The
  /// grant is persisted before it is returned, so a replica that crashes
  /// and restarts can never hand the same epoch to two candidates.
  Result<bool> GrantVote(uint64_t epoch);

  /// Installs a leader's replicated layout if it is at least as recent as
  /// the local one — layouts are ordered by (ctrl_epoch, version) — and
  /// drops any locally planned (now moot) two-phase plans. kAborted when
  /// the offered layout is older (the sender is the deposed one).
  Status InstallReplicatedState(const ClusterInfo& info);

  /// In-flight (planned, uncommitted) two-phase plans — what a restarted
  /// or newly elected leader must complete or abort before serving.
  std::vector<FailoverPlan> InflightFailovers() const;
  std::vector<ReplicaRemoval> InflightRemovals() const;

 private:
  /// Frames the full durable state to the meta WAL (no-op when not
  /// configured). Call with mu_ held after every durable mutation.
  Status PersistLocked();
  /// Copies the durable state, applies `fn` (which returns Status), and
  /// persists; a persist failure rolls the copy back so memory never runs
  /// ahead of a disk that refused the frame.
  template <typename Fn>
  Status MutateLocked(Fn&& fn);
  bool InFailoverLocked(uint32_t index) const {
    return inflight_failovers_.count(index) != 0 ||
           inflight_removals_.count(index) != 0;
  }

  const ControllerOptions options_;
  mutable std::mutex mu_;
  ClusterInfo info_;
  LeaseTable leases_;
  /// Planned, uncommitted two-phase plans by stripe (durable).
  std::map<uint32_t, FailoverPlan> inflight_failovers_;
  std::map<uint32_t, ReplicaRemoval> inflight_removals_;
  uint64_t max_granted_epoch_ = 0;
  storage::MetaWal wal_;
  bool wal_open_ = false;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_CONTROLLER_H_
