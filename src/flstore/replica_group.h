#ifndef CHARIOTS_FLSTORE_REPLICA_GROUP_H_
#define CHARIOTS_FLSTORE_REPLICA_GROUP_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "flstore/types.h"
#include "net/rpc.h"

namespace chariots::flstore {

/// This node's position in its stripe's replica set.
enum class ReplicaRole : uint8_t {
  kSolo = 0,     ///< unreplicated stripe (pre-replication deployments)
  kPrimary = 1,  ///< serves clients, ships every landed record to the backup
  kBackup = 2,   ///< applies replicated records, rejects client traffic
};

/// One landed record as shipped primary -> backup: its assigned position and
/// its already-encoded bytes (the backup applies it with AppendAt, so both
/// replicas hold byte-identical payloads at identical positions).
struct ReplicatedEntry {
  LId lid = kInvalidLId;
  std::string record_bytes;
};

/// Payload of a kReplicate RPC. Carries the primary's fencing epoch (the
/// backup rejects anything stale), the batch of landed records, and the
/// dedup token + cached response of the client operation that produced them
/// ("" client_id = none), so exactly-once state survives failover: a retry
/// that lands on the promoted backup replays the cached response instead of
/// appending twice.
struct ReplicateRequest {
  uint64_t epoch = 0;
  std::vector<ReplicatedEntry> entries;
  std::string client_id;
  uint64_t seq = 0;
  std::string response;
};

std::string EncodeReplicateRequest(const ReplicateRequest& req);
Result<ReplicateRequest> DecodeReplicateRequest(std::string_view data);

/// Opcode of the replicate RPC. service.h's Opcode enum aliases this value;
/// it lives here so ReplicaGroup needn't depend on the service layer.
inline constexpr uint16_t kReplicateRpc = 15;

/// Options for one node's view of its stripe replica set.
struct ReplicaOptions {
  ReplicaRole role = ReplicaRole::kSolo;
  /// The stripe's fencing epoch this node believes in. Starts at 1; every
  /// failover promotion bumps it, and a node that learns of a higher epoch
  /// (or fails to reach its backup) must stop serving.
  uint64_t epoch = 1;
  /// The backup node (primary role only; "" = primary with no backup).
  net::NodeId backup;
  /// Per-attempt budget for the synchronous replicate call. Appends ack only
  /// after the backup durably framed the batch, so this bounds append
  /// latency under a slow/partitioned backup before the primary self-fences.
  std::chrono::milliseconds replicate_timeout{1000};
};

/// Epoch-fenced primary–backup replication for one maintainer stripe.
///
/// The protocol is deliberately minimal (one synchronous hop, no quorums):
///  * The primary lands a batch locally, then ships it to the backup and
///    acks the client only after the backup confirmed durability.
///  * If the backup is unreachable or rejects the epoch, the primary
///    *self-fences*: it stops serving (NOT_PRIMARY on every later request)
///    and stops heartbeating, so the controller promotes the backup. The
///    primary's unacked local tail may diverge, but a fenced node never
///    serves it — the client retries against the promoted backup, and dedup
///    state (replicated with each batch) keeps the retry exactly-once.
///  * The backup rejects client traffic and any replicate/fill carrying an
///    epoch other than its own, which makes a deposed primary's in-flight
///    traffic harmless after promotion (split-brain safety).
///
/// Thread-safe; role/epoch transitions and the fenced latch share one lock.
class ReplicaGroup {
 public:
  ReplicaGroup(net::RpcEndpoint* endpoint, ReplicaOptions options);

  ReplicaRole role() const;
  uint64_t epoch() const;
  bool fenced() const;
  net::NodeId backup() const;

  /// True when this node must ship landed records to a backup.
  bool replicates() const;

  /// Primary: synchronously replicate a batch (with its dedup token) to the
  /// backup. Any failure — transport, timeout, or epoch rejection — fences
  /// this node before returning, so the caller must fail the client request
  /// (kUnavailable) and never ack.
  Status Replicate(std::vector<ReplicatedEntry> entries,
                   const std::string& client_id, uint64_t seq,
                   const std::string& response);

  /// Guard for client-facing handlers: OK only when this node is an
  /// unfenced primary (or solo). Backups and fenced nodes get kUnavailable
  /// with a NOT_PRIMARY marker, which steers the client's failover loop to
  /// refresh its controller view.
  Status CheckServing() const;

  /// Backup: validate the epoch of an incoming replicate/fill. A stale
  /// epoch is rejected with kFailedPrecondition (the sender must fence); a
  /// *newer* epoch also rejects — the backup only moves epochs via Promote.
  Status CheckReplicaEpoch(uint64_t remote_epoch) const;

  /// Backup -> primary under the bumped fencing epoch. Idempotent: a retry
  /// of the same promotion (already primary at `new_epoch`) is OK; an
  /// attempt to move backward fails.
  Status Promote(uint64_t new_epoch);

  /// Stop serving permanently (until a restart reconfigures the node).
  void Fence();

 private:
  net::RpcEndpoint* const endpoint_;

  mutable std::mutex mu_;
  ReplicaRole role_;
  uint64_t epoch_;
  net::NodeId backup_;
  bool fenced_ = false;
  const std::chrono::milliseconds replicate_timeout_;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_REPLICA_GROUP_H_
