#ifndef CHARIOTS_FLSTORE_REPLICA_GROUP_H_
#define CHARIOTS_FLSTORE_REPLICA_GROUP_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "flstore/types.h"
#include "net/rpc.h"

namespace chariots::flstore {

/// This node's position in its stripe's replica set.
enum class ReplicaRole : uint8_t {
  kSolo = 0,         ///< unreplicated stripe (pre-replication deployments)
  kCoordinator = 1,  ///< assigns positions, drives invalidate/validate rounds
  kReplica = 2,      ///< applies invalidations, serves reads of valid positions
};

/// One landed record as shipped coordinator -> replica: its assigned position
/// and its already-encoded bytes (replicas apply it with AppendAt, so every
/// replica holds byte-identical payloads at identical positions).
struct ReplicatedEntry {
  LId lid = kInvalidLId;
  std::string record_bytes;
};

/// Payload of a kInvalidate RPC — the INV leg of the Hermes round. Carries
/// the coordinator's fencing epoch (replicas reject anything stale), the
/// batch of landed records (INVs carry the value, so the ack implies the
/// replica holds it durably), and the dedup token + cached response of the
/// client operation that produced them ("" client_id = none), so
/// exactly-once state survives failover: a retry that lands on a promoted
/// replica replays the cached response instead of appending twice.
struct InvalidateRequest {
  uint64_t epoch = 0;
  std::vector<ReplicatedEntry> entries;
  std::string client_id;
  uint64_t seq = 0;
  std::string response;
};

std::string EncodeInvalidateRequest(const InvalidateRequest& req);
Result<InvalidateRequest> DecodeInvalidateRequest(std::string_view data);

/// Payload of the one-way kValidate notify — the VAL leg. Sent after every
/// peer acked the INV, it flips the listed positions readable and carries
/// the coordinator's validated floor (one past the highest all-acked
/// position), which replicas fold into their own cacheable-HL bound.
struct ValidateNotice {
  uint64_t epoch = 0;
  std::vector<LId> lids;
  LId floor = 0;
};

std::string EncodeValidateNotice(const ValidateNotice& notice);
Result<ValidateNotice> DecodeValidateNotice(std::string_view data);

/// Opcodes of the replication RPCs. service.h's Opcode enum aliases these;
/// they live here so ReplicaGroup needn't depend on the service layer.
inline constexpr uint16_t kInvalidateRpc = 15;
inline constexpr uint16_t kValidateRpc = 20;

/// Options for one node's view of its stripe replica set.
struct ReplicaOptions {
  ReplicaRole role = ReplicaRole::kSolo;
  /// The stripe's fencing epoch this node believes in. Starts at 1; every
  /// failover promotion or replica-set change bumps it, and a node whose
  /// epoch is rejected as stale must stop serving.
  uint64_t epoch = 1;
  /// The other replicas of this stripe (coordinator role only; replicas
  /// learn the membership when they are promoted or reconfigured).
  std::vector<net::NodeId> peers;
  /// Per-peer budget for one synchronous invalidate call. Appends ack only
  /// after every replica durably framed the batch, so this bounds append
  /// latency under a slow peer before the write parks as invalid.
  std::chrono::milliseconds invalidate_timeout{1000};
};

/// Hermes-style epoch-fenced broadcast replication for one maintainer
/// stripe (DESIGN.md §12).
///
///  * The coordinator lands a batch locally (marked invalid), then sends an
///    INV carrying the payload to every peer. Each ack means "applied and
///    durable here". Once all peers acked, the coordinator validates the
///    positions (local mark + one-way VAL broadcast) and acks the client.
///  * Every replica serves reads — but only of *valid* positions, which is
///    what makes the reads linearizable: a valid position is durable on all
///    replicas and can never be junk-filled by a failover.
///  * An epoch rejection from any peer means a higher epoch exists: this
///    node is deposed and self-fences (split-brain safety, unchanged from
///    the primary–backup scheme). A mere transport failure does NOT fence —
///    the write parks as invalid, the caller reports the suspect peer, and
///    the write completes via replay once the controller removes the dead
///    peer (or, if we are the partitioned side, a later epoch rejection or
///    lease expiry fences us).
///  * A replica that sees a *higher* epoch adopts it: promotion replay
///    re-invalidates surviving replicas under the new coordinator's epoch.
///
/// Thread-safe; role/epoch/peer transitions and the fenced latch share one
/// lock.
class ReplicaGroup {
 public:
  ReplicaGroup(net::RpcEndpoint* endpoint, ReplicaOptions options);

  ReplicaRole role() const;
  uint64_t epoch() const;
  bool fenced() const;
  std::vector<net::NodeId> peers() const;

  /// True when this node must broadcast landed records to peers.
  bool replicates() const;

  /// True when this node is part of a multi-node replica set (broadcasting
  /// coordinator or replica) — i.e. when the cacheable HL must be capped at
  /// the validated floor.
  bool in_replica_set() const;

  /// Coordinator: synchronously invalidate a batch (with its dedup token)
  /// on every peer. On an epoch rejection this node fences before
  /// returning. On a transport failure it does NOT fence: `unreachable` (if
  /// non-null) names the suspect peer and the caller must fail the client
  /// request (kUnavailable) without acking — the landed entries stay
  /// invalid until a replay revalidates them.
  Status InvalidateBroadcast(std::vector<ReplicatedEntry> entries,
                             const std::string& client_id, uint64_t seq,
                             const std::string& response,
                             net::NodeId* unreachable);

  /// Coordinator: fire-and-forget VAL broadcast flipping `lids` readable on
  /// every peer, piggybacking the validated floor. Losing one is harmless —
  /// the positions stay invalid (unreadable) on that replica until a later
  /// VAL or a promotion replay covers them.
  void ValidateBroadcast(const std::vector<LId>& lids, LId floor);

  /// Guard for append-side handlers: OK only when this node is an unfenced
  /// coordinator (or solo). Replicas and fenced nodes get kUnavailable with
  /// a NOT_COORDINATOR marker, which steers the client's failover loop.
  Status CheckAppendServing() const;

  /// Guard for read-side handlers: every unfenced role serves reads (of
  /// valid positions — validity is enforced per-LId by the service layer).
  Status CheckReadServing() const;

  /// Folds the epoch of an incoming invalidate/fetch into this node. Stale
  /// epochs are rejected with kFailedPrecondition (the sender must fence).
  /// A *newer* epoch is adopted — a coordinator demotes itself to replica
  /// (it was deposed; the new coordinator's replay is re-invalidating us).
  Status AcceptRemoteEpoch(uint64_t remote_epoch);

  /// Replica -> coordinator of `peers` under the bumped fencing epoch.
  /// Idempotent: a retry of the same promotion (already coordinator at
  /// `new_epoch`) is OK; an attempt to move backward fails.
  Status Promote(uint64_t new_epoch, std::vector<net::NodeId> peers);

  /// Coordinator: adopt a new replica set under a bumped epoch (the
  /// controller removing a dead peer). Replicas cannot reconfigure.
  Status Reconfigure(uint64_t new_epoch, std::vector<net::NodeId> peers);

  /// Stop serving permanently (until a restart reconfigures the node).
  void Fence();

 private:
  net::RpcEndpoint* const endpoint_;

  mutable std::mutex mu_;
  ReplicaRole role_;
  uint64_t epoch_;
  std::vector<net::NodeId> peers_;
  bool fenced_ = false;
  const std::chrono::milliseconds invalidate_timeout_;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_REPLICA_GROUP_H_
