#ifndef CHARIOTS_FLSTORE_DEDUP_H_
#define CHARIOTS_FLSTORE_DEDUP_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "storage/fault_injection.h"
#include "storage/file.h"

namespace chariots::flstore {

/// Exactly-once guard for retried appends (paper has at-most-once clients;
/// our retrying clients need the server side to absorb duplicates).
///
/// Each client stamps appends with a (client_id, seq) token; the maintainer
/// remembers the last `window_per_client` responses per client and replays
/// the cached response for a token it has already executed, so a retry of a
/// lost *response* returns the same LIds instead of appending twice.
///
/// Sizing: the window must cover the client's maximum number of in-flight
/// operations plus any retries that can arrive after later operations
/// completed — with one outstanding op per client thread and bounded retry
/// counts, a window of ~128 is generous. A token older than the window is
/// rejected with FailedPrecondition rather than re-executed, which turns a
/// too-small window into a visible error instead of a silent duplicate.
///
/// With a sidecar path set, every recorded response is appended to a
/// CRC-framed file that Open() replays, so the window survives a maintainer
/// crash-restart (the record and its dedup entry are both durable before
/// the client ever sees an ack). A torn tail is truncated, matching the
/// LogStore recovery contract.
class DedupWindow {
 public:
  struct Options {
    size_t window_per_client = 128;
    /// Optional persistence sidecar. Empty = in-memory only.
    std::string sidecar_path;
    /// Compact the sidecar once it holds at least this many frames AND live
    /// entries are fewer than half of them, so a long-lived maintainer never
    /// replays an unbounded file on recovery. 0 disables auto-compaction
    /// (Close() still compacts).
    size_t compact_min_frames = 64;
    /// Optional scripted disk-fault plan the sidecar writes route through.
    storage::DiskFaultSchedule* disk_faults = nullptr;
  };

  explicit DedupWindow(Options options) : options_(std::move(options)) {}

  /// Replays the sidecar (if configured). Must precede Lookup/Record.
  Status Open();

  /// Compacts the sidecar to the live window and releases it. A subsequent
  /// Open() replays the compacted file.
  Status Close();

  /// The cached response for an already-executed token, or nullopt if this
  /// token is new. FailedPrecondition if the token fell out of the window
  /// (too old to judge — the caller must NOT re-execute it).
  Result<std::optional<std::string>> Lookup(const std::string& client_id,
                                            uint64_t seq);

  /// Records the response for a freshly executed token, evicting the oldest
  /// entries beyond the window and appending to the sidecar if configured.
  Status Record(const std::string& client_id, uint64_t seq,
                const std::string& response);

  uint64_t hits() const;
  size_t entries() const;
  /// Sidecar rewrites performed since Open() (observability/testing).
  uint64_t compactions() const;
  /// Frames currently in the sidecar file, live and superseded.
  uint64_t sidecar_frames() const;

 private:
  struct ClientWindow {
    std::map<uint64_t, std::string> responses;  // seq -> cached response
    /// Tokens at or below this seq that are absent from `responses` were
    /// evicted, not unseen.
    uint64_t evicted_below = 0;
  };

  Status ReplaySidecarLocked();
  Status AppendSidecarLocked(const std::string& client_id, uint64_t seq,
                             const std::string& response);
  std::string EncodeLiveLocked() const;
  /// Rewrites the sidecar down to the live window and reopens it.
  Status CompactSidecarLocked();
  /// Compacts when the file is at least half dead (and big enough to care).
  Status MaybeCompactSidecarLocked();

  const Options options_;

  mutable std::mutex mu_;
  bool open_ = false;
  std::unordered_map<std::string, ClientWindow> clients_;
  storage::FaultInjectingFile sidecar_;
  uint64_t hits_ = 0;
  size_t entries_ = 0;
  uint64_t sidecar_frames_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_DEDUP_H_
