#ifndef CHARIOTS_FLSTORE_CLIENT_H_
#define CHARIOTS_FLSTORE_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/codec.h"
#include "flstore/controller.h"
#include "flstore/read_cache.h"
#include "flstore/indexer.h"
#include "flstore/service.h"
#include "flstore/types.h"
#include "net/retrying_channel.h"
#include "net/rpc.h"

namespace chariots::flstore {

/// Client-side robustness knobs.
struct ClientOptions {
  /// Retry policy for the client's calls. Reads are naturally idempotent;
  /// appends carry a (client_id, seq) token the maintainer dedups on, so
  /// they are safely retried too.
  net::RetryingChannel::Options retry;
  /// Clock used for backoff sleeps; null = system clock.
  Clock* clock = nullptr;
  /// Failover: how many times a maintainer call re-resolves the stripe's
  /// primary from the controller after the channel exhausted its retries
  /// against the node it was talking to. Bounds total unavailability to
  /// roughly attempts * (channel retry budget + backoff).
  int failover_attempts = 8;
  /// Pause before each layout refresh, giving an in-flight failover time to
  /// commit.
  int64_t failover_backoff_nanos = 20'000'000;  // 20 ms
  /// Byte budget of the client-side read-through cache (0 disables it).
  /// Entries below the head of the log are immutable and served locally
  /// forever; tail entries are purged when their stripe's fence epoch
  /// advances (piggybacked on every read response — see read_cache.h).
  uint64_t read_cache_bytes = 4ull << 20;
  /// Replicated control plane: ALL controller replicas. When non-empty it
  /// supersedes the constructor's single `controller` argument; the client
  /// fails its controller channel over across these exactly like it fails
  /// stripe calls over across replicas — a follower's NOT_LEADER redirect
  /// (kUnavailable) rotates to the next replica, and the leader that
  /// answers becomes sticky.
  std::vector<net::NodeId> controllers;
};

/// One controller replica's view of the control plane (the kCtrlStatus
/// dump behind `chariots_cli status`). Any replica answers from its own
/// state, so a follower reports is_leader=false plus whoever it last heard
/// a beat from.
struct ControlPlaneStatus {
  /// Sentinel for "no lease armed" (a lease that exists but already lapsed
  /// reports a negative remaining time instead).
  static constexpr int64_t kNoLease = INT64_MIN;

  uint64_t ctrl_epoch = 0;   ///< controller (fencing) epoch
  uint64_t version = 0;      ///< layout version
  bool is_leader = false;    ///< whether the answering replica leads
  net::NodeId leader;        ///< last known leader ("" = unknown)
  int64_t leader_lease_nanos = kNoLease;  ///< follower's leader-lease age

  struct Stripe {
    net::NodeId coordinator;
    uint64_t fence_epoch = 0;
    int64_t lease_nanos = kNoLease;  ///< coordinator heartbeat lease
    std::vector<net::NodeId> replicas;
  };
  std::vector<Stripe> stripes;  ///< one per maintainer index
};

/// The linked client library of the paper (§3, §5.1): an application client
/// polls the controller once per session for the cluster layout, then talks
/// to maintainers (appends/reads) and indexers (tag lookups) directly.
///
/// Every call retries transient failures (kUnavailable / kTimedOut) with
/// jittered exponential backoff. An append picks its maintainer once and
/// retries *sticky* to that stripe — the dedup window that absorbs the retry
/// is replicated with the batch, so a retry is answered by the original
/// coordinator or by whichever replica got promoted after a failover.
///
/// Reads of a replicated stripe spread round-robin across the coordinator
/// AND its replicas — every replica serves linearizable reads of validated
/// positions — and cycle to the next replica when one is down or answers
/// INVALID_LID (position not validated there yet).
///
/// When a node stops answering, the client reports it to the controller
/// (kSuspect) *synchronously*: the controller probes the node and, if it is
/// really dead, promotes a replica (or evicts the dead replica) inside that
/// call. That is the sub-lease failover path — the client's next attempt
/// lands on the repaired layout without waiting out the lease.
class FLStoreClient {
 public:
  /// `node` is this client's own address on the fabric; `controller` is the
  /// controller's address.
  FLStoreClient(net::Transport* transport, net::NodeId node,
                net::NodeId controller, ClientOptions options = {});
  ~FLStoreClient();

  /// Starts the session: binds the endpoint and fetches cluster info.
  Status Start();
  void Stop();

  /// Appends a record to a (round-robin chosen) maintainer; returns the
  /// post-assigned LId.
  Result<LId> Append(const LogRecord& record);

  /// Appends a batch in one round trip (all records land on one
  /// maintainer, in order); returns their LIds.
  Result<std::vector<LId>> AppendBatch(const std::vector<LogRecord>& records);

  /// Explicit-order append: lands at a position strictly greater than
  /// `min_lid` (paper §5.4). Returns the LId, or kInvalidLId if deferred.
  Result<LId> AppendOrdered(const LogRecord& record, LId min_lid);

  /// Reads a record by its LId, routing via the striping journal. Served
  /// from the local read-through cache when possible.
  Result<LogRecord> Read(LId lid);

  /// Gap-safe read: only positions below the Head of the Log.
  Result<LogRecord> ReadCommitted(LId lid);

  /// Batched read: coalesces the (cache-missing) lids into one kReadRange
  /// call per stripe, so N reads cost at most one round trip per stripe
  /// instead of N. Results come back in input order; NotFound if any lid
  /// has no record.
  Result<std::vector<LogRecord>> ReadMany(const std::vector<LId>& lids);

  /// Current Head of the Log (asks a maintainer).
  Result<LId> HeadOfLog();

  /// Tag lookup via the responsible indexer.
  Result<std::vector<Posting>> Lookup(const IndexQuery& query);

  /// Convenience: look up the matching postings and read their records.
  Result<std::vector<LogRecord>> ReadByTag(const IndexQuery& query);

  /// Re-polls the controller (e.g. after elasticity changed the layout).
  Status RefreshClusterInfo();

  /// Control-plane status as seen by whichever controller replica answers
  /// (sticky leader first; see CallController). Powers `chariots_cli
  /// status`.
  Result<ControlPlaneStatus> ControllerStatus();

  /// The layout this client is currently operating with.
  ClusterInfo cluster_info() const;

  /// Retries performed across all calls (observability/testing): channel
  /// retries plus outer failover-loop retries (the suspect fast path skips
  /// the channel, so its retries are counted here).
  uint64_t retries() const {
    return channel_.retries() +
           outer_retries_.load(std::memory_order_relaxed);
  }

  /// Read-through cache occupancy (observability/testing).
  uint64_t read_cache_entries() const { return read_cache_.entries(); }
  uint64_t read_cache_bytes() const { return read_cache_.bytes(); }

  /// Successful remote reads per serving node (observability: shows how
  /// read load spread across a stripe's coordinator and replicas).
  std::map<net::NodeId, uint64_t> reads_by_node() const;

 private:
  /// Stripe index an append goes to (round-robin). Calls are keyed by
  /// *index*, not node: the index is stable across failover, so a retry
  /// after a layout refresh lands on the stripe's new primary.
  uint32_t IndexForAppend();
  Result<uint32_t> IndexForLId(LId lid);
  /// Calls the current primary of stripe `index`, refreshing the layout and
  /// failing over when the node is unreachable or fenced (kUnavailable /
  /// kTimedOut). The payload — including any dedup token — is reused
  /// verbatim on every attempt, so retried appends stay exactly-once.
  Result<std::string> CallMaintainerIndex(uint32_t index, uint16_t op,
                                          const std::string& payload);
  /// Read-path variant: fans a read over stripe `index`'s replica set
  /// (coordinator + replicas, rotated per call), cycling to the next member
  /// on kUnavailable/kTimedOut — a down node, a fenced node, or a position
  /// not yet validated there. NotFound is final only when *every* member
  /// reports it. When a whole cycle fails, reports the first dead-looking
  /// member to the controller and retries on the repaired layout.
  Result<std::string> CallStripeRead(uint32_t index, uint16_t op,
                                     const std::string& payload);
  /// Synchronous suspect report: asks the controller to probe `node` (of
  /// stripe `index`) and repair the layout if it really is dead. Returns
  /// true when the controller says the layout changed (the client refreshed
  /// and should retry immediately, no backoff).
  bool ReportSuspect(uint32_t index, const net::NodeId& node);
  /// Calls the controller, rotating across replicas on kUnavailable /
  /// kTimedOut (a dead replica or a follower's NOT_LEADER redirect) and
  /// staying sticky on whichever replica answered — normally the leader.
  /// One fast single-shot cycle first, then a cycle through the retrying
  /// channel (backoff) before giving up.
  Result<std::string> CallController(uint16_t op, const std::string& payload,
                                     std::chrono::milliseconds timeout);
  /// Counts a successful remote read against the node that served it.
  void NoteRead(const net::NodeId& node);
  /// Next (client_id, seq) append token; stamped into a BinaryWriter.
  void PutToken(BinaryWriter* w);
  /// Folds one read response's piggybacked (epoch, hl) into the cache and
  /// stores the record bytes under `lid`.
  void CacheReadResponse(LId lid, uint32_t stripe, uint64_t epoch,
                         uint64_t hl, const std::string& rec_bytes);

  net::RpcEndpoint endpoint_;
  /// Controller replicas to rotate across (a single-element vector in the
  /// unreplicated deployment).
  const std::vector<net::NodeId> controllers_;
  /// Index of the controller replica that last answered (sticky leader).
  std::atomic<uint64_t> ctrl_rr_{0};
  const ClientOptions options_;
  net::RetryingChannel channel_;
  std::atomic<uint64_t> op_seq_{0};
  /// LId-keyed read-through cache (own internal lock; see read_cache.h).
  ClientReadCache read_cache_;

  mutable std::mutex mu_;
  ClusterInfo info_;
  std::atomic<uint64_t> rr_{0};
  /// Rotates the starting member of each read fan-out so read load spreads
  /// across a stripe's coordinator and replicas.
  std::atomic<uint64_t> read_rr_{0};
  /// Outer failover-loop retries (attempt > 0 in CallMaintainerIndex /
  /// CallStripeRead); see retries().
  std::atomic<uint64_t> outer_retries_{0};
  bool started_ = false;
  std::map<net::NodeId, uint64_t> reads_by_node_;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_CLIENT_H_
