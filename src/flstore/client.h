#ifndef CHARIOTS_FLSTORE_CLIENT_H_
#define CHARIOTS_FLSTORE_CLIENT_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "flstore/controller.h"
#include "flstore/indexer.h"
#include "flstore/service.h"
#include "flstore/types.h"
#include "net/rpc.h"

namespace chariots::flstore {

/// The linked client library of the paper (§3, §5.1): an application client
/// polls the controller once per session for the cluster layout, then talks
/// to maintainers (appends/reads) and indexers (tag lookups) directly.
class FLStoreClient {
 public:
  /// `node` is this client's own address on the fabric; `controller` is the
  /// controller's address.
  FLStoreClient(net::Transport* transport, net::NodeId node,
                net::NodeId controller);
  ~FLStoreClient();

  /// Starts the session: binds the endpoint and fetches cluster info.
  Status Start();
  void Stop();

  /// Appends a record to a (round-robin chosen) maintainer; returns the
  /// post-assigned LId.
  Result<LId> Append(const LogRecord& record);

  /// Appends a batch in one round trip (all records land on one
  /// maintainer, in order); returns their LIds.
  Result<std::vector<LId>> AppendBatch(const std::vector<LogRecord>& records);

  /// Explicit-order append: lands at a position strictly greater than
  /// `min_lid` (paper §5.4). Returns the LId, or kInvalidLId if deferred.
  Result<LId> AppendOrdered(const LogRecord& record, LId min_lid);

  /// Reads a record by its LId, routing via the striping journal.
  Result<LogRecord> Read(LId lid);

  /// Gap-safe read: only positions below the Head of the Log.
  Result<LogRecord> ReadCommitted(LId lid);

  /// Current Head of the Log (asks a maintainer).
  Result<LId> HeadOfLog();

  /// Tag lookup via the responsible indexer.
  Result<std::vector<Posting>> Lookup(const IndexQuery& query);

  /// Convenience: look up the matching postings and read their records.
  Result<std::vector<LogRecord>> ReadByTag(const IndexQuery& query);

  /// Re-polls the controller (e.g. after elasticity changed the layout).
  Status RefreshClusterInfo();

  /// The layout this client is currently operating with.
  ClusterInfo cluster_info() const;

 private:
  net::NodeId MaintainerForAppend();
  Result<net::NodeId> MaintainerForLId(LId lid);

  net::RpcEndpoint endpoint_;
  const net::NodeId controller_;

  mutable std::mutex mu_;
  ClusterInfo info_;
  std::atomic<uint64_t> rr_{0};
  bool started_ = false;
};

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_CLIENT_H_
