#ifndef CHARIOTS_FLSTORE_TYPES_H_
#define CHARIOTS_FLSTORE_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace chariots::flstore {

/// Log position id: the record's position in this datacenter's shared log
/// (paper §3). 0-based and gap-free below the Head of the Log.
using LId = uint64_t;

/// Sentinel for "no position".
inline constexpr LId kInvalidLId = std::numeric_limits<LId>::max();

/// A key/value tag attached to a record by the application client. Tags are
/// visible to Chariots (indexed); the record body is opaque (paper §3).
struct Tag {
  std::string key;
  std::string value;

  friend bool operator==(const Tag&, const Tag&) = default;
};

/// A record as stored by FLStore inside one datacenter. In the
/// multi-datacenter deployment the body carries the encoded Chariots record
/// (with TOId / host DC / dependency metadata); in single-DC FLStore use the
/// body is the application payload directly.
struct LogRecord {
  LId lid = kInvalidLId;
  std::string body;
  std::vector<Tag> tags;

  friend bool operator==(const LogRecord&, const LogRecord&) = default;
};

/// Serializes a record (without its lid, which is the storage key).
std::string EncodeLogRecord(const LogRecord& record);

/// Inverse of EncodeLogRecord; `lid` is filled from the argument.
Result<LogRecord> DecodeLogRecord(LId lid, std::string_view data);

/// Reserved tag key marking a junk (hole-fill) record. Positions orphaned by
/// a crashed primary are filled with junk so the Head of the Log can advance
/// past them (paper §5.3's invalid records); readers skip records carrying
/// this tag. The NUL prefix keeps the key out of the application namespace.
inline constexpr std::string_view kJunkTagKey{"\0chariots.fill", 14};

/// A junk record for `lid`: empty body, single reserved tag.
LogRecord MakeJunkRecord(LId lid = kInvalidLId);

/// True if `record` is a hole-fill junk record.
bool IsJunkRecord(const LogRecord& record);

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_TYPES_H_
