#ifndef CHARIOTS_FLSTORE_TYPES_H_
#define CHARIOTS_FLSTORE_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace chariots::flstore {

/// Log position id: the record's position in this datacenter's shared log
/// (paper §3). 0-based and gap-free below the Head of the Log.
using LId = uint64_t;

/// Sentinel for "no position".
inline constexpr LId kInvalidLId = std::numeric_limits<LId>::max();

/// A key/value tag attached to a record by the application client. Tags are
/// visible to Chariots (indexed); the record body is opaque (paper §3).
struct Tag {
  std::string key;
  std::string value;

  friend bool operator==(const Tag&, const Tag&) = default;
};

/// A record as stored by FLStore inside one datacenter. In the
/// multi-datacenter deployment the body carries the encoded Chariots record
/// (with TOId / host DC / dependency metadata); in single-DC FLStore use the
/// body is the application payload directly.
struct LogRecord {
  LId lid = kInvalidLId;
  std::string body;
  std::vector<Tag> tags;

  friend bool operator==(const LogRecord&, const LogRecord&) = default;
};

/// Serializes a record (without its lid, which is the storage key).
std::string EncodeLogRecord(const LogRecord& record);

/// Inverse of EncodeLogRecord; `lid` is filled from the argument.
Result<LogRecord> DecodeLogRecord(LId lid, std::string_view data);

}  // namespace chariots::flstore

#endif  // CHARIOTS_FLSTORE_TYPES_H_
