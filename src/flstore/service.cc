#include "flstore/service.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <tuple>

#include "common/codec.h"
#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/watchdog.h"

namespace chariots::flstore {

namespace {

metrics::Counter* AppendCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.appends");
  return c;
}

metrics::Histogram* AppendHist() {
  static metrics::Histogram* h =
      metrics::Registry::Default().GetHistogram("flstore.append_ns");
  return h;
}

metrics::Counter* ReadCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.reads");
  return c;
}

metrics::Histogram* ReadHist() {
  static metrics::Histogram* h =
      metrics::Registry::Default().GetHistogram("flstore.read_ns");
  return h;
}

metrics::Counter* FillCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.fills");
  return c;
}

metrics::Histogram* FillHist() {
  static metrics::Histogram* h =
      metrics::Registry::Default().GetHistogram("flstore.fill_ns");
  return h;
}

metrics::Counter* PromotionsCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.promotions");
  return c;
}

metrics::Counter* LeaseExpiryCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "flstore.controller.lease_expiries");
  return c;
}

metrics::Counter* FailoverCommitCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "flstore.controller.failovers_committed");
  return c;
}

metrics::Counter* FailoverAbortCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "flstore.controller.failovers_aborted");
  return c;
}

// Hermes replication families (ISSUE 7): the INV/VAL/replay volume and the
// controller-observed repair time, CLI-visible via `chariots_cli metrics`.

metrics::Counter* InvalidationsCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.repl.invalidations");
  return c;
}

metrics::Counter* ValidationsCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.repl.validations");
  return c;
}

metrics::Counter* ReplaysCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.repl.replays");
  return c;
}

metrics::Histogram* MttrHist() {
  static metrics::Histogram* h = metrics::Registry::Default().GetHistogram(
      "chariots.flstore.repl.mttr_ns");
  return h;
}

// Control-plane families (this ISSUE): election churn, meta-WAL write
// volume, probe-refuted suspicions, and recovered-plan replays.

metrics::Counter* ElectionsCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.ctrl.elections");
  return c;
}

metrics::Counter* CtrlMetaWalAppendsCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.ctrl.meta_wal_appends");
  return c;
}

metrics::Counter* FalseSuspectsCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.ctrl.false_suspects");
  return c;
}

metrics::Counter* PlanReplaysCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.ctrl.plan_replays");
  return c;
}

std::string EncodeLId(LId lid) {
  BinaryWriter w;
  w.PutU64(lid);
  return std::move(w).data();
}

Result<LId> DecodeLId(std::string_view data) {
  BinaryReader r(data);
  LId lid = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
  return lid;
}

/// Replication collector: while a handler runs a maintainer append, the
/// observer appends every landed record here (handlers run on the transport
/// delivery thread, so thread_local scoping keeps concurrent handlers from
/// mixing batches). Null outside an append handler.
thread_local std::vector<ReplicatedEntry>* g_replication_sink = nullptr;

/// Arms the sink for the enclosing scope.
class ReplicationScope {
 public:
  explicit ReplicationScope(std::vector<ReplicatedEntry>* sink) {
    g_replication_sink = sink;
  }
  ~ReplicationScope() { g_replication_sink = nullptr; }
  ReplicationScope(const ReplicationScope&) = delete;
  ReplicationScope& operator=(const ReplicationScope&) = delete;
};

std::vector<LId> BatchLids(const std::vector<ReplicatedEntry>& batch) {
  std::vector<LId> lids;
  lids.reserve(batch.size());
  for (const ReplicatedEntry& entry : batch) lids.push_back(entry.lid);
  return lids;
}

/// Highest position in a replicated batch (kInvalidLId when empty).
LId BatchTop(const std::vector<ReplicatedEntry>& batch) {
  LId top = kInvalidLId;
  for (const ReplicatedEntry& entry : batch) {
    if (top == kInvalidLId || entry.lid > top) top = entry.lid;
  }
  return top;
}

}  // namespace

void RegisterReplicationMetrics() {
  InvalidationsCounter();
  ValidationsCounter();
  ReplaysCounter();
  MttrHist();
}

void RegisterControllerMetrics() {
  ElectionsCounter();
  CtrlMetaWalAppendsCounter();
  FalseSuspectsCounter();
  PlanReplaysCounter();
}

std::string EncodeEpoch(const StripeEpoch& epoch) {
  BinaryWriter w;
  w.PutU64(epoch.start_lid);
  w.PutU32(epoch.num_maintainers);
  w.PutU64(epoch.batch_size);
  return std::move(w).data();
}

Result<StripeEpoch> DecodeEpoch(std::string_view data) {
  BinaryReader r(data);
  StripeEpoch epoch;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch.start_lid));
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&epoch.num_maintainers));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch.batch_size));
  return epoch;
}

// ---------------------------------------------------------------- maintainer

MaintainerServer::MaintainerServer(net::Transport* transport,
                                   MaintainerOptions maintainer,
                                   Options options)
    : maintainer_(std::move(maintainer)),
      options_(std::move(options)),
      executor_(options_.executor != nullptr ? options_.executor
                                             : Executor::Default()),
      endpoint_(transport, options_.node),
      repl_endpoint_(transport, options_.node + "#repl"),
      dedup_(DedupWindow::Options{options_.dedup_window,
                                  options_.dedup_sidecar,
                                  options_.dedup_compact_min_frames,
                                  options_.dedup_disk_faults}),
      replica_(&repl_endpoint_, options_.replica),
      peers_(options_.peers),
      watchdog_(WatchdogConfig()) {}

Watchdog::Options MaintainerServer::WatchdogConfig() {
  Watchdog::Options wd;
  wd.node = options_.node;
  wd.clock = options_.clock;
  if (options_.watchdog_interval_nanos > 0) {
    wd.tick_interval_nanos = options_.watchdog_interval_nanos;
  }
  wd.on_breach = [this](const HealthReport& report) {
    OnWatchdogBreach(report);
  };
  return wd;
}

void MaintainerServer::OnWatchdogBreach(const HealthReport&) {
  // Snapshot first: the breach window is still in the rings right now, and
  // anything else we do (logging, file IO) records more events over it.
  std::string dump = flightrec::Recorder::Default().Dump();
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    last_breach_dump_ = std::move(dump);
  }
  if (!options_.breach_dump_path.empty()) {
    (void)flightrec::Recorder::Default().DumpToFile(options_.breach_dump_path);
  }
}

std::string MaintainerServer::LastBreachDump() const {
  std::lock_guard<std::mutex> lock(dump_mu_);
  return last_breach_dump_;
}

MaintainerServer::~MaintainerServer() { Stop(); }

Status MaintainerServer::Start() {
  CHARIOTS_RETURN_IF_ERROR(maintainer_.Open());
  CHARIOTS_RETURN_IF_ERROR(dedup_.Open());
  RegisterReplicationMetrics();
  RegisterHealthMetrics();
  flightrec::RegisterFlightRecorderMetrics();
  // Probe names embed the node id, so a /healthz report in a multi-stripe
  // deployment names the slow stripe, not just "a latency breach".
  watchdog_.AddLatencyProbe(
      options_.node + ".repl_round", &repl_round_ns_,
      static_cast<uint64_t>(options_.repl_round_slo_nanos));
  if (options_.read_slo_nanos > 0) {
    watchdog_.AddLatencyProbe(options_.node + ".read", ReadHist(),
                              static_cast<uint64_t>(options_.read_slo_nanos));
  }
  maintainer_.SetAppendObserver(
      [this](const LogRecord& record, LId lid) { OnLanded(record, lid); });
  InstallHandlers();
  CHARIOTS_RETURN_IF_ERROR(endpoint_.Start());
  CHARIOTS_RETURN_IF_ERROR(repl_endpoint_.Start());
  // Like the thread loops these replace, the first iteration runs now, not
  // one period from now — a fresh coordinator's lease must be armed before
  // a kill can be detected. Cancel() in Stop() fences the `this` captures.
  if (options_.peers.size() > 1) {
    GossipOnce();
    gossip_token_ = executor_->ScheduleEvery(options_.gossip_interval_nanos,
                                             [this] { GossipOnce(); });
  }
  if (!ControllerTargets().empty()) {
    HeartbeatOnce();
    heartbeat_token_ = executor_->ScheduleEvery(
        options_.heartbeat_interval_nanos, [this] { HeartbeatOnce(); });
  }
  if (options_.watchdog_interval_nanos > 0) {
    // The gossip progress probe only makes sense against a steady tick
    // cadence slower than the gossip period — on-demand kHealth ticks can
    // land closer together than one gossip interval and would false-alarm.
    if (options_.peers.size() > 1 &&
        options_.watchdog_interval_nanos >= options_.gossip_interval_nanos) {
      watchdog_.AddProgressProbe(
          options_.node + ".gossip",
          [this] { return gossip_rounds_.load(std::memory_order_relaxed); },
          [this] { return !stop_.load(std::memory_order_relaxed); });
    }
    watchdog_.Start(executor_);
  }
  return Status::OK();
}

std::vector<net::NodeId> MaintainerServer::ControllerTargets() const {
  if (!options_.controllers.empty()) return options_.controllers;
  if (!options_.controller.empty()) return {options_.controller};
  return {};
}

Status MaintainerServer::CheckCtrlEpoch(uint64_t epoch) {
  uint64_t seen = ctrl_epoch_seen_.load(std::memory_order_relaxed);
  while (epoch > seen && !ctrl_epoch_seen_.compare_exchange_weak(
                             seen, epoch, std::memory_order_relaxed)) {
  }
  if (epoch < seen) {
    return Status::Unavailable(
        "STALE_CTRL_EPOCH: command from a deposed controller leader");
  }
  return Status::OK();
}

void MaintainerServer::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  watchdog_.Stop();
  gossip_token_.Cancel();
  heartbeat_token_.Cancel();
  endpoint_.Stop();
  repl_endpoint_.Stop();
  (void)dedup_.Close();
}

Status MaintainerServer::Restart() {
  Stop();
  CHARIOTS_RETURN_IF_ERROR(maintainer_.Close());
  stop_.store(false, std::memory_order_relaxed);
  return Start();
}

void MaintainerServer::OnLanded(const LogRecord& record, LId lid) {
  flightrec::Record(flightrec::EventType::kAppend, 0, maintainer_.index(),
                    lid, record.body.size());
  if (g_replication_sink != nullptr) {
    g_replication_sink->push_back(
        ReplicatedEntry{lid, EncodeLogRecord(record)});
    // Records landing under the replication protocol open invalid (Hermes):
    // unreadable until every peer acked the INV. Records landed outside the
    // protocol (solo stripes, recovery) stay valid.
    if (replica_.replicates()) maintainer_.MarkInvalid(lid);
  }
  // Replicas hold the postings back: the coordinator already published
  // them, and a promoted node starts publishing the moment it begins
  // serving appends.
  if (!options_.indexers.empty() && replica_.CheckAppendServing().ok()) {
    PublishPostings(record, lid);
  }
}

void MaintainerServer::InstallHandlers() {
  // All client-initiated appends open with a (client_id, seq) token. A
  // token the dedup window has already executed short-circuits to the
  // cached response, so a retry whose original *response* was lost returns
  // the same LIds instead of appending twice. Under replication the
  // short-circuit first drives a replay of any parked (invalid) writes:
  // an append whose INV round failed recorded its dedup state but never
  // acked, and its retry is what completes the round.
  //
  // Replicated stripes run the Hermes round per landed batch: the batch
  // lands locally marked invalid, an INV carrying the payload (and the
  // dedup token) goes to every peer, and only when all peers acked does
  // the coordinator validate (local mark + one-way VAL) and ack. An ack
  // therefore means every replica holds the records durably.
  endpoint_.Handle(kAppend, [this](const net::NodeId&,
                                   const std::string& payload)
                                -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(AppendHist());
    AppendCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckAppendServing());
    BinaryReader r(payload);
    std::string client_id;
    uint64_t seq = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&client_id));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&seq));
    CHARIOTS_ASSIGN_OR_RETURN(std::optional<std::string> cached,
                              dedup_.Lookup(client_id, seq));
    if (cached.has_value()) {
      CHARIOTS_RETURN_IF_ERROR(DriveReplication());
      return *std::move(cached);
    }
    std::string rec_bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              DecodeLogRecord(kInvalidLId, rec_bytes));
    std::vector<ReplicatedEntry> batch;
    LId lid = kInvalidLId;
    {
      ReplicationScope scope(&batch);
      CHARIOTS_ASSIGN_OR_RETURN(lid, maintainer_.Append(record));
    }
    std::string response = EncodeLId(lid);
    CHARIOTS_RETURN_IF_ERROR(
        RunReplicationRound(std::move(batch), client_id, seq, response));
    CHARIOTS_RETURN_IF_ERROR(dedup_.Record(client_id, seq, response));
    return response;
  });

  endpoint_.Handle(kAppendBatch, [this](const net::NodeId&,
                                        const std::string& payload)
                                     -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(AppendHist());
    AppendCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckAppendServing());
    BinaryReader r(payload);
    std::string client_id;
    uint64_t seq = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&client_id));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&seq));
    CHARIOTS_ASSIGN_OR_RETURN(std::optional<std::string> cached,
                              dedup_.Lookup(client_id, seq));
    if (cached.has_value()) {
      CHARIOTS_RETURN_IF_ERROR(DriveReplication());
      return *std::move(cached);
    }
    uint32_t n = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
    std::vector<ReplicatedEntry> batch;
    BinaryWriter out;
    out.PutU32(n);
    {
      ReplicationScope scope(&batch);
      for (uint32_t i = 0; i < n; ++i) {
        std::string rec_bytes;
        CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
        CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                                  DecodeLogRecord(kInvalidLId, rec_bytes));
        CHARIOTS_ASSIGN_OR_RETURN(LId lid, maintainer_.Append(record));
        out.PutU64(lid);
      }
    }
    std::string response = std::move(out).data();
    CHARIOTS_RETURN_IF_ERROR(
        RunReplicationRound(std::move(batch), client_id, seq, response));
    CHARIOTS_RETURN_IF_ERROR(dedup_.Record(client_id, seq, response));
    return response;
  });

  endpoint_.Handle(kAppendAt, [this](const net::NodeId&,
                                     const std::string& payload)
                                  -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(AppendHist());
    AppendCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckAppendServing());
    BinaryReader r(payload);
    LId lid = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
    std::string rec_bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              DecodeLogRecord(lid, rec_bytes));
    std::vector<ReplicatedEntry> batch;
    {
      ReplicationScope scope(&batch);
      CHARIOTS_RETURN_IF_ERROR(maintainer_.AppendAt(lid, record));
    }
    CHARIOTS_RETURN_IF_ERROR(RunReplicationRound(std::move(batch), "", 0, ""));
    return std::string();
  });

  endpoint_.Handle(kAppendOrdered, [this](const net::NodeId&,
                                          const std::string& payload)
                                       -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(AppendHist());
    AppendCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckAppendServing());
    BinaryReader r(payload);
    std::string client_id;
    uint64_t seq = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&client_id));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&seq));
    CHARIOTS_ASSIGN_OR_RETURN(std::optional<std::string> cached,
                              dedup_.Lookup(client_id, seq));
    if (cached.has_value()) {
      CHARIOTS_RETURN_IF_ERROR(DriveReplication());
      return *std::move(cached);
    }
    LId min_lid = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&min_lid));
    std::string rec_bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              DecodeLogRecord(kInvalidLId, rec_bytes));
    std::vector<ReplicatedEntry> batch;
    LId lid = kInvalidLId;
    {
      ReplicationScope scope(&batch);
      CHARIOTS_ASSIGN_OR_RETURN(lid,
                                maintainer_.AppendOrdered(record, min_lid));
    }
    // Caching a deferred (kInvalidLId) response is deliberate: a retry must
    // not re-buffer the record — the first buffered copy will land.
    std::string response = EncodeLId(lid);
    CHARIOTS_RETURN_IF_ERROR(
        RunReplicationRound(std::move(batch), client_id, seq, response));
    CHARIOTS_RETURN_IF_ERROR(dedup_.Record(client_id, seq, response));
    return response;
  });

  // Read responses open with (fence epoch, head of log): the client's
  // read-through cache keys its invalidation off them — an epoch bump for
  // the stripe purges cached tail entries, and lids below the piggybacked
  // HL are immutable and cacheable forever (DESIGN.md §11). Every unfenced
  // role serves reads, but only of *valid* positions: an invalid position
  // is not yet known durable everywhere, so serving it could expose a
  // value a failover later junk-fills. Clients retry invalid positions
  // against another replica (the coordinator validates first).
  endpoint_.Handle(kRead, [this](const net::NodeId&,
                                 const std::string& payload)
                              -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(ReadHist());
    ReadCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckReadServing());
    CHARIOTS_ASSIGN_OR_RETURN(LId lid, DecodeLId(payload));
    if (maintainer_.IsInvalid(lid)) {
      return Status::Unavailable("INVALID_LID: position not yet validated");
    }
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record, maintainer_.Read(lid));
    BinaryWriter w;
    w.PutU64(replica_.epoch());
    w.PutU64(CacheableHl());
    w.PutBytes(EncodeLogRecord(record));
    return std::move(w).data();
  });

  endpoint_.Handle(kReadCommitted, [this](const net::NodeId&,
                                          const std::string& payload)
                                       -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(ReadHist());
    ReadCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckReadServing());
    CHARIOTS_ASSIGN_OR_RETURN(LId lid, DecodeLId(payload));
    if (maintainer_.IsInvalid(lid)) {
      return Status::Unavailable("INVALID_LID: position not yet validated");
    }
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              maintainer_.ReadCommitted(lid));
    BinaryWriter w;
    w.PutU64(replica_.epoch());
    w.PutU64(CacheableHl());
    w.PutBytes(EncodeLogRecord(record));
    return std::move(w).data();
  });

  // Batched multi-get: the whole batch costs one round trip. Per-lid
  // presence flags let the client distinguish a miss (gap/GC) from an
  // error; OutOfRange (wrong stripe) is also reported as not-found so a
  // coalesced batch straddling a stale striping view degrades softly. An
  // invalid position fails the whole batch (retryable) — flagging it
  // not-found would let a coalescing client conclude the record is gone.
  endpoint_.Handle(kReadRange, [this](const net::NodeId&,
                                      const std::string& payload)
                                   -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(ReadHist());
    ReadCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckReadServing());
    BinaryReader r(payload);
    uint32_t n = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
    BinaryWriter w;
    w.PutU64(replica_.epoch());
    w.PutU64(CacheableHl());
    w.PutU32(n);
    for (uint32_t i = 0; i < n; ++i) {
      LId lid = 0;
      CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
      if (maintainer_.IsInvalid(lid)) {
        return Status::Unavailable("INVALID_LID: position not yet validated");
      }
      Result<LogRecord> record = maintainer_.Read(lid);
      w.PutU64(lid);
      if (record.ok()) {
        w.PutU8(1);
        w.PutBytes(EncodeLogRecord(*record));
      } else if (record.status().code() == StatusCode::kNotFound ||
                 record.status().code() == StatusCode::kOutOfRange) {
        w.PutU8(0);
      } else {
        return record.status();
      }
    }
    return std::move(w).data();
  });

  endpoint_.Handle(kHeadOfLog, [this](const net::NodeId&, const std::string&)
                                   -> Result<std::string> {
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckReadServing());
    return EncodeLId(maintainer_.HeadOfLog());
  });

  endpoint_.Handle(kAddEpoch, [this](const net::NodeId&,
                                     const std::string& payload)
                                  -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(StripeEpoch epoch, DecodeEpoch(payload));
    CHARIOTS_RETURN_IF_ERROR(maintainer_.AddEpoch(epoch));
    return std::string();
  });

  endpoint_.HandleOneWay(kGossip, [this](const net::NodeId&,
                                         std::string payload) {
    BinaryReader r(payload);
    uint32_t index = 0;
    LId first_unfilled = 0;
    if (r.GetU32(&index).ok() && r.GetU64(&first_unfilled).ok()) {
      maintainer_.OnGossip(index, first_unfilled);
    }
  });

  // Replica side of the INV leg: adopt the sender's epoch (stale rejects,
  // newer demotes a deposed coordinator back to replica), apply the batch
  // marked invalid, then mirror its dedup state so exactly-once survives a
  // failover. AlreadyExists with identical bytes is a retried/replayed
  // batch; with different bytes it is a cross-epoch replay overwriting a
  // divergent position (e.g. junk filled under an older view), which the
  // new coordinator's copy wins.
  endpoint_.Handle(kInvalidate, [this](const net::NodeId&,
                                       const std::string& payload)
                                    -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(InvalidateRequest req,
                              DecodeInvalidateRequest(payload));
    CHARIOTS_RETURN_IF_ERROR(replica_.AcceptRemoteEpoch(req.epoch));
    InvalidationsCounter()->Add(req.entries.size());
    for (const ReplicatedEntry& entry : req.entries) {
      CHARIOTS_ASSIGN_OR_RETURN(
          LogRecord record, DecodeLogRecord(entry.lid, entry.record_bytes));
      Status status = maintainer_.AppendAt(entry.lid, record);
      if (status.code() == StatusCode::kAlreadyExists) {
        Result<LogRecord> existing = maintainer_.Read(entry.lid);
        if (existing.ok() &&
            EncodeLogRecord(*existing) != entry.record_bytes) {
          CHARIOTS_RETURN_IF_ERROR(maintainer_.Remove(entry.lid));
          CHARIOTS_RETURN_IF_ERROR(maintainer_.AppendAt(entry.lid, record));
        }
      } else {
        CHARIOTS_RETURN_IF_ERROR(status);
      }
      maintainer_.MarkInvalid(entry.lid);
    }
    if (!req.client_id.empty()) {
      CHARIOTS_RETURN_IF_ERROR(
          dedup_.Record(req.client_id, req.seq, req.response));
    }
    return std::string();
  });

  // Replica side of the VAL leg: flip the listed positions readable and
  // fold in the coordinator's validated floor. Only the exact current
  // epoch counts — a deposed coordinator's stray VAL must not validate
  // positions its successor may junk-fill.
  endpoint_.HandleOneWay(kValidate, [this](const net::NodeId&,
                                           std::string payload) {
    Result<ValidateNotice> notice = DecodeValidateNotice(payload);
    if (!notice.ok()) return;
    if (replica_.fenced() || notice->epoch != replica_.epoch()) return;
    ValidationsCounter()->Add(notice->lids.size());
    for (LId lid : notice->lids) maintainer_.MarkValid(lid);
    AdvanceReplicatedFloor(notice->floor);
  });

  // Promotion-replay source: a candidate coordinator pulling this node's
  // invalid window (positions applied here whose VAL never arrived —
  // exactly the writes the dead coordinator may have acked). Adopting the
  // caller's epoch is the point: it fences the dead coordinator out of
  // this replica for good.
  endpoint_.Handle(kFetchInvalid, [this](const net::NodeId&,
                                         const std::string& payload)
                                      -> Result<std::string> {
    BinaryReader r(payload);
    uint64_t epoch = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch));
    CHARIOTS_RETURN_IF_ERROR(replica_.AcceptRemoteEpoch(epoch));
    std::vector<std::pair<LId, std::string>> entries =
        maintainer_.InvalidEntries();
    BinaryWriter w;
    w.PutU32(static_cast<uint32_t>(entries.size()));
    for (const auto& [lid, bytes] : entries) {
      w.PutU64(lid);
      w.PutBytes(bytes);
    }
    return std::move(w).data();
  });

  // Replica-set change from the controller (dead replica evicted): adopt
  // the bumped epoch and surviving peers, then replay any parked writes —
  // they were waiting on the dead peer and can complete now.
  endpoint_.Handle(kReconfigure, [this](const net::NodeId&,
                                        const std::string& payload)
                                     -> Result<std::string> {
    BinaryReader r(payload);
    uint64_t ctrl_epoch = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&ctrl_epoch));
    CHARIOTS_RETURN_IF_ERROR(CheckCtrlEpoch(ctrl_epoch));
    uint64_t new_epoch = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&new_epoch));
    uint32_t n = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
    std::vector<net::NodeId> peers(n);
    for (uint32_t i = 0; i < n; ++i) {
      CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&peers[i]));
    }
    CHARIOTS_RETURN_IF_ERROR(replica_.Reconfigure(new_epoch,
                                                  std::move(peers)));
    Status replay = DriveReplication();
    if (!replay.ok()) {
      // Another peer died meanwhile; the next suspect round handles it.
      // Rate-limited: every retried append replays again until it heals.
      LOG_EVERY_N_SEC(kWarn, 5)
          << "post-reconfigure replay incomplete: " << replay.ToString();
    }
    return std::string();
  });

  // Liveness probe for the controller's suspect verification. Fenced nodes
  // answer Unavailable on purpose: a fenced ex-coordinator is as good as
  // dead and should be failed over without waiting out its lease.
  endpoint_.Handle(kPing, [this](const net::NodeId&, const std::string&)
                              -> Result<std::string> {
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckReadServing());
    return std::string();
  });

  // Failover promotion (controller -> candidate): adopt the bumped fencing
  // epoch and the surviving peers, replay the in-flight writes (pull every
  // survivor's invalid window, merge, re-broadcast under the new epoch),
  // and junk-fill the true holes — positions the dead coordinator assigned
  // but never invalidated anywhere — so the Head of the Log can advance
  // past them. Responds with the filled positions. Idempotent under retry.
  endpoint_.Handle(kPromote, [this](const net::NodeId&,
                                    const std::string& payload)
                                 -> Result<std::string> {
    BinaryReader r(payload);
    uint64_t ctrl_epoch = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&ctrl_epoch));
    CHARIOTS_RETURN_IF_ERROR(CheckCtrlEpoch(ctrl_epoch));
    uint64_t new_epoch = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&new_epoch));
    uint32_t n = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
    std::vector<net::NodeId> peers(n);
    for (uint32_t i = 0; i < n; ++i) {
      CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&peers[i]));
    }
    CHARIOTS_RETURN_IF_ERROR(replica_.Promote(new_epoch, peers));
    PromotionsCounter()->Add();
    // Role change: drop the cached tail so nothing assembled under the old
    // epoch can be served by the new coordinator.
    maintainer_.InvalidateTailCache();
    // Merge every surviving peer's invalid window into ours: a write the
    // dead coordinator acked is applied (invalid) on ALL replicas, so any
    // survivor — us included — holds it. Fetched positions are marked
    // invalid here too, putting them in the replay set below.
    for (const net::NodeId& peer : peers) {
      BinaryWriter fw;
      fw.PutU64(new_epoch);
      CHARIOTS_ASSIGN_OR_RETURN(
          std::string fetched,
          repl_endpoint_.Call(peer, kFetchInvalid, std::move(fw).data(),
                              std::chrono::milliseconds(1000)));
      BinaryReader fr(fetched);
      uint32_t m = 0;
      CHARIOTS_RETURN_IF_ERROR(fr.GetU32(&m));
      for (uint32_t i = 0; i < m; ++i) {
        LId lid = 0;
        std::string bytes;
        CHARIOTS_RETURN_IF_ERROR(fr.GetU64(&lid));
        CHARIOTS_RETURN_IF_ERROR(fr.GetBytes(&bytes));
        CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                                  DecodeLogRecord(lid, bytes));
        Status status = maintainer_.AppendAt(lid, record);
        if (status.code() != StatusCode::kAlreadyExists) {
          CHARIOTS_RETURN_IF_ERROR(status);
        }
        maintainer_.MarkInvalid(lid);
      }
    }
    // Junk-fill the true holes (nothing above covered them), replicating
    // the fills like any landed record.
    std::vector<ReplicatedEntry> fills;
    std::vector<LId> filled;
    {
      ReplicationScope scope(&fills);
      CHARIOTS_ASSIGN_OR_RETURN(filled,
                                maintainer_.FillHoles(MakeJunkRecord()));
    }
    if (!filled.empty()) {
      LOG_INFO << "promotion of maintainer " << maintainer_.index()
               << " junk-filled " << filled.size() << " orphaned positions";
    }
    // Replay: everything invalid here (own parked writes + merged windows +
    // fills) is now the authoritative copy. Re-broadcast it under the new
    // epoch and validate everywhere.
    CHARIOTS_RETURN_IF_ERROR(DriveReplication());
    maintainer_.MarkAllValid();
    BinaryWriter w;
    w.PutU32(static_cast<uint32_t>(filled.size()));
    for (LId lid : filled) w.PutU64(lid);
    return std::move(w).data();
  });

  // Junk-fill one orphaned position (repair tooling / peers unwedging HL).
  endpoint_.Handle(kFill, [this](const net::NodeId&,
                                 const std::string& payload)
                              -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(FillHist());
    FillCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckAppendServing());
    CHARIOTS_ASSIGN_OR_RETURN(LId lid, DecodeLId(payload));
    std::vector<ReplicatedEntry> batch;
    Status status;
    {
      ReplicationScope scope(&batch);
      status = maintainer_.AppendAt(lid, MakeJunkRecord(lid));
    }
    if (status.code() == StatusCode::kAlreadyExists) {
      return std::string();  // position is occupied — nothing to repair
    }
    CHARIOTS_RETURN_IF_ERROR(status);
    CHARIOTS_RETURN_IF_ERROR(RunReplicationRound(std::move(batch), "", 0, ""));
    return std::string();
  });

  // On-demand health: one watchdog tick, served as JSON. Works on
  // deployments that never armed the periodic tick (watchdog_interval 0).
  endpoint_.Handle(kHealth, [this](const net::NodeId&, const std::string&)
                               -> Result<std::string> {
    return RenderHealthJson(watchdog_.TickOnce());
  });
  // Flight-recorder snapshot: mode 0 / empty = dump the rings now, mode 1 =
  // the snapshot the watchdog took at the last breach (kNotFound if none).
  endpoint_.Handle(kFlightRec, [this](const net::NodeId&,
                                      const std::string& payload)
                                   -> Result<std::string> {
    uint8_t mode = 0;
    if (!payload.empty()) {
      BinaryReader r(payload);
      CHARIOTS_RETURN_IF_ERROR(r.GetU8(&mode));
    }
    if (mode == 1) {
      std::string dump = LastBreachDump();
      if (dump.empty()) {
        return Status::NotFound("no watchdog breach has fired yet");
      }
      return dump;
    }
    return flightrec::Recorder::Default().Dump();
  });

  // Layout change from the controller: stripe `index` has a new
  // coordinator.
  endpoint_.HandleOneWay(kPeerUpdate, [this](const net::NodeId&,
                                             std::string payload) {
    BinaryReader r(payload);
    uint64_t ctrl_epoch = 0;
    uint32_t index = 0;
    std::string node;
    if (r.GetU64(&ctrl_epoch).ok() && r.GetU32(&index).ok() &&
        r.GetBytes(&node).ok() && CheckCtrlEpoch(ctrl_epoch).ok()) {
      std::lock_guard<std::mutex> lock(peers_mu_);
      if (index >= peers_.size()) peers_.resize(index + 1);
      peers_[index] = node;
    }
  });
}

Status MaintainerServer::RunReplicationRound(
    std::vector<ReplicatedEntry> batch, const std::string& client_id,
    uint64_t seq, const std::string& response) {
  Clock* clock =
      options_.clock != nullptr ? options_.clock : SystemClock::Default();
  const int64_t round_start = clock->NowNanos();
  std::vector<LId> lids = BatchLids(batch);
  LId top = BatchTop(batch);
  flightrec::Record(flightrec::EventType::kReplInv, 0, maintainer_.index(),
                    top == kInvalidLId ? 0 : top, batch.size());
  net::NodeId unreachable;
  Status status = replica_.InvalidateBroadcast(std::move(batch), client_id,
                                               seq, response, &unreachable);
  // Failed rounds count toward the SLO too: a round that times out against
  // a gray peer is exactly the latency the watchdog exists to catch.
  repl_round_ns_.Record(
      static_cast<uint64_t>(clock->NowNanos() - round_start));
  if (!status.ok()) {
    if (!unreachable.empty()) {
      // Park the write: the batch stays applied-but-invalid, the dedup
      // token remembers its response, and the suspect report lets the
      // controller evict the dead peer — after which a retry of the same
      // token (or the reconfigure itself) replays the round and acks with
      // the same LIds. No fencing: a dead *replica* must not take the
      // coordinator down with it.
      if (!client_id.empty()) {
        (void)dedup_.Record(client_id, seq, response);
      }
      SuspectPeer(unreachable);
    }
    return status;
  }
  // Every peer acked: the batch is durable everywhere. Validate it locally,
  // advance the floor, and flip it readable on the peers.
  for (LId lid : lids) maintainer_.MarkValid(lid);
  NoteReplicated(top);
  if (!lids.empty() && replica_.replicates()) {
    replica_.ValidateBroadcast(
        lids, replicated_floor_.load(std::memory_order_acquire));
  }
  flightrec::Record(flightrec::EventType::kReplVal, 0, maintainer_.index(),
                    top == kInvalidLId ? 0 : top,
                    static_cast<uint64_t>(clock->NowNanos() - round_start));
  return Status::OK();
}

Status MaintainerServer::DriveReplication() {
  if (!replica_.replicates()) {
    // No peers to replicate to. A coordinator whose last replica was just
    // evicted (or a solo node) validates its parked positions locally — the
    // local copy is authoritative now. A replica never gets here (every
    // caller sits behind CheckAppendServing or a promotion).
    if (replica_.role() != ReplicaRole::kReplica &&
        maintainer_.InvalidCount() > 0) {
      maintainer_.MarkAllValid();
    }
    return Status::OK();
  }
  if (maintainer_.InvalidCount() == 0) return Status::OK();
  std::vector<std::pair<LId, std::string>> invalid =
      maintainer_.InvalidEntries();
  if (invalid.empty()) return Status::OK();
  std::vector<ReplicatedEntry> entries;
  entries.reserve(invalid.size());
  for (auto& [lid, bytes] : invalid) {
    entries.push_back(ReplicatedEntry{lid, std::move(bytes)});
  }
  size_t count = entries.size();
  CHARIOTS_RETURN_IF_ERROR(
      RunReplicationRound(std::move(entries), "", 0, ""));
  ReplaysCounter()->Add(count);
  return Status::OK();
}

void MaintainerServer::SuspectPeer(const net::NodeId& suspect) {
  BinaryWriter w;
  w.PutU32(maintainer_.index());
  w.PutBytes(suspect);
  std::string payload = std::move(w).data();
  // One-way on the repl endpoint: the main endpoint's inbox is busy running
  // the append handler this report originates from, and the controller's
  // follow-up (kReconfigure) must be able to reach us. Every controller
  // replica gets the report; only the leader acts on it.
  for (const net::NodeId& ctrl : ControllerTargets()) {
    (void)repl_endpoint_.Notify(ctrl, kSuspect, payload);
  }
}

void MaintainerServer::NoteReplicated(LId top_lid) {
  if (top_lid == kInvalidLId) return;
  AdvanceReplicatedFloor(top_lid + 1);
}

void MaintainerServer::AdvanceReplicatedFloor(LId floor) {
  LId current = replicated_floor_.load(std::memory_order_relaxed);
  while (current < floor &&
         !replicated_floor_.compare_exchange_weak(
             current, floor, std::memory_order_release,
             std::memory_order_relaxed)) {
  }
}

LId MaintainerServer::CacheableHl() const {
  LId hl = maintainer_.HeadOfLog();
  if (replica_.in_replica_set()) {
    hl = std::min(hl, replicated_floor_.load(std::memory_order_acquire));
  }
  return hl;
}

void MaintainerServer::GossipOnce() {
  if (stop_.load(std::memory_order_relaxed)) return;
  BinaryWriter w;
  w.PutU32(maintainer_.index());
  w.PutU64(maintainer_.FirstUnfilledGlobal());
  std::string payload = std::move(w).data();
  std::vector<net::NodeId> peers;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    peers = peers_;
  }
  for (size_t i = 0; i < peers.size(); ++i) {
    if (i == maintainer_.index()) continue;
    (void)endpoint_.Notify(peers[i], kGossip, payload);
  }
  gossip_rounds_.fetch_add(1, std::memory_order_relaxed);
}

void MaintainerServer::HeartbeatOnce() {
  if (stop_.load(std::memory_order_relaxed)) return;
  // Only the serving coordinator heartbeats: a replica must not keep its
  // dead coordinator's lease alive, and a fenced coordinator must *let*
  // its lease lapse so the controller promotes a replica.
  if (!replica_.CheckAppendServing().ok()) return;
  BinaryWriter w;
  w.PutU32(maintainer_.index());
  std::string payload = std::move(w).data();
  // All controller replicas track leases, so whoever wins the next
  // election already has a live picture of this stripe.
  for (const net::NodeId& ctrl : ControllerTargets()) {
    (void)endpoint_.Notify(ctrl, kHeartbeat, payload);
  }
}

void MaintainerServer::PublishPostings(const LogRecord& record, LId lid) {
  for (const Tag& tag : record.tags) {
    uint32_t idx = IndexerForKey(
        tag.key, static_cast<uint32_t>(options_.indexers.size()));
    BinaryWriter w;
    w.PutBytes(tag.key);
    w.PutBytes(tag.value);
    w.PutU64(lid);
    (void)endpoint_.Notify(options_.indexers[idx], kIndexAdd,
                           std::move(w).data());
  }
}

// ------------------------------------------------------------------ indexer

IndexerServer::IndexerServer(net::Transport* transport, net::NodeId node)
    : endpoint_(transport, std::move(node)) {}

IndexerServer::~IndexerServer() { Stop(); }

Status IndexerServer::Start() {
  endpoint_.Handle(kIndexLookup, [this](const net::NodeId&,
                                        const std::string& payload)
                                     -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(IndexQuery query, DecodeIndexQuery(payload));
    return EncodePostings(indexer_.Lookup(query));
  });
  endpoint_.HandleOneWay(kIndexAdd, [this](const net::NodeId&,
                                           std::string payload) {
    BinaryReader r(payload);
    std::string key, value;
    LId lid = 0;
    if (r.GetBytes(&key).ok() && r.GetBytes(&value).ok() &&
        r.GetU64(&lid).ok()) {
      indexer_.Add(key, value, lid);
    }
  });
  return endpoint_.Start();
}

void IndexerServer::Stop() { endpoint_.Stop(); }

// --------------------------------------------------------------- controller

ControllerServer::ControllerServer(net::Transport* transport,
                                   net::NodeId node, ClusterInfo initial,
                                   ControllerServerOptions options)
    : controller_(std::move(initial), options.controller),
      options_(options),
      executor_(options_.executor != nullptr ? options_.executor
                                             : Executor::Default()),
      node_(node),
      endpoint_(transport, std::move(node)),
      leader_lease_(options_.controller.clock, options_.leader_lease_nanos),
      watchdog_(WatchdogConfig()) {}

Watchdog::Options ControllerServer::WatchdogConfig() {
  Watchdog::Options wd;
  wd.node = node_;
  wd.clock = options_.controller.clock;
  if (options_.watchdog_interval_nanos > 0) {
    wd.tick_interval_nanos = options_.watchdog_interval_nanos;
  }
  wd.on_breach = [this](const HealthReport& report) {
    OnWatchdogBreach(report);
  };
  return wd;
}

void ControllerServer::OnWatchdogBreach(const HealthReport&) {
  std::string dump = flightrec::Recorder::Default().Dump();
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    last_breach_dump_ = std::move(dump);
  }
  if (!options_.breach_dump_path.empty()) {
    (void)flightrec::Recorder::Default().DumpToFile(options_.breach_dump_path);
  }
}

std::string ControllerServer::LastBreachDump() const {
  std::lock_guard<std::mutex> lock(dump_mu_);
  return last_breach_dump_;
}

ControllerServer::~ControllerServer() { Stop(); }

Status ControllerServer::Start() {
  CHARIOTS_RETURN_IF_ERROR(controller_.Open());
  RegisterControllerMetrics();
  RegisterHealthMetrics();
  flightrec::RegisterFlightRecorderMetrics();
  // Election churn: a healthy cluster elects rarely; a flapping leader (or
  // dueling candidates on a lossy link) elects every lease period.
  watchdog_.AddRateProbe(
      node_ + ".elections", [] { return ElectionsCounter()->Value(); },
      options_.max_elections_per_tick);
  endpoint_.Handle(kHealth, [this](const net::NodeId&, const std::string&)
                               -> Result<std::string> {
    return RenderHealthJson(watchdog_.TickOnce());
  });
  endpoint_.Handle(kFlightRec, [this](const net::NodeId&,
                                      const std::string& payload)
                                   -> Result<std::string> {
    uint8_t mode = 0;
    if (!payload.empty()) {
      BinaryReader r(payload);
      CHARIOTS_RETURN_IF_ERROR(r.GetU8(&mode));
    }
    if (mode == 1) {
      std::string dump = LastBreachDump();
      if (dump.empty()) {
        return Status::NotFound("no watchdog breach has fired yet");
      }
      return dump;
    }
    return flightrec::Recorder::Default().Dump();
  });
  endpoint_.Handle(kGetClusterInfo, [this](const net::NodeId&,
                                           const std::string&)
                                        -> Result<std::string> {
    return EncodeClusterInfo(controller_.GetInfo());
  });
  endpoint_.Handle(kControllerAddMaintainer,
                   [this](const net::NodeId&, const std::string& payload)
                       -> Result<std::string> {
                     CHARIOTS_RETURN_IF_ERROR(RequireLeader());
                     CHARIOTS_RETURN_IF_ERROR(ConfirmLeadership());
                     BinaryReader r(payload);
                     std::string node;
                     CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&node));
                     std::string epoch_bytes;
                     CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&epoch_bytes));
                     CHARIOTS_ASSIGN_OR_RETURN(StripeEpoch epoch,
                                               DecodeEpoch(epoch_bytes));
                     uint64_t expected_version = 0;
                     CHARIOTS_RETURN_IF_ERROR(r.GetU64(&expected_version));
                     CHARIOTS_RETURN_IF_ERROR(controller_.AddMaintainer(
                         node, epoch, expected_version));
                     ReplicateState();
                     return std::string();
                   });
  endpoint_.HandleOneWay(kHeartbeat, [this](const net::NodeId& from,
                                            std::string payload) {
    BinaryReader r(payload);
    uint32_t index = 0;
    if (r.GetU32(&index).ok()) controller_.Heartbeat(index, from);
  });
  // The suspect fast path, registered twice on purpose: clients Call it
  // synchronously when a coordinator stops answering (the failover runs
  // inside the call — that is the sub-lease MTTR path), and coordinators
  // Notify it one-way when a replica stops acking INVs.
  endpoint_.Handle(kSuspect, [this](const net::NodeId&,
                                    const std::string& payload)
                                 -> Result<std::string> {
    return HandleSuspect(payload);
  });
  endpoint_.HandleOneWay(kSuspect, [this](const net::NodeId&,
                                          std::string payload) {
    Result<std::string> result = HandleSuspect(payload);
    if (!result.ok()) {
      LOG_EVERY_N_SEC(kWarn, 5)
          << "suspect report not actionable: " << result.status().ToString();
    }
  });
  // -------------------------------------------------- replicated control plane
  endpoint_.Handle(kCtrlStatus, [this](const net::NodeId&, const std::string&)
                                    -> Result<std::string> {
    ClusterInfo info = controller_.GetInfo();
    BinaryWriter w;
    w.PutU64(info.ctrl_epoch);
    w.PutU64(info.version);
    w.PutU8(IsLeader() ? 1 : 0);
    w.PutBytes(leader());
    std::optional<int64_t> lease = leader_lease_.RemainingNanos(0);
    w.PutU64(static_cast<uint64_t>(lease.value_or(INT64_MIN)));
    w.PutU32(static_cast<uint32_t>(info.maintainers.size()));
    for (uint32_t i = 0; i < info.maintainers.size(); ++i) {
      w.PutBytes(info.maintainers[i]);
      w.PutU64(info.fence_epochs[i]);
      std::optional<int64_t> stripe = controller_.LeaseRemainingNanos(i);
      w.PutU64(static_cast<uint64_t>(stripe.value_or(INT64_MIN)));
      w.PutU32(static_cast<uint32_t>(info.replicas[i].size()));
      for (const net::NodeId& node : info.replicas[i]) w.PutBytes(node);
    }
    return std::move(w).data();
  });
  endpoint_.HandleOneWay(kCtrlLeaderBeat, [this](const net::NodeId&,
                                                 std::string payload) {
    BinaryReader r(payload);
    uint64_t epoch = 0;
    std::string from;
    if (r.GetU64(&epoch).ok() && r.GetBytes(&from).ok()) {
      OnLeaderBeat(epoch, from);
    }
  });
  endpoint_.Handle(kCtrlVote, [this](const net::NodeId&,
                                     const std::string& payload)
                                  -> Result<std::string> {
    BinaryReader r(payload);
    uint64_t epoch = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch));
    CHARIOTS_ASSIGN_OR_RETURN(bool granted, controller_.GrantVote(epoch));
    if (granted) {
      // Someone is campaigning with our blessing; hold our own ambitions
      // for a full period so the election can finish.
      leader_lease_.Renew(0);
    }
    BinaryWriter w;
    w.PutU8(granted ? 1 : 0);
    w.PutU64(controller_.ctrl_epoch());
    w.PutU64(controller_.version());
    return std::move(w).data();
  });
  endpoint_.Handle(kCtrlConfirm, [this](const net::NodeId&,
                                        const std::string& payload)
                                     -> Result<std::string> {
    BinaryReader r(payload);
    uint64_t epoch = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch));
    if (epoch < controller_.ctrl_epoch() ||
        epoch < controller_.max_granted_epoch()) {
      return Status::Aborted("a higher controller epoch exists");
    }
    leader_lease_.Renew(0);  // the confirming leader is evidently alive
    return std::string();
  });
  endpoint_.Handle(kCtrlReplicateState, [this](const net::NodeId& from,
                                               const std::string& payload)
                                            -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(ClusterInfo info, DecodeClusterInfo(payload));
    CHARIOTS_RETURN_IF_ERROR(controller_.InstallReplicatedState(info));
    OnLeaderBeat(info.ctrl_epoch, from);
    return std::string();
  });
  CHARIOTS_RETURN_IF_ERROR(endpoint_.Start());
  if (options_.peers.empty()) {
    // Single-controller deployment: leader by construction (pre-HA
    // behavior), but still complete anything the meta WAL recovered.
    {
      std::lock_guard<std::mutex> lock(lead_mu_);
      is_leader_ = true;
      leader_ = node_;
    }
    CompleteRecoveredPlans();
  } else {
    // Replicated: everyone starts as a follower with an armed leader
    // lease, so a cluster whose leader never shows up elects one within a
    // lease period — including at first boot.
    leader_lease_.Renew(0);
  }
  if (options_.monitor_interval_nanos > 0) {
    // TickControl() issues blocking Call()s from a worker — safe because
    // the transports deliver responses out-of-band (inline on the
    // delivering thread), never through the worker pool.
    monitor_token_ = executor_->ScheduleEvery(
        options_.monitor_interval_nanos, [this] {
          if (!stop_.load(std::memory_order_relaxed)) TickControl();
        });
  }
  if (options_.watchdog_interval_nanos > 0) watchdog_.Start(executor_);
  return Status::OK();
}

void ControllerServer::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) {
    endpoint_.Stop();
    return;
  }
  watchdog_.Stop();
  monitor_token_.Cancel();
  endpoint_.Stop();
  (void)controller_.Close();
}

bool ControllerServer::IsLeader() const {
  std::lock_guard<std::mutex> lock(lead_mu_);
  return is_leader_;
}

net::NodeId ControllerServer::leader() const {
  std::lock_guard<std::mutex> lock(lead_mu_);
  return leader_;
}

Status ControllerServer::RequireLeader() const {
  std::lock_guard<std::mutex> lock(lead_mu_);
  if (is_leader_) return Status::OK();
  return Status::Unavailable(
      "NOT_LEADER: controller leader is " +
      (leader_.empty() ? std::string("unknown") : leader_));
}

void ControllerServer::OnLeaderBeat(uint64_t epoch, const net::NodeId& from) {
  if (from == node_) return;
  if (epoch < controller_.ctrl_epoch()) return;  // a deposed leader's stray
  (void)controller_.AdoptCtrlEpoch(epoch);
  leader_lease_.Renew(0);
  std::lock_guard<std::mutex> lock(lead_mu_);
  leader_ = from;
  if (is_leader_) {
    // Two leaders just met (healed partition); the higher epoch wins, and
    // it is not us. Converging on one layout starts with stepping down.
    LOG_INFO << "controller " << node_ << " deposed by " << from
             << " (epoch " << epoch << ")";
    is_leader_ = false;
  }
}

Status ControllerServer::Campaign() {
  const size_t cluster = options_.peers.size() + 1;
  uint64_t cur = std::max(controller_.ctrl_epoch(),
                          controller_.max_granted_epoch());
  uint64_t next = cur + 1;
  while (next % cluster != options_.replica_index) ++next;
  // Vote for ourselves first, durably: a crash between here and winning
  // must not let this replica hand `next` to someone else later.
  CHARIOTS_ASSIGN_OR_RETURN(bool self_granted, controller_.GrantVote(next));
  if (!self_granted) {
    return Status::Aborted("already granted a vote past this epoch");
  }
  size_t votes = 1;
  uint64_t best_ce = controller_.ctrl_epoch();
  uint64_t best_v = controller_.version();
  net::NodeId best_peer;
  BinaryWriter w;
  w.PutU64(next);
  std::string request = std::move(w).data();
  for (const net::NodeId& peer : options_.peers) {
    Result<std::string> rsp = endpoint_.Call(
        peer, kCtrlVote, request, std::chrono::milliseconds(500));
    if (!rsp.ok()) continue;
    BinaryReader r(*rsp);
    uint8_t granted = 0;
    uint64_t ce = 0, v = 0;
    if (!r.GetU8(&granted).ok() || !r.GetU64(&ce).ok() || !r.GetU64(&v).ok()) {
      continue;
    }
    if (granted == 0) continue;
    ++votes;
    if (std::tie(ce, v) > std::tie(best_ce, best_v)) {
      best_ce = ce;
      best_v = v;
      best_peer = peer;
    }
  }
  if (2 * votes <= cluster) {
    // Lost (or partitioned from the majority). Re-arm the leader lease so
    // we back off a full period instead of spinning elections.
    leader_lease_.Renew(0);
    flightrec::Record(flightrec::EventType::kElection, 0,
                      options_.replica_index, next, 0);
    return Status::Aborted("lost election (no majority)");
  }
  if (!best_peer.empty()) {
    // A voter acknowledged a commit we never saw (we missed the previous
    // leader's last ReplicateState). Pull it before serving anything.
    Result<std::string> newer = endpoint_.Call(
        best_peer, kGetClusterInfo, std::string(),
        std::chrono::milliseconds(500));
    if (newer.ok()) {
      Result<ClusterInfo> info = DecodeClusterInfo(*newer);
      if (info.ok()) (void)controller_.InstallReplicatedState(*info);
    }
  }
  CHARIOTS_RETURN_IF_ERROR(controller_.AdoptCtrlEpoch(next));
  {
    std::lock_guard<std::mutex> lock(lead_mu_);
    is_leader_ = true;
    leader_ = node_;
  }
  ElectionsCounter()->Add();
  flightrec::Record(flightrec::EventType::kElection, 0,
                    options_.replica_index, next, 1);
  LOG_INFO << "controller " << node_ << " won election for epoch " << next;
  BroadcastBeat();
  ReplicateState();
  CompleteRecoveredPlans();
  return Status::OK();
}

Status ControllerServer::ConfirmLeadership() {
  if (options_.peers.empty()) return Status::OK();
  const size_t cluster = options_.peers.size() + 1;
  BinaryWriter w;
  w.PutU64(controller_.ctrl_epoch());
  std::string request = std::move(w).data();
  size_t acks = 1;  // self
  for (const net::NodeId& peer : options_.peers) {
    if (endpoint_
            .Call(peer, kCtrlConfirm, request, std::chrono::milliseconds(200))
            .ok()) {
      ++acks;
    }
  }
  if (2 * acks <= cluster) {
    return Status::Unavailable(
        "NOT_LEADER: lost contact with the controller majority");
  }
  return Status::OK();
}

void ControllerServer::ReplicateState() {
  if (options_.peers.empty()) return;
  std::string payload = EncodeClusterInfo(controller_.GetInfo());
  for (const net::NodeId& peer : options_.peers) {
    Result<std::string> pushed = endpoint_.Call(
        peer, kCtrlReplicateState, payload, std::chrono::milliseconds(500));
    if (!pushed.ok()) {
      // Best-effort: a follower that missed this catches up from a voter
      // at its next election, or from our next push.
      LOG_EVERY_N_SEC(kWarn, 5) << "layout replication to " << peer
                                << " failed: " << pushed.status().ToString();
    }
  }
}

void ControllerServer::BroadcastBeat() {
  if (options_.peers.empty()) return;
  // Renew our own copy of the leader lease too: the leader branch never
  // consults it, but kCtrlStatus reports it, and letting it lapse would
  // show operators a negative countdown on the leader itself. It also
  // buys a full back-off period before re-campaigning if we are deposed.
  leader_lease_.Renew(0);
  BinaryWriter w;
  w.PutU64(controller_.ctrl_epoch());
  w.PutBytes(node_);
  std::string payload = std::move(w).data();
  for (const net::NodeId& peer : options_.peers) {
    (void)endpoint_.Notify(peer, kCtrlLeaderBeat, payload);
  }
}

int ControllerServer::CompleteRecoveredPlans() {
  int resolved = 0;
  for (const FailoverPlan& plan : controller_.InflightFailovers()) {
    PlanReplaysCounter()->Add();
    LOG_INFO << "re-driving recovered failover plan for stripe "
             << plan.index << " (candidate " << plan.candidate << ")";
    (void)ExecuteFailover(plan, /*recheck_lease=*/true);  // resolves either way
    ++resolved;
  }
  for (const ReplicaRemoval& removal : controller_.InflightRemovals()) {
    PlanReplaysCounter()->Add();
    LOG_INFO << "re-driving recovered eviction plan for stripe "
             << removal.index << " (replica " << removal.removed << ")";
    (void)ExecuteRemoval(removal);
    ++resolved;
  }
  return resolved;
}

int ControllerServer::TickControl() {
  if (stop_.load(std::memory_order_relaxed)) return 0;
  std::optional<int64_t> lease = leader_lease_.RemainingNanos(0);
  flightrec::Record(flightrec::EventType::kLeaseTick, IsLeader() ? 1 : 0,
                    options_.replica_index, controller_.ctrl_epoch(),
                    static_cast<uint64_t>(std::max<int64_t>(
                        0, lease.value_or(0))));
  if (IsLeader()) {
    BroadcastBeat();
    return TickLeases();
  }
  if (!options_.peers.empty() && !leader_lease_.Held(0)) {
    (void)Campaign();
  }
  return 0;
}

Status ControllerServer::ExecuteFailover(const FailoverPlan& plan,
                                         bool recheck_lease) {
  if (recheck_lease) {
    if (controller_.LeaseHeld(plan.index)) {
      // A heartbeat slipped in between planning and acting (a healed
      // partition, a late heartbeat): the coordinator is alive, the plan's
      // premise is gone.
      FailoverAbortCounter()->Add();
      controller_.AbortFailover(plan.index);
      return Status::Aborted(
          "coordinator heartbeat resumed; failover aborted");
    }
    if (options_.probe_before_failover) {
      Result<std::string> pong =
          endpoint_.Call(plan.failed_primary, kPing, "",
                         std::chrono::milliseconds(100));
      if (pong.ok()) {
        // Probe-reachable means alive: only its heartbeats are cut (an
        // asymmetric partition, a gray link). Evicting it would trade a
        // healthy coordinator for churn.
        FalseSuspectsCounter()->Add();
        FailoverAbortCounter()->Add();
        controller_.AbortFailover(plan.index);
        return Status::Aborted(
            "coordinator answered liveness probe; failover aborted");
      }
    }
  }
  // A minority-partitioned (or deposed) leader must not move a stripe:
  // majority-confirm the leadership immediately before acting.
  Status confirmed = ConfirmLeadership();
  if (!confirmed.ok()) {
    FailoverAbortCounter()->Add();
    controller_.AbortFailover(plan.index);
    return confirmed;
  }
  // Two-phase: promote the candidate over RPC first; only a confirmed
  // promotion changes the layout. A lost response retries the (idempotent)
  // promotion later via AbortFailover's re-armed lease.
  BinaryWriter w;
  w.PutU64(controller_.ctrl_epoch());
  w.PutU64(plan.new_epoch);
  w.PutU32(static_cast<uint32_t>(plan.survivors.size()));
  for (const net::NodeId& peer : plan.survivors) w.PutBytes(peer);
  Result<std::string> promoted = endpoint_.Call(
      plan.candidate, kPromote, std::move(w).data(),
      std::chrono::milliseconds(1000));
  if (!promoted.ok()) {
    // Rate-limited: the lease monitor retries this every period while the
    // candidate stays unreachable.
    LOG_EVERY_N_SEC(kWarn, 5)
        << "promotion of " << plan.candidate << " for stripe " << plan.index
        << " failed: " << promoted.status().ToString();
    FailoverAbortCounter()->Add();
    controller_.AbortFailover(plan.index);
    return promoted.status();
  }
  Status status = controller_.CommitFailover(plan);
  if (!status.ok()) {
    LOG_EVERY_N_SEC(kWarn, 5) << "failover commit for stripe " << plan.index
                              << " failed: " << status.ToString();
    return status;
  }
  FailoverCommitCounter()->Add();
  ReplicateState();
  // Tell the surviving maintainers (including the promoted one) where the
  // stripe now lives, so gossip keeps flowing to the right node.
  BinaryWriter update;
  update.PutU64(controller_.ctrl_epoch());
  update.PutU32(plan.index);
  update.PutBytes(plan.candidate);
  std::string update_bytes = std::move(update).data();
  for (const net::NodeId& peer : controller_.GetInfo().maintainers) {
    (void)endpoint_.Notify(peer, kPeerUpdate, update_bytes);
  }
  return Status::OK();
}

Status ControllerServer::ExecuteRemoval(const ReplicaRemoval& removal) {
  Status confirmed = ConfirmLeadership();
  if (!confirmed.ok()) {
    controller_.AbortReplicaRemoval(removal.index);
    return confirmed;
  }
  BinaryWriter w;
  w.PutU64(controller_.ctrl_epoch());
  w.PutU64(removal.new_epoch);
  w.PutU32(static_cast<uint32_t>(removal.survivors.size()));
  for (const net::NodeId& peer : removal.survivors) w.PutBytes(peer);
  Result<std::string> reconfigured = endpoint_.Call(
      removal.coordinator, kReconfigure, std::move(w).data(),
      std::chrono::milliseconds(1000));
  if (!reconfigured.ok()) {
    controller_.AbortReplicaRemoval(removal.index);
    return reconfigured.status();
  }
  CHARIOTS_RETURN_IF_ERROR(controller_.CommitReplicaRemoval(removal));
  ReplicateState();
  return Status::OK();
}

Result<std::string> ControllerServer::HandleSuspect(
    const std::string& payload) {
  // Followers redirect: only the leader reconfigures. The reporter's
  // controller channel rotates on kUnavailable until it finds the leader.
  CHARIOTS_RETURN_IF_ERROR(RequireLeader());
  BinaryReader r(payload);
  uint32_t index = 0;
  std::string suspect;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&index));
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&suspect));
  auto detect_start = std::chrono::steady_clock::now();
  ClusterInfo info = controller_.GetInfo();
  if (index >= info.maintainers.size()) {
    return Status::InvalidArgument("no such maintainer stripe");
  }
  const bool is_coordinator = info.maintainers[index] == suspect;
  const std::vector<net::NodeId>& replicas = info.replicas[index];
  const bool is_replica =
      std::find(replicas.begin(), replicas.end(), suspect) != replicas.end();
  if (!is_coordinator && !is_replica) {
    // Stale report: the layout already moved past this node — the reporter
    // just needs to refresh.
    return std::string(1, '\x01');
  }
  // Trust but verify: one cheap probe before touching the layout. A dead
  // or stopped node fails this in microseconds (unreachable destinations
  // fail fast); a fenced one answers Unavailable, which is just as
  // disqualifying.
  Result<std::string> pong = endpoint_.Call(
      suspect, kPing, std::string(), std::chrono::milliseconds(100));
  if (pong.ok()) {
    // False alarm — probe-reachable means alive, however slow (gray
    // failure): never evict on a report alone. Count it as a heartbeat so
    // one slow reply doesn't let the lease lapse right after.
    FalseSuspectsCounter()->Add();
    if (is_coordinator) controller_.Heartbeat(index, suspect);
    return std::string(1, '\x00');
  }
  if (is_coordinator) {
    CHARIOTS_ASSIGN_OR_RETURN(FailoverPlan plan,
                              controller_.PlanFailover(index));
    CHARIOTS_RETURN_IF_ERROR(ExecuteFailover(plan, /*recheck_lease=*/false));
    MttrHist()->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - detect_start)
            .count()));
    return std::string(1, '\x01');
  }
  // Dead replica: evict it so the coordinator's writes stop waiting on it.
  CHARIOTS_ASSIGN_OR_RETURN(ReplicaRemoval removal,
                            controller_.PlanReplicaRemoval(index, suspect));
  CHARIOTS_RETURN_IF_ERROR(ExecuteRemoval(removal));
  MttrHist()->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - detect_start)
          .count()));
  return std::string(1, '\x01');
}

int ControllerServer::TickLeases() {
  if (!IsLeader()) return 0;
  int committed = 0;
  for (const FailoverPlan& plan : controller_.ExpiredLeases()) {
    LeaseExpiryCounter()->Add();
    auto sweep_start = std::chrono::steady_clock::now();
    if (ExecuteFailover(plan, /*recheck_lease=*/true).ok()) {
      ++committed;
      // Lease-path MTTR includes the lease the stripe had to wait out
      // before this sweep could even see the expiry — that is what a
      // client experienced when no suspect report short-circuited it.
      MttrHist()->Record(
          static_cast<uint64_t>(controller_.lease_nanos()) +
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - sweep_start)
                  .count()));
    }
  }
  return committed;
}

}  // namespace chariots::flstore
