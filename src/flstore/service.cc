#include "flstore/service.h"

#include <algorithm>

#include "common/codec.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::flstore {

namespace {

metrics::Counter* AppendCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.appends");
  return c;
}

metrics::Histogram* AppendHist() {
  static metrics::Histogram* h =
      metrics::Registry::Default().GetHistogram("flstore.append_ns");
  return h;
}

metrics::Counter* ReadCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.reads");
  return c;
}

metrics::Histogram* ReadHist() {
  static metrics::Histogram* h =
      metrics::Registry::Default().GetHistogram("flstore.read_ns");
  return h;
}

metrics::Counter* FillCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.fills");
  return c;
}

metrics::Histogram* FillHist() {
  static metrics::Histogram* h =
      metrics::Registry::Default().GetHistogram("flstore.fill_ns");
  return h;
}

metrics::Counter* PromotionsCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.promotions");
  return c;
}

metrics::Counter* LeaseExpiryCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "flstore.controller.lease_expiries");
  return c;
}

metrics::Counter* FailoverCommitCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "flstore.controller.failovers_committed");
  return c;
}

metrics::Counter* FailoverAbortCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "flstore.controller.failovers_aborted");
  return c;
}

std::string EncodeLId(LId lid) {
  BinaryWriter w;
  w.PutU64(lid);
  return std::move(w).data();
}

Result<LId> DecodeLId(std::string_view data) {
  BinaryReader r(data);
  LId lid = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
  return lid;
}

/// Replication collector: while a handler runs a maintainer append, the
/// observer appends every landed record here (handlers run on the transport
/// delivery thread, so thread_local scoping keeps concurrent handlers from
/// mixing batches). Null outside an append handler.
thread_local std::vector<ReplicatedEntry>* g_replication_sink = nullptr;

/// Arms the sink for the enclosing scope.
class ReplicationScope {
 public:
  explicit ReplicationScope(std::vector<ReplicatedEntry>* sink) {
    g_replication_sink = sink;
  }
  ~ReplicationScope() { g_replication_sink = nullptr; }
  ReplicationScope(const ReplicationScope&) = delete;
  ReplicationScope& operator=(const ReplicationScope&) = delete;
};

}  // namespace

std::string EncodeEpoch(const StripeEpoch& epoch) {
  BinaryWriter w;
  w.PutU64(epoch.start_lid);
  w.PutU32(epoch.num_maintainers);
  w.PutU64(epoch.batch_size);
  return std::move(w).data();
}

Result<StripeEpoch> DecodeEpoch(std::string_view data) {
  BinaryReader r(data);
  StripeEpoch epoch;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch.start_lid));
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&epoch.num_maintainers));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch.batch_size));
  return epoch;
}

// ---------------------------------------------------------------- maintainer


/// Highest position in a replicated batch (kInvalidLId when empty).
LId BatchTop(const std::vector<ReplicatedEntry>& batch) {
  LId top = kInvalidLId;
  for (const ReplicatedEntry& entry : batch) {
    if (top == kInvalidLId || entry.lid > top) top = entry.lid;
  }
  return top;
}

MaintainerServer::MaintainerServer(net::Transport* transport,
                                   MaintainerOptions maintainer,
                                   Options options)
    : maintainer_(std::move(maintainer)),
      options_(std::move(options)),
      executor_(options_.executor != nullptr ? options_.executor
                                             : Executor::Default()),
      endpoint_(transport, options_.node),
      repl_endpoint_(transport, options_.node + "#repl"),
      dedup_(DedupWindow::Options{options_.dedup_window,
                                  options_.dedup_sidecar,
                                  options_.dedup_compact_min_frames,
                                  options_.dedup_disk_faults}),
      replica_(&repl_endpoint_, options_.replica),
      peers_(options_.peers) {}

MaintainerServer::~MaintainerServer() { Stop(); }

Status MaintainerServer::Start() {
  CHARIOTS_RETURN_IF_ERROR(maintainer_.Open());
  CHARIOTS_RETURN_IF_ERROR(dedup_.Open());
  maintainer_.SetAppendObserver(
      [this](const LogRecord& record, LId lid) { OnLanded(record, lid); });
  InstallHandlers();
  CHARIOTS_RETURN_IF_ERROR(endpoint_.Start());
  CHARIOTS_RETURN_IF_ERROR(repl_endpoint_.Start());
  // Like the thread loops these replace, the first iteration runs now, not
  // one period from now — a fresh primary's lease must be armed before a
  // kill can be detected. Cancel() in Stop() fences the `this` captures.
  if (options_.peers.size() > 1) {
    GossipOnce();
    gossip_token_ = executor_->ScheduleEvery(options_.gossip_interval_nanos,
                                             [this] { GossipOnce(); });
  }
  if (!options_.controller.empty()) {
    HeartbeatOnce();
    heartbeat_token_ = executor_->ScheduleEvery(
        options_.heartbeat_interval_nanos, [this] { HeartbeatOnce(); });
  }
  return Status::OK();
}

void MaintainerServer::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  gossip_token_.Cancel();
  heartbeat_token_.Cancel();
  endpoint_.Stop();
  repl_endpoint_.Stop();
  (void)dedup_.Close();
}

Status MaintainerServer::Restart() {
  Stop();
  CHARIOTS_RETURN_IF_ERROR(maintainer_.Close());
  stop_.store(false, std::memory_order_relaxed);
  return Start();
}

void MaintainerServer::OnLanded(const LogRecord& record, LId lid) {
  if (g_replication_sink != nullptr) {
    g_replication_sink->push_back(
        ReplicatedEntry{lid, EncodeLogRecord(record)});
  }
  // Backups hold the postings back: the primary already published them, and
  // the promoted node starts publishing the moment it begins serving.
  if (!options_.indexers.empty() && replica_.CheckServing().ok()) {
    PublishPostings(record, lid);
  }
}

void MaintainerServer::InstallHandlers() {
  // All client-initiated appends open with a (client_id, seq) token. A
  // token the dedup window has already executed short-circuits to the
  // cached response, so a retry whose original *response* was lost returns
  // the same LIds instead of appending twice.
  //
  // Replicated stripes additionally ship each landed batch to the backup
  // (with the token and cached response) before recording dedup state and
  // acking — so an ack means both replicas hold the records, and a retry
  // that lands on the promoted backup after failover replays the cached
  // response instead of appending twice.
  endpoint_.Handle(kAppend, [this](const net::NodeId&,
                                   const std::string& payload)
                                -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(AppendHist());
    AppendCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckServing());
    BinaryReader r(payload);
    std::string client_id;
    uint64_t seq = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&client_id));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&seq));
    CHARIOTS_ASSIGN_OR_RETURN(std::optional<std::string> cached,
                              dedup_.Lookup(client_id, seq));
    if (cached.has_value()) return *std::move(cached);
    std::string rec_bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              DecodeLogRecord(kInvalidLId, rec_bytes));
    std::vector<ReplicatedEntry> batch;
    LId lid = kInvalidLId;
    {
      ReplicationScope scope(&batch);
      CHARIOTS_ASSIGN_OR_RETURN(lid, maintainer_.Append(record));
    }
    std::string response = EncodeLId(lid);
    LId repl_top = BatchTop(batch);
    CHARIOTS_RETURN_IF_ERROR(
        replica_.Replicate(std::move(batch), client_id, seq, response));
    NoteReplicated(repl_top);
    CHARIOTS_RETURN_IF_ERROR(dedup_.Record(client_id, seq, response));
    return response;
  });

  endpoint_.Handle(kAppendBatch, [this](const net::NodeId&,
                                        const std::string& payload)
                                     -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(AppendHist());
    AppendCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckServing());
    BinaryReader r(payload);
    std::string client_id;
    uint64_t seq = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&client_id));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&seq));
    CHARIOTS_ASSIGN_OR_RETURN(std::optional<std::string> cached,
                              dedup_.Lookup(client_id, seq));
    if (cached.has_value()) return *std::move(cached);
    uint32_t n = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
    std::vector<ReplicatedEntry> batch;
    BinaryWriter out;
    out.PutU32(n);
    {
      ReplicationScope scope(&batch);
      for (uint32_t i = 0; i < n; ++i) {
        std::string rec_bytes;
        CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
        CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                                  DecodeLogRecord(kInvalidLId, rec_bytes));
        CHARIOTS_ASSIGN_OR_RETURN(LId lid, maintainer_.Append(record));
        out.PutU64(lid);
      }
    }
    std::string response = std::move(out).data();
    LId repl_top = BatchTop(batch);
    CHARIOTS_RETURN_IF_ERROR(
        replica_.Replicate(std::move(batch), client_id, seq, response));
    NoteReplicated(repl_top);
    CHARIOTS_RETURN_IF_ERROR(dedup_.Record(client_id, seq, response));
    return response;
  });

  endpoint_.Handle(kAppendAt, [this](const net::NodeId&,
                                     const std::string& payload)
                                  -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(AppendHist());
    AppendCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckServing());
    BinaryReader r(payload);
    LId lid = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
    std::string rec_bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              DecodeLogRecord(lid, rec_bytes));
    std::vector<ReplicatedEntry> batch;
    {
      ReplicationScope scope(&batch);
      CHARIOTS_RETURN_IF_ERROR(maintainer_.AppendAt(lid, record));
    }
    LId repl_top = BatchTop(batch);
    CHARIOTS_RETURN_IF_ERROR(replica_.Replicate(std::move(batch), "", 0, ""));
    NoteReplicated(repl_top);
    return std::string();
  });

  endpoint_.Handle(kAppendOrdered, [this](const net::NodeId&,
                                          const std::string& payload)
                                       -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(AppendHist());
    AppendCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckServing());
    BinaryReader r(payload);
    std::string client_id;
    uint64_t seq = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&client_id));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&seq));
    CHARIOTS_ASSIGN_OR_RETURN(std::optional<std::string> cached,
                              dedup_.Lookup(client_id, seq));
    if (cached.has_value()) return *std::move(cached);
    LId min_lid = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&min_lid));
    std::string rec_bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              DecodeLogRecord(kInvalidLId, rec_bytes));
    std::vector<ReplicatedEntry> batch;
    LId lid = kInvalidLId;
    {
      ReplicationScope scope(&batch);
      CHARIOTS_ASSIGN_OR_RETURN(lid,
                                maintainer_.AppendOrdered(record, min_lid));
    }
    // Caching a deferred (kInvalidLId) response is deliberate: a retry must
    // not re-buffer the record — the first buffered copy will land.
    std::string response = EncodeLId(lid);
    LId repl_top = BatchTop(batch);
    CHARIOTS_RETURN_IF_ERROR(
        replica_.Replicate(std::move(batch), client_id, seq, response));
    NoteReplicated(repl_top);
    CHARIOTS_RETURN_IF_ERROR(dedup_.Record(client_id, seq, response));
    return response;
  });

  // Read responses open with (fence epoch, head of log): the client's
  // read-through cache keys its invalidation off them — an epoch bump for
  // the stripe purges cached tail entries, and lids below the piggybacked
  // HL are immutable and cacheable forever (DESIGN.md §11).
  endpoint_.Handle(kRead, [this](const net::NodeId&,
                                 const std::string& payload)
                              -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(ReadHist());
    ReadCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckServing());
    CHARIOTS_ASSIGN_OR_RETURN(LId lid, DecodeLId(payload));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record, maintainer_.Read(lid));
    BinaryWriter w;
    w.PutU64(replica_.epoch());
    w.PutU64(CacheableHl());
    w.PutBytes(EncodeLogRecord(record));
    return std::move(w).data();
  });

  endpoint_.Handle(kReadCommitted, [this](const net::NodeId&,
                                          const std::string& payload)
                                       -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(ReadHist());
    ReadCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckServing());
    CHARIOTS_ASSIGN_OR_RETURN(LId lid, DecodeLId(payload));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              maintainer_.ReadCommitted(lid));
    BinaryWriter w;
    w.PutU64(replica_.epoch());
    w.PutU64(CacheableHl());
    w.PutBytes(EncodeLogRecord(record));
    return std::move(w).data();
  });

  // Batched multi-get: the whole batch costs one round trip. Per-lid
  // presence flags let the client distinguish a miss (gap/GC) from an
  // error; OutOfRange (wrong stripe) is also reported as not-found so a
  // coalesced batch straddling a stale striping view degrades softly.
  endpoint_.Handle(kReadRange, [this](const net::NodeId&,
                                      const std::string& payload)
                                   -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(ReadHist());
    ReadCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckServing());
    BinaryReader r(payload);
    uint32_t n = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
    BinaryWriter w;
    w.PutU64(replica_.epoch());
    w.PutU64(CacheableHl());
    w.PutU32(n);
    for (uint32_t i = 0; i < n; ++i) {
      LId lid = 0;
      CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
      Result<LogRecord> record = maintainer_.Read(lid);
      w.PutU64(lid);
      if (record.ok()) {
        w.PutU8(1);
        w.PutBytes(EncodeLogRecord(*record));
      } else if (record.status().code() == StatusCode::kNotFound ||
                 record.status().code() == StatusCode::kOutOfRange) {
        w.PutU8(0);
      } else {
        return record.status();
      }
    }
    return std::move(w).data();
  });

  endpoint_.Handle(kHeadOfLog, [this](const net::NodeId&, const std::string&)
                                   -> Result<std::string> {
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckServing());
    return EncodeLId(maintainer_.HeadOfLog());
  });

  endpoint_.Handle(kAddEpoch, [this](const net::NodeId&,
                                     const std::string& payload)
                                  -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(StripeEpoch epoch, DecodeEpoch(payload));
    CHARIOTS_RETURN_IF_ERROR(maintainer_.AddEpoch(epoch));
    return std::string();
  });

  endpoint_.HandleOneWay(kGossip, [this](const net::NodeId&,
                                         std::string payload) {
    BinaryReader r(payload);
    uint32_t index = 0;
    LId first_unfilled = 0;
    if (r.GetU32(&index).ok() && r.GetU64(&first_unfilled).ok()) {
      maintainer_.OnGossip(index, first_unfilled);
    }
  });

  // Backup side of the stripe replica set: apply a batch the primary shipped
  // (epoch-fenced), then mirror its dedup state so exactly-once survives a
  // failover. AlreadyExists is a retried batch — the records landed the
  // first time.
  endpoint_.Handle(kReplicate, [this](const net::NodeId&,
                                      const std::string& payload)
                                   -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(ReplicateRequest req,
                              DecodeReplicateRequest(payload));
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckReplicaEpoch(req.epoch));
    for (const ReplicatedEntry& entry : req.entries) {
      CHARIOTS_ASSIGN_OR_RETURN(
          LogRecord record, DecodeLogRecord(entry.lid, entry.record_bytes));
      Status status = maintainer_.AppendAt(entry.lid, record);
      if (status.code() == StatusCode::kAlreadyExists) continue;
      CHARIOTS_RETURN_IF_ERROR(status);
    }
    if (!req.client_id.empty()) {
      CHARIOTS_RETURN_IF_ERROR(
          dedup_.Record(req.client_id, req.seq, req.response));
    }
    return std::string();
  });

  // Failover promotion (controller -> backup): adopt the bumped fencing
  // epoch, become primary, and junk-fill the positions the dead primary
  // assigned but never replicated so the Head of the Log can advance past
  // them. Responds with the filled positions. Idempotent under retry.
  endpoint_.Handle(kPromote, [this](const net::NodeId&,
                                    const std::string& payload)
                                 -> Result<std::string> {
    BinaryReader r(payload);
    uint64_t new_epoch = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&new_epoch));
    CHARIOTS_RETURN_IF_ERROR(replica_.Promote(new_epoch));
    PromotionsCounter()->Add();
    // Role change: drop the cached tail so nothing assembled under the old
    // epoch can be served by the new primary.
    maintainer_.InvalidateTailCache();
    CHARIOTS_ASSIGN_OR_RETURN(std::vector<LId> filled,
                              maintainer_.FillHoles(MakeJunkRecord()));
    if (!filled.empty()) {
      LOG_INFO << "promotion of maintainer " << maintainer_.index()
               << " junk-filled " << filled.size() << " orphaned positions";
    }
    BinaryWriter w;
    w.PutU32(static_cast<uint32_t>(filled.size()));
    for (LId lid : filled) w.PutU64(lid);
    return std::move(w).data();
  });

  // Junk-fill one orphaned position (repair tooling / peers unwedging HL).
  endpoint_.Handle(kFill, [this](const net::NodeId&,
                                 const std::string& payload)
                              -> Result<std::string> {
    metrics::ScopedLatencyTimer timer(FillHist());
    FillCounter()->Add();
    CHARIOTS_RETURN_IF_ERROR(replica_.CheckServing());
    CHARIOTS_ASSIGN_OR_RETURN(LId lid, DecodeLId(payload));
    std::vector<ReplicatedEntry> batch;
    Status status;
    {
      ReplicationScope scope(&batch);
      status = maintainer_.AppendAt(lid, MakeJunkRecord(lid));
    }
    if (status.code() == StatusCode::kAlreadyExists) {
      return std::string();  // position is occupied — nothing to repair
    }
    CHARIOTS_RETURN_IF_ERROR(status);
    CHARIOTS_RETURN_IF_ERROR(replica_.Replicate(std::move(batch), "", 0, ""));
    return std::string();
  });

  // Layout change from the controller: stripe `index` has a new primary.
  endpoint_.HandleOneWay(kPeerUpdate, [this](const net::NodeId&,
                                             std::string payload) {
    BinaryReader r(payload);
    uint32_t index = 0;
    std::string node;
    if (r.GetU32(&index).ok() && r.GetBytes(&node).ok()) {
      std::lock_guard<std::mutex> lock(peers_mu_);
      if (index >= peers_.size()) peers_.resize(index + 1);
      peers_[index] = node;
    }
  });
}

void MaintainerServer::NoteReplicated(LId top_lid) {
  if (top_lid == kInvalidLId) return;
  LId floor = replicated_floor_.load(std::memory_order_relaxed);
  while (floor < top_lid + 1 &&
         !replicated_floor_.compare_exchange_weak(
             floor, top_lid + 1, std::memory_order_release,
             std::memory_order_relaxed)) {
  }
}

LId MaintainerServer::CacheableHl() const {
  LId hl = maintainer_.HeadOfLog();
  if (replica_.replicates()) {
    hl = std::min(hl, replicated_floor_.load(std::memory_order_acquire));
  }
  return hl;
}

void MaintainerServer::GossipOnce() {
  if (stop_.load(std::memory_order_relaxed)) return;
  BinaryWriter w;
  w.PutU32(maintainer_.index());
  w.PutU64(maintainer_.FirstUnfilledGlobal());
  std::string payload = std::move(w).data();
  std::vector<net::NodeId> peers;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    peers = peers_;
  }
  for (size_t i = 0; i < peers.size(); ++i) {
    if (i == maintainer_.index()) continue;
    (void)endpoint_.Notify(peers[i], kGossip, payload);
  }
}

void MaintainerServer::HeartbeatOnce() {
  if (stop_.load(std::memory_order_relaxed)) return;
  // Only the serving primary heartbeats: a backup must not keep its dead
  // primary's lease alive, and a fenced primary must *let* its lease
  // lapse so the controller promotes the backup.
  if (!replica_.CheckServing().ok()) return;
  BinaryWriter w;
  w.PutU32(maintainer_.index());
  (void)endpoint_.Notify(options_.controller, kHeartbeat,
                         std::move(w).data());
}

void MaintainerServer::PublishPostings(const LogRecord& record, LId lid) {
  for (const Tag& tag : record.tags) {
    uint32_t idx = IndexerForKey(
        tag.key, static_cast<uint32_t>(options_.indexers.size()));
    BinaryWriter w;
    w.PutBytes(tag.key);
    w.PutBytes(tag.value);
    w.PutU64(lid);
    (void)endpoint_.Notify(options_.indexers[idx], kIndexAdd,
                           std::move(w).data());
  }
}

// ------------------------------------------------------------------ indexer

IndexerServer::IndexerServer(net::Transport* transport, net::NodeId node)
    : endpoint_(transport, std::move(node)) {}

IndexerServer::~IndexerServer() { Stop(); }

Status IndexerServer::Start() {
  endpoint_.Handle(kIndexLookup, [this](const net::NodeId&,
                                        const std::string& payload)
                                     -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(IndexQuery query, DecodeIndexQuery(payload));
    return EncodePostings(indexer_.Lookup(query));
  });
  endpoint_.HandleOneWay(kIndexAdd, [this](const net::NodeId&,
                                           std::string payload) {
    BinaryReader r(payload);
    std::string key, value;
    LId lid = 0;
    if (r.GetBytes(&key).ok() && r.GetBytes(&value).ok() &&
        r.GetU64(&lid).ok()) {
      indexer_.Add(key, value, lid);
    }
  });
  return endpoint_.Start();
}

void IndexerServer::Stop() { endpoint_.Stop(); }

// --------------------------------------------------------------- controller

ControllerServer::ControllerServer(net::Transport* transport,
                                   net::NodeId node, ClusterInfo initial,
                                   ControllerServerOptions options)
    : controller_(std::move(initial), options.controller),
      options_(options),
      executor_(options_.executor != nullptr ? options_.executor
                                             : Executor::Default()),
      endpoint_(transport, std::move(node)) {}

ControllerServer::~ControllerServer() { Stop(); }

Status ControllerServer::Start() {
  endpoint_.Handle(kGetClusterInfo, [this](const net::NodeId&,
                                           const std::string&)
                                        -> Result<std::string> {
    return EncodeClusterInfo(controller_.GetInfo());
  });
  endpoint_.Handle(kControllerAddMaintainer,
                   [this](const net::NodeId&, const std::string& payload)
                       -> Result<std::string> {
                     BinaryReader r(payload);
                     std::string node;
                     CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&node));
                     std::string epoch_bytes;
                     CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&epoch_bytes));
                     CHARIOTS_ASSIGN_OR_RETURN(StripeEpoch epoch,
                                               DecodeEpoch(epoch_bytes));
                     uint64_t expected_version = 0;
                     CHARIOTS_RETURN_IF_ERROR(r.GetU64(&expected_version));
                     CHARIOTS_RETURN_IF_ERROR(controller_.AddMaintainer(
                         node, epoch, expected_version));
                     return std::string();
                   });
  endpoint_.HandleOneWay(kHeartbeat, [this](const net::NodeId& from,
                                            std::string payload) {
    BinaryReader r(payload);
    uint32_t index = 0;
    if (r.GetU32(&index).ok()) controller_.Heartbeat(index, from);
  });
  CHARIOTS_RETURN_IF_ERROR(endpoint_.Start());
  if (options_.monitor_interval_nanos > 0) {
    // TickLeases() issues a blocking promote Call() from a worker — safe
    // because the transports deliver responses out-of-band (inline on the
    // delivering thread), never through the worker pool.
    monitor_token_ = executor_->ScheduleEvery(
        options_.monitor_interval_nanos, [this] {
          if (!stop_.load(std::memory_order_relaxed)) TickLeases();
        });
  }
  return Status::OK();
}

void ControllerServer::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) {
    endpoint_.Stop();
    return;
  }
  monitor_token_.Cancel();
  endpoint_.Stop();
}

int ControllerServer::TickLeases() {
  int committed = 0;
  for (const FailoverPlan& plan : controller_.ExpiredLeases()) {
    LeaseExpiryCounter()->Add();
    // Two-phase: promote the backup over RPC first; only a confirmed
    // promotion changes the layout. A lost response retries the (idempotent)
    // promotion on the next tick via AbortFailover's re-armed lease.
    BinaryWriter w;
    w.PutU64(plan.new_epoch);
    Result<std::string> promoted = endpoint_.Call(
        plan.backup, kPromote, std::move(w).data(),
        std::chrono::milliseconds(1000));
    if (!promoted.ok()) {
      LOG_WARN << "promotion of " << plan.backup << " for stripe "
               << plan.index
               << " failed: " << promoted.status().ToString();
      FailoverAbortCounter()->Add();
      controller_.AbortFailover(plan.index);
      continue;
    }
    Status status = controller_.CommitFailover(plan);
    if (!status.ok()) {
      LOG_WARN << "failover commit for stripe " << plan.index
               << " failed: " << status.ToString();
      continue;
    }
    ++committed;
    FailoverCommitCounter()->Add();
    // Tell the surviving maintainers (including the promoted one) where the
    // stripe now lives, so gossip keeps flowing to the right node.
    BinaryWriter update;
    update.PutU32(plan.index);
    update.PutBytes(plan.backup);
    std::string update_bytes = std::move(update).data();
    for (const net::NodeId& peer : controller_.GetInfo().maintainers) {
      (void)endpoint_.Notify(peer, kPeerUpdate, update_bytes);
    }
  }
  return committed;
}

}  // namespace chariots::flstore
