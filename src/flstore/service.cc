#include "flstore/service.h"

#include "common/codec.h"
#include "common/logging.h"

namespace chariots::flstore {

namespace {

std::string EncodeLId(LId lid) {
  BinaryWriter w;
  w.PutU64(lid);
  return std::move(w).data();
}

Result<LId> DecodeLId(std::string_view data) {
  BinaryReader r(data);
  LId lid = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
  return lid;
}

}  // namespace

std::string EncodeEpoch(const StripeEpoch& epoch) {
  BinaryWriter w;
  w.PutU64(epoch.start_lid);
  w.PutU32(epoch.num_maintainers);
  w.PutU64(epoch.batch_size);
  return std::move(w).data();
}

Result<StripeEpoch> DecodeEpoch(std::string_view data) {
  BinaryReader r(data);
  StripeEpoch epoch;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch.start_lid));
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&epoch.num_maintainers));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&epoch.batch_size));
  return epoch;
}

// ---------------------------------------------------------------- maintainer

MaintainerServer::MaintainerServer(net::Transport* transport,
                                   MaintainerOptions maintainer,
                                   Options options)
    : maintainer_(std::move(maintainer)),
      options_(std::move(options)),
      endpoint_(transport, options_.node),
      dedup_(DedupWindow::Options{options_.dedup_window,
                                  options_.dedup_sidecar}) {}

MaintainerServer::~MaintainerServer() { Stop(); }

Status MaintainerServer::Start() {
  CHARIOTS_RETURN_IF_ERROR(maintainer_.Open());
  CHARIOTS_RETURN_IF_ERROR(dedup_.Open());
  if (!options_.indexers.empty()) {
    maintainer_.SetAppendObserver(
        [this](const LogRecord& record, LId lid) {
          PublishPostings(record, lid);
        });
  }
  InstallHandlers();
  CHARIOTS_RETURN_IF_ERROR(endpoint_.Start());
  if (options_.peers.size() > 1) {
    gossip_thread_ = std::thread([this] { GossipLoop(); });
  }
  return Status::OK();
}

void MaintainerServer::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  if (gossip_thread_.joinable()) gossip_thread_.join();
  endpoint_.Stop();
  (void)dedup_.Close();
}

Status MaintainerServer::Restart() {
  Stop();
  CHARIOTS_RETURN_IF_ERROR(maintainer_.Close());
  stop_.store(false, std::memory_order_relaxed);
  return Start();
}

void MaintainerServer::InstallHandlers() {
  // All client-initiated appends open with a (client_id, seq) token. A
  // token the dedup window has already executed short-circuits to the
  // cached response, so a retry whose original *response* was lost returns
  // the same LIds instead of appending twice.
  endpoint_.Handle(kAppend, [this](const net::NodeId&,
                                   const std::string& payload)
                                -> Result<std::string> {
    BinaryReader r(payload);
    std::string client_id;
    uint64_t seq = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&client_id));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&seq));
    CHARIOTS_ASSIGN_OR_RETURN(std::optional<std::string> cached,
                              dedup_.Lookup(client_id, seq));
    if (cached.has_value()) return *std::move(cached);
    std::string rec_bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              DecodeLogRecord(kInvalidLId, rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LId lid, maintainer_.Append(record));
    std::string response = EncodeLId(lid);
    CHARIOTS_RETURN_IF_ERROR(dedup_.Record(client_id, seq, response));
    return response;
  });

  endpoint_.Handle(kAppendBatch, [this](const net::NodeId&,
                                        const std::string& payload)
                                     -> Result<std::string> {
    BinaryReader r(payload);
    std::string client_id;
    uint64_t seq = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&client_id));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&seq));
    CHARIOTS_ASSIGN_OR_RETURN(std::optional<std::string> cached,
                              dedup_.Lookup(client_id, seq));
    if (cached.has_value()) return *std::move(cached);
    uint32_t n = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
    BinaryWriter out;
    out.PutU32(n);
    for (uint32_t i = 0; i < n; ++i) {
      std::string rec_bytes;
      CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
      CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                                DecodeLogRecord(kInvalidLId, rec_bytes));
      CHARIOTS_ASSIGN_OR_RETURN(LId lid, maintainer_.Append(record));
      out.PutU64(lid);
    }
    std::string response = std::move(out).data();
    CHARIOTS_RETURN_IF_ERROR(dedup_.Record(client_id, seq, response));
    return response;
  });

  endpoint_.Handle(kAppendAt, [this](const net::NodeId&,
                                     const std::string& payload)
                                  -> Result<std::string> {
    BinaryReader r(payload);
    LId lid = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&lid));
    std::string rec_bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              DecodeLogRecord(lid, rec_bytes));
    CHARIOTS_RETURN_IF_ERROR(maintainer_.AppendAt(lid, record));
    return std::string();
  });

  endpoint_.Handle(kAppendOrdered, [this](const net::NodeId&,
                                          const std::string& payload)
                                       -> Result<std::string> {
    BinaryReader r(payload);
    std::string client_id;
    uint64_t seq = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&client_id));
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&seq));
    CHARIOTS_ASSIGN_OR_RETURN(std::optional<std::string> cached,
                              dedup_.Lookup(client_id, seq));
    if (cached.has_value()) return *std::move(cached);
    LId min_lid = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&min_lid));
    std::string rec_bytes;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              DecodeLogRecord(kInvalidLId, rec_bytes));
    CHARIOTS_ASSIGN_OR_RETURN(LId lid,
                              maintainer_.AppendOrdered(record, min_lid));
    // Caching a deferred (kInvalidLId) response is deliberate: a retry must
    // not re-buffer the record — the first buffered copy will land.
    std::string response = EncodeLId(lid);
    CHARIOTS_RETURN_IF_ERROR(dedup_.Record(client_id, seq, response));
    return response;
  });

  endpoint_.Handle(kRead, [this](const net::NodeId&,
                                 const std::string& payload)
                              -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(LId lid, DecodeLId(payload));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record, maintainer_.Read(lid));
    return EncodeLogRecord(record);
  });

  endpoint_.Handle(kReadCommitted, [this](const net::NodeId&,
                                          const std::string& payload)
                                       -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(LId lid, DecodeLId(payload));
    CHARIOTS_ASSIGN_OR_RETURN(LogRecord record,
                              maintainer_.ReadCommitted(lid));
    return EncodeLogRecord(record);
  });

  endpoint_.Handle(kHeadOfLog, [this](const net::NodeId&, const std::string&)
                                   -> Result<std::string> {
    return EncodeLId(maintainer_.HeadOfLog());
  });

  endpoint_.Handle(kAddEpoch, [this](const net::NodeId&,
                                     const std::string& payload)
                                  -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(StripeEpoch epoch, DecodeEpoch(payload));
    CHARIOTS_RETURN_IF_ERROR(maintainer_.AddEpoch(epoch));
    return std::string();
  });

  endpoint_.HandleOneWay(kGossip, [this](const net::NodeId&,
                                         std::string payload) {
    BinaryReader r(payload);
    uint32_t index = 0;
    LId first_unfilled = 0;
    if (r.GetU32(&index).ok() && r.GetU64(&first_unfilled).ok()) {
      maintainer_.OnGossip(index, first_unfilled);
    }
  });
}

void MaintainerServer::GossipLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    BinaryWriter w;
    w.PutU32(maintainer_.index());
    w.PutU64(maintainer_.FirstUnfilledGlobal());
    std::string payload = std::move(w).data();
    for (size_t i = 0; i < options_.peers.size(); ++i) {
      if (i == maintainer_.index()) continue;
      (void)endpoint_.Notify(options_.peers[i], kGossip, payload);
    }
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.gossip_interval_nanos));
  }
}

void MaintainerServer::PublishPostings(const LogRecord& record, LId lid) {
  for (const Tag& tag : record.tags) {
    uint32_t idx = IndexerForKey(
        tag.key, static_cast<uint32_t>(options_.indexers.size()));
    BinaryWriter w;
    w.PutBytes(tag.key);
    w.PutBytes(tag.value);
    w.PutU64(lid);
    (void)endpoint_.Notify(options_.indexers[idx], kIndexAdd,
                           std::move(w).data());
  }
}

// ------------------------------------------------------------------ indexer

IndexerServer::IndexerServer(net::Transport* transport, net::NodeId node)
    : endpoint_(transport, std::move(node)) {}

IndexerServer::~IndexerServer() { Stop(); }

Status IndexerServer::Start() {
  endpoint_.Handle(kIndexLookup, [this](const net::NodeId&,
                                        const std::string& payload)
                                     -> Result<std::string> {
    CHARIOTS_ASSIGN_OR_RETURN(IndexQuery query, DecodeIndexQuery(payload));
    return EncodePostings(indexer_.Lookup(query));
  });
  endpoint_.HandleOneWay(kIndexAdd, [this](const net::NodeId&,
                                           std::string payload) {
    BinaryReader r(payload);
    std::string key, value;
    LId lid = 0;
    if (r.GetBytes(&key).ok() && r.GetBytes(&value).ok() &&
        r.GetU64(&lid).ok()) {
      indexer_.Add(key, value, lid);
    }
  });
  return endpoint_.Start();
}

void IndexerServer::Stop() { endpoint_.Stop(); }

// --------------------------------------------------------------- controller

ControllerServer::ControllerServer(net::Transport* transport,
                                   net::NodeId node, ClusterInfo initial)
    : controller_(std::move(initial)), endpoint_(transport, std::move(node)) {}

ControllerServer::~ControllerServer() { Stop(); }

Status ControllerServer::Start() {
  endpoint_.Handle(kGetClusterInfo, [this](const net::NodeId&,
                                           const std::string&)
                                        -> Result<std::string> {
    return EncodeClusterInfo(controller_.GetInfo());
  });
  endpoint_.Handle(kControllerAddMaintainer,
                   [this](const net::NodeId&, const std::string& payload)
                       -> Result<std::string> {
                     BinaryReader r(payload);
                     std::string node;
                     CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&node));
                     std::string epoch_bytes;
                     CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&epoch_bytes));
                     CHARIOTS_ASSIGN_OR_RETURN(StripeEpoch epoch,
                                               DecodeEpoch(epoch_bytes));
                     CHARIOTS_RETURN_IF_ERROR(
                         controller_.AddMaintainer(node, epoch));
                     return std::string();
                   });
  return endpoint_.Start();
}

void ControllerServer::Stop() { endpoint_.Stop(); }

}  // namespace chariots::flstore
