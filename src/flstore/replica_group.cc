#include "flstore/replica_group.h"

#include <utility>

#include "common/codec.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::flstore {

namespace {

metrics::Counter* ReplicatedEntriesCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "flstore.replica.entries_replicated");
  return c;
}

metrics::Histogram* ReplicationLagHist() {
  static metrics::Histogram* h = metrics::Registry::Default().GetHistogram(
      "flstore.replica.replication_lag_ns");
  return h;
}

metrics::Counter* FenceCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.replica.fence_events");
  return c;
}

}  // namespace

std::string EncodeReplicateRequest(const ReplicateRequest& req) {
  BinaryWriter w;
  w.PutU64(req.epoch);
  w.PutU32(static_cast<uint32_t>(req.entries.size()));
  for (const ReplicatedEntry& e : req.entries) {
    w.PutU64(e.lid);
    w.PutBytes(e.record_bytes);
  }
  w.PutBytes(req.client_id);
  w.PutU64(req.seq);
  w.PutBytes(req.response);
  return std::move(w).data();
}

Result<ReplicateRequest> DecodeReplicateRequest(std::string_view data) {
  BinaryReader r(data);
  ReplicateRequest req;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&req.epoch));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  req.entries.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&req.entries[i].lid));
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&req.entries[i].record_bytes));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&req.client_id));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&req.seq));
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&req.response));
  return req;
}

ReplicaGroup::ReplicaGroup(net::RpcEndpoint* endpoint, ReplicaOptions options)
    : endpoint_(endpoint),
      role_(options.role),
      epoch_(options.epoch),
      backup_(std::move(options.backup)),
      replicate_timeout_(options.replicate_timeout) {}

ReplicaRole ReplicaGroup::role() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_;
}

uint64_t ReplicaGroup::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

bool ReplicaGroup::fenced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fenced_;
}

net::NodeId ReplicaGroup::backup() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backup_;
}

bool ReplicaGroup::replicates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_ == ReplicaRole::kPrimary && !backup_.empty();
}

Status ReplicaGroup::Replicate(std::vector<ReplicatedEntry> entries,
                               const std::string& client_id, uint64_t seq,
                               const std::string& response) {
  ReplicateRequest req;
  net::NodeId backup;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fenced_) return Status::Unavailable("NOT_PRIMARY: fenced");
    if (role_ != ReplicaRole::kPrimary || backup_.empty()) {
      return Status::OK();  // nothing to replicate to
    }
    req.epoch = epoch_;
    backup = backup_;
  }
  req.entries = std::move(entries);
  req.client_id = client_id;
  req.seq = seq;
  req.response = response;
  size_t entry_count = req.entries.size();
  // Replication lag = how long the synchronous backup round-trip holds up
  // the append ack.
  metrics::ScopedLatencyTimer lag_timer(ReplicationLagHist());
  Result<std::string> result = endpoint_->Call(
      backup, kReplicateRpc, EncodeReplicateRequest(req), replicate_timeout_);
  if (!result.ok()) {
    // Could not confirm backup durability — whether the hop failed or the
    // backup rejected our epoch, this primary can no longer safely ack
    // appends. Self-fence: the controller will promote the backup, and our
    // unacked local tail dies with us.
    LOG_EVERY_N_SEC(kWarn, 5)
        << "replicate to " << backup
        << " failed, fencing: " << result.status().ToString();
    Fence();
    return Status::Unavailable("NOT_PRIMARY: replication failed (" +
                               result.status().ToString() + ")");
  }
  ReplicatedEntriesCounter()->Add(entry_count);
  return Status::OK();
}

Status ReplicaGroup::CheckServing() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fenced_) return Status::Unavailable("NOT_PRIMARY: fenced");
  if (role_ == ReplicaRole::kBackup) {
    return Status::Unavailable("NOT_PRIMARY: backup replica");
  }
  return Status::OK();
}

Status ReplicaGroup::CheckReplicaEpoch(uint64_t remote_epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (remote_epoch < epoch_) {
    return Status::FailedPrecondition("stale replication epoch");
  }
  if (remote_epoch > epoch_) {
    return Status::FailedPrecondition("replication epoch from the future");
  }
  return Status::OK();
}

Status ReplicaGroup::Promote(uint64_t new_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (role_ == ReplicaRole::kPrimary && epoch_ == new_epoch) {
    return Status::OK();  // retried promotion
  }
  if (new_epoch <= epoch_) {
    return Status::FailedPrecondition("promotion epoch must move forward");
  }
  if (fenced_) return Status::FailedPrecondition("cannot promote fenced node");
  role_ = ReplicaRole::kPrimary;
  epoch_ = new_epoch;
  backup_.clear();  // the promoted node runs unreplicated until reconfigured
  return Status::OK();
}

void ReplicaGroup::Fence() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fenced_) FenceCounter()->Add();
  fenced_ = true;
}

}  // namespace chariots::flstore
