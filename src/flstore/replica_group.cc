#include "flstore/replica_group.h"

#include <utility>

#include "common/codec.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace chariots::flstore {

namespace {

metrics::Counter* ReplicatedEntriesCounter() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "flstore.replica.entries_replicated");
  return c;
}

metrics::Histogram* ReplicationLagHist() {
  static metrics::Histogram* h = metrics::Registry::Default().GetHistogram(
      "flstore.replica.replication_lag_ns");
  return h;
}

metrics::Counter* FenceCounter() {
  static metrics::Counter* c =
      metrics::Registry::Default().GetCounter("flstore.replica.fence_events");
  return c;
}

}  // namespace

std::string EncodeInvalidateRequest(const InvalidateRequest& req) {
  BinaryWriter w;
  w.PutU64(req.epoch);
  w.PutU32(static_cast<uint32_t>(req.entries.size()));
  for (const ReplicatedEntry& e : req.entries) {
    w.PutU64(e.lid);
    w.PutBytes(e.record_bytes);
  }
  w.PutBytes(req.client_id);
  w.PutU64(req.seq);
  w.PutBytes(req.response);
  return std::move(w).data();
}

Result<InvalidateRequest> DecodeInvalidateRequest(std::string_view data) {
  BinaryReader r(data);
  InvalidateRequest req;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&req.epoch));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  req.entries.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&req.entries[i].lid));
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&req.entries[i].record_bytes));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&req.client_id));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&req.seq));
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&req.response));
  return req;
}

std::string EncodeValidateNotice(const ValidateNotice& notice) {
  BinaryWriter w;
  w.PutU64(notice.epoch);
  w.PutU32(static_cast<uint32_t>(notice.lids.size()));
  for (LId lid : notice.lids) w.PutU64(lid);
  w.PutU64(notice.floor);
  return std::move(w).data();
}

Result<ValidateNotice> DecodeValidateNotice(std::string_view data) {
  BinaryReader r(data);
  ValidateNotice notice;
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&notice.epoch));
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  notice.lids.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&notice.lids[i]));
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&notice.floor));
  return notice;
}

ReplicaGroup::ReplicaGroup(net::RpcEndpoint* endpoint, ReplicaOptions options)
    : endpoint_(endpoint),
      role_(options.role),
      epoch_(options.epoch),
      peers_(std::move(options.peers)),
      invalidate_timeout_(options.invalidate_timeout) {}

ReplicaRole ReplicaGroup::role() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_;
}

uint64_t ReplicaGroup::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

bool ReplicaGroup::fenced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fenced_;
}

std::vector<net::NodeId> ReplicaGroup::peers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peers_;
}

bool ReplicaGroup::replicates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_ == ReplicaRole::kCoordinator && !peers_.empty();
}

bool ReplicaGroup::in_replica_set() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_ == ReplicaRole::kReplica ||
         (role_ == ReplicaRole::kCoordinator && !peers_.empty());
}

Status ReplicaGroup::InvalidateBroadcast(std::vector<ReplicatedEntry> entries,
                                         const std::string& client_id,
                                         uint64_t seq,
                                         const std::string& response,
                                         net::NodeId* unreachable) {
  InvalidateRequest req;
  std::vector<net::NodeId> peers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fenced_) return Status::Unavailable("NOT_COORDINATOR: fenced");
    if (role_ == ReplicaRole::kReplica) {
      return Status::Unavailable("NOT_COORDINATOR: replica");
    }
    if (peers_.empty()) return Status::OK();  // nothing to replicate to
    req.epoch = epoch_;
    peers = peers_;
  }
  req.entries = std::move(entries);
  req.client_id = client_id;
  req.seq = seq;
  req.response = response;
  size_t entry_count = req.entries.size();
  std::string wire = EncodeInvalidateRequest(req);
  // Replication lag = how long the synchronous INV round holds up the
  // append ack.
  metrics::ScopedLatencyTimer lag_timer(ReplicationLagHist());
  for (const net::NodeId& peer : peers) {
    Result<std::string> result =
        endpoint_->Call(peer, kInvalidateRpc, wire, invalidate_timeout_);
    if (result.ok()) continue;
    if (result.status().code() == StatusCode::kFailedPrecondition) {
      // Epoch rejection: a higher epoch exists somewhere, so this node was
      // deposed. Self-fence — our unacked invalid tail dies with us.
      LOG_EVERY_N_SEC(kWarn, 5)
          << "invalidate to " << peer
          << " rejected, fencing: " << result.status().ToString();
      Fence();
      return Status::Unavailable("NOT_COORDINATOR: deposed (" +
                                 result.status().ToString() + ")");
    }
    // Transport failure: the peer is suspect, but we may still be the live
    // coordinator. The batch stays applied-but-invalid locally; the caller
    // reports the suspect so the controller can drop the peer, after which
    // a replay revalidates the batch.
    LOG_EVERY_N_SEC(kWarn, 5)
        << "invalidate to " << peer
        << " unreachable: " << result.status().ToString();
    if (unreachable != nullptr) *unreachable = peer;
    return Status::Unavailable("REPLICA_UNREACHABLE: " + peer + " (" +
                               result.status().ToString() + ")");
  }
  ReplicatedEntriesCounter()->Add(entry_count);
  return Status::OK();
}

void ReplicaGroup::ValidateBroadcast(const std::vector<LId>& lids, LId floor) {
  ValidateNotice notice;
  std::vector<net::NodeId> peers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fenced_ || role_ == ReplicaRole::kReplica || peers_.empty()) return;
    notice.epoch = epoch_;
    peers = peers_;
  }
  notice.lids = lids;
  notice.floor = floor;
  std::string wire = EncodeValidateNotice(notice);
  for (const net::NodeId& peer : peers) {
    endpoint_->Notify(peer, kValidateRpc, wire);
  }
}

Status ReplicaGroup::CheckAppendServing() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fenced_) return Status::Unavailable("NOT_COORDINATOR: fenced");
  if (role_ == ReplicaRole::kReplica) {
    return Status::Unavailable("NOT_COORDINATOR: replica serves reads only");
  }
  return Status::OK();
}

Status ReplicaGroup::CheckReadServing() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fenced_) return Status::Unavailable("FENCED: not serving");
  return Status::OK();
}

Status ReplicaGroup::AcceptRemoteEpoch(uint64_t remote_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fenced_) return Status::Unavailable("FENCED: not serving");
  if (remote_epoch < epoch_) {
    return Status::FailedPrecondition("stale replication epoch");
  }
  if (remote_epoch > epoch_) {
    // A higher epoch means a committed reconfiguration we missed. Adopt it;
    // a coordinator seeing this was deposed and rejoins as a replica (the
    // sender is the new coordinator replaying into us).
    epoch_ = remote_epoch;
    if (role_ == ReplicaRole::kCoordinator) {
      role_ = ReplicaRole::kReplica;
      peers_.clear();
    }
  }
  return Status::OK();
}

Status ReplicaGroup::Promote(uint64_t new_epoch,
                             std::vector<net::NodeId> peers) {
  std::lock_guard<std::mutex> lock(mu_);
  if (role_ == ReplicaRole::kCoordinator && epoch_ == new_epoch) {
    return Status::OK();  // retried promotion
  }
  if (new_epoch <= epoch_) {
    return Status::FailedPrecondition("promotion epoch must move forward");
  }
  if (fenced_) return Status::FailedPrecondition("cannot promote fenced node");
  role_ = ReplicaRole::kCoordinator;
  epoch_ = new_epoch;
  peers_ = std::move(peers);
  return Status::OK();
}

Status ReplicaGroup::Reconfigure(uint64_t new_epoch,
                                 std::vector<net::NodeId> peers) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fenced_) return Status::FailedPrecondition("cannot reconfigure fenced node");
  if (role_ == ReplicaRole::kReplica) {
    return Status::FailedPrecondition("only the coordinator reconfigures");
  }
  if (new_epoch < epoch_) {
    return Status::FailedPrecondition("reconfigure epoch must not move back");
  }
  epoch_ = new_epoch;
  peers_ = std::move(peers);
  if (role_ == ReplicaRole::kSolo && !peers_.empty()) {
    role_ = ReplicaRole::kCoordinator;
  }
  return Status::OK();
}

void ReplicaGroup::Fence() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fenced_) FenceCounter()->Add();
  fenced_ = true;
}

}  // namespace chariots::flstore
