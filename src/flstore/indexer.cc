#include "flstore/indexer.h"

#include <algorithm>
#include <cstdlib>

#include "common/codec.h"
#include "common/metrics.h"

namespace chariots::flstore {

std::string EncodeIndexQuery(const IndexQuery& query) {
  BinaryWriter w;
  w.PutBytes(query.key);
  w.PutU8(query.value_equals.has_value() ? 1 : 0);
  if (query.value_equals) w.PutBytes(*query.value_equals);
  w.PutU8(query.value_min.has_value() ? 1 : 0);
  if (query.value_min) w.PutI64(*query.value_min);
  w.PutU8(query.value_max.has_value() ? 1 : 0);
  if (query.value_max) w.PutI64(*query.value_max);
  w.PutU64(query.before_lid);
  w.PutU32(query.limit);
  return std::move(w).data();
}

Result<IndexQuery> DecodeIndexQuery(std::string_view data) {
  BinaryReader r(data);
  IndexQuery q;
  CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&q.key));
  uint8_t has = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU8(&has));
  if (has) {
    std::string v;
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&v));
    q.value_equals = std::move(v);
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU8(&has));
  if (has) {
    int64_t v = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetI64(&v));
    q.value_min = v;
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU8(&has));
  if (has) {
    int64_t v = 0;
    CHARIOTS_RETURN_IF_ERROR(r.GetI64(&v));
    q.value_max = v;
  }
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&q.before_lid));
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&q.limit));
  return q;
}

std::string EncodePostings(const std::vector<Posting>& postings) {
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(postings.size()));
  for (const Posting& p : postings) {
    w.PutU64(p.lid);
    w.PutBytes(p.value);
  }
  return std::move(w).data();
}

Result<std::vector<Posting>> DecodePostings(std::string_view data) {
  BinaryReader r(data);
  uint32_t n = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&n));
  std::vector<Posting> out(n);
  for (uint32_t i = 0; i < n; ++i) {
    CHARIOTS_RETURN_IF_ERROR(r.GetU64(&out[i].lid));
    CHARIOTS_RETURN_IF_ERROR(r.GetBytes(&out[i].value));
  }
  return out;
}

void Indexer::Add(const std::string& key, const std::string& value, LId lid) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Posting>& list = postings_[key];
  // Common case: appends arrive in increasing lid order.
  if (list.empty() || list.back().lid < lid) {
    list.push_back(Posting{lid, value});
    ++count_;
    return;
  }
  auto it = std::lower_bound(
      list.begin(), list.end(), lid,
      [](const Posting& p, LId l) { return p.lid < l; });
  if (it != list.end() && it->lid == lid) return;  // idempotent
  list.insert(it, Posting{lid, value});
  ++count_;
}

void Indexer::AddRecord(const LogRecord& record, LId lid) {
  for (const Tag& tag : record.tags) {
    Add(tag.key, tag.value, lid);
  }
}

namespace {
bool ValueMatches(const IndexQuery& q, const std::string& value) {
  if (q.value_equals && value != *q.value_equals) return false;
  if (q.value_min || q.value_max) {
    char* end = nullptr;
    long long v = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') return false;  // non-numeric
    if (q.value_min && v < *q.value_min) return false;
    if (q.value_max && v > *q.value_max) return false;
  }
  return true;
}
}  // namespace

std::vector<Posting> Indexer::Lookup(const IndexQuery& query) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Posting> out;
  auto it = postings_.find(query.key);
  if (it == postings_.end()) return out;
  const std::vector<Posting>& list = it->second;
  // Upper end: first posting with lid >= before_lid.
  auto end = query.before_lid == kInvalidLId
                 ? list.end()
                 : std::lower_bound(
                       list.begin(), list.end(), query.before_lid,
                       [](const Posting& p, LId l) { return p.lid < l; });
  for (auto rit = std::make_reverse_iterator(end); rit != list.rend();
       ++rit) {
    if (out.size() >= query.limit) break;
    if (ValueMatches(query, rit->value)) out.push_back(*rit);
  }
  return out;
}

void Indexer::TruncateBelow(LId horizon) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = postings_.begin(); it != postings_.end();) {
    std::vector<Posting>& list = it->second;
    auto keep = std::lower_bound(
        list.begin(), list.end(), horizon,
        [](const Posting& p, LId l) { return p.lid < l; });
    count_ -= static_cast<uint64_t>(keep - list.begin());
    list.erase(list.begin(), keep);
    if (list.empty()) {
      it = postings_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t Indexer::posting_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

namespace {
metrics::Gauge* VersionIndexGauge() {
  static metrics::Gauge* g = metrics::Registry::Default().GetGauge(
      "chariots.flstore.version_index.versions");
  return g;
}
}  // namespace

void VersionIndex::Apply(const std::string& key, const std::string& value,
                         LId lid) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Posting>& chain = chains_[key];
  // Common case: replay visits the log in increasing lid order.
  if (chain.empty() || chain.back().lid < lid) {
    chain.push_back(Posting{lid, value});
    ++count_;
    VersionIndexGauge()->Add(1);
    return;
  }
  auto it = std::lower_bound(
      chain.begin(), chain.end(), lid,
      [](const Posting& p, LId l) { return p.lid < l; });
  if (it != chain.end() && it->lid == lid) return;  // idempotent
  chain.insert(it, Posting{lid, value});
  ++count_;
  VersionIndexGauge()->Add(1);
}

std::optional<Posting> VersionIndex::Get(const std::string& key,
                                         LId before_lid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = chains_.find(key);
  if (it == chains_.end()) return std::nullopt;
  const std::vector<Posting>& chain = it->second;
  auto end = before_lid == kInvalidLId
                 ? chain.end()
                 : std::lower_bound(
                       chain.begin(), chain.end(), before_lid,
                       [](const Posting& p, LId l) { return p.lid < l; });
  if (end == chain.begin()) return std::nullopt;
  return *std::prev(end);
}

void VersionIndex::TruncateBelow(LId horizon) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = chains_.begin(); it != chains_.end();) {
    std::vector<Posting>& chain = it->second;
    auto keep = std::lower_bound(
        chain.begin(), chain.end(), horizon,
        [](const Posting& p, LId l) { return p.lid < l; });
    uint64_t dropped = static_cast<uint64_t>(keep - chain.begin());
    count_ -= dropped;
    VersionIndexGauge()->Add(-static_cast<int64_t>(dropped));
    chain.erase(chain.begin(), keep);
    if (chain.empty()) {
      it = chains_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t VersionIndex::version_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint32_t IndexerForKey(const std::string& key, uint32_t num_indexers) {
  // FNV-1a.
  uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<uint32_t>(h % num_indexers);
}

}  // namespace chariots::flstore
