#include "flstore/read_cache.h"

namespace chariots::flstore {

namespace {

// Maintainer tail cache metrics. Counters/gauges are process-wide: a
// process hosting several maintainers reports their aggregate, matching
// the other flstore metric families.
metrics::Counter* TailHits() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.tail_cache.hits");
  return c;
}
metrics::Counter* TailMisses() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.tail_cache.misses");
  return c;
}
metrics::Counter* TailEvictions() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.tail_cache.evictions");
  return c;
}
metrics::Gauge* TailBytes() {
  static metrics::Gauge* g = metrics::Registry::Default().GetGauge(
      "chariots.flstore.tail_cache.bytes");
  return g;
}
metrics::Gauge* TailEntries() {
  static metrics::Gauge* g = metrics::Registry::Default().GetGauge(
      "chariots.flstore.tail_cache.entries");
  return g;
}

// Client read-through cache metrics (the ISSUE 6 acceptance family).
metrics::Counter* ReadHits() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.read_cache.hits");
  return c;
}
metrics::Counter* ReadMisses() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.read_cache.misses");
  return c;
}
metrics::Counter* ReadEvictions() {
  static metrics::Counter* c = metrics::Registry::Default().GetCounter(
      "chariots.flstore.read_cache.evictions");
  return c;
}
metrics::Gauge* ReadBytes() {
  static metrics::Gauge* g = metrics::Registry::Default().GetGauge(
      "chariots.flstore.read_cache.bytes");
  return g;
}

}  // namespace

// ------------------------------------------------------------- TailCache

TailCache::TailCache(TailCacheOptions options) : options_(options) {}

void TailCache::EraseLocked(LId lid) {
  auto it = map_.find(lid);
  if (it == map_.end()) return;
  bytes_ -= it->second.size();
  TailBytes()->Add(-static_cast<int64_t>(it->second.size()));
  TailEntries()->Add(-1);
  map_.erase(it);
}

void TailCache::EvictToBoundsLocked() {
  while (!fifo_.empty() &&
         (bytes_ > options_.max_bytes || map_.size() > options_.max_records)) {
    LId victim = fifo_.front();
    fifo_.pop_front();
    if (map_.find(victim) == map_.end()) continue;  // stale fifo key
    EraseLocked(victim);
    TailEvictions()->Add();
  }
}

void TailCache::Put(LId lid, std::string encoded) {
  if (!enabled() || encoded.size() > options_.max_bytes) return;
  std::lock_guard<std::mutex> lock(mu_);
  EraseLocked(lid);  // replace, keeping accounting exact
  bytes_ += encoded.size();
  TailBytes()->Add(static_cast<int64_t>(encoded.size()));
  TailEntries()->Add(1);
  map_.emplace(lid, std::move(encoded));
  fifo_.push_back(lid);
  EvictToBoundsLocked();
}

std::optional<std::string> TailCache::Get(LId lid) const {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(lid);
  if (it == map_.end()) {
    TailMisses()->Add();
    return std::nullopt;
  }
  TailHits()->Add();
  return it->second;
}

void TailCache::Invalidate(LId lid) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseLocked(lid);
}

void TailCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  TailBytes()->Add(-static_cast<int64_t>(bytes_));
  TailEntries()->Add(-static_cast<int64_t>(map_.size()));
  map_.clear();
  fifo_.clear();
  bytes_ = 0;
}

uint64_t TailCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t TailCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

// ------------------------------------------------------- ClientReadCache

ClientReadCache::ClientReadCache(uint64_t max_bytes)
    : max_bytes_(max_bytes) {}

void ClientReadCache::EraseLocked(LId lid) {
  auto it = map_.find(lid);
  if (it == map_.end()) return;
  bytes_ -= it->second.encoded.size();
  ReadBytes()->Add(-static_cast<int64_t>(it->second.encoded.size()));
  map_.erase(it);
}

std::optional<std::string> ClientReadCache::Get(LId lid) const {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(lid);
  if (it == map_.end()) {
    ReadMisses()->Add();
    return std::nullopt;
  }
  ReadHits()->Add();
  return it->second.encoded;
}

void ClientReadCache::Put(LId lid, std::string encoded, uint32_t stripe,
                          uint64_t epoch, bool permanent) {
  if (!enabled() || encoded.size() > max_bytes_) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Don't cache under an epoch this cache already knows is stale.
  auto seen = stripe_epochs_.find(stripe);
  if (!permanent && seen != stripe_epochs_.end() && epoch < seen->second) {
    return;
  }
  EraseLocked(lid);
  bytes_ += encoded.size();
  ReadBytes()->Add(static_cast<int64_t>(encoded.size()));
  map_.emplace(lid, CachedRead{std::move(encoded), stripe, epoch, permanent});
  fifo_.push_back(lid);
  while (!fifo_.empty() && bytes_ > max_bytes_) {
    LId victim = fifo_.front();
    fifo_.pop_front();
    if (map_.find(victim) == map_.end()) continue;
    EraseLocked(victim);
    ReadEvictions()->Add();
  }
}

bool ClientReadCache::ObserveEpoch(uint32_t stripe, uint64_t epoch) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t& known = stripe_epochs_[stripe];
  if (epoch <= known) {
    known = std::max(known, epoch);
    return false;
  }
  known = epoch;
  bool purged = false;
  for (auto it = map_.begin(); it != map_.end();) {
    const CachedRead& entry = it->second;
    if (entry.stripe == stripe && !entry.permanent && entry.epoch < epoch) {
      bytes_ -= entry.encoded.size();
      ReadBytes()->Add(-static_cast<int64_t>(entry.encoded.size()));
      ReadEvictions()->Add();
      it = map_.erase(it);
      purged = true;
    } else {
      ++it;
    }
  }
  return purged;
}

void ClientReadCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ReadBytes()->Add(-static_cast<int64_t>(bytes_));
  map_.clear();
  fifo_.clear();
  stripe_epochs_.clear();
  bytes_ = 0;
}

uint64_t ClientReadCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t ClientReadCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace chariots::flstore
