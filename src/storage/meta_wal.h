#ifndef CHARIOTS_STORAGE_META_WAL_H_
#define CHARIOTS_STORAGE_META_WAL_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "storage/fault_injection.h"

namespace chariots::storage {

/// Append-only metadata WAL of full-state snapshot frames, for control-plane
/// state that is small but must survive crashes exactly (the FLStore
/// controller's ClusterInfo/epoch journal and its in-flight two-phase
/// plans). Each frame is one complete encoding of the owner's durable
/// state, so replay is simply "last intact frame wins" and a frame torn by
/// a crash truncates away — the same framing and torn-tail discipline as
/// the dedup sidecar:
///
///   frame := u32 masked CRC32C (over body) | u32 body length | body
///
/// Appends sync before returning: a metadata frame is tiny and a controller
/// must never ack a layout change that a restart forgets. When the file
/// accumulates more than `compact_min_frames` frames it is atomically
/// rewritten down to the latest one, bounding replay work across restarts.
///
/// Disk faults are injectable through the shared DiskFaultSchedule, so the
/// crash matrix can tear or fail metadata writes like any other file.
/// Thread-safe.
class MetaWal {
 public:
  struct Options {
    std::string path;
    DiskFaultSchedule* disk_faults = nullptr;
    /// Compaction threshold: rewrite down to one frame past this many.
    size_t compact_min_frames = 16;
  };

  explicit MetaWal(Options options) : options_(std::move(options)) {}
  ~MetaWal() { (void)Close(); }

  MetaWal(const MetaWal&) = delete;
  MetaWal& operator=(const MetaWal&) = delete;

  /// Opens (creating if missing) and replays the file: truncates any torn
  /// tail and remembers the last intact frame for recovered().
  Status Open();
  Status Close();

  /// Appends one full-state frame and syncs it durable.
  Status Append(std::string_view state);

  /// Payload of the last intact frame found by Open() (nullopt when the
  /// file was empty or fully torn). Updated by successful Appends.
  std::optional<std::string> recovered() const;

  /// Frames currently on disk (replay length of the next Open).
  size_t frames() const;
  bool is_open() const;

  /// Scans a raw WAL image and returns the payload of the last intact
  /// frame (nullopt for an empty or fully-torn image). Structural damage —
  /// a short header, an impossible length, a CRC mismatch — ends the scan
  /// there, exactly like recovery truncation; hostile input never crashes.
  /// `valid_prefix`/`frame_count` (optional) report how many bytes/frames
  /// scanned clean.
  static Result<std::optional<std::string>> ScanLastFrame(
      std::string_view image, size_t* valid_prefix = nullptr,
      size_t* frame_count = nullptr);

  /// Encodes one frame (CRC | length | body) — the unit ScanLastFrame
  /// consumes. Exposed for tests that build corrupted images.
  static std::string EncodeFrame(std::string_view body);

 private:
  Status CompactLocked();

  const Options options_;
  mutable std::mutex mu_;
  FaultInjectingFile file_;
  std::optional<std::string> recovered_;
  size_t frames_ = 0;
  bool open_ = false;
};

}  // namespace chariots::storage

#endif  // CHARIOTS_STORAGE_META_WAL_H_
