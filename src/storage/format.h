#ifndef CHARIOTS_STORAGE_FORMAT_H_
#define CHARIOTS_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/result.h"

namespace chariots::storage::format {

/// On-disk frame layout shared by segment files and cold-storage archives:
///   u32 masked CRC32C (over everything after it)
///   u8  frame type
///   u32 payload length
///   u64 lid
///   payload bytes
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4 + 8;

inline constexpr uint8_t kFrameData = 0;
inline constexpr uint8_t kFrameTombstone = 1;

/// Appends one encoded frame to `*out` without intermediate allocations —
/// the group-commit path encodes a whole batch into one reusable arena this
/// way. The CRC is computed over the bytes already in place and patched into
/// the four-byte slot reserved at the front of the frame.
inline void AppendFrameTo(std::string* out, uint8_t type, uint64_t lid,
                          std::string_view payload) {
  const size_t base = out->size();
  out->reserve(base + kFrameHeaderBytes + payload.size());
  out->append(4, '\0');  // CRC slot, patched below.
  out->push_back(static_cast<char>(type));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((lid >> (8 * i)) & 0xff));
  }
  out->append(payload);
  // Data pointer must be re-read after the appends (they may reallocate).
  const char* body = out->data() + base + 4;
  const uint32_t crc =
      crc32c::Mask(crc32c::Extend(0, body, out->size() - base - 4));
  char* slot = out->data() + base;
  for (int i = 0; i < 4; ++i) {
    slot[i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
}

/// Header-only encode for the zero-copy append path (DESIGN.md §15): emits
/// just the kFrameHeaderBytes of the frame into `*out`, with the CRC
/// extended over the header tail AND `payload` even though the payload
/// bytes are never appended — the caller submits the payload as its own
/// iovec entry immediately after this header, so the bytes that land on
/// disk are identical to AppendFrameTo's, with zero payload copies.
inline void AppendFrameHeaderTo(std::string* out, uint8_t type, uint64_t lid,
                                std::string_view payload) {
  const size_t base = out->size();
  out->reserve(base + kFrameHeaderBytes);
  out->append(4, '\0');  // CRC slot, patched below.
  out->push_back(static_cast<char>(type));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((lid >> (8 * i)) & 0xff));
  }
  uint32_t crc = crc32c::Extend(0, out->data() + base + 4, 1 + 4 + 8);
  crc = crc32c::Mask(crc32c::Extend(crc, payload.data(), payload.size()));
  char* slot = out->data() + base;
  for (int i = 0; i < 4; ++i) {
    slot[i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
}

inline std::string EncodeFrame(uint8_t type, uint64_t lid,
                               std::string_view payload) {
  std::string frame;
  AppendFrameTo(&frame, type, lid, payload);
  return frame;
}

/// A parsed frame; `payload` aliases the input buffer.
struct Frame {
  uint8_t type = kFrameData;
  uint64_t lid = 0;
  std::string_view payload;
};

/// Parses the frame starting at `data[offset]`. On success fills `frame`
/// and `consumed`. Fails with Corruption on a bad CRC / type / truncation.
inline Status ParseFrame(std::string_view data, size_t offset, Frame* frame,
                         size_t* consumed) {
  if (offset + kFrameHeaderBytes > data.size()) {
    return Status::Corruption("truncated frame header");
  }
  BinaryReader r(data.substr(offset));
  uint32_t stored_crc = 0, len = 0;
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&stored_crc));
  CHARIOTS_RETURN_IF_ERROR(r.GetU8(&frame->type));
  CHARIOTS_RETURN_IF_ERROR(r.GetU32(&len));
  CHARIOTS_RETURN_IF_ERROR(r.GetU64(&frame->lid));
  if (frame->type > kFrameTombstone) {
    return Status::Corruption("unknown frame type");
  }
  if (offset + kFrameHeaderBytes + len > data.size()) {
    return Status::Corruption("truncated frame payload");
  }
  frame->payload = data.substr(offset + kFrameHeaderBytes, len);
  uint32_t actual = crc32c::Value(
      data.substr(offset + 4, 1 + 4 + 8 + len));
  if (crc32c::Unmask(stored_crc) != actual) {
    return Status::Corruption("frame checksum mismatch");
  }
  *consumed = kFrameHeaderBytes + len;
  return Status::OK();
}

}  // namespace chariots::storage::format

#endif  // CHARIOTS_STORAGE_FORMAT_H_
