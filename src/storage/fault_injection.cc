#include "storage/fault_injection.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace chariots::storage {

namespace {

bool PathMatches(const std::string& path, const std::string& substr) {
  return substr.empty() || path.find(substr) != std::string::npos;
}

}  // namespace

void DiskFaultSchedule::AddRuleLocked(Kind kind, std::string path_substr,
                                      uint64_t nth, uint64_t keep_bytes) {
  Rule rule;
  rule.kind = kind;
  rule.path_substr = std::move(path_substr);
  rule.nth = nth == 0 ? 1 : nth;
  rule.keep_bytes = keep_bytes;
  rules_.push_back(std::move(rule));
}

void DiskFaultSchedule::TornWriteNth(std::string path_substr, uint64_t nth,
                                     uint64_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  AddRuleLocked(Kind::kTornWrite, std::move(path_substr), nth, keep_bytes);
}

void DiskFaultSchedule::FailWriteNth(std::string path_substr, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  AddRuleLocked(Kind::kFailWrite, std::move(path_substr), nth, 0);
}

void DiskFaultSchedule::FailSyncNth(std::string path_substr, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  AddRuleLocked(Kind::kFailSync, std::move(path_substr), nth, 0);
}

void DiskFaultSchedule::DropSyncNth(std::string path_substr, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  AddRuleLocked(Kind::kDropSync, std::move(path_substr), nth, 0);
}

Status DiskFaultSchedule::AddFromSpec(const std::string& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string rule = spec.substr(start, end - start);
    start = end + 1;
    if (rule.empty()) continue;

    size_t at = rule.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument("disk fault rule missing '@': " + rule);
    }
    std::string kind_name = rule.substr(0, at);
    std::string rest = rule.substr(at + 1);

    // rest = path_substr[:nth[:keep_bytes]]; `?` draws from the seeded PRNG.
    std::string fields[3];
    size_t nfields = 0;
    size_t fstart = 0;
    while (nfields < 3) {
      size_t colon = rest.find(':', fstart);
      if (colon == std::string::npos) {
        fields[nfields++] = rest.substr(fstart);
        break;
      }
      fields[nfields++] = rest.substr(fstart, colon - fstart);
      fstart = colon + 1;
    }
    auto parse = [&](const std::string& field, uint64_t seeded_bound,
                     uint64_t fallback) -> uint64_t {
      if (field.empty()) return fallback;
      if (field == "?") return 1 + rng_.Uniform(seeded_bound);
      return std::strtoull(field.c_str(), nullptr, 10);
    };
    uint64_t nth = parse(nfields > 1 ? fields[1] : "", 8, 1);
    uint64_t keep = parse(nfields > 2 ? fields[2] : "", 32, 0);

    if (kind_name == "torn_write") {
      AddRuleLocked(Kind::kTornWrite, fields[0], nth, keep);
    } else if (kind_name == "fail_write") {
      AddRuleLocked(Kind::kFailWrite, fields[0], nth, 0);
    } else if (kind_name == "fail_sync") {
      AddRuleLocked(Kind::kFailSync, fields[0], nth, 0);
    } else if (kind_name == "drop_sync") {
      AddRuleLocked(Kind::kDropSync, fields[0], nth, 0);
    } else {
      return Status::InvalidArgument("unknown disk fault kind: " + kind_name);
    }
  }
  return Status::OK();
}

void DiskFaultSchedule::OnOpen(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  // Bytes present at open are treated as durable: recovery already ran over
  // them (or the test scripted their loss in an earlier crash).
  files_[path] = FileState{size, size};
}

DiskFaultSchedule::WriteDecision DiskFaultSchedule::OnWrite(
    const std::string& path, uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  WriteDecision decision{len, false};
  if (crashed_) {
    decision.fail = true;
    decision.keep_bytes = 0;
    return decision;
  }
  for (Rule& rule : rules_) {
    if (rule.kind != Kind::kTornWrite && rule.kind != Kind::kFailWrite) {
      continue;
    }
    if (!PathMatches(path, rule.path_substr)) continue;
    ++rule.matches;
    if (rule.fired || rule.matches != rule.nth) continue;
    rule.fired = true;
    ++injected_;
    crashed_ = true;
    decision.fail = true;
    decision.keep_bytes =
        rule.kind == Kind::kTornWrite ? std::min(rule.keep_bytes, len) : 0;
    LOG_WARN << "disk fault: "
             << (rule.kind == Kind::kTornWrite ? "torn write" : "failed write")
             << " on " << path << " (kept " << decision.keep_bytes << "/"
             << len << " bytes)";
    break;
  }
  auto it = files_.find(path);
  if (it != files_.end()) it->second.size += decision.keep_bytes;
  return decision;
}

DiskFaultSchedule::SyncDecision DiskFaultSchedule::OnSync(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  SyncDecision decision;
  if (crashed_) {
    decision.fail = true;
    return decision;
  }
  for (Rule& rule : rules_) {
    if (rule.kind != Kind::kFailSync && rule.kind != Kind::kDropSync) {
      continue;
    }
    if (!PathMatches(path, rule.path_substr)) continue;
    ++rule.matches;
    if (rule.fired || rule.matches != rule.nth) continue;
    rule.fired = true;
    ++injected_;
    if (rule.kind == Kind::kFailSync) {
      crashed_ = true;
      decision.fail = true;
      LOG_WARN << "disk fault: failed sync on " << path;
    } else {
      decision.drop = true;
      LOG_WARN << "disk fault: silently dropped sync on " << path;
    }
    break;
  }
  if (!decision.fail && !decision.drop) {
    auto it = files_.find(path);
    if (it != files_.end()) it->second.synced = it->second.size;
  }
  return decision;
}

void DiskFaultSchedule::OnTruncate(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return;
  it->second.size = size;
  it->second.synced = std::min(it->second.synced, size);
}

Status DiskFaultSchedule::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, state] : files_) {
    if (state.synced >= state.size) continue;
    if (!FileExists(path)) continue;
    CHARIOTS_ASSIGN_OR_RETURN(File file, File::OpenAppendable(path));
    if (file.size() < state.synced) {
      return Status::Internal("tracked synced size exceeds file " + path);
    }
    LOG_WARN << "simulated crash: truncating " << path << " from "
             << file.size() << " to last synced size " << state.synced;
    CHARIOTS_RETURN_IF_ERROR(file.Truncate(state.synced));
  }
  files_.clear();
  crashed_ = false;
  return Status::OK();
}

bool DiskFaultSchedule::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t DiskFaultSchedule::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

void DiskFaultSchedule::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  files_.clear();
  injected_ = 0;
  crashed_ = false;
}

// -------------------------------------------------------- FaultInjectingFile

Result<FaultInjectingFile> FaultInjectingFile::OpenAppendable(
    const std::string& path, DiskFaultSchedule* faults) {
  CHARIOTS_ASSIGN_OR_RETURN(File file, File::OpenAppendable(path));
  FaultInjectingFile out;
  out.path_ = path;
  out.faults_ = faults;
  if (faults != nullptr) faults->OnOpen(path, file.size());
  out.file_ = std::move(file);
  return out;
}

Status FaultInjectingFile::Append(std::string_view data) {
  if (faults_ == nullptr) return file_.Append(data);
  DiskFaultSchedule::WriteDecision decision =
      faults_->OnWrite(path_, data.size());
  if (decision.keep_bytes < data.size()) {
    if (decision.keep_bytes > 0) {
      CHARIOTS_RETURN_IF_ERROR(
          file_.Append(data.substr(0, decision.keep_bytes)));
    }
    return Status::IOError("injected disk fault: write lost on " + path_);
  }
  CHARIOTS_RETURN_IF_ERROR(file_.Append(data));
  if (decision.fail) {
    return Status::IOError("injected disk fault: write failed on " + path_);
  }
  return Status::OK();
}

Status FaultInjectingFile::AppendvAndSync(
    std::span<const std::string_view> parts, bool sync, IoEngine* engine) {
  if (faults_ == nullptr) return file_.Appendv(parts, sync, engine);

  uint64_t total = 0;
  for (std::string_view p : parts) total += p.size();
  DiskFaultSchedule::WriteDecision decision = faults_->OnWrite(path_, total);
  if (decision.keep_bytes < total) {
    if (decision.keep_bytes > 0) {
      // Torn write: the surviving prefix still goes through the engine so
      // the tear lands the same way real bytes would (vectored, batched).
      std::vector<std::string_view> kept;
      uint64_t left = decision.keep_bytes;
      for (std::string_view p : parts) {
        if (left == 0) break;
        size_t take = std::min<uint64_t>(left, p.size());
        kept.push_back(p.substr(0, take));
        left -= take;
      }
      CHARIOTS_RETURN_IF_ERROR(file_.Appendv(kept, /*sync=*/false, engine));
    }
    return Status::IOError("injected disk fault: write lost on " + path_);
  }
  CHARIOTS_RETURN_IF_ERROR(file_.Appendv(parts, /*sync=*/false, engine));
  if (decision.fail) {
    return Status::IOError("injected disk fault: write failed on " + path_);
  }
  if (!sync) return Status::OK();
  DiskFaultSchedule::SyncDecision sync_decision = faults_->OnSync(path_);
  if (sync_decision.fail) {
    return Status::IOError("injected disk fault: sync failed on " + path_);
  }
  if (sync_decision.drop) return Status::OK();  // the lying disk says yes
  return engine->Fsync(file_.fd());
}

Status FaultInjectingFile::ReadAt(uint64_t offset, size_t n,
                                  std::string* out) const {
  return file_.ReadAt(offset, n, out);
}

Status FaultInjectingFile::Sync() {
  if (faults_ == nullptr) return file_.Sync();
  DiskFaultSchedule::SyncDecision decision = faults_->OnSync(path_);
  if (decision.fail) {
    return Status::IOError("injected disk fault: sync failed on " + path_);
  }
  if (decision.drop) return Status::OK();  // the lying disk says yes
  return file_.Sync();
}

Status FaultInjectingFile::Truncate(uint64_t size) {
  CHARIOTS_RETURN_IF_ERROR(file_.Truncate(size));
  if (faults_ != nullptr) faults_->OnTruncate(path_, size);
  return Status::OK();
}

}  // namespace chariots::storage
